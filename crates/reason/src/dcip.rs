//! DCIP — the deterministic current instance problem (paper §3, Thm 3.4).
//!
//! *Do all consistent completions induce the same current instance of a
//! relation `R`?*  Πᵖ₂-complete in general (coNP-complete in data
//! complexity); PTIME without denial constraints: all sinks of `PO∞` per
//! entity must agree on each attribute value (paper Theorem 6.1).
//!
//! As with COP, an inconsistent specification is vacuously deterministic.

use crate::encode::Encoding;
use crate::engine::CurrencyEngine;
use crate::error::ReasonError;
use crate::fixpoint::po_infinity;
use crate::Options;
use currency_core::{AttrId, NormalInstance, RelId, Specification};
use currency_sat::Enumeration;

/// Decide DCIP with automatic engine dispatch.
pub fn dcip(spec: &Specification, rel: RelId, opts: &Options) -> Result<bool, ReasonError> {
    if spec.has_no_constraints() {
        dcip_ptime(spec, rel)
    } else {
        dcip_exact(spec, rel, opts)
    }
}

/// Decide DCIP with the SAT engine: enumerate realizable current instances
/// of `rel` via projected All-SAT over the value indicators and check that
/// at most one distinct instance exists.  Routes through a transient
/// [`CurrencyEngine`], which enumerates per entity component; for repeated
/// queries build the engine once instead.
pub fn dcip_exact(spec: &Specification, rel: RelId, opts: &Options) -> Result<bool, ReasonError> {
    CurrencyEngine::with_value_rels(spec, &[rel], opts)?.dcip(rel)
}

/// [`dcip_exact`] on one monolithic encoding (kept for differential
/// testing).
pub fn dcip_exact_monolithic(
    spec: &Specification,
    rel: RelId,
    opts: &Options,
) -> Result<bool, ReasonError> {
    let mut enc = Encoding::new(spec, &[rel])?;
    let projection = enc.value_projection().to_vec();
    // Two distinct projected models of the value indicators decode to two
    // distinct current instances (an indicator is true iff its value is the
    // current one), so the enumeration can stop after two models.
    let mut models: Vec<Vec<bool>> = Vec::new();
    let enumeration = enc.for_each_model(&projection, opts.max_models, |m| {
        models.push(m.to_vec());
        models.len() < 2
    });
    if let Enumeration::LimitReached(n) = enumeration {
        return Err(ReasonError::BudgetExceeded {
            what: "current-instance enumeration (DCIP)",
            budget: opts.max_models,
            spent: n,
        });
    }
    let mut first: Option<NormalInstance> = None;
    for m in &models {
        let dbs = enc.decode_current_instances(spec, m);
        let inst = dbs.into_iter().next().expect("one relation encoded");
        match &first {
            None => first = Some(inst),
            Some(f) => {
                if !f.set_eq(&inst) {
                    return Ok(false);
                }
            }
        }
    }
    Ok(true)
}

/// Decide DCIP with the PTIME sink test (no denial constraints).
///
/// A relation is deterministic iff, for every entity and attribute, all
/// sinks of `PO∞` restricted to the entity agree on the attribute's value.
pub fn dcip_ptime(spec: &Specification, rel: RelId) -> Result<bool, ReasonError> {
    debug_assert!(
        spec.has_no_constraints(),
        "dcip_ptime requires a constraint-free specification"
    );
    let Some(po) = po_infinity(spec)? else {
        return Ok(true); // inconsistent: vacuously deterministic
    };
    let inst = spec.instance(rel);
    for (_eid, group) in inst.entity_groups() {
        for a in 0..inst.arity() {
            let attr = AttrId(a as u32);
            let sinks = po.order(rel, attr).sinks(group);
            let mut values = sinks.iter().map(|&t| inst.tuple(t).value(attr));
            if let Some(first) = values.next() {
                if values.any(|v| v != first) {
                    return Ok(false);
                }
            }
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use currency_core::{
        Catalog, CmpOp, DenialConstraint, Eid, RelationSchema, Term, Tuple, TupleId, Value,
    };

    const A: AttrId = AttrId(0);

    fn spec_with(vals: &[i64]) -> (Specification, RelId) {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A"]));
        let mut spec = Specification::new(cat);
        for &v in vals {
            spec.instance_mut(r)
                .push_tuple(Tuple::new(Eid(1), vec![Value::int(v)]))
                .unwrap();
        }
        (spec, r)
    }

    #[test]
    fn unconstrained_distinct_values_are_nondeterministic() {
        let (spec, r) = spec_with(&[1, 2]);
        assert!(!dcip(&spec, r, &Options::default()).unwrap());
        assert!(!dcip_exact(&spec, r, &Options::default()).unwrap());
    }

    #[test]
    fn equal_values_are_deterministic() {
        let (spec, r) = spec_with(&[7, 7]);
        assert!(dcip(&spec, r, &Options::default()).unwrap());
        assert!(dcip_exact(&spec, r, &Options::default()).unwrap());
    }

    #[test]
    fn total_initial_order_is_deterministic() {
        let (mut spec, r) = spec_with(&[1, 2]);
        spec.instance_mut(r)
            .add_order(A, TupleId(0), TupleId(1))
            .unwrap();
        assert!(dcip(&spec, r, &Options::default()).unwrap());
        assert!(dcip_exact(&spec, r, &Options::default()).unwrap());
    }

    #[test]
    fn constraint_pins_instance() {
        let (mut spec, r) = spec_with(&[10, 20, 15]);
        let dc = DenialConstraint::builder(r, 2)
            .when_cmp(Term::attr(0, A), CmpOp::Gt, Term::attr(1, A))
            .then_order(1, A, 0)
            .build()
            .unwrap();
        spec.add_constraint(dc).unwrap();
        assert!(dcip(&spec, r, &Options::default()).unwrap());
    }

    #[test]
    fn inconsistent_spec_is_vacuously_deterministic() {
        let (mut spec, r) = spec_with(&[10, 20]);
        let dc = DenialConstraint::builder(r, 2)
            .when_cmp(Term::attr(0, A), CmpOp::Gt, Term::attr(1, A))
            .then_order(1, A, 0)
            .build()
            .unwrap();
        spec.add_constraint(dc).unwrap();
        spec.instance_mut(r)
            .add_order(A, TupleId(1), TupleId(0))
            .unwrap();
        assert!(dcip(&spec, r, &Options::default()).unwrap());
    }

    #[test]
    fn ptime_and_exact_agree_without_constraints() {
        for vals in [&[1i64, 2][..], &[3, 3], &[1, 2, 3]] {
            let (spec, r) = spec_with(vals);
            assert_eq!(
                dcip_ptime(&spec, r).unwrap(),
                dcip_exact(&spec, r, &Options::default()).unwrap(),
                "vals = {vals:?}"
            );
        }
    }
}
