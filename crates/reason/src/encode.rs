//! SAT encoding of specifications.
//!
//! A consistent completion of a specification is encoded as a model of a
//! CNF formula over *order variables*:
//!
//! * for every relation, **referenced** attribute `A`, entity and
//!   unordered pair `{u, v}` of the entity's tuples there is one Boolean
//!   variable whose truth means `u ≺_A v` (its falsity means `v ≺_A u`) —
//!   totality and antisymmetry are therefore structural, not clausal.  An
//!   attribute is referenced when an initial order, ground rule, copy
//!   obligation, or value indicator of this encoding's scope touches it;
//!   unreferenced attributes admit every total order, so they need no
//!   variables at all ([`Encoding::order_lit`] returns `None` and every
//!   consumer already treats that as "unconstrained");
//! * transitivity is grounded per entity group — eagerly (for each
//!   ordered triple `(x, y, z)` the clause `x≺y ∧ y≺z → x≺z`) or
//!   **lazily** (no triangle clauses up front; candidate models are
//!   checked by a closure walk and only *violated* triangles are added as
//!   lemmas, see [`TransitivityMode`]);
//! * the initial partial orders contribute unit clauses;
//! * every ground rule of every denial constraint contributes the clause
//!   `¬p₁ ∨ … ∨ ¬pₘ ∨ c` (falsum conclusions drop `c`);
//! * every ≺-compatibility obligation of every copy function contributes
//!   the binary implication `s₁≺s₂ → t₁≺t₂`.
//!
//! Models of this CNF are exactly the consistent completions of the
//! specification (`Mod(S)`), so CPS is one [`Encoding::solve`] call and
//! COP is an entailment query under one assumption.  In lazy mode those
//! calls loop — solve, closure-check, lemmatize — until the model is
//! transitive or the instance is refuted; the lemmas are sound
//! consequences of the eager theory, so both modes decide the same
//! problems.
//!
//! For the current-instance problems (DCIP, CCQA) the encoding can
//! additionally materialize, per `(relation, entity, attribute)`:
//!
//! * *max indicators* `m_t ⇔ ⋀_{t'≠t} t'≺t` — `t` holds the most current
//!   value, and
//! * *value indicators* `y_v ⇔ ⋁_{t : t[A]=v} m_t` — the most current
//!   value is `v`.
//!
//! Projected All-SAT over the value indicators
//! ([`Encoding::for_each_model`], which re-checks closure per model in
//! lazy mode) enumerates exactly the realizable current instances,
//! collapsing the (huge) completion space to the (small) space of
//! distinct `LST` outcomes.

use crate::error::ReasonError;
use crate::partition::{Component, GroundRuleAt, ObligationAt};
use crate::TransitivityMode;
use crate::{Options, SolveLimits, Spent};
use currency_core::{
    AttrId, Completion, CurrencyError, Eid, NormalInstance, RelCompletion, RelId, Specification,
    Tuple, TupleId, Value,
};
use currency_sat::{
    enumerate_projected, Enumeration, Limits, Lit, ModelSource, SolveOutcome, SolveResult, Solver,
    Var,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::time::Instant;

/// Conflict installment size for deadline-bounded solves: small enough
/// that the wall clock is consulted every few milliseconds of search,
/// large enough that warm-resume overhead (re-establishing assumptions)
/// is noise.
const DEADLINE_CHUNK: u64 = 512;

/// The work bounds of one query, distilled from [`Options`]: a per-solve
/// budget plus an absolute wall-clock deadline.
///
/// Bounded solves run in conflict installments (warm resume between
/// installments makes chunking semantically identical to one long solve),
/// so the deadline is observed without time syscalls inside the solver's
/// hot loop.
#[derive(Clone, Copy, Debug, Default)]
pub struct Bounds {
    /// Per-SAT-call work budget.
    pub limits: SolveLimits,
    /// Absolute wall-clock deadline.
    pub deadline: Option<Instant>,
}

impl Bounds {
    /// The bounds carried by an [`Options`].
    pub fn from_options(opts: &Options) -> Bounds {
        Bounds {
            limits: opts.solve_limits,
            deadline: opts.deadline,
        }
    }

    /// `true` if nothing bounds the work: solves take the zero-overhead
    /// unbounded path.
    pub fn is_unbounded(&self) -> bool {
        self.limits.is_unbounded() && self.deadline.is_none()
    }

    /// `true` once the wall-clock deadline has passed.
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// How the current value of one `(relation, entity, attribute)` cell is
/// represented in the encoding.
#[derive(Clone, Debug)]
pub enum ValueChoice {
    /// Every completion yields this value (single tuple, or all tuples of
    /// the entity agree on the attribute).
    Fixed(Value),
    /// The value is decided by the model: list of `(value, index into
    /// [`Encoding::value_projection`])`; exactly one indicator is true in
    /// any model.
    Choice(Vec<(Value, usize)>),
}

/// One entity group whose transitivity is enforced lazily: the tuples of
/// a `(relation, attribute, entity)` cell with ≥ 3 members (smaller
/// groups have no triangles).
#[derive(Clone, Debug)]
struct LazyGroup {
    rel: RelId,
    attr: AttrId,
    tuples: Vec<TupleId>,
}

/// A specification compiled to CNF (see module docs).
///
/// An encoding covers either the whole specification
/// ([`Encoding::new`]) or one entity component of it
/// ([`Encoding::for_component`]): the scoped form contains exactly the
/// order variables, clauses, and value indicators of its component's
/// `(relation, entity)` cells, and its decode methods report rows and
/// chains for those cells only.
///
/// Callers must reach satisfiability through [`Encoding::solve`],
/// [`Encoding::solve_with_assumptions`] or [`Encoding::for_each_model`]
/// rather than the raw solver: in lazy mode those wrappers run the
/// refinement loop that makes a `Sat` answer trustworthy.
#[derive(Debug)]
pub struct Encoding {
    /// The solver loaded with the specification's clauses.  Private so
    /// that satisfiability can only be reached through the mode-aware
    /// wrappers ([`Encoding::solve`], [`Encoding::solve_with_assumptions`],
    /// [`Encoding::for_each_model`]) — in lazy mode a raw solver `Sat`
    /// without the closure-refinement loop could decode a non-transitive
    /// order.
    solver: Solver,
    /// `(rel, attr, u, v)` with `u < v` → order variable (`true` ⇔ `u ≺ v`).
    order_vars: HashMap<(RelId, AttrId, TupleId, TupleId), Var>,
    /// Current-value representation per encoded cell.
    value_choices: BTreeMap<(RelId, Eid, AttrId), ValueChoice>,
    /// Projection variables for All-SAT over current instances.
    value_projection: Vec<Var>,
    /// Relations whose current values are encoded.
    value_rels: Vec<RelId>,
    /// `(relation, entity)` cells covered; `None` = the whole spec.
    scope: Option<BTreeSet<(RelId, Eid)>>,
    /// Transitivity grounding strategy.
    mode: TransitivityMode,
    /// Closure-checked groups (empty in eager mode).
    lazy_groups: Vec<LazyGroup>,
}

/// Cloning an encoding clones the whole cached solver (learnt clauses and
/// lazy-transitivity lemmas included), so the clone answers exactly like
/// the original while staying fully private — the basis for per-reader
/// solver scratch ([`crate::snapshot::SnapshotReader`]) and throwaway
/// All-SAT enumeration.  Hand-rolled so `clone_from` reuses the
/// destination's buffers (see [`currency_sat::Solver`]'s `Clone`):
/// refreshing a reader's scratch encoding after an epoch change costs
/// memcpys, not an allocation per clause.
impl Clone for Encoding {
    fn clone(&self) -> Self {
        Encoding {
            solver: self.solver.clone(),
            order_vars: self.order_vars.clone(),
            value_choices: self.value_choices.clone(),
            value_projection: self.value_projection.clone(),
            value_rels: self.value_rels.clone(),
            scope: self.scope.clone(),
            mode: self.mode,
            lazy_groups: self.lazy_groups.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.solver.clone_from(&source.solver);
        self.order_vars.clone_from(&source.order_vars);
        self.value_choices.clone_from(&source.value_choices);
        self.value_projection.clone_from(&source.value_projection);
        self.value_rels.clone_from(&source.value_rels);
        self.scope.clone_from(&source.scope);
        self.mode = source.mode;
        self.lazy_groups.clone_from(&source.lazy_groups);
    }
}

impl Encoding {
    /// Compile `spec` with eagerly-grounded transitivity.  `value_rels`
    /// lists the relations whose current instances must be enumerable
    /// (pass `&[]` for pure CPS/COP use).
    ///
    /// This is the whole-specification reference path (used by the
    /// `*_monolithic` functions); engines prefer
    /// [`Encoding::for_component`] with a caller-chosen
    /// [`TransitivityMode`].  Fails if the specification is structurally
    /// invalid ([`Specification::validate`]).
    pub fn new(spec: &Specification, value_rels: &[RelId]) -> Result<Encoding, CurrencyError> {
        Encoding::with_mode(spec, value_rels, TransitivityMode::Eager)
    }

    /// Compile `spec` with the given transitivity strategy.
    pub fn with_mode(
        spec: &Specification,
        value_rels: &[RelId],
        mode: TransitivityMode,
    ) -> Result<Encoding, CurrencyError> {
        spec.validate()?;
        // Ground every constraint and obligation once, exactly as the
        // partition does for components, so the construction below is
        // shared verbatim with the scoped path.
        let mut rules: Vec<GroundRuleAt> = Vec::new();
        for dc in spec.constraints() {
            let inst = spec.instance(dc.rel());
            for rule in dc.ground(inst) {
                rules.push(GroundRuleAt {
                    rel: dc.rel(),
                    rule,
                });
            }
        }
        let mut obligations: Vec<ObligationAt> = Vec::new();
        for cf in spec.copies() {
            let sig = cf.signature();
            let target = spec.instance(sig.target);
            let source = spec.instance(sig.source);
            for (src_edge, tgt_edge) in cf.compatibility_obligations(target, source) {
                obligations.push(ObligationAt {
                    source_rel: sig.source,
                    source_edge: src_edge,
                    target_rel: sig.target,
                    target_edge: tgt_edge,
                });
            }
        }
        Ok(Encoding::build(
            spec,
            value_rels,
            None,
            &rules,
            &obligations,
            mode,
        ))
    }

    /// The encoding of a vacant component slot: empty scope, no
    /// variables, no clauses, trivially satisfiable.  The engine parks
    /// one of these in a slot the partition has vacated (see
    /// `Partition::refresh`), so slot arrays never need `Option`s and a
    /// stale query against a vacated slot degrades to a no-op.
    pub fn vacant(value_rels: &[RelId], mode: TransitivityMode) -> Encoding {
        Encoding {
            solver: Solver::new(),
            order_vars: HashMap::new(),
            value_choices: BTreeMap::new(),
            value_projection: Vec::new(),
            value_rels: value_rels.to_vec(),
            scope: Some(BTreeSet::new()),
            mode,
            lazy_groups: Vec::new(),
        }
    }

    /// Compile one entity component of `spec` (see [`crate::partition`]).
    ///
    /// The component carries its ground rules and obligations, so no
    /// grounding work is repeated per component.  The caller is expected
    /// to have validated the specification once.
    pub fn for_component(
        spec: &Specification,
        value_rels: &[RelId],
        component: &Component,
        mode: TransitivityMode,
    ) -> Encoding {
        Encoding::build(
            spec,
            value_rels,
            Some(component.cells.clone()),
            &component.rules,
            &component.obligations,
            mode,
        )
    }

    /// The shared construction pass over pre-grounded artifacts.
    fn build(
        spec: &Specification,
        value_rels: &[RelId],
        scope: Option<BTreeSet<(RelId, Eid)>>,
        rules: &[GroundRuleAt],
        obligations: &[ObligationAt],
        mode: TransitivityMode,
    ) -> Encoding {
        let mut enc = Encoding {
            solver: Solver::new(),
            order_vars: HashMap::new(),
            value_choices: BTreeMap::new(),
            value_projection: Vec::new(),
            value_rels: value_rels.to_vec(),
            scope,
            mode,
            lazy_groups: Vec::new(),
        };
        let referenced = enc.referenced_attrs(spec, rules, obligations);
        enc.alloc_order_vars(spec, &referenced);
        match mode {
            TransitivityMode::Eager => enc.add_transitivity(spec, &referenced),
            TransitivityMode::Lazy => enc.collect_lazy_groups(spec, &referenced),
        }
        enc.add_initial_orders(spec);
        for r in rules {
            enc.add_ground_rule(r.rel, &r.rule);
        }
        for ob in obligations {
            enc.add_obligation(
                ob.source_rel,
                &ob.source_edge,
                ob.target_rel,
                &ob.target_edge,
            );
        }
        for &rel in value_rels {
            enc.add_value_indicators(spec, rel);
        }
        enc
    }

    /// The `(relation, attribute)` pairs actually constrained within this
    /// encoding's scope.  Only these get order variables: an attribute no
    /// initial order, rule, obligation, or value indicator touches admits
    /// every total order, so allocating its `O(n²)` pair variables (and,
    /// eagerly, its `O(n³)` triangle clauses) would be pure waste.
    fn referenced_attrs(
        &self,
        spec: &Specification,
        rules: &[GroundRuleAt],
        obligations: &[ObligationAt],
    ) -> BTreeSet<(RelId, AttrId)> {
        let mut refd: BTreeSet<(RelId, AttrId)> = BTreeSet::new();
        // Initial orders: a scoped encoding range-scans its own groups'
        // outgoing pairs (both endpoints of a pair share the entity, so
        // checking lessers covers every pair) instead of walking every
        // relation's full pair set — rebuild cost must scale with the
        // component, not the specification.
        match &self.scope {
            None => {
                for inst in spec.instances() {
                    let rel = inst.rel();
                    for a in 0..inst.arity() {
                        let attr = AttrId(a as u32);
                        if !inst.order(attr).is_empty() {
                            refd.insert((rel, attr));
                        }
                    }
                }
            }
            Some(cells) => {
                for &(rel, eid) in cells {
                    let inst = spec.instance(rel);
                    for a in 0..inst.arity() {
                        let attr = AttrId(a as u32);
                        if refd.contains(&(rel, attr)) {
                            continue;
                        }
                        if inst
                            .entity_group(eid)
                            .iter()
                            .any(|&t| inst.order(attr).pairs_from(t).next().is_some())
                        {
                            refd.insert((rel, attr));
                        }
                    }
                }
            }
        }
        for r in rules {
            for edge in r.rule.premises.iter().chain(r.rule.conclusion.as_ref()) {
                refd.insert((r.rel, edge.attr));
            }
        }
        for ob in obligations {
            refd.insert((ob.source_rel, ob.source_edge.attr));
            refd.insert((ob.target_rel, ob.target_edge.attr));
        }
        // Value indicators need the order relation of any attribute on
        // which some in-scope entity group disagrees (max indicators
        // quantify over the group's pairs).
        for (rel, _, group) in self.groups_in_scope(spec) {
            if group.len() < 2 || !self.value_rels.contains(&rel) {
                continue;
            }
            let inst = spec.instance(rel);
            for a in 0..inst.arity() {
                let attr = AttrId(a as u32);
                if refd.contains(&(rel, attr)) {
                    continue;
                }
                let first = inst.tuple(group[0]).value(attr);
                if group[1..]
                    .iter()
                    .any(|&t| inst.tuple(t).value(attr) != first)
                {
                    refd.insert((rel, attr));
                }
            }
        }
        refd
    }

    /// The `(rel, eid, group)` cells this encoding covers: a component
    /// encoding walks its own (few) scope cells, the unscoped form every
    /// entity group — construction cost then scales with the component,
    /// not the specification (the engine builds one encoding *per*
    /// component, so a full-spec scan here would make engine construction
    /// O(components × spec)).
    fn groups_in_scope<'s>(
        &'s self,
        spec: &'s Specification,
    ) -> Box<dyn Iterator<Item = (RelId, Eid, &'s [TupleId])> + 's> {
        match &self.scope {
            Some(cells) => Box::new(
                cells
                    .iter()
                    .map(move |&(rel, eid)| (rel, eid, spec.instance(rel).entity_group(eid))),
            ),
            None => Box::new(spec.instances().iter().flat_map(|inst| {
                inst.entity_groups()
                    .map(move |(eid, group)| (inst.rel(), eid, group))
            })),
        }
    }

    /// This encoding's entities of `rel`.  A scoped encoding walks its own
    /// (few) cells via a range scan instead of filtering every entity of
    /// the relation — decode cost then scales with the component, not the
    /// specification.
    fn entities_in_scope<'s>(
        &'s self,
        spec: &'s Specification,
        rel: RelId,
    ) -> Box<dyn Iterator<Item = Eid> + 's> {
        match &self.scope {
            Some(cells) => Box::new(
                cells
                    .range((rel, Eid(u64::MIN))..=(rel, Eid(u64::MAX)))
                    .map(|&(_, eid)| eid),
            ),
            None => Box::new(spec.instance(rel).entities()),
        }
    }

    /// The literal asserting `lesser ≺_attr greater`, if the pair is
    /// same-entity on a referenced attribute (and thus has a variable).
    pub fn order_lit(
        &self,
        rel: RelId,
        attr: AttrId,
        lesser: TupleId,
        greater: TupleId,
    ) -> Option<Lit> {
        if lesser == greater {
            return None;
        }
        let (a, b, positive) = if lesser < greater {
            (lesser, greater, true)
        } else {
            (greater, lesser, false)
        };
        self.order_vars
            .get(&(rel, attr, a, b))
            .map(|v| v.lit(positive))
    }

    /// The transitivity grounding strategy this encoding was built with.
    pub fn mode(&self) -> TransitivityMode {
        self.mode
    }

    /// Number of solver variables (order variables plus value-indicator
    /// auxiliaries).
    pub fn num_vars(&self) -> usize {
        self.solver.num_vars()
    }

    /// Number of solver clauses (original + lemmas + learnt).
    pub fn num_clauses(&self) -> usize {
        self.solver.num_clauses()
    }

    /// The underlying solver's counters.
    pub fn solver_stats(&self) -> currency_sat::SolverStats {
        self.solver.stats()
    }

    // ------------------------------------------------------------------
    // Solving (mode-aware)
    // ------------------------------------------------------------------

    /// Check satisfiability, running the lazy refinement loop if needed.
    ///
    /// After `Sat`, the solver's model is guaranteed transitive on every
    /// encoded group, so decode helpers ([`Encoding::model_chains`],
    /// [`Encoding::decode_completion`]) are safe in both modes.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Check satisfiability under assumed literals, running the lazy
    /// refinement loop if needed.  Lemmas added by refinement persist in
    /// the solver (they are assumption-independent consequences of the
    /// transitivity axiom), so repeated queries against one encoding
    /// amortize the refinement work.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        loop {
            if self.solver.solve_with_assumptions(assumptions) == SolveResult::Unsat {
                return SolveResult::Unsat;
            }
            if self.mode == TransitivityMode::Eager || self.refine_transitivity() == 0 {
                return SolveResult::Sat;
            }
        }
    }

    /// [`Encoding::solve`] under work [`Bounds`].
    pub fn solve_bounded(&mut self, bounds: &Bounds) -> Result<SolveResult, ReasonError> {
        self.solve_bounded_with_assumptions(&[], bounds)
    }

    /// [`Encoding::solve_with_assumptions`] under work [`Bounds`]: the
    /// refinement loop and every SAT decision inside it check the budget
    /// and the deadline, surfacing [`ReasonError::Interrupted`] instead of
    /// running unbounded.  Interrupts never yield a wrong verdict, and all
    /// learnt state (learnt clauses *and* transitivity lemmas) survives
    /// them, so a retry resumes warm.
    pub fn solve_bounded_with_assumptions(
        &mut self,
        assumptions: &[Lit],
        bounds: &Bounds,
    ) -> Result<SolveResult, ReasonError> {
        if bounds.is_unbounded() {
            return Ok(self.solve_with_assumptions(assumptions));
        }
        let mut spent = Spent::default();
        loop {
            match self.solve_sat_bounded(assumptions, bounds, &mut spent)? {
                SolveResult::Unsat => return Ok(SolveResult::Unsat),
                SolveResult::Sat => {
                    if self.mode == TransitivityMode::Eager || self.refine_transitivity() == 0 {
                        return Ok(SolveResult::Sat);
                    }
                    // Lemmas installed; the next round's installment loop
                    // re-checks the deadline before re-solving.
                }
            }
        }
    }

    /// One raw SAT decision under `bounds`, run in conflict installments
    /// so the wall-clock deadline is consulted between installments
    /// rather than inside the search loop.  `spent` accumulates across
    /// installments (and across refinement rounds of one bounded call).
    fn solve_sat_bounded(
        &mut self,
        assumptions: &[Lit],
        bounds: &Bounds,
        spent: &mut Spent,
    ) -> Result<SolveResult, ReasonError> {
        loop {
            if bounds.expired() {
                return Err(ReasonError::Interrupted { spent: *spent });
            }
            let remaining = |max: Option<u64>, used: u64| -> Result<Option<u64>, ReasonError> {
                match max {
                    Some(m) if m > used => Ok(Some(m - used)),
                    Some(_) => Err(ReasonError::Interrupted { spent: *spent }),
                    None => Ok(None),
                }
            };
            let conflicts_left = remaining(bounds.limits.max_conflicts, spent.conflicts)?;
            let props_left = remaining(bounds.limits.max_props, spent.propagations)?;
            let chunk = if bounds.deadline.is_some() {
                Some(conflicts_left.unwrap_or(DEADLINE_CHUNK).min(DEADLINE_CHUNK))
            } else {
                conflicts_left
            };
            let limits = Limits {
                max_conflicts: chunk,
                max_props: props_left,
                stop: None,
            };
            let before = self.solver.stats();
            let outcome = self
                .solver
                .solve_limited_with_assumptions(assumptions, &limits);
            let after = self.solver.stats();
            spent.conflicts += after.conflicts - before.conflicts;
            spent.propagations += after.propagations - before.propagations;
            match outcome {
                SolveOutcome::Sat => return Ok(SolveResult::Sat),
                SolveOutcome::Unsat => return Ok(SolveResult::Unsat),
                // Installment exhausted: loop — either a budget really ran
                // out (the `remaining` checks above fire) or this was a
                // deadline chunk and the search resumes warm.
                SolveOutcome::Interrupted => {}
            }
        }
    }

    /// Closure-check the current model and install every violated
    /// triangle as a lemma; returns the number of lemmas added (0 ⇒ the
    /// model is transitive).
    ///
    /// Per group of `n` tuples the walk builds successor bitsets in
    /// `O(n²)` variable lookups and scans `succ(j) ∖ succ(i)` for every
    /// model edge `i → j` in `O(n²·⌈n/64⌉)` word operations — far below
    /// grounding cost, and the violated-triangle sets it yields are
    /// usually tiny (the first candidate model per group is already a
    /// total order unless constraints force reordering).
    fn refine_transitivity(&mut self) -> usize {
        let mut lemmas: Vec<[Lit; 3]> = Vec::new();
        for g in &self.lazy_groups {
            let n = g.tuples.len();
            let words = n.div_ceil(64);
            // succ[i] ∋ j ⇔ the model orders tuple i before tuple j.
            let mut succ = vec![0u64; n * words];
            for i in 0..n {
                for j in (i + 1)..n {
                    let lit = self
                        .order_lit(g.rel, g.attr, g.tuples[i], g.tuples[j])
                        .expect("lazy group pairs have order vars");
                    let fwd = self.solver.model_value(lit.var()) == lit.is_pos();
                    if fwd {
                        succ[i * words + j / 64] |= 1 << (j % 64);
                    } else {
                        succ[j * words + i / 64] |= 1 << (i % 64);
                    }
                }
            }
            // For each edge i → j, every k ∈ succ(j) ∖ succ(i) ∖ {i}
            // closes a violated triangle i → j → k with k → i.
            for i in 0..n {
                for wi in 0..words {
                    let mut js = succ[i * words + wi];
                    while js != 0 {
                        let j = wi * 64 + js.trailing_zeros() as usize;
                        js &= js - 1;
                        let ij = self
                            .order_lit(g.rel, g.attr, g.tuples[i], g.tuples[j])
                            .expect("same entity");
                        for w in 0..words {
                            let mut d = succ[j * words + w] & !succ[i * words + w];
                            if w == i / 64 {
                                d &= !(1u64 << (i % 64));
                            }
                            while d != 0 {
                                let k = w * 64 + d.trailing_zeros() as usize;
                                d &= d - 1;
                                let jk = self
                                    .order_lit(g.rel, g.attr, g.tuples[j], g.tuples[k])
                                    .expect("same entity");
                                let ik = self
                                    .order_lit(g.rel, g.attr, g.tuples[i], g.tuples[k])
                                    .expect("same entity");
                                lemmas.push([!ij, !jk, ik]);
                            }
                        }
                    }
                }
            }
        }
        for lemma in &lemmas {
            self.solver.add_lemma(lemma);
        }
        lemmas.len()
    }

    /// Enumerate models projected onto `projection` (see
    /// [`Solver::for_each_model`]), using mode-aware solving so that in
    /// lazy mode every reported model has passed the closure check.
    ///
    /// Blocking clauses permanently constrain this encoding; callers that
    /// need to reuse it should enumerate on a clone.
    pub fn for_each_model(
        &mut self,
        projection: &[Var],
        limit: usize,
        f: impl FnMut(&[bool]) -> bool,
    ) -> Enumeration {
        enumerate_projected(self, projection, limit, f)
    }

    /// [`Encoding::for_each_model`] under work [`Bounds`]: each solve of
    /// the All-SAT loop is bounded, and a budget exhaustion or deadline
    /// expiry surfaces as [`ReasonError::Interrupted`] (the models already
    /// delivered to `f` were real, but the space was not exhausted).
    ///
    /// The per-solve budget applies to each model-finding solve
    /// individually; the deadline bounds the enumeration as a whole.
    pub fn for_each_model_bounded(
        &mut self,
        projection: &[Var],
        limit: usize,
        bounds: &Bounds,
        f: impl FnMut(&[bool]) -> bool,
    ) -> Result<Enumeration, ReasonError> {
        if bounds.is_unbounded() {
            return Ok(self.for_each_model(projection, limit, f));
        }
        let mut src = BoundedSource {
            enc: self,
            bounds: *bounds,
            interrupted: None,
        };
        let e = enumerate_projected(&mut src, projection, limit, f);
        match e {
            Enumeration::Interrupted(_) => {
                Err(src.interrupted.take().expect("interrupt was recorded"))
            }
            done => Ok(done),
        }
    }

    /// The value-indicator projection (for [`Encoding::for_each_model`]).
    pub fn value_projection(&self) -> &[Var] {
        &self.value_projection
    }

    /// The relations whose current values are encoded.
    pub fn value_rels(&self) -> &[RelId] {
        &self.value_rels
    }

    /// Reconstruct the current instances of the encoded relations from a
    /// projected model (as delivered by `for_each_model` over
    /// [`Encoding::value_projection`]).
    ///
    /// A scoped encoding reports rows for its own entities only.
    pub fn decode_current_instances(
        &self,
        spec: &Specification,
        projected: &[bool],
    ) -> Vec<NormalInstance> {
        self.value_rels
            .iter()
            .map(|&rel| {
                let mut out = NormalInstance::new(rel);
                for eid in self.entities_in_scope(spec, rel) {
                    out.push(Tuple::new(
                        eid,
                        self.decode_entity_row(spec, rel, eid, |ix| projected[ix]),
                    ));
                }
                out
            })
            .collect()
    }

    fn decode_entity_row(
        &self,
        spec: &Specification,
        rel: RelId,
        eid: Eid,
        indicator: impl Fn(usize) -> bool,
    ) -> Vec<Value> {
        let inst = spec.instance(rel);
        (0..inst.arity())
            .map(|a| {
                let attr = AttrId(a as u32);
                match self
                    .value_choices
                    .get(&(rel, eid, attr))
                    .expect("cell encoded")
                {
                    ValueChoice::Fixed(v) => v.clone(),
                    ValueChoice::Choice(options) => options
                        .iter()
                        .find(|(_, ix)| indicator(*ix))
                        .map(|(v, _)| v.clone())
                        .expect("exactly one value indicator true"),
                }
            })
            .collect()
    }

    /// The subset of [`Encoding::value_projection`] belonging to `rels`:
    /// parallel vectors of full-projection indices and their variables,
    /// sorted by index.  Model enumeration restricted to one relation
    /// projects onto these variables so that order differences in *other*
    /// relations do not multiply the model count.
    pub fn restricted_projection(&self, rels: &[RelId]) -> (Vec<usize>, Vec<Var>) {
        let mut indices: Vec<usize> = Vec::new();
        for ((rel, _, _), choice) in &self.value_choices {
            if !rels.contains(rel) {
                continue;
            }
            if let ValueChoice::Choice(options) = choice {
                indices.extend(options.iter().map(|(_, ix)| *ix));
            }
        }
        indices.sort_unstable();
        indices.dedup();
        let vars = indices
            .iter()
            .map(|&ix| self.value_projection[ix])
            .collect();
        (indices, vars)
    }

    /// Decode the current rows of `rels` for this encoding's entities from
    /// a model projected onto a restricted projection (as returned by
    /// [`Encoding::restricted_projection`]): `indices[k]` is the full
    /// projection index of `values[k]`.
    pub fn decode_restricted(
        &self,
        spec: &Specification,
        rels: &[RelId],
        indices: &[usize],
        values: &[bool],
    ) -> Vec<(RelId, Tuple)> {
        debug_assert_eq!(indices.len(), values.len());
        let mut out = Vec::new();
        for &rel in rels {
            for eid in self.entities_in_scope(spec, rel) {
                let row = self.decode_entity_row(spec, rel, eid, |ix| {
                    indices
                        .binary_search(&ix)
                        .map(|pos| values[pos])
                        .unwrap_or(false)
                });
                out.push((rel, Tuple::new(eid, row)));
            }
        }
        out
    }

    /// The per-attribute chains of this encoding's entities under the
    /// solver's current model (valid after a `Sat` result from
    /// [`Encoding::solve`]): entries are `(rel, attr, eid, chain)` with
    /// the chain ordered least → most current.  The engine merges chains
    /// across components to assemble a full [`Completion`].
    ///
    /// Unreferenced attributes have no order variables; their groups come
    /// back in tuple-id order, which is a valid chain because nothing in
    /// scope constrains them.
    pub fn model_chains(&self, spec: &Specification) -> Vec<(RelId, AttrId, Eid, Vec<TupleId>)> {
        let mut out = Vec::new();
        for inst in spec.instances() {
            let rel = inst.rel();
            for a in 0..inst.arity() {
                let attr = AttrId(a as u32);
                for eid in self.entities_in_scope(spec, rel) {
                    let group = inst.entity_group(eid);
                    // Count predecessors of each tuple under the model: in
                    // a total order this equals the tuple's position, which
                    // avoids relying on sort-comparator transitivity.
                    let mut rank: Vec<(usize, TupleId)> = group
                        .iter()
                        .map(|&t| {
                            let preds = group
                                .iter()
                                .filter(|&&u| u != t && self.model_precedes(rel, attr, u, t))
                                .count();
                            (preds, t)
                        })
                        .collect();
                    rank.sort_unstable();
                    out.push((rel, attr, eid, rank.into_iter().map(|(_, t)| t).collect()));
                }
            }
        }
        out
    }

    /// Decode the full completion witnessed by the solver's current model
    /// (valid after a `Sat` result from [`Encoding::solve`]).
    ///
    /// Only meaningful on an unscoped encoding — a component encoding
    /// covers a subset of the entities and cannot produce chains for the
    /// rest (use [`Encoding::model_chains`] and assemble instead).
    pub fn decode_completion(&self, spec: &Specification) -> Result<Completion, CurrencyError> {
        debug_assert!(self.scope.is_none(), "decode_completion needs full scope");
        let mut chains: BTreeMap<RelId, Vec<BTreeMap<Eid, Vec<TupleId>>>> = spec
            .instances()
            .iter()
            .map(|inst| (inst.rel(), vec![BTreeMap::new(); inst.arity()]))
            .collect();
        for (rel, attr, eid, chain) in self.model_chains(spec) {
            chains.get_mut(&rel).expect("known relation")[attr.index()].insert(eid, chain);
        }
        let rels: Result<Vec<RelCompletion>, CurrencyError> = spec
            .instances()
            .iter()
            .map(|inst| {
                RelCompletion::new(
                    inst,
                    chains.remove(&inst.rel()).expect("chains per relation"),
                )
            })
            .collect();
        Ok(Completion::new(rels?))
    }

    fn model_precedes(&self, rel: RelId, attr: AttrId, u: TupleId, v: TupleId) -> bool {
        match self.order_lit(rel, attr, u, v) {
            Some(l) => {
                let val = self.solver.model_value(l.var());
                if l.is_pos() {
                    val
                } else {
                    !val
                }
            }
            None => false,
        }
    }

    // ------------------------------------------------------------------
    // Construction passes
    // ------------------------------------------------------------------

    /// The in-scope `(rel, attr, group)` triples of referenced attributes
    /// — the O(cells × arity) worklist the quadratic/cubic construction
    /// passes iterate so they can mutate `self` without holding the
    /// `groups_in_scope` borrow.
    fn referenced_groups(
        &self,
        spec: &Specification,
        referenced: &BTreeSet<(RelId, AttrId)>,
    ) -> Vec<(RelId, AttrId, Vec<TupleId>)> {
        let mut out = Vec::new();
        for (rel, _, group) in self.groups_in_scope(spec) {
            let arity = spec.instance(rel).arity();
            for a in 0..arity {
                let attr = AttrId(a as u32);
                if referenced.contains(&(rel, attr)) {
                    out.push((rel, attr, group.to_vec()));
                }
            }
        }
        out
    }

    fn alloc_order_vars(&mut self, spec: &Specification, referenced: &BTreeSet<(RelId, AttrId)>) {
        for (rel, attr, group) in self.referenced_groups(spec, referenced) {
            for i in 0..group.len() {
                for j in (i + 1)..group.len() {
                    let (u, v) = (group[i].min(group[j]), group[i].max(group[j]));
                    let var = self.solver.new_var();
                    self.order_vars.insert((rel, attr, u, v), var);
                }
            }
        }
    }

    fn add_transitivity(&mut self, spec: &Specification, referenced: &BTreeSet<(RelId, AttrId)>) {
        // Iterate an owned O(cells) group list, not groups_in_scope
        // directly: the cubic clause stream is added straight to the
        // solver instead of being buffered alongside the borrow.
        for (rel, attr, group) in self.referenced_groups(spec, referenced) {
            let n = group.len();
            for i in 0..n {
                for j in 0..n {
                    for k in 0..n {
                        if i == j || j == k || i == k {
                            continue;
                        }
                        let (x, y, z) = (group[i], group[j], group[k]);
                        let xy = self.order_lit(rel, attr, x, y).expect("same entity");
                        let yz = self.order_lit(rel, attr, y, z).expect("same entity");
                        let xz = self.order_lit(rel, attr, x, z).expect("same entity");
                        self.solver.add_clause(&[!xy, !yz, xz]);
                    }
                }
            }
        }
    }

    /// Record the groups whose closure the lazy refinement loop checks.
    fn collect_lazy_groups(
        &mut self,
        spec: &Specification,
        referenced: &BTreeSet<(RelId, AttrId)>,
    ) {
        self.lazy_groups = self
            .referenced_groups(spec, referenced)
            // Groups of < 3 tuples have no triangles to violate.
            .into_iter()
            .filter(|(_, _, tuples)| tuples.len() >= 3)
            .map(|(rel, attr, tuples)| LazyGroup { rel, attr, tuples })
            .collect();
    }

    fn add_initial_orders(&mut self, spec: &Specification) {
        match self.scope.clone() {
            None => {
                for inst in spec.instances() {
                    let rel = inst.rel();
                    for a in 0..inst.arity() {
                        let attr = AttrId(a as u32);
                        for (u, v) in inst.order(attr).iter() {
                            let lit = self
                                .order_lit(rel, attr, u, v)
                                .expect("validated: same entity, irreflexive");
                            self.solver.add_clause(&[lit]);
                        }
                    }
                }
            }
            // Scoped: range-scan each scope group's outgoing pairs rather
            // than filtering every relation's full pair set.
            Some(cells) => {
                for (rel, eid) in cells {
                    let inst = spec.instance(rel);
                    for a in 0..inst.arity() {
                        let attr = AttrId(a as u32);
                        for &t in inst.entity_group(eid) {
                            for (u, v) in inst.order(attr).pairs_from(t) {
                                let lit = self
                                    .order_lit(rel, attr, u, v)
                                    .expect("validated: same entity, irreflexive");
                                self.solver.add_clause(&[lit]);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Add the clause of one ground denial rule:
    /// `¬p₁ ∨ … ∨ ¬pₘ ∨ c` (falsum conclusions drop `c`).
    fn add_ground_rule(&mut self, rel: RelId, rule: &currency_core::GroundRule) {
        let mut clause: Vec<Lit> = Vec::with_capacity(rule.premises.len() + 1);
        for p in &rule.premises {
            let l = self
                .order_lit(rel, p.attr, p.lesser, p.greater)
                .expect("ground premises are same-entity, irreflexive, in scope");
            clause.push(!l);
        }
        if let Some(c) = &rule.conclusion {
            let l = self
                .order_lit(rel, c.attr, c.lesser, c.greater)
                .expect("ground conclusion is same-entity and in scope");
            clause.push(l);
        }
        self.solver.add_clause(&clause);
    }

    /// Add the binary implication of one copy-compatibility obligation:
    /// `s₁≺s₂ → t₁≺t₂`.
    fn add_obligation(
        &mut self,
        source_rel: RelId,
        src_edge: &currency_core::OrderEdge,
        target_rel: RelId,
        tgt_edge: &currency_core::OrderEdge,
    ) {
        let sl = self
            .order_lit(source_rel, src_edge.attr, src_edge.lesser, src_edge.greater)
            .expect("obligation endpoints share an entity in scope");
        let tl = self
            .order_lit(target_rel, tgt_edge.attr, tgt_edge.lesser, tgt_edge.greater)
            .expect("obligation endpoints share an entity in scope");
        self.solver.add_clause(&[!sl, tl]);
    }

    fn add_value_indicators(&mut self, spec: &Specification, rel: RelId) {
        let inst = spec.instance(rel);
        // Collect groups first to avoid borrowing `inst` across mutations;
        // a scoped encoding walks its own (few) cells via a range scan
        // instead of filtering every entity of the relation.
        let groups: Vec<(Eid, Vec<TupleId>)> = self
            .entities_in_scope(spec, rel)
            .map(|eid| (eid, inst.entity_group(eid).to_vec()))
            .collect();
        for (eid, group) in groups {
            for a in 0..inst.arity() {
                let attr = AttrId(a as u32);
                // Distinct values of the attribute within the group, with
                // the tuples holding each value.
                let mut by_value: BTreeMap<Value, Vec<TupleId>> = BTreeMap::new();
                for &t in &group {
                    by_value
                        .entry(inst.tuple(t).value(attr).clone())
                        .or_default()
                        .push(t);
                }
                if by_value.len() == 1 {
                    let v = by_value.into_keys().next().expect("one value");
                    self.value_choices
                        .insert((rel, eid, attr), ValueChoice::Fixed(v));
                    continue;
                }
                // Max indicators m_t ⇔ ⋀_{t'≠t} t' ≺ t.
                let mut max_var: BTreeMap<TupleId, Var> = BTreeMap::new();
                for &t in &group {
                    let m = self.solver.new_var();
                    max_var.insert(t, m);
                    let mut closure_clause: Vec<Lit> = vec![m.pos()];
                    for &u in &group {
                        if u == t {
                            continue;
                        }
                        let below = self.order_lit(rel, attr, u, t).expect("same entity");
                        // m → u ≺ t
                        self.solver.add_clause(&[m.neg(), below]);
                        // collect for (⋀ u≺t) → m
                        closure_clause.push(!below);
                    }
                    self.solver.add_clause(&closure_clause);
                }
                // Value indicators y_v ⇔ ⋁_{t[A]=v} m_t.
                let mut options: Vec<(Value, usize)> = Vec::new();
                for (value, holders) in by_value {
                    let y = self.solver.new_var();
                    let ix = self.value_projection.len();
                    self.value_projection.push(y);
                    options.push((value, ix));
                    let mut def: Vec<Lit> = vec![y.neg()];
                    for &t in &holders {
                        let m = max_var[&t];
                        // m_t → y
                        self.solver.add_clause(&[m.neg(), y.pos()]);
                        def.push(m.pos());
                    }
                    // y → ⋁ m_t
                    self.solver.add_clause(&def);
                }
                self.value_choices
                    .insert((rel, eid, attr), ValueChoice::Choice(options));
            }
        }
        // Cells of entities with uniform values across every attribute are
        // inserted above; nothing else to do.
    }
}

/// Mode-aware model source: `solve` runs the lazy refinement loop, so
/// the shared enumeration protocol ([`enumerate_projected`]) only ever
/// sees closure-checked models.
impl ModelSource for Encoding {
    fn solve(&mut self) -> SolveOutcome {
        Encoding::solve(self).into()
    }

    fn model_value(&self, v: Var) -> bool {
        self.solver.model_value(v)
    }

    fn block(&mut self, clause: &[Lit]) -> bool {
        self.solver.add_clause(clause)
    }
}

/// A [`ModelSource`] that answers each solve under [`Bounds`], recording
/// the typed interrupt so [`Encoding::for_each_model_bounded`] can
/// re-raise it once [`enumerate_projected`] unwinds.
struct BoundedSource<'e> {
    enc: &'e mut Encoding,
    bounds: Bounds,
    interrupted: Option<ReasonError>,
}

impl ModelSource for BoundedSource<'_> {
    fn solve(&mut self) -> SolveOutcome {
        match self.enc.solve_bounded_with_assumptions(&[], &self.bounds) {
            Ok(SolveResult::Sat) => SolveOutcome::Sat,
            Ok(SolveResult::Unsat) => SolveOutcome::Unsat,
            Err(e) => {
                self.interrupted = Some(e);
                SolveOutcome::Interrupted
            }
        }
    }

    fn model_value(&self, v: Var) -> bool {
        self.enc.solver.model_value(v)
    }

    fn block(&mut self, clause: &[Lit]) -> bool {
        self.enc.solver.add_clause(clause)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use currency_core::{Catalog, CmpOp, DenialConstraint, RelationSchema, Term};
    use currency_sat::SolveResult;

    const A: AttrId = AttrId(0);

    fn salary_spec() -> (Specification, RelId, TupleId, TupleId) {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["salary"]));
        let mut spec = Specification::new(cat);
        let t0 = spec
            .instance_mut(r)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(50)]))
            .unwrap();
        let t1 = spec
            .instance_mut(r)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(80)]))
            .unwrap();
        (spec, r, t0, t1)
    }

    fn monotone(r: RelId) -> DenialConstraint {
        DenialConstraint::builder(r, 2)
            .when_cmp(Term::attr(0, A), CmpOp::Gt, Term::attr(1, A))
            .then_order(1, A, 0)
            .build()
            .unwrap()
    }

    #[test]
    fn unconstrained_pair_is_sat_both_ways() {
        let (spec, r, t0, t1) = salary_spec();
        // Value indicators reference the attribute (distinct values), so
        // its pair variable exists despite the absence of constraints.
        let mut enc = Encoding::new(&spec, &[r]).unwrap();
        assert_eq!(enc.solve(), SolveResult::Sat);
        let l = enc.order_lit(r, A, t0, t1).unwrap();
        assert_eq!(enc.solve_with_assumptions(&[l]), SolveResult::Sat);
        assert_eq!(enc.solve_with_assumptions(&[!l]), SolveResult::Sat);
    }

    #[test]
    fn denial_constraint_forces_direction() {
        let (mut spec, r, t0, t1) = salary_spec();
        spec.add_constraint(monotone(r)).unwrap();
        let mut enc = Encoding::new(&spec, &[]).unwrap();
        let l = enc.order_lit(r, A, t0, t1).unwrap();
        // t0 (50) must precede t1 (80).
        assert_eq!(enc.solve_with_assumptions(&[!l]), SolveResult::Unsat);
        assert_eq!(enc.solve_with_assumptions(&[l]), SolveResult::Sat);
    }

    #[test]
    fn contradictory_initial_orders_are_unsat() {
        let (mut spec, r, t0, t1) = salary_spec();
        spec.instance_mut(r).add_order(A, t0, t1).unwrap();
        spec.instance_mut(r).add_order(A, t1, t0).unwrap();
        // validate() rejects the cyclic order before encoding.
        assert!(Encoding::new(&spec, &[]).is_err());
    }

    fn three_tuple_spec() -> (Specification, RelId, Vec<TupleId>) {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A"]));
        let mut spec = Specification::new(cat);
        let ts: Vec<TupleId> = (0..3)
            .map(|i| {
                spec.instance_mut(r)
                    .push_tuple(Tuple::new(Eid(1), vec![Value::int(i)]))
                    .unwrap()
            })
            .collect();
        (spec, r, ts)
    }

    #[test]
    fn transitivity_is_enforced_in_both_modes() {
        for mode in [TransitivityMode::Eager, TransitivityMode::Lazy] {
            let (spec, r, ts) = three_tuple_spec();
            // Value indicators reference the attribute (three distinct
            // values), so the order variables exist.
            let mut enc = Encoding::with_mode(&spec, &[r], mode).unwrap();
            assert_eq!(enc.mode(), mode);
            let l01 = enc.order_lit(r, A, ts[0], ts[1]).unwrap();
            let l12 = enc.order_lit(r, A, ts[1], ts[2]).unwrap();
            let l20 = enc.order_lit(r, A, ts[2], ts[0]).unwrap();
            // A directed cycle must be unsatisfiable.
            assert_eq!(
                enc.solve_with_assumptions(&[l01, l12, l20]),
                SolveResult::Unsat,
                "{mode:?}"
            );
            assert_eq!(
                enc.solve_with_assumptions(&[l01, l12, !l20]),
                SolveResult::Sat,
                "{mode:?}"
            );
        }
    }

    #[test]
    fn lazy_mode_grounds_fewer_clauses_and_reports_lemmas() {
        let (spec, r, _) = three_tuple_spec();
        let mut eager = Encoding::with_mode(&spec, &[r], TransitivityMode::Eager).unwrap();
        let mut lazy = Encoding::with_mode(&spec, &[r], TransitivityMode::Lazy).unwrap();
        assert_eq!(
            eager.num_vars(),
            lazy.num_vars(),
            "variable allocation is mode-independent"
        );
        assert!(lazy.num_clauses() < eager.num_clauses());
        assert_eq!(eager.solve(), SolveResult::Sat);
        assert_eq!(lazy.solve(), SolveResult::Sat);
        // The cycle check forces refinement work at some point.
        let l01 = lazy.order_lit(r, A, TupleId(0), TupleId(1)).unwrap();
        let l12 = lazy.order_lit(r, A, TupleId(1), TupleId(2)).unwrap();
        let l20 = lazy.order_lit(r, A, TupleId(2), TupleId(0)).unwrap();
        assert_eq!(
            lazy.solve_with_assumptions(&[l01, l12, l20]),
            SolveResult::Unsat
        );
        assert!(
            lazy.solver_stats().lemmas_added > 0,
            "refuting a cycle requires triangle lemmas"
        );
    }

    #[test]
    fn unreferenced_attributes_get_no_order_vars() {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A", "B"]));
        let mut spec = Specification::new(cat);
        let t0 = spec
            .instance_mut(r)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(1), Value::int(7)]))
            .unwrap();
        let t1 = spec
            .instance_mut(r)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(2), Value::int(7)]))
            .unwrap();
        // Constraint touches attribute A only; B is uniform, so with no
        // value relations nothing references either attribute except A.
        spec.add_constraint(monotone(r)).unwrap();
        let enc = Encoding::new(&spec, &[]).unwrap();
        assert_eq!(enc.num_vars(), 1, "one pair on A, none on B");
        assert!(enc.order_lit(r, A, t0, t1).is_some());
        assert!(enc.order_lit(r, AttrId(1), t0, t1).is_none());
        // With value indicators, the uniform B still needs no vars.
        let enc2 = Encoding::new(&spec, &[r]).unwrap();
        assert!(enc2.order_lit(r, AttrId(1), t0, t1).is_none());
    }

    #[test]
    fn fully_unconstrained_spec_encodes_to_nothing() {
        let (spec, r, t0, t1) = salary_spec();
        let mut enc = Encoding::new(&spec, &[]).unwrap();
        assert_eq!(enc.num_vars(), 0);
        assert_eq!(enc.solve(), SolveResult::Sat);
        assert!(enc.order_lit(r, A, t0, t1).is_none());
    }

    #[test]
    fn order_lit_orientation() {
        let (spec, r, t0, t1) = salary_spec();
        let enc = Encoding::new(&spec, &[r]).unwrap();
        let fwd = enc.order_lit(r, A, t0, t1).unwrap();
        let bwd = enc.order_lit(r, A, t1, t0).unwrap();
        assert_eq!(fwd, !bwd);
        assert!(enc.order_lit(r, A, t0, t0).is_none());
    }

    #[test]
    fn value_indicators_enumerate_current_instances() {
        let (spec, r, _, _) = salary_spec();
        let mut enc = Encoding::new(&spec, &[r]).unwrap();
        assert_eq!(enc.value_projection().len(), 2, "two candidate values");
        let projection = enc.value_projection().to_vec();
        let mut outcomes = Vec::new();
        enc.for_each_model(&projection, 100, |m| {
            outcomes.push(m.to_vec());
            true
        });
        // Unconstrained: both 50 and 80 can be the current salary.
        assert_eq!(outcomes.len(), 2);
        for m in &outcomes {
            assert_eq!(m.iter().filter(|&&b| b).count(), 1);
        }
    }

    #[test]
    fn lazy_enumeration_matches_eager() {
        // Three distinct values, monotone constraint: exactly one current
        // instance; without the constraint: three.
        for constrained in [false, true] {
            let (mut spec, r, _) = three_tuple_spec();
            if constrained {
                spec.add_constraint(monotone(r)).unwrap();
            }
            let mut counts = Vec::new();
            for mode in [TransitivityMode::Eager, TransitivityMode::Lazy] {
                let mut enc = Encoding::with_mode(&spec, &[r], mode).unwrap();
                let projection = enc.value_projection().to_vec();
                let mut models = Vec::new();
                enc.for_each_model(&projection, 100, |m| {
                    models.push(m.to_vec());
                    true
                });
                models.sort();
                counts.push(models);
            }
            assert_eq!(counts[0], counts[1], "constrained = {constrained}");
        }
    }

    #[test]
    fn decode_current_instance_respects_constraints() {
        let (mut spec, r, _, _) = salary_spec();
        spec.add_constraint(monotone(r)).unwrap();
        let mut enc = Encoding::new(&spec, &[r]).unwrap();
        let projection = enc.value_projection().to_vec();
        let mut instances = Vec::new();
        enc.for_each_model(&projection, 100, |m| {
            instances.push(m.to_vec());
            true
        });
        assert_eq!(instances.len(), 1, "constraint pins the current value");
        let dbs = enc.decode_current_instances(&spec, &instances[0]);
        assert_eq!(dbs.len(), 1);
        assert!(dbs[0].contains(&Tuple::new(Eid(1), vec![Value::int(80)])));
    }

    #[test]
    fn decode_completion_is_consistent() {
        for mode in [TransitivityMode::Eager, TransitivityMode::Lazy] {
            let (mut spec, r, t0, t1) = salary_spec();
            spec.add_constraint(monotone(r)).unwrap();
            let mut enc = Encoding::with_mode(&spec, &[], mode).unwrap();
            assert_eq!(enc.solve(), SolveResult::Sat);
            let completion = enc.decode_completion(&spec).unwrap();
            assert!(completion.is_consistent_for(&spec), "{mode:?}");
            assert!(completion.rel(r).precedes(A, t0, t1), "{mode:?}");
        }
    }

    #[test]
    fn uniform_value_groups_need_no_indicators() {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A"]));
        let mut spec = Specification::new(cat);
        for _ in 0..3 {
            spec.instance_mut(r)
                .push_tuple(Tuple::new(Eid(1), vec![Value::int(7)]))
                .unwrap();
        }
        let enc = Encoding::new(&spec, &[r]).unwrap();
        assert!(enc.value_projection().is_empty());
        let dbs = enc.decode_current_instances(&spec, &[]);
        assert!(dbs[0].contains(&Tuple::new(Eid(1), vec![Value::int(7)])));
    }
}
