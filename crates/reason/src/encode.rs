//! SAT encoding of specifications.
//!
//! A consistent completion of a specification is encoded as a model of a
//! CNF formula over *order variables*:
//!
//! * for every relation, attribute `A`, entity and unordered pair `{u, v}`
//!   of the entity's tuples there is one Boolean variable whose truth
//!   means `u ≺_A v` (its falsity means `v ≺_A u`) — totality and
//!   antisymmetry are therefore structural, not clausal;
//! * transitivity is grounded per entity group: for each ordered triple
//!   `(x, y, z)`, the clause `x≺y ∧ y≺z → x≺z`;
//! * the initial partial orders contribute unit clauses;
//! * every ground rule of every denial constraint contributes the clause
//!   `¬p₁ ∨ … ∨ ¬pₘ ∨ c` (falsum conclusions drop `c`);
//! * every ≺-compatibility obligation of every copy function contributes
//!   the binary implication `s₁≺s₂ → t₁≺t₂`.
//!
//! Models of this CNF are exactly the consistent completions of the
//! specification (`Mod(S)`), so CPS is one `solve()` call and COP is an
//! entailment query under one assumption.
//!
//! For the current-instance problems (DCIP, CCQA) the encoding can
//! additionally materialize, per `(relation, entity, attribute)`:
//!
//! * *max indicators* `m_t ⇔ ⋀_{t'≠t} t'≺t` — `t` holds the most current
//!   value, and
//! * *value indicators* `y_v ⇔ ⋁_{t : t[A]=v} m_t` — the most current
//!   value is `v`.
//!
//! Projected All-SAT over the value indicators enumerates exactly the
//! realizable current instances, collapsing the (huge) completion space to
//! the (small) space of distinct `LST` outcomes.

use crate::partition::Component;
use currency_core::{
    AttrId, Completion, CurrencyError, Eid, NormalInstance, RelCompletion, RelId, Specification,
    Tuple, TupleId, Value,
};
use currency_sat::{Lit, Solver, Var};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// How the current value of one `(relation, entity, attribute)` cell is
/// represented in the encoding.
#[derive(Clone, Debug)]
pub enum ValueChoice {
    /// Every completion yields this value (single tuple, or all tuples of
    /// the entity agree on the attribute).
    Fixed(Value),
    /// The value is decided by the model: list of `(value, index into
    /// [`Encoding::value_projection`])`; exactly one indicator is true in
    /// any model.
    Choice(Vec<(Value, usize)>),
}

/// A specification compiled to CNF (see module docs).
///
/// An encoding covers either the whole specification
/// ([`Encoding::new`]) or one entity component of it
/// ([`Encoding::for_component`]): the scoped form contains exactly the
/// order variables, clauses, and value indicators of its component's
/// `(relation, entity)` cells, and its decode methods report rows and
/// chains for those cells only.
#[derive(Clone, Debug)]
pub struct Encoding {
    /// The solver loaded with the specification's clauses.
    pub solver: Solver,
    /// `(rel, attr, u, v)` with `u < v` → order variable (`true` ⇔ `u ≺ v`).
    order_vars: HashMap<(RelId, AttrId, TupleId, TupleId), Var>,
    /// Current-value representation per encoded cell.
    value_choices: BTreeMap<(RelId, Eid, AttrId), ValueChoice>,
    /// Projection variables for All-SAT over current instances.
    value_projection: Vec<Var>,
    /// Relations whose current values are encoded.
    value_rels: Vec<RelId>,
    /// `(relation, entity)` cells covered; `None` = the whole spec.
    scope: Option<BTreeSet<(RelId, Eid)>>,
}

impl Encoding {
    /// Compile `spec`.  `value_rels` lists the relations whose current
    /// instances must be enumerable (pass `&[]` for pure CPS/COP use).
    ///
    /// Fails if the specification is structurally invalid
    /// ([`Specification::validate`]).
    pub fn new(spec: &Specification, value_rels: &[RelId]) -> Result<Encoding, CurrencyError> {
        spec.validate()?;
        let mut enc = Encoding::empty(value_rels, None);
        enc.alloc_order_vars(spec);
        enc.add_transitivity(spec);
        enc.add_initial_orders(spec);
        for dc in spec.constraints() {
            let inst = spec.instance(dc.rel());
            for rule in dc.ground(inst) {
                enc.add_ground_rule(dc.rel(), &rule);
            }
        }
        for cf in spec.copies() {
            let sig = cf.signature();
            let target = spec.instance(sig.target);
            let source = spec.instance(sig.source);
            for (src_edge, tgt_edge) in cf.compatibility_obligations(target, source) {
                enc.add_obligation(sig.source, &src_edge, sig.target, &tgt_edge);
            }
        }
        for &rel in value_rels {
            enc.add_value_indicators(spec, rel);
        }
        Ok(enc)
    }

    /// Compile one entity component of `spec` (see [`crate::partition`]).
    ///
    /// The component carries its ground rules and obligations, so no
    /// grounding work is repeated per component.  The caller is expected
    /// to have validated the specification once.
    pub fn for_component(
        spec: &Specification,
        value_rels: &[RelId],
        component: &Component,
    ) -> Encoding {
        let mut enc = Encoding::empty(value_rels, Some(component.cells.clone()));
        enc.alloc_order_vars(spec);
        enc.add_transitivity(spec);
        enc.add_initial_orders(spec);
        for r in &component.rules {
            enc.add_ground_rule(r.rel, &r.rule);
        }
        for ob in &component.obligations {
            enc.add_obligation(
                ob.source_rel,
                &ob.source_edge,
                ob.target_rel,
                &ob.target_edge,
            );
        }
        for &rel in value_rels {
            enc.add_value_indicators(spec, rel);
        }
        enc
    }

    fn empty(value_rels: &[RelId], scope: Option<BTreeSet<(RelId, Eid)>>) -> Encoding {
        Encoding {
            solver: Solver::new(),
            order_vars: HashMap::new(),
            value_choices: BTreeMap::new(),
            value_projection: Vec::new(),
            value_rels: value_rels.to_vec(),
            scope,
        }
    }

    /// `true` if the `(rel, eid)` cell belongs to this encoding.
    fn in_scope(&self, rel: RelId, eid: Eid) -> bool {
        self.scope
            .as_ref()
            .is_none_or(|cells| cells.contains(&(rel, eid)))
    }

    /// This encoding's entities of `rel`.  A scoped encoding walks its own
    /// (few) cells via a range scan instead of filtering every entity of
    /// the relation — decode cost then scales with the component, not the
    /// specification.
    fn entities_in_scope<'s>(
        &'s self,
        spec: &'s Specification,
        rel: RelId,
    ) -> Box<dyn Iterator<Item = Eid> + 's> {
        match &self.scope {
            Some(cells) => Box::new(
                cells
                    .range((rel, Eid(u64::MIN))..=(rel, Eid(u64::MAX)))
                    .map(|&(_, eid)| eid),
            ),
            None => Box::new(spec.instance(rel).entities()),
        }
    }

    /// The literal asserting `lesser ≺_attr greater`, if the pair is
    /// same-entity (and thus has a variable).
    pub fn order_lit(
        &self,
        rel: RelId,
        attr: AttrId,
        lesser: TupleId,
        greater: TupleId,
    ) -> Option<Lit> {
        if lesser == greater {
            return None;
        }
        let (a, b, positive) = if lesser < greater {
            (lesser, greater, true)
        } else {
            (greater, lesser, false)
        };
        self.order_vars
            .get(&(rel, attr, a, b))
            .map(|v| v.lit(positive))
    }

    /// The value-indicator projection (for [`Solver::for_each_model`]).
    pub fn value_projection(&self) -> &[Var] {
        &self.value_projection
    }

    /// The relations whose current values are encoded.
    pub fn value_rels(&self) -> &[RelId] {
        &self.value_rels
    }

    /// Reconstruct the current instances of the encoded relations from a
    /// projected model (as delivered by `for_each_model` over
    /// [`Encoding::value_projection`]).
    ///
    /// A scoped encoding reports rows for its own entities only.
    pub fn decode_current_instances(
        &self,
        spec: &Specification,
        projected: &[bool],
    ) -> Vec<NormalInstance> {
        self.value_rels
            .iter()
            .map(|&rel| {
                let mut out = NormalInstance::new(rel);
                for eid in self.entities_in_scope(spec, rel) {
                    out.push(Tuple::new(
                        eid,
                        self.decode_entity_row(spec, rel, eid, |ix| projected[ix]),
                    ));
                }
                out
            })
            .collect()
    }

    fn decode_entity_row(
        &self,
        spec: &Specification,
        rel: RelId,
        eid: Eid,
        indicator: impl Fn(usize) -> bool,
    ) -> Vec<Value> {
        let inst = spec.instance(rel);
        (0..inst.arity())
            .map(|a| {
                let attr = AttrId(a as u32);
                match self
                    .value_choices
                    .get(&(rel, eid, attr))
                    .expect("cell encoded")
                {
                    ValueChoice::Fixed(v) => v.clone(),
                    ValueChoice::Choice(options) => options
                        .iter()
                        .find(|(_, ix)| indicator(*ix))
                        .map(|(v, _)| v.clone())
                        .expect("exactly one value indicator true"),
                }
            })
            .collect()
    }

    /// The subset of [`Encoding::value_projection`] belonging to `rels`:
    /// parallel vectors of full-projection indices and their variables,
    /// sorted by index.  Model enumeration restricted to one relation
    /// projects onto these variables so that order differences in *other*
    /// relations do not multiply the model count.
    pub fn restricted_projection(&self, rels: &[RelId]) -> (Vec<usize>, Vec<Var>) {
        let mut indices: Vec<usize> = Vec::new();
        for ((rel, _, _), choice) in &self.value_choices {
            if !rels.contains(rel) {
                continue;
            }
            if let ValueChoice::Choice(options) = choice {
                indices.extend(options.iter().map(|(_, ix)| *ix));
            }
        }
        indices.sort_unstable();
        indices.dedup();
        let vars = indices
            .iter()
            .map(|&ix| self.value_projection[ix])
            .collect();
        (indices, vars)
    }

    /// Decode the current rows of `rels` for this encoding's entities from
    /// a model projected onto a restricted projection (as returned by
    /// [`Encoding::restricted_projection`]): `indices[k]` is the full
    /// projection index of `values[k]`.
    pub fn decode_restricted(
        &self,
        spec: &Specification,
        rels: &[RelId],
        indices: &[usize],
        values: &[bool],
    ) -> Vec<(RelId, Tuple)> {
        debug_assert_eq!(indices.len(), values.len());
        let mut out = Vec::new();
        for &rel in rels {
            for eid in self.entities_in_scope(spec, rel) {
                let row = self.decode_entity_row(spec, rel, eid, |ix| {
                    indices
                        .binary_search(&ix)
                        .map(|pos| values[pos])
                        .unwrap_or(false)
                });
                out.push((rel, Tuple::new(eid, row)));
            }
        }
        out
    }

    /// The per-attribute chains of this encoding's entities under the
    /// solver's current model (valid after a `Sat` result): entries are
    /// `(rel, attr, eid, chain)` with the chain ordered least → most
    /// current.  The engine merges chains across components to assemble a
    /// full [`Completion`].
    pub fn model_chains(&self, spec: &Specification) -> Vec<(RelId, AttrId, Eid, Vec<TupleId>)> {
        let mut out = Vec::new();
        for inst in spec.instances() {
            let rel = inst.rel();
            for a in 0..inst.arity() {
                let attr = AttrId(a as u32);
                for eid in self.entities_in_scope(spec, rel) {
                    let group = inst.entity_group(eid);
                    // Count predecessors of each tuple under the model: in
                    // a total order this equals the tuple's position, which
                    // avoids relying on sort-comparator transitivity.
                    let mut rank: Vec<(usize, TupleId)> = group
                        .iter()
                        .map(|&t| {
                            let preds = group
                                .iter()
                                .filter(|&&u| u != t && self.model_precedes(rel, attr, u, t))
                                .count();
                            (preds, t)
                        })
                        .collect();
                    rank.sort_unstable();
                    out.push((rel, attr, eid, rank.into_iter().map(|(_, t)| t).collect()));
                }
            }
        }
        out
    }

    /// Decode the full completion witnessed by the solver's current model
    /// (valid after a `Sat` result on [`Encoding::solver`]).
    ///
    /// Only meaningful on an unscoped encoding — a component encoding
    /// covers a subset of the entities and cannot produce chains for the
    /// rest (use [`Encoding::model_chains`] and assemble instead).
    pub fn decode_completion(&self, spec: &Specification) -> Result<Completion, CurrencyError> {
        debug_assert!(self.scope.is_none(), "decode_completion needs full scope");
        let mut chains: BTreeMap<RelId, Vec<BTreeMap<Eid, Vec<TupleId>>>> = spec
            .instances()
            .iter()
            .map(|inst| (inst.rel(), vec![BTreeMap::new(); inst.arity()]))
            .collect();
        for (rel, attr, eid, chain) in self.model_chains(spec) {
            chains.get_mut(&rel).expect("known relation")[attr.index()].insert(eid, chain);
        }
        let rels: Result<Vec<RelCompletion>, CurrencyError> = spec
            .instances()
            .iter()
            .map(|inst| {
                RelCompletion::new(
                    inst,
                    chains.remove(&inst.rel()).expect("chains per relation"),
                )
            })
            .collect();
        Ok(Completion::new(rels?))
    }

    fn model_precedes(&self, rel: RelId, attr: AttrId, u: TupleId, v: TupleId) -> bool {
        match self.order_lit(rel, attr, u, v) {
            Some(l) => {
                let val = self.solver.model_value(l.var());
                if l.is_pos() {
                    val
                } else {
                    !val
                }
            }
            None => false,
        }
    }

    // ------------------------------------------------------------------
    // Construction passes
    // ------------------------------------------------------------------

    fn alloc_order_vars(&mut self, spec: &Specification) {
        for inst in spec.instances() {
            let rel = inst.rel();
            for a in 0..inst.arity() {
                let attr = AttrId(a as u32);
                for (eid, group) in inst.entity_groups() {
                    if !self.in_scope(rel, eid) {
                        continue;
                    }
                    for i in 0..group.len() {
                        for j in (i + 1)..group.len() {
                            let (u, v) = (group[i].min(group[j]), group[i].max(group[j]));
                            let var = self.solver.new_var();
                            self.order_vars.insert((rel, attr, u, v), var);
                        }
                    }
                }
            }
        }
    }

    fn add_transitivity(&mut self, spec: &Specification) {
        for inst in spec.instances() {
            let rel = inst.rel();
            for a in 0..inst.arity() {
                let attr = AttrId(a as u32);
                for (eid, group) in inst.entity_groups() {
                    if !self.in_scope(rel, eid) {
                        continue;
                    }
                    let n = group.len();
                    for i in 0..n {
                        for j in 0..n {
                            for k in 0..n {
                                if i == j || j == k || i == k {
                                    continue;
                                }
                                let (x, y, z) = (group[i], group[j], group[k]);
                                let xy = self.order_lit(rel, attr, x, y).expect("same entity");
                                let yz = self.order_lit(rel, attr, y, z).expect("same entity");
                                let xz = self.order_lit(rel, attr, x, z).expect("same entity");
                                self.solver.add_clause(&[!xy, !yz, xz]);
                            }
                        }
                    }
                }
            }
        }
    }

    fn add_initial_orders(&mut self, spec: &Specification) {
        for inst in spec.instances() {
            let rel = inst.rel();
            for a in 0..inst.arity() {
                let attr = AttrId(a as u32);
                for (u, v) in inst.order(attr).iter() {
                    if !self.in_scope(rel, inst.tuple(u).eid) {
                        continue;
                    }
                    let lit = self
                        .order_lit(rel, attr, u, v)
                        .expect("validated: same entity, irreflexive");
                    self.solver.add_clause(&[lit]);
                }
            }
        }
    }

    /// Add the clause of one ground denial rule:
    /// `¬p₁ ∨ … ∨ ¬pₘ ∨ c` (falsum conclusions drop `c`).
    fn add_ground_rule(&mut self, rel: RelId, rule: &currency_core::GroundRule) {
        let mut clause: Vec<Lit> = Vec::with_capacity(rule.premises.len() + 1);
        for p in &rule.premises {
            let l = self
                .order_lit(rel, p.attr, p.lesser, p.greater)
                .expect("ground premises are same-entity, irreflexive, in scope");
            clause.push(!l);
        }
        if let Some(c) = &rule.conclusion {
            let l = self
                .order_lit(rel, c.attr, c.lesser, c.greater)
                .expect("ground conclusion is same-entity and in scope");
            clause.push(l);
        }
        self.solver.add_clause(&clause);
    }

    /// Add the binary implication of one copy-compatibility obligation:
    /// `s₁≺s₂ → t₁≺t₂`.
    fn add_obligation(
        &mut self,
        source_rel: RelId,
        src_edge: &currency_core::OrderEdge,
        target_rel: RelId,
        tgt_edge: &currency_core::OrderEdge,
    ) {
        let sl = self
            .order_lit(source_rel, src_edge.attr, src_edge.lesser, src_edge.greater)
            .expect("obligation endpoints share an entity in scope");
        let tl = self
            .order_lit(target_rel, tgt_edge.attr, tgt_edge.lesser, tgt_edge.greater)
            .expect("obligation endpoints share an entity in scope");
        self.solver.add_clause(&[!sl, tl]);
    }

    fn add_value_indicators(&mut self, spec: &Specification, rel: RelId) {
        let inst = spec.instance(rel);
        // Collect groups first to avoid borrowing `inst` across mutations.
        let groups: Vec<(Eid, Vec<TupleId>)> = inst
            .entity_groups()
            .filter(|&(eid, _)| self.in_scope(rel, eid))
            .map(|(e, g)| (e, g.to_vec()))
            .collect();
        for (eid, group) in groups {
            for a in 0..inst.arity() {
                let attr = AttrId(a as u32);
                // Distinct values of the attribute within the group, with
                // the tuples holding each value.
                let mut by_value: BTreeMap<Value, Vec<TupleId>> = BTreeMap::new();
                for &t in &group {
                    by_value
                        .entry(inst.tuple(t).value(attr).clone())
                        .or_default()
                        .push(t);
                }
                if by_value.len() == 1 {
                    let v = by_value.into_keys().next().expect("one value");
                    self.value_choices
                        .insert((rel, eid, attr), ValueChoice::Fixed(v));
                    continue;
                }
                // Max indicators m_t ⇔ ⋀_{t'≠t} t' ≺ t.
                let mut max_var: BTreeMap<TupleId, Var> = BTreeMap::new();
                for &t in &group {
                    let m = self.solver.new_var();
                    max_var.insert(t, m);
                    let mut closure_clause: Vec<Lit> = vec![m.pos()];
                    for &u in &group {
                        if u == t {
                            continue;
                        }
                        let below = self.order_lit(rel, attr, u, t).expect("same entity");
                        // m → u ≺ t
                        self.solver.add_clause(&[m.neg(), below]);
                        // collect for (⋀ u≺t) → m
                        closure_clause.push(!below);
                    }
                    self.solver.add_clause(&closure_clause);
                }
                // Value indicators y_v ⇔ ⋁_{t[A]=v} m_t.
                let mut options: Vec<(Value, usize)> = Vec::new();
                for (value, holders) in by_value {
                    let y = self.solver.new_var();
                    let ix = self.value_projection.len();
                    self.value_projection.push(y);
                    options.push((value, ix));
                    let mut def: Vec<Lit> = vec![y.neg()];
                    for &t in &holders {
                        let m = max_var[&t];
                        // m_t → y
                        self.solver.add_clause(&[m.neg(), y.pos()]);
                        def.push(m.pos());
                    }
                    // y → ⋁ m_t
                    self.solver.add_clause(&def);
                }
                self.value_choices
                    .insert((rel, eid, attr), ValueChoice::Choice(options));
            }
        }
        // Cells of entities with uniform values across every attribute are
        // inserted above; nothing else to do.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use currency_core::{Catalog, CmpOp, DenialConstraint, RelationSchema, Term};
    use currency_sat::SolveResult;

    const A: AttrId = AttrId(0);

    fn salary_spec() -> (Specification, RelId, TupleId, TupleId) {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["salary"]));
        let mut spec = Specification::new(cat);
        let t0 = spec
            .instance_mut(r)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(50)]))
            .unwrap();
        let t1 = spec
            .instance_mut(r)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(80)]))
            .unwrap();
        (spec, r, t0, t1)
    }

    fn monotone(r: RelId) -> DenialConstraint {
        DenialConstraint::builder(r, 2)
            .when_cmp(Term::attr(0, A), CmpOp::Gt, Term::attr(1, A))
            .then_order(1, A, 0)
            .build()
            .unwrap()
    }

    #[test]
    fn unconstrained_pair_is_sat_both_ways() {
        let (spec, r, t0, t1) = salary_spec();
        let mut enc = Encoding::new(&spec, &[]).unwrap();
        assert_eq!(enc.solver.solve(), SolveResult::Sat);
        let l = enc.order_lit(r, A, t0, t1).unwrap();
        assert_eq!(enc.solver.solve_with_assumptions(&[l]), SolveResult::Sat);
        assert_eq!(enc.solver.solve_with_assumptions(&[!l]), SolveResult::Sat);
    }

    #[test]
    fn denial_constraint_forces_direction() {
        let (mut spec, r, t0, t1) = salary_spec();
        spec.add_constraint(monotone(r)).unwrap();
        let mut enc = Encoding::new(&spec, &[]).unwrap();
        let l = enc.order_lit(r, A, t0, t1).unwrap();
        // t0 (50) must precede t1 (80).
        assert_eq!(enc.solver.solve_with_assumptions(&[!l]), SolveResult::Unsat);
        assert_eq!(enc.solver.solve_with_assumptions(&[l]), SolveResult::Sat);
    }

    #[test]
    fn contradictory_initial_orders_are_unsat() {
        let (mut spec, r, t0, t1) = salary_spec();
        spec.instance_mut(r).add_order(A, t0, t1).unwrap();
        spec.instance_mut(r).add_order(A, t1, t0).unwrap();
        // validate() rejects the cyclic order before encoding.
        assert!(Encoding::new(&spec, &[]).is_err());
    }

    #[test]
    fn transitivity_is_enforced() {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A"]));
        let mut spec = Specification::new(cat);
        let ts: Vec<TupleId> = (0..3)
            .map(|i| {
                spec.instance_mut(r)
                    .push_tuple(Tuple::new(Eid(1), vec![Value::int(i)]))
                    .unwrap()
            })
            .collect();
        let mut enc = Encoding::new(&spec, &[]).unwrap();
        let l01 = enc.order_lit(r, A, ts[0], ts[1]).unwrap();
        let l12 = enc.order_lit(r, A, ts[1], ts[2]).unwrap();
        let l20 = enc.order_lit(r, A, ts[2], ts[0]).unwrap();
        // A directed cycle must be unsatisfiable.
        assert_eq!(
            enc.solver.solve_with_assumptions(&[l01, l12, l20]),
            SolveResult::Unsat
        );
        assert_eq!(
            enc.solver.solve_with_assumptions(&[l01, l12, !l20]),
            SolveResult::Sat
        );
    }

    #[test]
    fn order_lit_orientation() {
        let (spec, r, t0, t1) = salary_spec();
        let enc = Encoding::new(&spec, &[]).unwrap();
        let fwd = enc.order_lit(r, A, t0, t1).unwrap();
        let bwd = enc.order_lit(r, A, t1, t0).unwrap();
        assert_eq!(fwd, !bwd);
        assert!(enc.order_lit(r, A, t0, t0).is_none());
    }

    #[test]
    fn value_indicators_enumerate_current_instances() {
        let (spec, r, _, _) = salary_spec();
        let mut enc = Encoding::new(&spec, &[r]).unwrap();
        assert_eq!(enc.value_projection().len(), 2, "two candidate values");
        let projection = enc.value_projection().to_vec();
        let mut outcomes = Vec::new();
        enc.solver.for_each_model(&projection, 100, |m| {
            outcomes.push(m.to_vec());
            true
        });
        // Unconstrained: both 50 and 80 can be the current salary.
        assert_eq!(outcomes.len(), 2);
        for m in &outcomes {
            assert_eq!(m.iter().filter(|&&b| b).count(), 1);
        }
    }

    #[test]
    fn decode_current_instance_respects_constraints() {
        let (mut spec, r, _, _) = salary_spec();
        spec.add_constraint(monotone(r)).unwrap();
        let mut enc = Encoding::new(&spec, &[r]).unwrap();
        let projection = enc.value_projection().to_vec();
        let mut instances = Vec::new();
        enc.solver.for_each_model(&projection, 100, |m| {
            instances.push(m.to_vec());
            true
        });
        assert_eq!(instances.len(), 1, "constraint pins the current value");
        let dbs = enc.decode_current_instances(&spec, &instances[0]);
        assert_eq!(dbs.len(), 1);
        assert!(dbs[0].contains(&Tuple::new(Eid(1), vec![Value::int(80)])));
    }

    #[test]
    fn decode_completion_is_consistent() {
        let (mut spec, r, t0, t1) = salary_spec();
        spec.add_constraint(monotone(r)).unwrap();
        let mut enc = Encoding::new(&spec, &[]).unwrap();
        assert_eq!(enc.solver.solve(), SolveResult::Sat);
        let completion = enc.decode_completion(&spec).unwrap();
        assert!(completion.is_consistent_for(&spec));
        assert!(completion.rel(r).precedes(A, t0, t1));
    }

    #[test]
    fn uniform_value_groups_need_no_indicators() {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A"]));
        let mut spec = Specification::new(cat);
        for _ in 0..3 {
            spec.instance_mut(r)
                .push_tuple(Tuple::new(Eid(1), vec![Value::int(7)]))
                .unwrap();
        }
        let enc = Encoding::new(&spec, &[r]).unwrap();
        assert!(enc.value_projection().is_empty());
        let dbs = enc.decode_current_instances(&spec, &[]);
        assert!(dbs[0].contains(&Tuple::new(Eid(1), vec![Value::int(7)])));
    }
}
