//! Brute-force enumeration of `Mod(S)` — the reference solver.
//!
//! Every combination of linear extensions of the initial partial orders
//! (one per relation × attribute × entity) is generated and checked
//! against the denial constraints and copy-compatibility conditions.  The
//! cost is the product of factorials of group sizes — this is strictly a
//! ground-truth oracle for differential testing and for the solver
//! ablation benchmark, not a production path.

use crate::error::ReasonError;
use currency_core::{
    linear_extensions, AttrId, Completion, Eid, RelCompletion, Specification, TupleId,
};
use std::collections::BTreeMap;

/// One choice point: the chains available for a `(rel, attr, entity)` cell.
struct Cell {
    rel: usize,
    attr: usize,
    eid: Eid,
    options: Vec<Vec<TupleId>>,
}

/// Enumerate all *candidate* completions (products of linear extensions of
/// the initial orders) and invoke `f` on each **consistent** one.
///
/// Returns `Ok(count)` with the number of consistent completions visited
/// when enumeration ran to completion, or stops early (returning the count
/// so far) when `f` returns `false`.  Fails with
/// [`ReasonError::BudgetExceeded`] if the candidate space exceeds `limit`.
pub fn for_each_consistent_completion(
    spec: &Specification,
    limit: usize,
    mut f: impl FnMut(&Completion) -> bool,
) -> Result<usize, ReasonError> {
    spec.validate()?;
    let mut cells: Vec<Cell> = Vec::new();
    let mut total: usize = 1;
    for (rix, inst) in spec.instances().iter().enumerate() {
        for a in 0..inst.arity() {
            let attr = AttrId(a as u32);
            for (eid, group) in inst.entity_groups() {
                let options = linear_extensions(group, inst.order(attr));
                if options.is_empty() {
                    // Initial order cyclic within this cell: no completions.
                    return Ok(0);
                }
                total = total.saturating_mul(options.len());
                if total > limit {
                    return Err(ReasonError::BudgetExceeded {
                        what: "completion enumeration",
                        budget: limit,
                        spent: total,
                    });
                }
                cells.push(Cell {
                    rel: rix,
                    attr: a,
                    eid,
                    options,
                });
            }
        }
    }
    // Odometer over the cells.
    let mut pick = vec![0usize; cells.len()];
    let mut visited = 0usize;
    loop {
        // Materialize the completion for the current picks.
        let mut chains: Vec<Vec<BTreeMap<Eid, Vec<TupleId>>>> = spec
            .instances()
            .iter()
            .map(|inst| vec![BTreeMap::new(); inst.arity()])
            .collect();
        for (cell, &p) in cells.iter().zip(&pick) {
            chains[cell.rel][cell.attr].insert(cell.eid, cell.options[p].clone());
        }
        let rels: Result<Vec<RelCompletion>, _> = spec
            .instances()
            .iter()
            .zip(chains)
            .map(|(inst, ch)| RelCompletion::new(inst, ch))
            .collect();
        let completion = Completion::new(rels?);
        if completion.is_consistent_for(spec) {
            visited += 1;
            if !f(&completion) {
                return Ok(visited);
            }
        }
        // Advance the odometer.
        let mut i = 0;
        loop {
            if i == cells.len() {
                return Ok(visited);
            }
            pick[i] += 1;
            if pick[i] < cells[i].options.len() {
                break;
            }
            pick[i] = 0;
            i += 1;
        }
    }
}

/// Collect all consistent completions (tiny inputs only).
pub fn all_consistent_completions(
    spec: &Specification,
    limit: usize,
) -> Result<Vec<Completion>, ReasonError> {
    let mut out = Vec::new();
    for_each_consistent_completion(spec, limit, |c| {
        out.push(c.clone());
        true
    })?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use currency_core::RelId;
    use currency_core::{Catalog, CmpOp, DenialConstraint, RelationSchema, Term, Tuple, Value};

    const A: AttrId = AttrId(0);

    fn spec_with_values(vals: &[i64]) -> (Specification, RelId) {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A"]));
        let mut spec = Specification::new(cat);
        for &v in vals {
            spec.instance_mut(r)
                .push_tuple(Tuple::new(Eid(1), vec![Value::int(v)]))
                .unwrap();
        }
        (spec, r)
    }

    #[test]
    fn unconstrained_counts_are_factorial() {
        let (spec, _) = spec_with_values(&[1, 2, 3]);
        let all = all_consistent_completions(&spec, 1000).unwrap();
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn initial_orders_prune_extensions() {
        let (mut spec, r) = spec_with_values(&[1, 2, 3]);
        spec.instance_mut(r)
            .add_order(A, TupleId(0), TupleId(1))
            .unwrap();
        let all = all_consistent_completions(&spec, 1000).unwrap();
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn denial_constraints_filter_completions() {
        let (mut spec, r) = spec_with_values(&[10, 20, 30]);
        let dc = DenialConstraint::builder(r, 2)
            .when_cmp(Term::attr(0, A), CmpOp::Gt, Term::attr(1, A))
            .then_order(1, A, 0)
            .build()
            .unwrap();
        spec.add_constraint(dc).unwrap();
        // Monotone salaries admit exactly one completion.
        let all = all_consistent_completions(&spec, 1000).unwrap();
        assert_eq!(all.len(), 1);
    }

    #[test]
    fn budget_is_enforced() {
        let (spec, _) = spec_with_values(&[1, 2, 3, 4, 5, 6]);
        // 6! = 720 candidate completions > 100.
        assert!(matches!(
            all_consistent_completions(&spec, 100),
            Err(ReasonError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn early_stop_counts_partial() {
        let (spec, _) = spec_with_values(&[1, 2, 3]);
        let n = for_each_consistent_completion(&spec, 1000, |_| false).unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn cyclic_initial_orders_yield_zero() {
        let (mut spec, r) = spec_with_values(&[1, 2]);
        spec.instance_mut(r)
            .add_order(A, TupleId(0), TupleId(1))
            .unwrap();
        spec.instance_mut(r)
            .add_order(A, TupleId(1), TupleId(0))
            .unwrap();
        // validate() inside rejects the cyclic order.
        assert!(for_each_consistent_completion(&spec, 10, |_| true).is_err());
    }
}
