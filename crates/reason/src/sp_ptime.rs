//! The PTIME `poss(S)` algorithm for SP queries (paper Prop 6.3).
//!
//! Without denial constraints, the certain current answers to an SP query
//! have a direct polynomial characterization.  For each entity `e` and
//! attribute `A`, the possible most-current values are the values of the
//! *sinks* of the certain order `PO∞` restricted to `e`'s tuples:
//!
//! * if all sinks agree on one value, that value is the certain current
//!   value `poss(e, A)`;
//! * otherwise `poss(e, A)` is a **fresh constant** — a value different
//!   from every ordinary value and every other fresh constant
//!   ([`currency_core::Value::Fresh`]).
//!
//! Evaluating the SP query over the synthetic instance
//! `poss(S) = { poss(e, ·) | e }` and *discarding* every answer row that
//! contains a fresh constant yields exactly the certain current answers.
//! (A fresh constant can never satisfy an equality selection, and a
//! projected fresh constant marks an entity whose answer row differs
//! between completions.)

use crate::ccqa::CertainAnswers;
use crate::error::ReasonError;
use crate::fixpoint::po_infinity;
use currency_core::{AttrId, NormalInstance, RelId, Specification, Tuple, Value};
use currency_query::SpQuery;

/// Build the `poss(S)` instance of one relation: one synthetic tuple per
/// entity whose cells are either the certain current value or a fresh
/// constant.  Returns `Ok(None)` when the specification is inconsistent.
///
/// Fresh constants are numbered deterministically per `(entity-rank,
/// attribute)` so repeated calls produce identical instances.
pub fn poss_instance(
    spec: &Specification,
    rel: RelId,
) -> Result<Option<NormalInstance>, ReasonError> {
    debug_assert!(
        spec.has_no_constraints(),
        "poss(S) requires a constraint-free specification"
    );
    let Some(po) = po_infinity(spec)? else {
        return Ok(None);
    };
    let inst = spec.instance(rel);
    let mut out = NormalInstance::new(rel);
    let mut fresh_counter: u64 = 0;
    for (eid, group) in inst.entity_groups() {
        let values: Vec<Value> = (0..inst.arity())
            .map(|a| {
                let attr = AttrId(a as u32);
                let sinks = po.order(rel, attr).sinks(group);
                let mut vals: Vec<&Value> =
                    sinks.iter().map(|&t| inst.tuple(t).value(attr)).collect();
                vals.sort();
                vals.dedup();
                let v = match vals.as_slice() {
                    [only] => (*only).clone(),
                    _ => {
                        let f = Value::Fresh(fresh_counter);
                        fresh_counter += 1;
                        f
                    }
                };
                v
            })
            .collect();
        out.push(Tuple::new(eid, values));
    }
    Ok(Some(out))
}

/// Certain current answers to an SP query without denial constraints
/// (paper Prop 6.3): evaluate over `poss(S)` and drop rows containing
/// fresh constants.
pub fn certain_answers_sp(
    spec: &Specification,
    query: &SpQuery,
) -> Result<CertainAnswers, ReasonError> {
    let Some(poss) = poss_instance(spec, query.rel)? else {
        return Ok(CertainAnswers::Inconsistent);
    };
    let rows: Vec<Vec<Value>> = query
        .eval(&poss)
        .into_iter()
        .filter(|row| !row.iter().any(Value::is_fresh))
        .collect();
    Ok(CertainAnswers::Answers(rows))
}

/// Decide CCQA for an SP query without denial constraints (PTIME).
pub fn ccqa_sp(
    spec: &Specification,
    query: &SpQuery,
    tuple: &[Value],
) -> Result<bool, ReasonError> {
    Ok(certain_answers_sp(spec, query)?.contains(tuple))
}

#[cfg(test)]
mod tests {
    use super::*;
    use currency_core::{Catalog, Eid, RelationSchema, TupleId};
    use currency_query::SpCondition;

    const NAME: AttrId = AttrId(0);
    const ADDR: AttrId = AttrId(1);

    /// Mary: two records with different addresses; Bob: one record.
    fn spec() -> (Specification, RelId) {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("Emp", &["name", "address"]));
        let mut spec = Specification::new(cat);
        for (e, n, a) in [
            (1u64, "Mary", "2 Small St"),
            (1, "Mary", "6 Main St"),
            (2, "Bob", "8 Cowan St"),
        ] {
            spec.instance_mut(r)
                .push_tuple(Tuple::new(Eid(e), vec![Value::str(n), Value::str(a)]))
                .unwrap();
        }
        (spec, r)
    }

    #[test]
    fn uncertain_cells_become_fresh() {
        let (spec, r) = spec();
        let poss = poss_instance(&spec, r).unwrap().unwrap();
        let mary = poss.iter().find(|t| t.eid == Eid(1)).unwrap();
        assert_eq!(mary.value(NAME), &Value::str("Mary"), "names agree");
        assert!(mary.value(ADDR).is_fresh(), "addresses disagree");
        let bob = poss.iter().find(|t| t.eid == Eid(2)).unwrap();
        assert!(!bob.value(ADDR).is_fresh(), "single record is certain");
    }

    #[test]
    fn orders_resolve_freshness() {
        let (mut spec, r) = spec();
        spec.instance_mut(r)
            .add_order(ADDR, TupleId(0), TupleId(1))
            .unwrap();
        let poss = poss_instance(&spec, r).unwrap().unwrap();
        let mary = poss.iter().find(|t| t.eid == Eid(1)).unwrap();
        assert_eq!(mary.value(ADDR), &Value::str("6 Main St"));
    }

    #[test]
    fn certain_answers_drop_fresh_rows() {
        let (spec, r) = spec();
        // Q: project the address of Mary.
        let q = SpQuery {
            rel: r,
            projection: vec![ADDR],
            conditions: vec![SpCondition::AttrConst(NAME, Value::str("Mary"))],
        };
        let ans = certain_answers_sp(&spec, &q).unwrap();
        assert_eq!(ans.rows().unwrap().len(), 0, "address is uncertain");
        // Bob's address is certain.
        let qb = SpQuery {
            rel: r,
            projection: vec![ADDR],
            conditions: vec![SpCondition::AttrConst(NAME, Value::str("Bob"))],
        };
        let ansb = certain_answers_sp(&spec, &qb).unwrap();
        assert_eq!(ansb.rows().unwrap(), &[vec![Value::str("8 Cowan St")]]);
        assert!(ccqa_sp(&spec, &qb, &[Value::str("8 Cowan St")]).unwrap());
    }

    #[test]
    fn fresh_constants_fail_selections() {
        let (spec, r) = spec();
        // Selecting on the uncertain address must not match any constant.
        let q = SpQuery {
            rel: r,
            projection: vec![NAME],
            conditions: vec![SpCondition::AttrConst(ADDR, Value::str("6 Main St"))],
        };
        let ans = certain_answers_sp(&spec, &q).unwrap();
        assert_eq!(
            ans.rows().unwrap().len(),
            0,
            "Mary's address is not certainly 6 Main St"
        );
    }

    #[test]
    fn inconsistent_spec_detected() {
        let (mut spec, r) = spec();
        spec.instance_mut(r)
            .add_order(ADDR, TupleId(0), TupleId(1))
            .unwrap();
        spec.instance_mut(r)
            .add_order(ADDR, TupleId(1), TupleId(0))
            .unwrap();
        // Cyclic initial order → validation failure surfaces as an error
        // (the specification is structurally malformed, not just empty).
        assert!(poss_instance(&spec, r).is_err());
    }
}
