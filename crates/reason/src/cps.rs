//! CPS — the consistency problem for specifications (paper §3, Thm 3.1).
//!
//! *Is `Mod(S)` nonempty?*  Σᵖ₂-complete in general (NP-complete in data
//! complexity); PTIME without denial constraints (paper Theorem 6.1).

use crate::encode::Encoding;
use crate::engine::CurrencyEngine;
use crate::enumerate::for_each_consistent_completion;
use crate::error::ReasonError;
use crate::fixpoint::po_infinity;
use crate::Options;
use currency_core::{Completion, Specification};
use currency_sat::SolveResult;

/// Decide CPS with automatic engine dispatch: the PTIME fixpoint when the
/// specification has no denial constraints, the SAT-based exact solver
/// otherwise.
pub fn cps(spec: &Specification) -> Result<bool, ReasonError> {
    if spec.has_no_constraints() {
        cps_ptime(spec)
    } else {
        cps_exact(spec)
    }
}

/// Decide CPS with the SAT-based exact solver (sound and complete for
/// arbitrary specifications).  Routes through a transient
/// [`CurrencyEngine`], solving each entity component independently; for
/// repeated queries over one specification, build the engine once
/// instead.
pub fn cps_exact(spec: &Specification) -> Result<bool, ReasonError> {
    CurrencyEngine::with_value_rels(spec, &[], &Options::default())?.cps()
}

/// Decide CPS with one monolithic whole-specification encoding (the
/// pre-partitioning path, kept for differential testing).
pub fn cps_exact_monolithic(spec: &Specification) -> Result<bool, ReasonError> {
    let mut enc = Encoding::new(spec, &[])?;
    Ok(enc.solve() == SolveResult::Sat)
}

/// Decide CPS with the PTIME fixpoint of paper Theorem 6.1.
///
/// Only complete for specifications without denial constraints; the
/// dispatcher [`cps`] guards this.
pub fn cps_ptime(spec: &Specification) -> Result<bool, ReasonError> {
    debug_assert!(
        spec.has_no_constraints(),
        "cps_ptime requires a constraint-free specification"
    );
    Ok(po_infinity(spec)?.is_some())
}

/// Decide CPS by brute-force completion enumeration (reference oracle for
/// differential tests and ablation benchmarks).
pub fn cps_enumerate(spec: &Specification, limit: usize) -> Result<bool, ReasonError> {
    let mut found = false;
    for_each_consistent_completion(spec, limit, |_| {
        found = true;
        false // one witness suffices
    })?;
    Ok(found)
}

/// Produce a witness completion from `Mod(S)`, if one exists.
///
/// Uses the SAT engine regardless of constraints (the decoded model *is*
/// the witness); `Ok(None)` means the specification is inconsistent.
pub fn witness_completion(spec: &Specification) -> Result<Option<Completion>, ReasonError> {
    CurrencyEngine::with_value_rels(spec, &[], &Options::default())?.witness_completion()
}

/// [`witness_completion`] on one monolithic encoding (kept for
/// differential testing).
pub fn witness_completion_monolithic(
    spec: &Specification,
) -> Result<Option<Completion>, ReasonError> {
    let mut enc = Encoding::new(spec, &[])?;
    if enc.solve() == SolveResult::Unsat {
        return Ok(None);
    }
    let completion = enc.decode_completion(spec)?;
    debug_assert!(completion.is_consistent_for(spec));
    Ok(Some(completion))
}

#[cfg(test)]
mod tests {
    use super::*;
    use currency_core::{
        AttrId, Catalog, CmpOp, CopyFunction, CopySignature, DenialConstraint, Eid, RelId,
        RelationSchema, Term, Tuple, TupleId, Value,
    };

    const A: AttrId = AttrId(0);
    const B: AttrId = AttrId(1);

    fn base_spec() -> (Specification, RelId) {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A", "B"]));
        let mut spec = Specification::new(cat);
        for (a, b) in [(10, 1), (20, 2)] {
            spec.instance_mut(r)
                .push_tuple(Tuple::new(Eid(1), vec![Value::int(a), Value::int(b)]))
                .unwrap();
        }
        (spec, r)
    }

    #[test]
    fn unconstrained_spec_is_consistent() {
        let (spec, _) = base_spec();
        assert!(cps(&spec).unwrap());
        assert!(cps_exact(&spec).unwrap());
        assert!(cps_enumerate(&spec, 1000).unwrap());
    }

    #[test]
    fn contradictory_constraints_are_inconsistent() {
        let (mut spec, r) = base_spec();
        // Higher A ⇒ more current in B, and higher B ⇒ LESS current in B.
        let dc1 = DenialConstraint::builder(r, 2)
            .when_cmp(Term::attr(0, A), CmpOp::Gt, Term::attr(1, A))
            .then_order(1, B, 0)
            .build()
            .unwrap();
        let dc2 = DenialConstraint::builder(r, 2)
            .when_cmp(Term::attr(0, B), CmpOp::Gt, Term::attr(1, B))
            .then_order(0, B, 1)
            .build()
            .unwrap();
        spec.add_constraint(dc1).unwrap();
        spec.add_constraint(dc2).unwrap();
        assert!(!cps(&spec).unwrap());
        assert!(!cps_exact(&spec).unwrap());
        assert!(!cps_enumerate(&spec, 1000).unwrap());
        assert!(witness_completion(&spec).unwrap().is_none());
    }

    #[test]
    fn witness_is_consistent_and_respects_constraints() {
        let (mut spec, r) = base_spec();
        let dc = DenialConstraint::builder(r, 2)
            .when_cmp(Term::attr(0, A), CmpOp::Gt, Term::attr(1, A))
            .then_order(1, A, 0)
            .build()
            .unwrap();
        spec.add_constraint(dc).unwrap();
        let w = witness_completion(&spec).unwrap().expect("consistent");
        assert!(w.is_consistent_for(&spec));
        assert!(w.rel(r).precedes(A, TupleId(0), TupleId(1)));
    }

    #[test]
    fn example_2_3_interaction_of_copy_and_orders() {
        // A copy function importing contradictory order information makes
        // the specification inconsistent (shape of paper Example 2.3).
        let mut cat = Catalog::new();
        let d = cat.add(RelationSchema::new("Dept", &["budget"]));
        let s = cat.add(RelationSchema::new("Src", &["budget"]));
        let mut spec = Specification::new(cat);
        let d1 = spec
            .instance_mut(d)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(6500)]))
            .unwrap();
        let d2 = spec
            .instance_mut(d)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(6000)]))
            .unwrap();
        let s1 = spec
            .instance_mut(s)
            .push_tuple(Tuple::new(Eid(7), vec![Value::int(6500)]))
            .unwrap();
        let s2 = spec
            .instance_mut(s)
            .push_tuple(Tuple::new(Eid(7), vec![Value::int(6000)]))
            .unwrap();
        // The database itself orders d1 before d2 ...
        spec.instance_mut(d).add_order(A, d1, d2).unwrap();
        // ... but the source's currency order says the opposite.
        spec.instance_mut(s).add_order(A, s2, s1).unwrap();
        let sig = CopySignature::new(d, vec![A], s, vec![A]).unwrap();
        let mut cf = CopyFunction::new(sig);
        cf.set_mapping(d1, s1);
        cf.set_mapping(d2, s2);
        spec.add_copy(cf).unwrap();
        assert!(!cps(&spec).unwrap(), "copy vs initial orders conflict");
        assert!(!cps_exact(&spec).unwrap());
    }

    #[test]
    fn exact_and_ptime_agree_without_constraints() {
        let (mut spec, r) = base_spec();
        spec.instance_mut(r)
            .add_order(A, TupleId(0), TupleId(1))
            .unwrap();
        assert_eq!(cps_ptime(&spec).unwrap(), cps_exact(&spec).unwrap());
    }
}
