//! The PTIME certain-order fixpoint `PO∞` (paper Theorem 6.1, Lemma 6.2).
//!
//! In the absence of denial constraints, the certain currency orders of a
//! specification are computed by a polynomial fixpoint: start from the
//! transitive closures of the initial partial orders and repeatedly
//! transfer order information *through* copy functions — from source to
//! target (≺-compatibility forces imported pairs) and from target back to
//! source (a target pair whose preimages are comparable-constrained), then
//! re-close transitively.  The specification is consistent iff the
//! fixpoint is cycle-free, and by Lemma 6.2 the fixpoint equals
//! `⋂_{Dᶜ ∈ Mod(S)} ≺ᶜ` — it is both *certain* and *maximal*.
//!
//! These two properties make `PO∞` the workhorse of every PTIME special
//! case in paper §6: COP is containment in `PO∞`, DCIP inspects its sinks,
//! and the SP algorithms build `poss(S)` from its sinks.

use crate::error::ReasonError;
use currency_core::{AttrId, OrderRelation, RelId, Specification, TupleId};

/// The certain orders `PO∞` of a specification without denial constraints.
#[derive(Clone, Debug)]
pub struct CertainOrders {
    /// `orders[rel][attr]` — transitively closed certain order.
    orders: Vec<Vec<OrderRelation>>,
}

impl CertainOrders {
    /// The certain order of one relation attribute (transitively closed).
    pub fn order(&self, rel: RelId, attr: AttrId) -> &OrderRelation {
        &self.orders[rel.index()][attr.index()]
    }

    /// `true` iff `lesser ≺ greater` is certain.
    pub fn certain(&self, rel: RelId, attr: AttrId, lesser: TupleId, greater: TupleId) -> bool {
        self.orders[rel.index()][attr.index()].contains(lesser, greater)
    }

    /// `true` iff the two tuples are incomparable in the certain order.
    pub fn incomparable(&self, rel: RelId, attr: AttrId, a: TupleId, b: TupleId) -> bool {
        a != b && !self.certain(rel, attr, a, b) && !self.certain(rel, attr, b, a)
    }
}

/// Compute `PO∞` (paper Theorem 6.1).
///
/// Returns `Ok(None)` when the fixpoint develops a cycle — i.e. the
/// specification is **inconsistent** — and `Ok(Some(_))` otherwise.
///
/// The result characterizes certain orders only for specifications
/// *without denial constraints*; the top-level dispatchers only call this
/// in that regime.  (With constraints present the fixpoint is still a
/// sound lower bound on the certain orders but no longer complete.)
pub fn po_infinity(spec: &Specification) -> Result<Option<CertainOrders>, ReasonError> {
    spec.validate()?;
    let mut orders: Vec<Vec<OrderRelation>> = spec
        .instances()
        .iter()
        .map(|inst| {
            (0..inst.arity())
                .map(|a| inst.order(AttrId(a as u32)).transitive_closure())
                .collect()
        })
        .collect();
    loop {
        let mut changed = false;
        for cf in spec.copies() {
            let sig = cf.signature();
            let target = spec.instance(sig.target);
            let source = spec.instance(sig.source);
            for (src_edge, tgt_edge) in cf.compatibility_obligations(target, source) {
                // Forward: source order forces target order.
                if orders[sig.source.index()][src_edge.attr.index()]
                    .contains(src_edge.lesser, src_edge.greater)
                    && orders[sig.target.index()][tgt_edge.attr.index()]
                        .add(tgt_edge.lesser, tgt_edge.greater)
                {
                    changed = true;
                }
                // Backward: a certain target pair forces its source pair —
                // otherwise the reverse source order would be completable,
                // contradicting ≺-compatibility (paper algorithm step 3(a)ii).
                if orders[sig.target.index()][tgt_edge.attr.index()]
                    .contains(tgt_edge.lesser, tgt_edge.greater)
                    && orders[sig.source.index()][src_edge.attr.index()]
                        .add(src_edge.lesser, src_edge.greater)
                {
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
        // Re-close and cycle-check after each propagation round.
        for rel_orders in &mut orders {
            for o in rel_orders.iter_mut() {
                *o = o.transitive_closure();
                if o.find_cycle().is_some() {
                    return Ok(None);
                }
            }
        }
    }
    for rel_orders in &orders {
        for o in rel_orders {
            if o.find_cycle().is_some() {
                return Ok(None);
            }
        }
    }
    Ok(Some(CertainOrders { orders }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use currency_core::{Catalog, CopyFunction, CopySignature, Eid, RelationSchema, Tuple, Value};

    const A: AttrId = AttrId(0);

    /// Two relations R(A), S(A); R copies attribute A from S.
    fn copy_spec() -> (Specification, RelId, RelId, Vec<TupleId>, Vec<TupleId>) {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A"]));
        let s = cat.add(RelationSchema::new("S", &["A"]));
        let mut spec = Specification::new(cat);
        let mut rt = Vec::new();
        let mut st = Vec::new();
        for v in [1i64, 2] {
            rt.push(
                spec.instance_mut(r)
                    .push_tuple(Tuple::new(Eid(1), vec![Value::int(v)]))
                    .unwrap(),
            );
            st.push(
                spec.instance_mut(s)
                    .push_tuple(Tuple::new(Eid(9), vec![Value::int(v)]))
                    .unwrap(),
            );
        }
        (spec, r, s, rt, st)
    }

    fn mapped(spec: &mut Specification, r: RelId, s: RelId, rt: &[TupleId], st: &[TupleId]) {
        let sig = CopySignature::new(r, vec![A], s, vec![A]).unwrap();
        let mut cf = CopyFunction::new(sig);
        cf.set_mapping(rt[0], st[0]);
        cf.set_mapping(rt[1], st[1]);
        spec.add_copy(cf).unwrap();
    }

    #[test]
    fn closure_of_initial_orders() {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A"]));
        let mut spec = Specification::new(cat);
        let ts: Vec<TupleId> = (0..3)
            .map(|i| {
                spec.instance_mut(r)
                    .push_tuple(Tuple::new(Eid(1), vec![Value::int(i)]))
                    .unwrap()
            })
            .collect();
        spec.instance_mut(r).add_order(A, ts[0], ts[1]).unwrap();
        spec.instance_mut(r).add_order(A, ts[1], ts[2]).unwrap();
        let po = po_infinity(&spec).unwrap().expect("consistent");
        assert!(po.certain(r, A, ts[0], ts[2]), "transitive closure");
        assert!(!po.incomparable(r, A, ts[0], ts[0]));
    }

    #[test]
    fn forward_propagation_through_copy() {
        let (mut spec, r, s, rt, st) = copy_spec();
        mapped(&mut spec, r, s, &rt, &st);
        spec.instance_mut(s).add_order(A, st[0], st[1]).unwrap();
        let po = po_infinity(&spec).unwrap().expect("consistent");
        assert!(po.certain(r, A, rt[0], rt[1]), "imported order");
    }

    #[test]
    fn backward_propagation_through_copy() {
        let (mut spec, r, s, rt, st) = copy_spec();
        mapped(&mut spec, r, s, &rt, &st);
        spec.instance_mut(r).add_order(A, rt[1], rt[0]).unwrap();
        let po = po_infinity(&spec).unwrap().expect("consistent");
        assert!(po.certain(s, A, st[1], st[0]), "exported order");
    }

    #[test]
    fn conflicting_orders_across_copy_are_inconsistent() {
        let (mut spec, r, s, rt, st) = copy_spec();
        mapped(&mut spec, r, s, &rt, &st);
        spec.instance_mut(s).add_order(A, st[0], st[1]).unwrap();
        spec.instance_mut(r).add_order(A, rt[1], rt[0]).unwrap();
        assert!(po_infinity(&spec).unwrap().is_none(), "cycle via copy");
    }

    #[test]
    fn empty_spec_is_consistent() {
        let cat = Catalog::new();
        let spec = Specification::new(cat);
        assert!(po_infinity(&spec).unwrap().is_some());
    }

    #[test]
    fn incomparability_reporting() {
        let (spec, r, _, rt, _) = copy_spec();
        let po = po_infinity(&spec).unwrap().expect("consistent");
        assert!(po.incomparable(r, A, rt[0], rt[1]));
        assert!(!po.incomparable(r, A, rt[0], rt[0]));
    }
}
