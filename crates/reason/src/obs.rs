//! Engine-side observability: the metric handles and trace recorder an
//! engine (live [`CurrencyEngine`](crate::engine::CurrencyEngine) or
//! snapshot writer [`SnapshotEngine`](crate::snapshot::SnapshotEngine))
//! records through.
//!
//! Every engine owns an [`EngineObs`] bound to a private
//! [`MetricsRegistry`] by default, so instrumentation is always-on and
//! self-contained; wrapper layers (a durable store, a serving front
//! door, a sharded fan-out) call [`EngineObs::bind_metrics`] to re-home
//! the handles onto their own registry, which is what makes one merged
//! exposition per stack possible without threading registries through
//! [`Options`](crate::Options) (which is `Copy` by design).
//!
//! Metrics are recorded whenever [`EngineObs::enabled`] — a handful of
//! relaxed atomic adds per apply, benchmarked ≤ 1.02× the disabled
//! path.  Trace spans additionally require an attached
//! [`Recorder`] whose `enabled()` is true (the default
//! [`NoopRecorder`] keeps span emission compiled out of the hot path
//! behind one branch).

use currency_obs::{Counter, Gauge, Histogram, MetricsRegistry, NoopRecorder, Recorder};
use currency_sat::SolverStats;
use std::sync::Arc;
use std::time::Instant;

/// Metric handles + trace recorder for one engine.
///
/// The handle set names the phases of the apply path (validate /
/// refresh / recompile / solve), the per-solve
/// [`SolverStats`] deltas, the bounded-compaction pause, and the
/// snapshot publication epoch.  All durations are nanoseconds
/// (`_ns`-suffixed families).
pub struct EngineObs {
    registry: Arc<MetricsRegistry>,
    recorder: Arc<dyn Recorder>,
    enabled: bool,
    /// Whole-apply duration (validate through rebuild, excluding
    /// auto-compaction).
    pub apply_ns: Arc<Histogram>,
    /// Delta validation + specification mutation.
    pub apply_validate_ns: Arc<Histogram>,
    /// Incremental partition refresh over the dirty region.
    pub apply_refresh_ns: Arc<Histogram>,
    /// Recompilation of the rebuilt component slots.
    pub apply_recompile_ns: Arc<Histogram>,
    /// Individual component solves (lazy, on first demand).
    pub solve_ns: Arc<Histogram>,
    /// Conflicts burned by one solve.
    pub solver_conflicts: Arc<Histogram>,
    /// Literals propagated by one solve.
    pub solver_propagations: Arc<Histogram>,
    /// Theory lemmas installed by one solve.
    pub solver_lemmas: Arc<Histogram>,
    /// Wall-clock pause of one bounded compaction step.
    pub compact_step_pause_ns: Arc<Histogram>,
    /// Applies, as a counter (the exposition twin of
    /// [`EngineStats::updates_applied`](crate::EngineStats)).
    pub applies_total: Arc<Counter>,
    /// Epoch of the most recently published snapshot (snapshot
    /// engines only; stays 0 on live engines).
    pub snapshot_epoch: Arc<Gauge>,
}

impl std::fmt::Debug for EngineObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineObs")
            .field("enabled", &self.enabled)
            .field("tracing", &self.recorder.enabled())
            .finish()
    }
}

impl Default for EngineObs {
    fn default() -> EngineObs {
        EngineObs::new()
    }
}

impl EngineObs {
    /// A fresh bundle on a private registry, metrics on, tracing off.
    pub fn new() -> EngineObs {
        EngineObs::on_registry(&Arc::new(MetricsRegistry::new()))
    }

    /// A bundle whose handles live on `registry`.
    fn on_registry(registry: &Arc<MetricsRegistry>) -> EngineObs {
        EngineObs {
            registry: registry.clone(),
            recorder: Arc::new(NoopRecorder),
            enabled: true,
            apply_ns: registry.histogram(
                "currency_engine_apply_ns",
                "Whole-apply duration in nanoseconds (validate through rebuild)",
                &[],
            ),
            apply_validate_ns: registry.histogram(
                "currency_engine_apply_validate_ns",
                "Delta validation + specification mutation, nanoseconds",
                &[],
            ),
            apply_refresh_ns: registry.histogram(
                "currency_engine_apply_refresh_ns",
                "Incremental partition refresh over the dirty region, nanoseconds",
                &[],
            ),
            apply_recompile_ns: registry.histogram(
                "currency_engine_apply_recompile_ns",
                "Recompilation of rebuilt component slots, nanoseconds",
                &[],
            ),
            solve_ns: registry.histogram(
                "currency_engine_solve_ns",
                "Individual component solve duration, nanoseconds",
                &[],
            ),
            solver_conflicts: registry.histogram(
                "currency_engine_solver_conflicts",
                "CDCL conflicts burned by one component solve",
                &[],
            ),
            solver_propagations: registry.histogram(
                "currency_engine_solver_propagations",
                "Literals propagated by one component solve",
                &[],
            ),
            solver_lemmas: registry.histogram(
                "currency_engine_solver_lemmas",
                "Theory lemmas installed by one component solve",
                &[],
            ),
            compact_step_pause_ns: registry.histogram(
                "currency_engine_compact_step_pause_ns",
                "Wall-clock pause of one bounded compaction step, nanoseconds",
                &[],
            ),
            applies_total: registry.counter(
                "currency_engine_applies_total",
                "Deltas applied to the engine",
                &[],
            ),
            snapshot_epoch: registry.gauge(
                "currency_engine_snapshot_epoch",
                "Epoch of the most recently published snapshot",
                &[],
            ),
        }
    }

    /// Re-home every handle onto `registry` (idempotent: registering
    /// the same name + labels twice shares the series).  Counts
    /// recorded before the re-bind stay on the old registry; wrappers
    /// bind at construction time, before traffic.  The recorder and
    /// the enabled switch survive the re-bind.
    pub fn bind_metrics(&mut self, registry: &Arc<MetricsRegistry>) {
        let mut fresh = EngineObs::on_registry(registry);
        fresh.recorder = self.recorder.clone();
        fresh.enabled = self.enabled;
        *self = fresh;
    }

    /// The registry the handles currently live on.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Attach a trace recorder (spans and events flow to it whenever
    /// it reports `enabled()`).
    pub fn set_recorder(&mut self, recorder: Arc<dyn Recorder>) {
        self.recorder = recorder;
    }

    /// The attached recorder.
    pub fn recorder(&self) -> &Arc<dyn Recorder> {
        &self.recorder
    }

    /// Switch metric recording on/off.  Off skips the clock reads too,
    /// making the engine's hot paths byte-for-byte the uninstrumented
    /// baseline the overhead benchmarks compare against.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether metrics are being recorded.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Start a phase clock — `None` (no clock read at all) when
    /// metrics are off.
    #[inline]
    pub(crate) fn clock(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Record the elapsed time of `clock` into `hist` and return a
    /// fresh clock for the next phase.
    #[inline]
    pub(crate) fn lap(&self, clock: Option<Instant>, hist: &Histogram) -> Option<Instant> {
        clock.map(|start| {
            let now = Instant::now();
            hist.record(now.duration_since(start).as_nanos() as u64);
            now
        })
    }

    /// Record one solve's duration and [`SolverStats`] delta.
    #[inline]
    pub(crate) fn record_solve(
        &self,
        clock: Option<Instant>,
        before: &SolverStats,
        after: &SolverStats,
    ) {
        if let Some(start) = clock {
            self.solve_ns.record(start.elapsed().as_nanos() as u64);
            let delta = after.delta(before);
            self.solver_conflicts.record(delta.conflicts);
            self.solver_propagations.record(delta.propagations);
            self.solver_lemmas.record(delta.lemmas_added);
        }
    }
}
