//! Explaining inconsistency: minimal conflicting cores.
//!
//! When `Mod(S) = ∅`, every "certain" judgement becomes vacuous, so the
//! practically useful artifact is an *explanation*: which constraints,
//! recorded order facts, and copy functions jointly contradict each
//! other.  [`explain_inconsistency`] computes a **minimal** core by
//! deletion-based shrinking (the standard MUS-style loop): each component
//! is tentatively removed and kept out whenever the remainder is still
//! inconsistent.  The result is minimal in the set-inclusion sense: every
//! remaining component is necessary for the contradiction.

use crate::cps::cps;
use crate::error::ReasonError;
use currency_core::{AttrId, RelId, Specification, TupleId};

/// One removable ingredient of a specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecComponent {
    /// The i-th denial constraint.
    Constraint(usize),
    /// A recorded initial order fact `lesser ≺_attr greater`.
    OrderFact {
        /// Relation carrying the fact.
        rel: RelId,
        /// The attribute.
        attr: AttrId,
        /// Less-current tuple.
        lesser: TupleId,
        /// More-current tuple.
        greater: TupleId,
    },
    /// The i-th copy function (its mappings and signature).
    Copy(usize),
}

/// A minimal inconsistent core of a specification.
#[derive(Clone, Debug, Default)]
pub struct InconsistencyCore {
    /// The surviving (jointly contradictory) components.
    pub components: Vec<SpecComponent>,
}

impl InconsistencyCore {
    /// Indices of the denial constraints in the core.
    pub fn constraint_indices(&self) -> Vec<usize> {
        self.components
            .iter()
            .filter_map(|c| match c {
                SpecComponent::Constraint(i) => Some(*i),
                _ => None,
            })
            .collect()
    }

    /// Indices of the copy functions in the core.
    pub fn copy_indices(&self) -> Vec<usize> {
        self.components
            .iter()
            .filter_map(|c| match c {
                SpecComponent::Copy(i) => Some(*i),
                _ => None,
            })
            .collect()
    }
}

/// Rebuild `spec` keeping only the listed components (data tuples are
/// always kept — they carry no currency claims by themselves).
fn rebuild(spec: &Specification, keep: &[SpecComponent]) -> Specification {
    let mut out = Specification::new(spec.catalog().clone());
    for inst in spec.instances() {
        let rel = inst.rel();
        for (_, t) in inst.tuples() {
            out.instance_mut(rel)
                .push_tuple(t.clone())
                .expect("same schema");
        }
    }
    for c in keep {
        match c {
            SpecComponent::Constraint(i) => {
                out.add_constraint(spec.constraints()[*i].clone())
                    .expect("was valid in the original");
            }
            SpecComponent::OrderFact {
                rel,
                attr,
                lesser,
                greater,
            } => {
                out.instance_mut(*rel)
                    .add_order(*attr, *lesser, *greater)
                    .expect("was valid in the original");
            }
            SpecComponent::Copy(i) => {
                out.add_copy(spec.copies()[*i].clone())
                    .expect("was valid in the original");
            }
        }
    }
    out
}

fn all_components(spec: &Specification) -> Vec<SpecComponent> {
    let mut out = Vec::new();
    for i in 0..spec.constraints().len() {
        out.push(SpecComponent::Constraint(i));
    }
    for inst in spec.instances() {
        for a in 0..inst.arity() {
            let attr = AttrId(a as u32);
            for (lesser, greater) in inst.order(attr).iter() {
                out.push(SpecComponent::OrderFact {
                    rel: inst.rel(),
                    attr,
                    lesser,
                    greater,
                });
            }
        }
    }
    for i in 0..spec.copies().len() {
        out.push(SpecComponent::Copy(i));
    }
    out
}

/// Decide whether a spec-with-kept-components is inconsistent.  Cyclic
/// initial orders surface as validation errors from the solvers; for core
/// extraction they simply mean "still inconsistent".
fn inconsistent(spec: &Specification) -> Result<bool, ReasonError> {
    if spec.validate().is_err() {
        return Ok(true);
    }
    Ok(!cps(spec)?)
}

/// Compute a minimal inconsistent core of `spec`.
///
/// Returns `Ok(None)` when the specification is consistent.  Cost: one
/// CPS call per component (deletion loop), so this inherits CPS's
/// complexity — intended for the diagnostic path, not the hot path.
pub fn explain_inconsistency(
    spec: &Specification,
) -> Result<Option<InconsistencyCore>, ReasonError> {
    if !inconsistent(spec)? {
        return Ok(None);
    }
    let mut core = all_components(spec);
    let mut ix = 0;
    while ix < core.len() {
        let mut candidate = core.clone();
        candidate.remove(ix);
        if inconsistent(&rebuild(spec, &candidate))? {
            core = candidate; // component not needed for the conflict
        } else {
            ix += 1; // component is necessary; keep it
        }
    }
    Ok(Some(InconsistencyCore { components: core }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use currency_core::{
        Catalog, CmpOp, DenialConstraint, Eid, RelationSchema, Term, Tuple, Value,
    };

    const A: AttrId = AttrId(0);
    const B: AttrId = AttrId(1);

    fn base() -> (Specification, RelId) {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A", "B"]));
        let mut spec = Specification::new(cat);
        for (a, b) in [(10, 1), (20, 2)] {
            spec.instance_mut(r)
                .push_tuple(Tuple::new(Eid(1), vec![Value::int(a), Value::int(b)]))
                .unwrap();
        }
        (spec, r)
    }

    #[test]
    fn consistent_spec_has_no_core() {
        let (spec, _) = base();
        assert!(explain_inconsistency(&spec).unwrap().is_none());
    }

    #[test]
    fn conflicting_constraint_and_order_form_the_core() {
        let (mut spec, r) = base();
        // Constraint: higher A ⇒ more current in A (forces t0 ≺ t1)...
        spec.add_constraint(
            DenialConstraint::builder(r, 2)
                .when_cmp(Term::attr(0, A), CmpOp::Gt, Term::attr(1, A))
                .then_order(1, A, 0)
                .build()
                .unwrap(),
        )
        .unwrap();
        // ... an unrelated constraint that plays no role ...
        spec.add_constraint(
            DenialConstraint::builder(r, 2)
                .when_order(0, B, 1)
                .then_order(0, B, 1)
                .build()
                .unwrap(),
        )
        .unwrap();
        // ... and a recorded order contradicting the first constraint.
        spec.instance_mut(r)
            .add_order(A, currency_core::TupleId(1), currency_core::TupleId(0))
            .unwrap();
        let core = explain_inconsistency(&spec).unwrap().expect("inconsistent");
        assert_eq!(core.constraint_indices(), vec![0], "only φ₁ participates");
        assert_eq!(core.components.len(), 2, "φ₁ + the order fact");
        assert!(core
            .components
            .iter()
            .any(|c| matches!(c, SpecComponent::OrderFact { .. })));
    }

    #[test]
    fn cyclic_orders_form_a_two_fact_core() {
        let (mut spec, r) = base();
        spec.instance_mut(r)
            .add_order(A, currency_core::TupleId(0), currency_core::TupleId(1))
            .unwrap();
        spec.instance_mut(r)
            .add_order(A, currency_core::TupleId(1), currency_core::TupleId(0))
            .unwrap();
        let core = explain_inconsistency(&spec).unwrap().expect("inconsistent");
        assert_eq!(core.components.len(), 2);
        assert!(core.constraint_indices().is_empty());
    }

    #[test]
    fn core_is_minimal() {
        let (mut spec, r) = base();
        spec.add_constraint(
            DenialConstraint::builder(r, 2)
                .when_cmp(Term::attr(0, A), CmpOp::Gt, Term::attr(1, A))
                .then_order(1, A, 0)
                .build()
                .unwrap(),
        )
        .unwrap();
        spec.instance_mut(r)
            .add_order(A, currency_core::TupleId(1), currency_core::TupleId(0))
            .unwrap();
        let core = explain_inconsistency(&spec).unwrap().expect("inconsistent");
        // Dropping any single component of the core must restore
        // consistency.
        for drop in 0..core.components.len() {
            let mut kept = core.components.clone();
            kept.remove(drop);
            assert!(!inconsistent(&rebuild(&spec, &kept)).unwrap());
        }
    }
}
