//! Epoch-published snapshot views for concurrent query serving.
//!
//! The live [`CurrencyEngine`](crate::engine::CurrencyEngine) answers all
//! queries through per-component mutexes: correct, but a single hot
//! component serializes every reader that touches it, and a writer
//! applying deltas contends with all of them.  This module splits the
//! compiled state into an **immutable, shareable snapshot** so that a
//! read-mostly fleet never blocks:
//!
//! * [`EngineSnapshot`] — one epoch's frozen view: the specification, the
//!   entity partition, and every component's compiled encoding (learnt
//!   clauses and lazy-transitivity lemmas included, since the writer
//!   solves each rebuilt component before publishing).  All of it sits
//!   behind `Arc`s, so a snapshot is a handful of pointer bumps to
//!   retain and queries on it take `&self` with **zero locks**.
//! * [`SnapshotEngine`] — the single writer.  `apply` runs the same
//!   O(dirty region) machinery as the live engine ([`Partition::refresh`]
//!   plus per-slot recompilation), re-solves exactly the rebuilt slots,
//!   and publishes the next snapshot under a bumped epoch.  Clean slots
//!   are carried over as shared `Arc`s — consecutive snapshots share
//!   every encoding outside the dirty region.  (Publishing also
//!   copy-on-writes the spec and partition metadata for isolation; that
//!   is a flat copy with no solver state, cheap next to a component
//!   compile.)
//! * [`SnapshotCell`] — the hand-rolled arc-swap the writer publishes
//!   through: a `Mutex<Arc<EngineSnapshot>>` whose `load()` is
//!   lock-then-clone-the-`Arc`, held for nanoseconds and recoverable
//!   from poisoning, so a crashed reader can neither wedge the publish
//!   path nor corrupt the published view (snapshots are immutable).
//! * [`SnapshotReader`] — a reader's pinned view plus **per-reader
//!   solver scratch**: assumption solves (COP) clone the component's
//!   encoding into private scratch instead of locking a shared solver,
//!   so N readers never block each other or the writer, and learnt
//!   clauses still amortize across one reader's query stream.  Re-pinning
//!   a newer epoch refreshes stale scratch in place
//!   (`Encoding::clone_from`, which reuses the scratch's buffers).
//!
//! The serving front door (answer cache, rate limiting, stats) lives on
//! top of this module in the `currency-serve` crate.

use crate::ccqa::CertainAnswers;
use crate::cop::CurrencyOrderQuery;
use crate::encode::{Bounds, Encoding};
use crate::engine::{
    check_product_budget, effective_threads, for_each_combination, intersect_certain_answers,
    run_indexed, ComponentModels, EngineStats,
};
use crate::error::ReasonError;
use crate::obs::EngineObs;
use crate::partition::Partition;
use crate::{CompactBudget, Options, SolveLimits};
use currency_core::NormalInstance;
use currency_core::{
    CompactReport, CompactStepReport, Eid, RelId, SpecDelta, Specification, TupleId, Value,
};
use currency_obs::{SpanGuard, TraceEvent, TraceKind};
use currency_query::Query;
use currency_sat::SolverStats;
use currency_sat::{Enumeration, SolveResult};
use std::collections::hash_map::Entry;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One component slot of a snapshot: the compiled encoding (already
/// solved, so its satisfiability and learnt clauses are baked in) plus
/// the cached verdict.
#[derive(Clone)]
struct SlotView {
    enc: Arc<Encoding>,
    sat: bool,
}

/// Lifetime counters the writer stamps into each published snapshot.
#[derive(Clone, Copy, Debug, Default)]
struct LifetimeCounters {
    updates_applied: usize,
    components_rebuilt: usize,
    components_reused: usize,
    compactions: usize,
    compact_steps: usize,
    slots_reclaimed: usize,
}

/// An immutable, shareable view of a compiled specification at one epoch.
///
/// Everything a query needs — spec, partition, per-component encodings
/// with their cached solver state — is frozen behind `Arc`s.  Query
/// methods that never mutate solver state live here and take `&self`
/// with no locking; entailment queries (COP) need a mutable solver and
/// live on [`SnapshotReader`], which keeps private scratch.
pub struct EngineSnapshot {
    epoch: u64,
    spec: Arc<Specification>,
    value_rels: Arc<Vec<RelId>>,
    partition: Arc<Partition>,
    slots: Vec<SlotView>,
    consistent: bool,
    opts: Options,
    lifetime: LifetimeCounters,
}

impl EngineSnapshot {
    /// The epoch this snapshot was published under.  Epochs increase by
    /// one per publication; equal epochs mean identical state, so the
    /// epoch is a sound cache-invalidation key.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The specification this snapshot answers for.
    pub fn spec(&self) -> &Specification {
        &self.spec
    }

    /// A retained handle on the specification (an `Arc` bump, no copy) —
    /// e.g. for differential tests that rebuild a reference engine at a
    /// past epoch.
    pub fn spec_arc(&self) -> Arc<Specification> {
        self.spec.clone()
    }

    /// The entity partition of this snapshot.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The options the snapshot was compiled under.
    pub fn options(&self) -> &Options {
        &self.opts
    }

    /// **CPS** — is the specification consistent?  Precomputed by the
    /// writer (every slot is solved before publication), so this is a
    /// field read.
    pub fn cps(&self) -> bool {
        self.consistent
    }

    /// Aggregate counters, readable lock-free while any number of
    /// readers and the writer are active: the per-slot encodings are
    /// immutable, so scraping their sizes never blocks a query.
    pub fn stats(&self) -> EngineStats {
        let mut stats = EngineStats {
            components: self.partition.len(),
            cells: self
                .partition
                .components()
                .iter()
                .map(|c| c.cells.len())
                .sum(),
            updates_applied: self.lifetime.updates_applied,
            components_rebuilt: self.lifetime.components_rebuilt,
            components_reused: self.lifetime.components_reused,
            compactions: self.lifetime.compactions,
            compact_steps: self.lifetime.compact_steps,
            slots_reclaimed: self.lifetime.slots_reclaimed,
            ..EngineStats::default()
        };
        for slot in &self.slots {
            stats.vars += slot.enc.num_vars();
            stats.clauses += slot.enc.num_clauses();
            stats.sat += slot.enc.solver_stats();
        }
        stats
    }

    /// **DCIP** — do all completions agree on the current instance of
    /// `rel`?  Enumerates at most two rel-projected models per touched
    /// component on throwaway clones of the shared encodings.
    pub fn dcip(&self, rel: RelId) -> Result<bool, ReasonError> {
        self.dcip_with(rel, &self.opts)
    }

    /// [`EngineSnapshot::dcip`] under a caller-supplied `Options` (the
    /// [`SnapshotReader`] threads its per-request deadline through here).
    pub(crate) fn dcip_with(&self, rel: RelId, opts: &Options) -> Result<bool, ReasonError> {
        self.require_value_rel(rel)?;
        if !self.consistent {
            return Ok(true); // vacuously deterministic
        }
        let bounds = Bounds::from_options(opts);
        let touched = self.partition.components_touching(rel);
        for ix in touched {
            let shared = &self.slots[ix].enc;
            let (_, vars) = shared.restricted_projection(&[rel]);
            if vars.is_empty() {
                continue; // every completion yields the same rows
            }
            let mut enc = (**shared).clone();
            let mut count = 0usize;
            let enumeration =
                enc.for_each_model_bounded(&vars, opts.max_models, &bounds, |_| {
                    count += 1;
                    count < 2
                })?;
            if let Enumeration::LimitReached(n) = enumeration {
                return Err(ReasonError::BudgetExceeded {
                    what: "current-instance enumeration (DCIP)",
                    budget: opts.max_models,
                    spent: n,
                });
            }
            if count >= 2 {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// **CCQA** — is `tuple` a certain current answer of `query`?
    pub fn ccqa(&self, query: &Query, tuple: &[Value]) -> Result<bool, ReasonError> {
        Ok(self.certain_answers(query)?.contains(tuple))
    }

    /// The certain current answers of `query`, composed per component
    /// exactly like the live engine's — but against the snapshot's
    /// immutable encodings, with All-SAT blocking clauses confined to
    /// throwaway clones.
    pub fn certain_answers(&self, query: &Query) -> Result<CertainAnswers, ReasonError> {
        self.certain_answers_with(query, &self.opts)
    }

    /// [`EngineSnapshot::certain_answers`] under a caller-supplied
    /// `Options`.
    pub(crate) fn certain_answers_with(
        &self,
        query: &Query,
        opts: &Options,
    ) -> Result<CertainAnswers, ReasonError> {
        let rels: Vec<RelId> = query.body().relations().into_iter().collect();
        for &rel in &rels {
            self.require_value_rel(rel)?;
        }
        if !self.consistent {
            return Ok(CertainAnswers::Inconsistent);
        }
        let touched = self.touched_components(&rels);
        let per_comp = self.enumerate_component_models(
            &rels,
            &touched,
            opts,
            "current-instance enumeration (CCQA)",
        )?;
        intersect_certain_answers(query, &rels, &per_comp, opts.deadline, |cm, model| {
            self.decode(&rels, cm, model)
        })
    }

    /// The realizable current instances of `rel` (up to the model
    /// budget), composed across components.
    pub fn current_instances(&self, rel: RelId) -> Result<Vec<NormalInstance>, ReasonError> {
        self.current_instances_with(rel, &self.opts)
    }

    /// [`EngineSnapshot::current_instances`] under a caller-supplied
    /// `Options`.
    pub(crate) fn current_instances_with(
        &self,
        rel: RelId,
        opts: &Options,
    ) -> Result<Vec<NormalInstance>, ReasonError> {
        self.require_value_rel(rel)?;
        if !self.consistent {
            return Ok(Vec::new());
        }
        let rels = [rel];
        let touched = self.partition.components_touching(rel);
        let per_comp =
            self.enumerate_component_models(&rels, &touched, opts, "current-instance enumeration")?;
        let mut out: Vec<NormalInstance> = Vec::new();
        for_each_combination(
            &per_comp,
            opts.deadline,
            |cm, model| self.decode(&rels, cm, model),
            |rows| {
                let mut inst = NormalInstance::new(rel);
                for (_, t) in rows {
                    inst.push(t);
                }
                out.push(inst);
                true
            },
        )?;
        Ok(out)
    }

    fn decode(
        &self,
        rels: &[RelId],
        cm: &ComponentModels,
        model: &[bool],
    ) -> Vec<(RelId, currency_core::Tuple)> {
        self.slots[cm.comp]
            .enc
            .decode_restricted(&self.spec, rels, &cm.indices, model)
    }

    /// The components holding cells of any of `rels`, deduplicated.
    fn touched_components(&self, rels: &[RelId]) -> Vec<usize> {
        let mut out: Vec<usize> = rels
            .iter()
            .flat_map(|&rel| self.partition.components_touching(rel))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Enumerate each listed component's projected models over `rels`
    /// (parallel under [`Options::threads`], on throwaway clones of the
    /// shared encodings — no lock is taken or needed).
    fn enumerate_component_models(
        &self,
        rels: &[RelId],
        comps: &[usize],
        opts: &Options,
        what: &'static str,
    ) -> Result<Vec<ComponentModels>, ReasonError> {
        let per_comp = run_indexed(effective_threads(opts), comps.len(), |k| {
            let ix = comps[k];
            let shared = &self.slots[ix].enc;
            let (indices, vars) = shared.restricted_projection(rels);
            if vars.is_empty() {
                // One realizable outcome: the component's fixed rows.
                return Ok(ComponentModels {
                    comp: ix,
                    indices,
                    models: vec![Vec::new()],
                });
            }
            let bounds = Bounds::from_options(opts);
            let mut enc = (**shared).clone();
            let mut models: Vec<Vec<bool>> = Vec::new();
            let enumeration = enc.for_each_model_bounded(&vars, opts.max_models, &bounds, |m| {
                models.push(m.to_vec());
                true
            })?;
            if let Enumeration::LimitReached(n) = enumeration {
                return Err(ReasonError::BudgetExceeded {
                    what,
                    budget: opts.max_models,
                    spent: n,
                });
            }
            Ok(ComponentModels {
                comp: ix,
                indices,
                models,
            })
        })?;
        check_product_budget(&per_comp, opts.max_models, what)?;
        Ok(per_comp)
    }

    fn require_value_rel(&self, rel: RelId) -> Result<(), ReasonError> {
        if self.value_rels.contains(&rel) {
            Ok(())
        } else {
            Err(ReasonError::UnsupportedQuery {
                detail: format!(
                    "relation {rel:?} has no value indicators in this snapshot; \
                     build the SnapshotEngine with new or include the relation \
                     in with_value_rels"
                ),
            })
        }
    }
}

/// The hand-rolled arc-swap snapshots are published through.
///
/// `load()` locks, clones the `Arc`, unlocks — the critical section is a
/// pointer copy, so it is lock-free in practice.  Both sides recover
/// from poisoning: the protected value is just an `Arc`, which a panic
/// cannot leave half-updated, so a reader that dies while loading can
/// neither wedge the writer's publish path nor corrupt the view.
pub struct SnapshotCell {
    current: Mutex<Arc<EngineSnapshot>>,
    /// Poison recoveries on `load`/`store`: the recovery is safe (the
    /// protected value is an `Arc` a panic cannot tear) but it means a
    /// reader died mid-operation, so it is counted instead of swallowed —
    /// `currency-serve` surfaces it as `ServeStats::degraded_events`.
    degraded: AtomicU64,
}

impl SnapshotCell {
    fn new(snap: Arc<EngineSnapshot>) -> SnapshotCell {
        SnapshotCell {
            current: Mutex::new(snap),
            degraded: AtomicU64::new(0),
        }
    }

    /// The most recently published snapshot (an `Arc` bump).
    pub fn load(&self) -> Arc<EngineSnapshot> {
        self.current
            .lock()
            .unwrap_or_else(|poisoned| {
                // Clear the flag so one crash is one event, not one per
                // subsequent load.
                self.current.clear_poison();
                self.degraded.fetch_add(1, Ordering::Relaxed);
                poisoned.into_inner()
            })
            .clone()
    }

    /// The epoch of the most recently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.load().epoch
    }

    /// Times a `load`/`store` recovered from a poisoned lock (a reader
    /// or writer panicked while holding it).  Each recovery is benign in
    /// isolation, but a climbing count means queries are crashing —
    /// operators should see it, not have it recovered silently.
    pub fn degraded_events(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }

    fn store(&self, next: Arc<EngineSnapshot>) {
        *self.current.lock().unwrap_or_else(|poisoned| {
            self.current.clear_poison();
            self.degraded.fetch_add(1, Ordering::Relaxed);
            poisoned.into_inner()
        }) = next;
    }
}

/// What one [`SnapshotEngine::apply`] published.
#[derive(Clone, Debug)]
pub struct PublishReport {
    /// The epoch the resulting snapshot was published under.
    pub epoch: u64,
    /// Components recompiled (and re-solved) by this delta.
    pub components_rebuilt: usize,
    /// Components whose compiled `Arc` was carried over untouched.
    pub components_reused: usize,
    /// Number of `(relation, entity)` cells the delta touched.
    pub cells_touched: usize,
    /// Ids assigned to tuples the delta inserted, in operation order.
    pub inserted: Vec<(RelId, TupleId)>,
    /// The compaction the [`Options::auto_compact_tombstones`] policy
    /// triggered after this delta, if any (ids in `inserted` stay in
    /// pre-compaction form; translate via [`CompactReport::new_id`]).
    pub compacted: Option<CompactReport>,
    /// The bounded compaction step the [`Options::auto_compact_budget`]
    /// policy ran after this delta, if any.  Only the ids its slices
    /// remapped are invalidated; translate via
    /// [`CompactStepReport::new_id`].
    pub compact_step: Option<CompactStepReport>,
}

/// The single writer of an epoch-published engine.
///
/// Owns the working copy of the specification, partition and per-slot
/// encodings; [`SnapshotEngine::apply`] mutates them through the same
/// O(dirty region) refresh path as the live engine, re-solves exactly
/// the rebuilt slots, and publishes the next [`EngineSnapshot`] through
/// the shared [`SnapshotCell`].  Readers hold the cell (via
/// [`SnapshotEngine::cell`]) and never touch the writer.
pub struct SnapshotEngine {
    spec: Arc<Specification>,
    value_rels: Arc<Vec<RelId>>,
    partition: Arc<Partition>,
    slots: Vec<SlotView>,
    /// Shared trivially-satisfiable encoding for vacated slots.
    vacant: Arc<Encoding>,
    /// Count of slots whose encoding is unsatisfiable.
    unsat: usize,
    epoch: u64,
    opts: Options,
    cell: Arc<SnapshotCell>,
    counters: LifetimeCounters,
    /// Metric handles + trace recorder (see [`EngineObs`]).
    obs: EngineObs,
}

impl SnapshotEngine {
    /// Compile `spec` with value indicators for every relation and
    /// publish the epoch-0 snapshot.
    pub fn new(spec: Specification, opts: &Options) -> Result<SnapshotEngine, ReasonError> {
        let value_rels: Vec<RelId> = spec.instances().iter().map(|i| i.rel()).collect();
        SnapshotEngine::with_value_rels(spec, &value_rels, opts)
    }

    /// Compile `spec` with value indicators for `value_rels` only (see
    /// [`CurrencyEngine::with_value_rels`](crate::engine::CurrencyEngine::with_value_rels)).
    pub fn with_value_rels(
        spec: Specification,
        value_rels: &[RelId],
        opts: &Options,
    ) -> Result<SnapshotEngine, ReasonError> {
        spec.validate()?;
        let value_rels = Arc::new(value_rels.to_vec());
        let partition = Partition::of(&spec);
        let slots = build_slots(&spec, &value_rels, opts, &partition)?;
        let unsat = slots.iter().filter(|s| !s.sat).count();
        let vacant = Arc::new(Encoding::vacant(&value_rels, opts.transitivity));
        let mut engine = SnapshotEngine {
            spec: Arc::new(spec),
            value_rels,
            partition: Arc::new(partition),
            slots,
            vacant,
            unsat,
            epoch: 0,
            opts: *opts,
            cell: Arc::new(SnapshotCell::new(Arc::new(EngineSnapshot {
                epoch: 0,
                spec: Arc::new(empty_spec()),
                value_rels: Arc::new(Vec::new()),
                partition: Arc::new(Partition::of(&empty_spec())),
                slots: Vec::new(),
                consistent: true,
                opts: *opts,
                lifetime: LifetimeCounters::default(),
            }))),
            counters: LifetimeCounters::default(),
            obs: EngineObs::new(),
        };
        engine.publish();
        Ok(engine)
    }

    /// The writer's observability bundle (metric handles, recorder).
    pub fn obs(&self) -> &EngineObs {
        &self.obs
    }

    /// Mutable access for wiring: bind the handles onto a shared
    /// registry, attach a trace recorder, or switch metrics off.
    pub fn obs_mut(&mut self) -> &mut EngineObs {
        &mut self.obs
    }

    /// Apply a delta and publish the resulting snapshot under a bumped
    /// epoch.
    ///
    /// The refresh is the live engine's O(dirty region) path: only the
    /// touched component slots are recompiled (in parallel under
    /// [`Options::threads`]) and re-solved; every clean slot's `Arc` is
    /// carried into the next snapshot unchanged, so consecutive
    /// snapshots share all compiled state outside the dirty region.  On
    /// error nothing is mutated and nothing is published.
    pub fn apply(&mut self, delta: &SpecDelta) -> Result<PublishReport, ReasonError> {
        let recorder = self.obs.recorder().clone();
        let apply_span = SpanGuard::enter(&*recorder, "engine.apply", 0);
        let parent = apply_span.as_ref().map_or(0, SpanGuard::id);
        let clock = self.obs.clock();
        let validate_span = SpanGuard::enter(&*recorder, "engine.validate", parent);
        // The published snapshot shares our spec `Arc`, so `make_mut`
        // copies it on write; validate first so a rejected delta costs
        // no copy.
        delta.validate(&self.spec)?;
        let effects = Arc::make_mut(&mut self.spec).apply_delta(delta)?;
        drop(validate_span);
        self.obs.lap(clock, &self.obs.apply_validate_ns);
        let plan = self.rebuild_touched(&effects.touched_cells, parent)?;
        self.counters.updates_applied += 1;
        if let Some(start) = clock {
            self.obs.apply_ns.record(start.elapsed().as_nanos() as u64);
            self.obs.applies_total.inc();
        }
        let mut report = PublishReport {
            epoch: 0, // filled in after the publish below
            components_rebuilt: plan.rebuilt(),
            components_reused: plan.reused(),
            cells_touched: effects.touched_cells.len(),
            inserted: effects.inserted,
            compacted: None,
            compact_step: None,
        };
        if self.opts.auto_compact_tombstones > 0 {
            let tombstones: usize = self.spec.instances().iter().map(|i| i.tombstones()).sum();
            if tombstones >= self.opts.auto_compact_tombstones {
                if let Some(budget) = self.opts.auto_compact_budget {
                    // One slot-bounded step per apply; the delta and the
                    // step publish as a single epoch.
                    report.compact_step = Some(self.compact_step_inner(budget.max_slots_per_step)?);
                } else {
                    report.compacted = Some(self.compact_inner()?);
                }
            }
        }
        self.publish();
        report.epoch = self.epoch;
        Ok(report)
    }

    /// Recompile, re-solve and patch exactly the slots owning `touched`
    /// cells — the shared tail of [`SnapshotEngine::apply`] and
    /// [`SnapshotEngine::compact_step`].  Does not publish; the caller
    /// decides the epoch boundary.
    fn rebuild_touched(
        &mut self,
        touched: &BTreeSet<(RelId, Eid)>,
        parent_span: u64,
    ) -> Result<crate::partition::RefreshPlan, ReasonError> {
        let recorder = self.obs.recorder().clone();
        let clock = self.obs.clock();
        let plan = {
            let _span = SpanGuard::enter(&*recorder, "engine.refresh", parent_span);
            Arc::make_mut(&mut self.partition).refresh(self.spec.as_ref(), touched)
        };
        let clock = self.obs.lap(clock, &self.obs.apply_refresh_ns);
        // Compile *and solve* the rebuilt slots before patching any
        // state: the fallible step cannot leave the writer half-updated,
        // and solving here bakes the verdict (and any lazy lemmas) into
        // the published encoding so readers start warm.
        let transitivity = self.opts.transitivity;
        let compiled: Vec<SlotView> = {
            let _span = SpanGuard::enter(&*recorder, "engine.recompile", parent_span);
            let spec = self.spec.as_ref();
            let partition = self.partition.as_ref();
            let value_rels = &self.value_rels;
            let rebuilt = &plan.rebuilt;
            run_indexed(effective_threads(&self.opts), rebuilt.len(), |k| {
                Ok(compile_slot(
                    spec,
                    value_rels,
                    &partition.components()[rebuilt[k]],
                    transitivity,
                ))
            })?
        };
        self.obs.lap(clock, &self.obs.apply_recompile_ns);
        if self.obs.enabled() {
            // Each rebuilt slot is a fresh encoding solved during
            // compilation, so its absolute counters *are* the
            // per-solve delta.
            for view in &compiled {
                let stats: SolverStats = view.enc.solver_stats();
                self.obs.solver_conflicts.record(stats.conflicts);
                self.obs.solver_propagations.record(stats.propagations);
                self.obs.solver_lemmas.record(stats.lemmas_added);
            }
        }
        for &slot in &plan.freed {
            self.retire(slot);
            self.slots[slot] = SlotView {
                enc: self.vacant.clone(),
                sat: true,
            };
        }
        for (&slot, view) in plan.rebuilt.iter().zip(compiled) {
            if !view.sat {
                self.unsat += 1;
            }
            if slot < self.slots.len() {
                self.retire(slot);
                self.slots[slot] = view;
            } else {
                debug_assert_eq!(slot, self.slots.len(), "appends are contiguous");
                self.slots.push(view);
            }
        }
        debug_assert_eq!(self.slots.len(), plan.slots, "slot arrays aligned");
        self.counters.components_rebuilt += plan.rebuilt();
        self.counters.components_reused += plan.reused();
        Ok(plan)
    }

    /// Reclaim every tombstone slot and publish the rebuilt state (a
    /// full rebuild, priced accordingly — see
    /// [`CurrencyEngine::compact`](crate::engine::CurrencyEngine::compact)).
    /// With no tombstones this is a no-op: nothing is rebuilt and no new
    /// epoch is published.
    pub fn compact(&mut self) -> Result<CompactReport, ReasonError> {
        let report = self.compact_inner()?;
        if report.reclaimed > 0 {
            self.publish();
        }
        Ok(report)
    }

    fn compact_inner(&mut self) -> Result<CompactReport, ReasonError> {
        let tombstones: usize = self.spec.instances().iter().map(|i| i.tombstones()).sum();
        if tombstones == 0 {
            return Ok(CompactReport {
                reclaimed: 0,
                remap: Vec::new(),
            });
        }
        let report = Arc::make_mut(&mut self.spec).compact();
        self.partition = Arc::new(Partition::of(self.spec.as_ref()));
        self.slots = build_slots(
            self.spec.as_ref(),
            &self.value_rels,
            &self.opts,
            &self.partition,
        )?;
        self.unsat = self.slots.iter().filter(|s| !s.sat).count();
        self.counters.compactions += 1;
        self.counters.slots_reclaimed += report.reclaimed;
        Ok(report)
    }

    /// Run one bounded compaction step and publish the result as a new
    /// epoch (see
    /// [`CurrencyEngine::compact_step`](crate::engine::CurrencyEngine::compact_step)
    /// for the step semantics).  Readers pinned to earlier epochs keep
    /// answering against their snapshot's pre-step tuple ids; each
    /// completed step is exactly one published epoch, so an id is valid
    /// for precisely the epochs between the steps that created and
    /// remapped it.  A step that reclaimed nothing publishes no epoch.
    pub fn compact_step(
        &mut self,
        budget: &CompactBudget,
    ) -> Result<CompactStepReport, ReasonError> {
        let deadline = Instant::now() + budget.max_pause;
        let step = self.compact_step_bounded(budget.max_slots_per_step, Some(deadline))?;
        if !step.slices.is_empty() {
            self.publish();
        }
        Ok(step)
    }

    /// The deterministic (slot-bounded only) step the auto policy runs;
    /// the caller publishes.
    fn compact_step_inner(&mut self, max_slots: usize) -> Result<CompactStepReport, ReasonError> {
        self.compact_step_bounded(max_slots, None)
    }

    fn compact_step_bounded(
        &mut self,
        max_slots: usize,
        deadline: Option<Instant>,
    ) -> Result<CompactStepReport, ReasonError> {
        let mut step = CompactStepReport::default();
        let tombstones: usize = self.spec.instances().iter().map(|i| i.tombstones()).sum();
        if tombstones == 0 {
            step.done = true;
            return Ok(step);
        }
        let clock = self.obs.clock();
        let max_slots = max_slots.max(1);
        {
            let spec = Arc::make_mut(&mut self.spec);
            let mut scanned = 0usize;
            while scanned < max_slots {
                if let Some(d) = deadline {
                    if !step.slices.is_empty() && Instant::now() >= d {
                        break;
                    }
                }
                let quantum = SNAPSHOT_SLICE_QUANTUM.min(max_slots - scanned);
                let Some(slice) = spec.compact_slice(quantum) else {
                    break;
                };
                scanned += ((slice.end - slice.start) as usize).max(1);
                step.reclaimed += slice.reclaimed as usize;
                step.slices.push(slice);
            }
            step.done = spec.total_tombstones() == 0;
        }
        if !step.slices.is_empty() {
            // Rebuild (and re-solve) only the slots owning a remapped
            // tuple; every clean slot's `Arc` carries into the next
            // snapshot unchanged.
            let mut touched: BTreeSet<(RelId, Eid)> = BTreeSet::new();
            for slice in &step.slices {
                let inst = self.spec.instance(slice.rel);
                for new_id in slice.remap.iter().flatten() {
                    touched.insert((slice.rel, inst.tuple(*new_id).eid));
                }
            }
            if !touched.is_empty() {
                self.rebuild_touched(&touched, 0)?;
            }
            self.counters.compact_steps += 1;
            self.counters.slots_reclaimed += step.reclaimed;
        }
        if let Some(start) = clock {
            self.obs
                .compact_step_pause_ns
                .record(start.elapsed().as_nanos() as u64);
        }
        Ok(step)
    }

    /// Bump the epoch and swap the assembled snapshot into the cell.
    fn publish(&mut self) {
        self.epoch += 1;
        if self.obs.enabled() {
            self.obs.snapshot_epoch.set(self.epoch);
        }
        let recorder = self.obs.recorder();
        if recorder.enabled() {
            recorder.record(TraceEvent {
                ts_ns: currency_obs::now_ns(),
                kind: TraceKind::Event,
                name: "snapshot.publish",
                span: 0,
                parent: 0,
                value: self.epoch,
            });
        }
        let snap = Arc::new(EngineSnapshot {
            epoch: self.epoch,
            spec: self.spec.clone(),
            value_rels: self.value_rels.clone(),
            partition: self.partition.clone(),
            slots: self.slots.clone(),
            consistent: !self.partition.has_ground_falsum && self.unsat == 0,
            opts: self.opts,
            lifetime: self.counters,
        });
        self.cell.store(snap);
    }

    fn retire(&mut self, slot: usize) {
        if !self.slots[slot].sat {
            self.unsat -= 1;
        }
    }

    /// The shared cell readers load snapshots from.
    pub fn cell(&self) -> Arc<SnapshotCell> {
        self.cell.clone()
    }

    /// The most recently published snapshot.
    pub fn snapshot(&self) -> Arc<EngineSnapshot> {
        self.cell.load()
    }

    /// A reader pinned to the current snapshot.
    pub fn reader(&self) -> SnapshotReader {
        SnapshotReader::new(self.cell.load())
    }

    /// The current epoch (equals the published snapshot's).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The specification the writer currently holds (the next snapshot's
    /// content; equal to the published one between calls).
    pub fn spec(&self) -> &Specification {
        &self.spec
    }

    /// The writer's options.
    pub fn options(&self) -> &Options {
        &self.opts
    }

    /// Aggregate counters of the current state (readable without locks;
    /// equals the published snapshot's [`EngineSnapshot::stats`]).
    pub fn stats(&self) -> EngineStats {
        self.snapshot().stats()
    }
}

/// Internal scan granularity of one compaction slice (the writer's
/// deadline is consulted at least once per this many slots scanned).
const SNAPSHOT_SLICE_QUANTUM: usize = 1024;

/// The placeholder a [`SnapshotCell`] holds for the instant between
/// field construction and the constructor's first publish.
fn empty_spec() -> Specification {
    Specification::new(currency_core::Catalog::new())
}

/// Compile one component and solve it immediately, so the published
/// encoding carries its verdict, learnt clauses and lazy lemmas.
fn compile_slot(
    spec: &Specification,
    value_rels: &[RelId],
    component: &crate::partition::Component,
    transitivity: crate::TransitivityMode,
) -> SlotView {
    let mut enc = Encoding::for_component(spec, value_rels, component, transitivity);
    let sat = enc.solve() == SolveResult::Sat;
    SlotView {
        enc: Arc::new(enc),
        sat,
    }
}

/// Compile and solve every slot of `partition` (parallel under
/// `opts.threads`) — construction and post-compaction rebuild share this
/// so the two can never drift.
fn build_slots(
    spec: &Specification,
    value_rels: &[RelId],
    opts: &Options,
    partition: &Partition,
) -> Result<Vec<SlotView>, ReasonError> {
    let transitivity = opts.transitivity;
    run_indexed(effective_threads(opts), partition.slots(), |ix| {
        Ok(compile_slot(
            spec,
            value_rels,
            &partition.components()[ix],
            transitivity,
        ))
    })
}

/// One entry of a reader's private solver scratch: a clone of a slot's
/// encoding, stamped with the epoch it was cloned at.
struct ScratchSlot {
    epoch: u64,
    enc: Encoding,
}

/// A reader: a pinned snapshot plus per-reader solver scratch.
///
/// Queries that need a mutable solver (COP's assumption solves) clone
/// the touched component's encoding into the reader's own scratch on
/// first use and keep querying that private copy — learnt clauses
/// accumulate there, amortizing across the reader's stream, and no
/// shared state is ever locked or written.  [`SnapshotReader::pin`]
/// moves the reader to a newer snapshot; stale scratch entries are
/// refreshed lazily in place (`Encoding::clone_from` reuses their
/// buffers) the next time their slot is queried.
pub struct SnapshotReader {
    snap: Arc<EngineSnapshot>,
    scratch: HashMap<usize, ScratchSlot>,
    scratch_clones: u64,
    scratch_refreshes: u64,
    /// Per-request wall-clock deadline layered over the snapshot's
    /// options for every query until changed.
    deadline: Option<Instant>,
    /// Per-solve budget override layered over the snapshot's options.
    solve_limits: Option<SolveLimits>,
}

impl SnapshotReader {
    /// A reader pinned to `snap`.
    pub fn new(snap: Arc<EngineSnapshot>) -> SnapshotReader {
        SnapshotReader {
            snap,
            scratch: HashMap::new(),
            scratch_clones: 0,
            scratch_refreshes: 0,
            deadline: None,
            solve_limits: None,
        }
    }

    /// Set (or clear) the wall-clock deadline applied to every following
    /// query on this reader.  A query that cannot finish in time returns
    /// [`ReasonError::Interrupted`] — never a wrong verdict — and leaves
    /// the reader usable; serving layers set this per request.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// Set (or clear) a per-solve work budget overriding the snapshot's
    /// [`Options::solve_limits`] for every following query.
    pub fn set_solve_limits(&mut self, limits: Option<SolveLimits>) {
        self.solve_limits = limits;
    }

    /// The snapshot's options with this reader's per-request overrides
    /// applied.
    fn effective_options(&self) -> Options {
        let mut opts = self.snap.opts;
        if self.deadline.is_some() {
            opts.deadline = self.deadline;
        }
        if let Some(limits) = self.solve_limits {
            opts.solve_limits = limits;
        }
        opts
    }

    /// Re-pin to `snap` (typically a fresh [`SnapshotCell::load`]).
    /// Scratch survives; entries from older epochs are refreshed on
    /// their next use.
    pub fn pin(&mut self, snap: Arc<EngineSnapshot>) {
        self.snap = snap;
    }

    /// The pinned snapshot's epoch.
    pub fn epoch(&self) -> u64 {
        self.snap.epoch
    }

    /// The pinned snapshot.
    pub fn snapshot(&self) -> &Arc<EngineSnapshot> {
        &self.snap
    }

    /// Scratch encodings cloned fresh over this reader's lifetime.
    pub fn scratch_clones(&self) -> u64 {
        self.scratch_clones
    }

    /// Stale scratch encodings refreshed in place after an epoch change.
    pub fn scratch_refreshes(&self) -> u64 {
        self.scratch_refreshes
    }

    /// **CPS** at the pinned epoch (precomputed; a field read).
    pub fn cps(&self) -> bool {
        self.snap.cps()
    }

    /// **COP** at the pinned epoch: one assumption solve per pair
    /// against this reader's private scratch clone of the pair's
    /// component.
    pub fn cop(&mut self, ot: &CurrencyOrderQuery) -> Result<bool, ReasonError> {
        let snap = self.snap.clone();
        if !snap.consistent {
            return Ok(true); // Mod(S) = ∅: vacuously certain
        }
        if ot.rel.index() >= snap.spec.instances().len() {
            return Ok(ot.pairs.is_empty());
        }
        let inst = snap.spec.instance(ot.rel);
        for &(attr, lesser, greater) in &ot.pairs {
            let (Ok(lt), Ok(gt)) = (inst.tuple_checked(lesser), inst.tuple_checked(greater)) else {
                return Ok(false); // unknown tuple: never certain
            };
            if lesser == greater || lt.eid != gt.eid {
                return Ok(false); // reflexive or cross-entity: never holds
            }
            let ix = snap
                .partition
                .component_of(ot.rel, lt.eid)
                .expect("every entity has a component");
            let bounds = Bounds::from_options(&self.effective_options());
            let enc = self.scratch_mut(ix);
            let Some(l) = enc.order_lit(ot.rel, attr, lesser, greater) else {
                return Ok(false);
            };
            if enc.solve_bounded_with_assumptions(&[!l], &bounds)? == SolveResult::Sat {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// **DCIP** at the pinned epoch (see [`EngineSnapshot::dcip`]).
    pub fn dcip(&self, rel: RelId) -> Result<bool, ReasonError> {
        self.snap.dcip_with(rel, &self.effective_options())
    }

    /// **CCQA** at the pinned epoch (see [`EngineSnapshot::ccqa`]).
    pub fn ccqa(&self, query: &Query, tuple: &[Value]) -> Result<bool, ReasonError> {
        Ok(self.certain_answers(query)?.contains(tuple))
    }

    /// Certain answers at the pinned epoch (see
    /// [`EngineSnapshot::certain_answers`]).
    pub fn certain_answers(&self, query: &Query) -> Result<CertainAnswers, ReasonError> {
        self.snap
            .certain_answers_with(query, &self.effective_options())
    }

    /// Realizable current instances at the pinned epoch (see
    /// [`EngineSnapshot::current_instances`]).
    pub fn current_instances(&self, rel: RelId) -> Result<Vec<NormalInstance>, ReasonError> {
        self.snap
            .current_instances_with(rel, &self.effective_options())
    }

    /// This reader's private encoding for `slot`, cloned (or refreshed
    /// in place, reusing its buffers) from the pinned snapshot on
    /// demand.
    fn scratch_mut(&mut self, slot: usize) -> &mut Encoding {
        let epoch = self.snap.epoch;
        match self.scratch.entry(slot) {
            Entry::Occupied(entry) => {
                let s = entry.into_mut();
                if s.epoch != epoch {
                    s.enc.clone_from(&self.snap.slots[slot].enc);
                    s.epoch = epoch;
                    self.scratch_refreshes += 1;
                }
                &mut s.enc
            }
            Entry::Vacant(entry) => {
                self.scratch_clones += 1;
                let enc = (*self.snap.slots[slot].enc).clone();
                &mut entry.insert(ScratchSlot { epoch, enc }).enc
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CurrencyEngine;
    use currency_core::{
        AttrId, Catalog, CmpOp, DenialConstraint, Eid, RelationSchema, Term, Tuple,
    };
    use currency_query::{Atom, Formula, QueryBuilder, Term as QTerm};

    const A: AttrId = AttrId(0);

    fn multi_entity_spec() -> (Specification, RelId) {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A"]));
        let mut spec = Specification::new(cat);
        for e in 0..3u64 {
            for v in [10, 20] {
                spec.instance_mut(r)
                    .push_tuple(Tuple::new(Eid(e), vec![Value::int(v + e as i64)]))
                    .unwrap();
            }
        }
        (spec, r)
    }

    fn monotone(r: RelId) -> DenialConstraint {
        DenialConstraint::builder(r, 2)
            .when_cmp(Term::attr(0, A), CmpOp::Gt, Term::attr(1, A))
            .then_order(1, A, 0)
            .build()
            .unwrap()
    }

    fn value_query(r: RelId) -> Query {
        let mut b = QueryBuilder::new();
        let x = b.var();
        b.build(vec![x], Formula::Atom(Atom::new(r, vec![QTerm::Var(x)])))
    }

    /// Reader answers must equal a live engine's over the same spec.
    fn assert_matches_engine(reader: &mut SnapshotReader, r: RelId) {
        let spec = reader.snapshot().spec().clone();
        let engine = CurrencyEngine::new(&spec, &Options::default()).unwrap();
        assert_eq!(reader.cps(), engine.cps().unwrap());
        let n = spec.instance(r).len() as u32;
        for u in 0..n {
            for v in 0..n {
                let q = CurrencyOrderQuery::single(r, A, TupleId(u), TupleId(v));
                assert_eq!(reader.cop(&q).unwrap(), engine.cop(&q).unwrap(), "{u}≺{v}");
            }
        }
        assert_eq!(reader.dcip(r).unwrap(), engine.dcip(r).unwrap());
        let q = value_query(r);
        assert_eq!(
            reader.certain_answers(&q).unwrap(),
            engine.certain_answers(&q).unwrap()
        );
        assert_eq!(
            reader.current_instances(r).unwrap().len(),
            engine.current_instances(r).unwrap().len()
        );
    }

    #[test]
    fn snapshot_matches_live_engine() {
        let (mut spec, r) = multi_entity_spec();
        spec.add_constraint(monotone(r)).unwrap();
        let engine = SnapshotEngine::new(spec, &Options::default()).unwrap();
        let mut reader = engine.reader();
        assert_eq!(reader.epoch(), 1);
        assert_matches_engine(&mut reader, r);
        let stats = engine.stats();
        assert_eq!(stats.components, 3);
        assert!(stats.vars > 0);
    }

    #[test]
    fn apply_publishes_and_pinned_readers_keep_their_epoch() {
        let (mut spec, r) = multi_entity_spec();
        spec.add_constraint(monotone(r)).unwrap();
        let mut engine = SnapshotEngine::new(spec, &Options::default()).unwrap();
        let cell = engine.cell();
        let mut pinned = SnapshotReader::new(cell.load());
        let epoch_before = pinned.epoch();
        let spec_before = pinned.snapshot().spec_arc();
        // Warm the pinned reader's scratch so the delta cannot reach it.
        let q01 = CurrencyOrderQuery::single(r, A, TupleId(0), TupleId(1));
        assert!(pinned.cop(&q01).unwrap());
        // The delta contradicts entity 0's order: post-delta CPS is false.
        let mut delta = SpecDelta::new();
        delta.add_order_edge(r, A, TupleId(1), TupleId(0));
        let report = engine.apply(&delta).unwrap();
        assert_eq!(report.epoch, epoch_before + 1);
        assert_eq!(report.components_rebuilt, 1);
        assert_eq!(report.components_reused, 2);
        // The pinned reader still answers at its epoch...
        assert_eq!(pinned.epoch(), epoch_before);
        assert!(pinned.cps(), "old epoch stays consistent");
        assert!(pinned.cop(&q01).unwrap());
        let engine_before = CurrencyEngine::new(&spec_before, &Options::default()).unwrap();
        assert_eq!(pinned.cps(), engine_before.cps().unwrap());
        // ...while a re-pinned reader sees the new epoch.
        pinned.pin(cell.load());
        assert_eq!(pinned.epoch(), epoch_before + 1);
        assert!(!pinned.cps(), "conflicting edge refutes entity 0");
        assert!(pinned.cop(&q01).unwrap(), "vacuously certain");
        assert_eq!(pinned.scratch_refreshes(), 0, "cps/vacuous cop never solve");
        // A pair in a reused component must refresh the scratch lazily.
        let q23 = CurrencyOrderQuery::single(r, A, TupleId(2), TupleId(3));
        let mut fresh = SnapshotReader::new(cell.load());
        assert!(fresh.cop(&q23).unwrap());
    }

    #[test]
    fn consecutive_snapshots_share_clean_slots() {
        let (mut spec, r) = multi_entity_spec();
        spec.add_constraint(monotone(r)).unwrap();
        let mut engine = SnapshotEngine::new(spec, &Options::default()).unwrap();
        let before = engine.snapshot();
        let mut delta = SpecDelta::new();
        delta.insert_tuple(r, Tuple::new(Eid(1), vec![Value::int(99)]));
        engine.apply(&delta).unwrap();
        let after = engine.snapshot();
        assert_eq!(before.slots.len(), after.slots.len());
        let shared = before
            .slots
            .iter()
            .zip(&after.slots)
            .filter(|(b, a)| Arc::ptr_eq(&b.enc, &a.enc))
            .count();
        assert_eq!(shared, 2, "only the dirty component was recompiled");
    }

    #[test]
    fn reader_scratch_refreshes_in_place_after_epoch_change() {
        let (mut spec, r) = multi_entity_spec();
        spec.add_constraint(monotone(r)).unwrap();
        let mut engine = SnapshotEngine::new(spec, &Options::default()).unwrap();
        let cell = engine.cell();
        let mut reader = SnapshotReader::new(cell.load());
        let q = CurrencyOrderQuery::single(r, A, TupleId(0), TupleId(1));
        assert!(reader.cop(&q).unwrap());
        assert_eq!(reader.scratch_clones(), 1);
        // Rebuild entity 0's component with a new most-current tuple.
        let mut delta = SpecDelta::new();
        delta.insert_tuple(r, Tuple::new(Eid(0), vec![Value::int(30)]));
        let report = engine.apply(&delta).unwrap();
        let new_id = report.inserted[0].1;
        reader.pin(cell.load());
        assert!(reader
            .cop(&CurrencyOrderQuery::single(r, A, TupleId(1), new_id))
            .unwrap());
        assert_eq!(reader.scratch_clones(), 1, "no fresh allocation");
        assert_eq!(reader.scratch_refreshes(), 1, "refreshed in place");
        assert_matches_engine(&mut reader, r);
    }

    #[test]
    fn churn_and_compaction_republish_correctly() {
        let (mut spec, r) = multi_entity_spec();
        spec.add_constraint(monotone(r)).unwrap();
        let mut engine = SnapshotEngine::new(spec, &Options::default()).unwrap();
        // A brand-new entity appears and disappears: the vacated slot is
        // patched with the shared vacant encoding.
        for step in 0..3 {
            let mut delta = SpecDelta::new();
            delta.insert_tuple(r, Tuple::new(Eid(100), vec![Value::int(step)]));
            let report = engine.apply(&delta).unwrap();
            let (rel, id) = report.inserted[0];
            let mut retract = SpecDelta::new();
            retract.remove_tuple(rel, id);
            engine.apply(&retract).unwrap();
            assert!(engine.snapshot().cps());
        }
        let report = engine.compact().unwrap();
        assert_eq!(report.reclaimed, 3);
        let mut reader = engine.reader();
        assert_matches_engine(&mut reader, r);
        // No tombstones left: compaction is a no-op and publishes nothing.
        let epoch = engine.epoch();
        assert_eq!(engine.compact().unwrap().reclaimed, 0);
        assert_eq!(engine.epoch(), epoch);
        let stats = engine.stats();
        assert_eq!(stats.compactions, 1);
        assert_eq!(stats.slots_reclaimed, 3);
        assert_eq!(stats.updates_applied, 6);
    }

    #[test]
    fn rejected_delta_mutates_and_publishes_nothing() {
        let (mut spec, r) = multi_entity_spec();
        spec.add_constraint(monotone(r)).unwrap();
        let mut engine = SnapshotEngine::new(spec, &Options::default()).unwrap();
        let epoch = engine.epoch();
        let mut delta = SpecDelta::new();
        delta
            .insert_tuple(r, Tuple::new(Eid(0), vec![Value::int(5)]))
            .add_order_edge(r, A, TupleId(0), TupleId(2)); // cross-entity
        assert!(engine.apply(&delta).is_err());
        assert_eq!(engine.epoch(), epoch);
        assert_eq!(engine.spec().instance(r).len(), 6, "no partial mutation");
        assert!(engine.snapshot().cps());
    }

    #[test]
    fn poisoned_cell_lock_cannot_wedge_publish_or_load() {
        let (mut spec, r) = multi_entity_spec();
        spec.add_constraint(monotone(r)).unwrap();
        let mut engine = SnapshotEngine::new(spec, &Options::default()).unwrap();
        let cell = engine.cell();
        // A reader dies while holding the cell lock (the worst possible
        // place): the mutex is poisoned...
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = cell.current.lock().unwrap();
            panic!("simulated reader crash during load");
        }));
        assert!(result.is_err());
        assert!(cell.current.is_poisoned());
        // ...but the writer still publishes and readers still load: the
        // protected value is an Arc a panic cannot tear.
        let mut delta = SpecDelta::new();
        delta.insert_tuple(r, Tuple::new(Eid(1), vec![Value::int(99)]));
        let report = engine.apply(&delta).unwrap();
        let snap = cell.load();
        assert_eq!(snap.epoch(), report.epoch);
        let mut reader = SnapshotReader::new(snap);
        assert_matches_engine(&mut reader, r);
    }

    #[test]
    fn lean_snapshot_rejects_value_queries_politely() {
        let (spec, r) = multi_entity_spec();
        let engine = SnapshotEngine::with_value_rels(spec, &[], &Options::default()).unwrap();
        let reader = engine.reader();
        assert!(reader.cps());
        assert!(matches!(
            reader.dcip(r),
            Err(ReasonError::UnsupportedQuery { .. })
        ));
    }

    #[test]
    fn reader_budget_override_interrupts_then_clears() {
        use crate::SolveLimits;
        let (mut spec, r) = multi_entity_spec();
        spec.add_constraint(monotone(r)).unwrap();
        let engine = SnapshotEngine::new(spec, &Options::default()).unwrap();
        let mut reader = engine.reader();
        // A zero-work per-request budget interrupts every solve-backed path
        // with the typed error, never a wrong verdict.
        reader.set_solve_limits(Some(SolveLimits {
            max_conflicts: Some(0),
            max_props: Some(0),
        }));
        let q01 = CurrencyOrderQuery::single(r, A, TupleId(0), TupleId(1));
        assert!(matches!(
            reader.cop(&q01),
            Err(ReasonError::Interrupted { .. })
        ));
        assert!(matches!(
            reader.dcip(r),
            Err(ReasonError::Interrupted { .. })
        ));
        assert!(matches!(
            reader.certain_answers(&value_query(r)),
            Err(ReasonError::Interrupted { .. })
        ));
        assert!(matches!(
            reader.current_instances(r),
            Err(ReasonError::Interrupted { .. })
        ));
        // Clearing the override resumes on the same scratch state and the
        // answers match a live engine — the interruption left nothing
        // corrupted behind.
        reader.set_solve_limits(None);
        assert_matches_engine(&mut reader, r);
    }

    #[test]
    fn reader_deadline_override_interrupts_then_clears() {
        let (mut spec, r) = multi_entity_spec();
        spec.add_constraint(monotone(r)).unwrap();
        let engine = SnapshotEngine::new(spec, &Options::default()).unwrap();
        let mut reader = engine.reader();
        reader.set_deadline(Some(Instant::now()));
        let q01 = CurrencyOrderQuery::single(r, A, TupleId(0), TupleId(1));
        assert!(matches!(
            reader.cop(&q01),
            Err(ReasonError::Interrupted { .. })
        ));
        assert!(matches!(
            reader.certain_answers(&value_query(r)),
            Err(ReasonError::Interrupted { .. })
        ));
        reader.set_deadline(None);
        assert_matches_engine(&mut reader, r);
    }

    #[test]
    fn reader_escalating_budgets_converge_warm() {
        use crate::SolveLimits;
        let (mut spec, r) = multi_entity_spec();
        spec.add_constraint(monotone(r)).unwrap();
        let engine = SnapshotEngine::new(spec, &Options::default()).unwrap();
        let oracle = {
            let mut reader = engine.reader();
            let q = CurrencyOrderQuery::single(r, A, TupleId(0), TupleId(1));
            reader.cop(&q).unwrap()
        };
        // One reader retries the same query with doubling budgets; scratch
        // encodings persist across attempts, so each retry resumes warm.
        let mut reader = engine.reader();
        let q = CurrencyOrderQuery::single(r, A, TupleId(0), TupleId(1));
        let mut budget: u64 = 1;
        loop {
            reader.set_solve_limits(Some(SolveLimits {
                max_conflicts: Some(budget),
                max_props: Some(budget * 64),
            }));
            match reader.cop(&q) {
                Ok(v) => {
                    assert_eq!(v, oracle, "first decided verdict must match");
                    break;
                }
                Err(ReasonError::Interrupted { .. }) => {
                    budget *= 2;
                    assert!(budget < 1 << 30, "budget escalation diverged");
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert_eq!(reader.scratch_clones(), 1, "retries reuse one scratch");
    }

    #[test]
    fn cell_counts_poison_recoveries_as_degraded_events() {
        let (mut spec, r) = multi_entity_spec();
        spec.add_constraint(monotone(r)).unwrap();
        let mut engine = SnapshotEngine::new(spec, &Options::default()).unwrap();
        let cell = engine.cell();
        assert_eq!(cell.degraded_events(), 0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = cell.current.lock().unwrap();
            panic!("simulated reader crash during load");
        }));
        assert!(result.is_err());
        // The first recovery (load or store) clears the poison and counts
        // one degraded event; later operations are healthy again.
        let _ = cell.load();
        assert_eq!(cell.degraded_events(), 1);
        let mut delta = SpecDelta::new();
        delta.insert_tuple(r, Tuple::new(Eid(1), vec![Value::int(99)]));
        engine.apply(&delta).unwrap();
        let _ = cell.load();
        assert_eq!(cell.degraded_events(), 1, "one crash, one event");
    }
}
