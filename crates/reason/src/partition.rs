//! Entity partitioning of specifications.
//!
//! The CNF encoding of a specification (see [`crate::encode`]) only ever
//! relates order variables of the *same entity group*: currency orders are
//! per-entity by definition, ground denial rules instantiate tuple
//! variables within one relation, and copy-compatibility obligations tie a
//! source entity's order to a target entity's order.  The encoding is
//! therefore a disjoint union of independent subproblems over connected
//! sets of `(relation, entity)` cells, where the connecting edges are:
//!
//! * a ground denial rule whose premises/conclusion span several entities
//!   of its relation (cross-entity denial constraints), and
//! * a copy-compatibility obligation, linking the source pair's entity to
//!   the target pair's entity.
//!
//! [`Partition::of`] computes the connected components with a union–find
//! over the cells, grounding every constraint and copy function **once**
//! and distributing the ground artifacts to their components.  The
//! [`crate::engine::CurrencyEngine`] compiles each component into its own
//! cached solver and answers queries against only the components they
//! touch.
//!
//! ## Incremental maintenance
//!
//! The partition is *dynamic*: after a [`currency_core::SpecDelta`] is
//! applied to the specification, [`Partition::refresh`] re-derives only
//! the **dirty region** — the components owning a touched cell, plus any
//! component a freshly derived copy obligation links into it.  Grounding
//! is entity-local ([`currency_core::DenialConstraint::ground_entity`]),
//! so only the dirty cells' rules are recomputed; obligations are
//! re-enumerated only for mapping groups touching the dirty region
//! ([`currency_core::CopyFunction::compatibility_obligations_filtered`]).
//! The dirty region is then locally re-partitioned (merges *and* splits
//! both fall out of re-running the union–find over the region), while
//! every clean component survives untouched — the returned
//! [`RefreshPlan`] tells the engine which cached component states are
//! still valid and which must be recompiled.

use currency_core::{Eid, GroundRule, OrderEdge, RelId, Specification};
use std::collections::{BTreeSet, HashMap};

/// A ground denial rule tagged with the relation it speaks about.
#[derive(Clone, Debug)]
pub struct GroundRuleAt {
    /// The relation whose tuples the rule's edges relate.
    pub rel: RelId,
    /// The ground rule (`⋀ premises → conclusion`).
    pub rule: GroundRule,
}

/// A ground copy-compatibility obligation tagged with its relations:
/// *if* the completed source order contains `source_edge`, *then* the
/// completed target order must contain `target_edge`.
#[derive(Clone, Debug)]
pub struct ObligationAt {
    /// Relation of the source edge.
    pub source_rel: RelId,
    /// The source-order edge.
    pub source_edge: OrderEdge,
    /// Relation of the target edge.
    pub target_rel: RelId,
    /// The target-order edge.
    pub target_edge: OrderEdge,
}

/// One independent subproblem: a connected set of `(relation, entity)`
/// cells together with the ground rules and obligations local to it.
#[derive(Clone, Debug, Default)]
pub struct Component {
    /// The cells (every tuple of the specification belongs to exactly one
    /// component through its `(relation, entity)` cell).
    pub cells: BTreeSet<(RelId, Eid)>,
    /// Ground denial rules whose edges live in this component.
    pub rules: Vec<GroundRuleAt>,
    /// Copy obligations whose edges live in this component.
    pub obligations: Vec<ObligationAt>,
}

/// The entity partition of a specification.
#[derive(Clone, Debug)]
pub struct Partition {
    components: Vec<Component>,
    index: HashMap<(RelId, Eid), usize>,
    /// Cells whose grounding produced a premise-free falsum rule (an
    /// unconditional contradiction local to that cell).
    falsum_cells: BTreeSet<(RelId, Eid)>,
    /// `true` if grounding produced a premise-free falsum rule — the
    /// specification is inconsistent regardless of any order choice.
    pub has_ground_falsum: bool,
}

/// How one component of a refreshed partition relates to the previous
/// layout (see [`Partition::refresh`]): positions are aligned with
/// [`Partition::components`] after the refresh.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ComponentSource {
    /// Identical to the old component at this index — caches built for it
    /// (compiled CNF, learnt clauses, solved status) remain valid.
    Reused(usize),
    /// Freshly derived from the dirty region; must be recompiled.
    Rebuilt,
}

/// The outcome of [`Partition::refresh`]: one [`ComponentSource`] per
/// component of the refreshed partition, in component order.
#[derive(Clone, Debug)]
pub struct RefreshPlan {
    /// Per-component provenance, aligned with [`Partition::components`].
    pub sources: Vec<ComponentSource>,
}

impl RefreshPlan {
    /// Number of components rebuilt from the dirty region.
    pub fn rebuilt(&self) -> usize {
        self.sources
            .iter()
            .filter(|s| matches!(s, ComponentSource::Rebuilt))
            .count()
    }

    /// Number of components carried over unchanged.
    pub fn reused(&self) -> usize {
        self.sources.len() - self.rebuilt()
    }
}

/// Plain union–find over dense cell ids.
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb as usize] = ra;
        }
    }
}

impl Partition {
    /// Partition `spec` into independent components.
    ///
    /// Grounds every denial constraint and enumerates every copy
    /// function's compatibility obligations exactly once; the caller is
    /// expected to have validated the specification.
    pub fn of(spec: &Specification) -> Partition {
        let cells: BTreeSet<(RelId, Eid)> = spec
            .instances()
            .iter()
            .flat_map(|inst| inst.entities().map(move |eid| (inst.rel(), eid)))
            .collect();
        let mut partition = Partition {
            components: Vec::new(),
            index: HashMap::new(),
            falsum_cells: BTreeSet::new(),
            has_ground_falsum: false,
        };
        let keep_all = |_: Eid, _: Eid, _: RelId, _: RelId| true;
        let fresh = partition.derive_region(spec, &cells, &keep_all);
        partition.components = fresh;
        partition.index = Partition::index_of(&partition.components);
        partition.has_ground_falsum = !partition.falsum_cells.is_empty();
        partition
    }

    /// Re-derive the partition after a delta touched `touched` cells,
    /// keeping every clean component (and its index) byte-identical.
    ///
    /// The dirty region is the touched cells plus every cell of a
    /// component owning one.  Only the region's rules and obligations are
    /// re-derived (entity-local grounding, filtered obligation
    /// enumeration); the region is then re-partitioned locally, which
    /// realizes merges *and* splits.  Clean components keep their
    /// *relative order*; rebuilt components fill the freed slots in order
    /// (overflow appends, a shrink closes slots), so absolute indices may
    /// shift — map cached per-component state through the returned plan,
    /// never through pre-refresh indices.
    ///
    /// **Contract** (guaranteed by `DeltaEffects::touched_cells`):
    /// `touched` must contain *both* endpoint cells of every copy mapping
    /// the delta added or removed.  That closes the region without any
    /// global scan: a pre-existing obligation already has both endpoints
    /// in one component (that is what the partition means), so an
    /// obligation can only cross the region boundary if its link is new —
    /// and then both its cells are in `touched`.  Refresh cost therefore
    /// scales with the dirty region, not the specification.
    ///
    /// The returned [`RefreshPlan`] maps every post-refresh component to
    /// its provenance so cached per-component state can be carried over.
    pub fn refresh(
        &mut self,
        spec: &Specification,
        touched: &BTreeSet<(RelId, Eid)>,
    ) -> RefreshPlan {
        // The dirty region: touched cells plus their components' cells.
        let mut dirty_comps: BTreeSet<usize> = BTreeSet::new();
        let mut dirty_cells: BTreeSet<(RelId, Eid)> = touched.clone();
        for cell in touched {
            if let Some(&cix) = self.index.get(cell) {
                dirty_comps.insert(cix);
            }
        }
        for &cix in &dirty_comps {
            dirty_cells.extend(self.components[cix].cells.iter().copied());
        }

        // Cells may have vanished (their entity lost its last tuple): the
        // region to re-derive is the *live* part of the dirty cell set.
        let live_dirty: BTreeSet<(RelId, Eid)> = dirty_cells
            .iter()
            .copied()
            .filter(|&(rel, eid)| !spec.instance(rel).entity_group(eid).is_empty())
            .collect();
        // Stale falsum verdicts of the region go; derive_region re-adds
        // the ones that still hold.
        for cell in &dirty_cells {
            self.falsum_cells.remove(cell);
        }
        let keep = |te: Eid, se: Eid, tgt: RelId, src: RelId| {
            live_dirty.contains(&(tgt, te)) || live_dirty.contains(&(src, se))
        };
        let fresh = self.derive_region(spec, &live_dirty, &keep);

        // Splice: clean components keep their slots; fresh components fill
        // the freed dirty slots in order, overflowing to the tail.
        let mut sources: Vec<ComponentSource> = Vec::new();
        let mut components: Vec<Component> = Vec::new();
        let mut fresh_iter = fresh.into_iter();
        for (old_ix, comp) in std::mem::take(&mut self.components).into_iter().enumerate() {
            if dirty_comps.contains(&old_ix) {
                if let Some(f) = fresh_iter.next() {
                    components.push(f);
                    sources.push(ComponentSource::Rebuilt);
                }
                // A dirty slot with no fresh component left just closes.
            } else {
                components.push(comp);
                sources.push(ComponentSource::Reused(old_ix));
            }
        }
        for f in fresh_iter {
            components.push(f);
            sources.push(ComponentSource::Rebuilt);
        }
        self.components = components;
        self.index = Partition::index_of(&self.components);
        self.has_ground_falsum = !self.falsum_cells.is_empty();
        RefreshPlan { sources }
    }

    /// Derive the components covering `cells`: ground every constraint for
    /// the cells' entities (recording premise-free falsum cells), collect
    /// the copy obligations `keep` accepts, and union-find the cells into
    /// components in deterministic first-seen order.
    ///
    /// Ground rules are entity-local, so only obligations merge cells.
    fn derive_region(
        &mut self,
        spec: &Specification,
        cells: &BTreeSet<(RelId, Eid)>,
        keep: &dyn Fn(Eid, Eid, RelId, RelId) -> bool,
    ) -> Vec<Component> {
        let cell_ids: HashMap<(RelId, Eid), u32> = cells
            .iter()
            .enumerate()
            .map(|(i, &c)| (c, i as u32))
            .collect();
        let mut uf = UnionFind::new(cells.len());

        // Entity-local grounding: each cell's rules anchor at the cell.
        // Iterate the ordered cell set (not the id map) so rule order —
        // and with it clause order in the compiled encodings — is
        // deterministic.  One grounder per constraint: its value-atom
        // analysis is shared across all the cells it grounds for.
        let mut rules: Vec<(GroundRuleAt, u32)> = Vec::new();
        for dc in spec.constraints() {
            let inst = spec.instance(dc.rel());
            let grounder = dc.entity_grounder();
            for (cid, &cell) in cells.iter().enumerate() {
                let cid = cid as u32;
                if cell.0 != dc.rel() {
                    continue;
                }
                for rule in grounder.ground_entity(inst, cell.1) {
                    if rule.premises.is_empty() && rule.conclusion.is_none() {
                        // Premise-free falsum: an unconditional
                        // contradiction local to this cell.
                        self.falsum_cells.insert(cell);
                        continue;
                    }
                    rules.push((
                        GroundRuleAt {
                            rel: dc.rel(),
                            rule,
                        },
                        cid,
                    ));
                }
            }
        }

        // Copy obligations; union source and target entity cells.
        let mut obligations: Vec<(ObligationAt, u32)> = Vec::new();
        for cf in spec.copies() {
            let sig = cf.signature();
            let target = spec.instance(sig.target);
            let source = spec.instance(sig.source);
            let accept = |te: Eid, se: Eid| keep(te, se, sig.target, sig.source);
            for (src_edge, tgt_edge) in
                cf.compatibility_obligations_filtered(target, source, accept)
            {
                let src_cell = cell_ids[&(sig.source, source.tuple(src_edge.lesser).eid)];
                let tgt_cell = cell_ids[&(sig.target, target.tuple(tgt_edge.lesser).eid)];
                uf.union(src_cell, tgt_cell);
                obligations.push((
                    ObligationAt {
                        source_rel: sig.source,
                        source_edge: src_edge,
                        target_rel: sig.target,
                        target_edge: tgt_edge,
                    },
                    src_cell,
                ));
            }
        }

        // Materialize components in first-seen (deterministic) order.
        let mut root_to_component: HashMap<u32, usize> = HashMap::new();
        let mut components: Vec<Component> = Vec::new();
        for (id, &key) in cells.iter().enumerate() {
            let root = uf.find(id as u32);
            let cix = *root_to_component.entry(root).or_insert_with(|| {
                components.push(Component::default());
                components.len() - 1
            });
            components[cix].cells.insert(key);
        }
        for (rule, anchor) in rules {
            let cix = root_to_component[&uf.find(anchor)];
            components[cix].rules.push(rule);
        }
        for (ob, anchor) in obligations {
            let cix = root_to_component[&uf.find(anchor)];
            components[cix].obligations.push(ob);
        }
        // Component-local determinism: rules arrive grouped by constraint
        // then cell (the iteration above), obligations by copy function.
        components
    }

    /// The cell → component index of a component list.
    fn index_of(components: &[Component]) -> HashMap<(RelId, Eid), usize> {
        let mut index = HashMap::new();
        for (i, c) in components.iter().enumerate() {
            for &cell in &c.cells {
                index.insert(cell, i);
            }
        }
        index
    }

    /// The components, in deterministic first-seen order.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// `true` if the specification has no cells at all.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// The component owning a `(relation, entity)` cell.
    pub fn component_of(&self, rel: RelId, eid: Eid) -> Option<usize> {
        self.index.get(&(rel, eid)).copied()
    }

    /// Indices of the components holding any cell of `rel`.
    pub fn components_touching(&self, rel: RelId) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .components
            .iter()
            .enumerate()
            .filter(|(_, c)| c.cells.iter().any(|&(r, _)| r == rel))
            .map(|(i, _)| i)
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use currency_core::{
        AttrId, Catalog, CmpOp, CopyFunction, CopySignature, DenialConstraint, RelationSchema,
        Term, Tuple, Value,
    };

    const A: AttrId = AttrId(0);

    #[test]
    fn independent_entities_get_separate_components() {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A"]));
        let mut spec = Specification::new(cat);
        for e in 0..4u64 {
            for v in 0..2 {
                spec.instance_mut(r)
                    .push_tuple(Tuple::new(Eid(e), vec![Value::int(v)]))
                    .unwrap();
            }
        }
        let p = Partition::of(&spec);
        assert_eq!(p.len(), 4);
        for e in 0..4u64 {
            assert!(p.component_of(r, Eid(e)).is_some());
        }
        assert_eq!(p.components_touching(r).len(), 4);
    }

    #[test]
    fn per_tuple_constraints_do_not_merge_entities() {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A"]));
        let mut spec = Specification::new(cat);
        for e in 0..3u64 {
            for v in 0..2 {
                spec.instance_mut(r)
                    .push_tuple(Tuple::new(Eid(e), vec![Value::int(v)]))
                    .unwrap();
            }
        }
        // Monotone rule: both tuple variables range over one entity (ground
        // rules relate same-entity pairs only), so entities stay separate.
        let dc = DenialConstraint::builder(r, 2)
            .when_cmp(Term::attr(0, A), CmpOp::Gt, Term::attr(1, A))
            .then_order(1, A, 0)
            .build()
            .unwrap();
        spec.add_constraint(dc).unwrap();
        let p = Partition::of(&spec);
        assert_eq!(p.len(), 3);
        let total_rules: usize = p.components().iter().map(|c| c.rules.len()).sum();
        assert_eq!(total_rules, 3, "one ground rule per entity");
    }

    #[test]
    fn copy_function_merges_source_and_target_entities() {
        let mut cat = Catalog::new();
        let d = cat.add(RelationSchema::new("D", &["A"]));
        let s = cat.add(RelationSchema::new("S", &["A"]));
        let mut spec = Specification::new(cat);
        let d1 = spec
            .instance_mut(d)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(1)]))
            .unwrap();
        let d2 = spec
            .instance_mut(d)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(2)]))
            .unwrap();
        // An unrelated entity in D.
        spec.instance_mut(d)
            .push_tuple(Tuple::new(Eid(9), vec![Value::int(7)]))
            .unwrap();
        let s1 = spec
            .instance_mut(s)
            .push_tuple(Tuple::new(Eid(7), vec![Value::int(1)]))
            .unwrap();
        let s2 = spec
            .instance_mut(s)
            .push_tuple(Tuple::new(Eid(7), vec![Value::int(2)]))
            .unwrap();
        let sig = CopySignature::new(d, vec![A], s, vec![A]).unwrap();
        let mut cf = CopyFunction::new(sig);
        cf.set_mapping(d1, s1);
        cf.set_mapping(d2, s2);
        spec.add_copy(cf).unwrap();
        let p = Partition::of(&spec);
        // (D, e1) and (S, e7) merge; (D, e9) stays alone.
        assert_eq!(p.len(), 2);
        assert_eq!(p.component_of(d, Eid(1)), p.component_of(s, Eid(7)));
        assert_ne!(p.component_of(d, Eid(1)), p.component_of(d, Eid(9)));
        let merged = &p.components()[p.component_of(d, Eid(1)).unwrap()];
        assert_eq!(merged.obligations.len(), 2, "both obligation directions");
    }

    #[test]
    fn components_touching_filters_by_relation() {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A"]));
        let s = cat.add(RelationSchema::new("S", &["A"]));
        let mut spec = Specification::new(cat);
        spec.instance_mut(r)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(1)]))
            .unwrap();
        spec.instance_mut(s)
            .push_tuple(Tuple::new(Eid(2), vec![Value::int(1)]))
            .unwrap();
        let p = Partition::of(&spec);
        assert_eq!(p.len(), 2);
        assert_eq!(p.components_touching(r).len(), 1);
        assert_eq!(p.components_touching(s).len(), 1);
        assert_ne!(p.components_touching(r), p.components_touching(s));
    }

    fn monotone(r: RelId) -> DenialConstraint {
        DenialConstraint::builder(r, 2)
            .when_cmp(Term::attr(0, A), CmpOp::Gt, Term::attr(1, A))
            .then_order(1, A, 0)
            .build()
            .unwrap()
    }

    /// `refresh` must produce exactly the partition `of` computes from the
    /// post-delta specification (same cells, rules, obligations per
    /// component up to component order).
    fn assert_refresh_matches_fresh(p: &Partition, spec: &Specification) {
        let fresh = Partition::of(spec);
        assert_eq!(p.len(), fresh.len(), "component count");
        assert_eq!(p.has_ground_falsum, fresh.has_ground_falsum);
        let mut a: Vec<_> = p.components().to_vec();
        let mut b: Vec<_> = fresh.components().to_vec();
        let key = |c: &Component| c.cells.iter().next().copied();
        a.sort_by_key(key);
        b.sort_by_key(key);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.cells, y.cells);
            let mut xr = x
                .rules
                .iter()
                .map(|r| (r.rel, r.rule.clone()))
                .collect::<Vec<_>>();
            let mut yr = y
                .rules
                .iter()
                .map(|r| (r.rel, r.rule.clone()))
                .collect::<Vec<_>>();
            xr.sort();
            yr.sort();
            assert_eq!(xr, yr, "rules of {:?}", x.cells);
            let ob_key =
                |o: &ObligationAt| (o.source_rel, o.source_edge, o.target_rel, o.target_edge);
            let mut xo = x.obligations.iter().map(ob_key).collect::<Vec<_>>();
            let mut yo = y.obligations.iter().map(ob_key).collect::<Vec<_>>();
            xo.sort();
            yo.sort();
            assert_eq!(xo, yo, "obligations of {:?}", x.cells);
        }
    }

    #[test]
    fn refresh_on_local_insert_rebuilds_one_component() {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A"]));
        let mut spec = Specification::new(cat);
        for e in 0..4u64 {
            for v in 0..2 {
                spec.instance_mut(r)
                    .push_tuple(Tuple::new(Eid(e), vec![Value::int(v)]))
                    .unwrap();
            }
        }
        spec.add_constraint(monotone(r)).unwrap();
        let mut p = Partition::of(&spec);
        assert_eq!(p.len(), 4);
        // Insert a third tuple into entity 2 only.
        spec.instance_mut(r)
            .push_tuple(Tuple::new(Eid(2), vec![Value::int(7)]))
            .unwrap();
        let touched: BTreeSet<(RelId, Eid)> = [(r, Eid(2))].into();
        let plan = p.refresh(&spec, &touched);
        assert_eq!(plan.rebuilt(), 1);
        assert_eq!(plan.reused(), 3);
        assert_eq!(p.len(), 4);
        // The rebuilt component carries the new entity-2 rules.
        let cix = p.component_of(r, Eid(2)).unwrap();
        assert!(p.components()[cix].rules.len() > 1);
        assert_refresh_matches_fresh(&p, &spec);
    }

    #[test]
    fn refresh_merges_components_linked_by_new_copy_mapping() {
        let mut cat = Catalog::new();
        let d = cat.add(RelationSchema::new("D", &["A"]));
        let s = cat.add(RelationSchema::new("S", &["A"]));
        let mut spec = Specification::new(cat);
        let d1 = spec
            .instance_mut(d)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(1)]))
            .unwrap();
        let d2 = spec
            .instance_mut(d)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(2)]))
            .unwrap();
        let s1 = spec
            .instance_mut(s)
            .push_tuple(Tuple::new(Eid(7), vec![Value::int(1)]))
            .unwrap();
        let s2 = spec
            .instance_mut(s)
            .push_tuple(Tuple::new(Eid(7), vec![Value::int(2)]))
            .unwrap();
        // A bystander entity that must stay untouched.
        spec.instance_mut(d)
            .push_tuple(Tuple::new(Eid(9), vec![Value::int(5)]))
            .unwrap();
        let sig = CopySignature::new(d, vec![A], s, vec![A]).unwrap();
        let mut cf = CopyFunction::new(sig);
        cf.set_mapping(d1, s1);
        spec.add_copy(cf).unwrap();
        let mut p = Partition::of(&spec);
        // One mapping yields no obligations: three separate components.
        assert_eq!(p.len(), 3);
        // Extend the copy with the second mapping: obligations appear,
        // merging (D, e1) with (S, e7).
        spec.copy_mut(0).set_mapping(d2, s2);
        let touched: BTreeSet<(RelId, Eid)> = [(d, Eid(1)), (s, Eid(7))].into();
        let plan = p.refresh(&spec, &touched);
        assert_eq!(p.len(), 2);
        assert_eq!(plan.rebuilt(), 1, "merged region is one component");
        assert_eq!(plan.reused(), 1, "bystander untouched");
        assert_eq!(p.component_of(d, Eid(1)), p.component_of(s, Eid(7)));
        assert_refresh_matches_fresh(&p, &spec);
    }

    #[test]
    fn refresh_splits_component_when_link_is_removed() {
        let mut cat = Catalog::new();
        let d = cat.add(RelationSchema::new("D", &["A"]));
        let s = cat.add(RelationSchema::new("S", &["A"]));
        let mut spec = Specification::new(cat);
        let d1 = spec
            .instance_mut(d)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(1)]))
            .unwrap();
        let d2 = spec
            .instance_mut(d)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(2)]))
            .unwrap();
        let s1 = spec
            .instance_mut(s)
            .push_tuple(Tuple::new(Eid(7), vec![Value::int(1)]))
            .unwrap();
        let s2 = spec
            .instance_mut(s)
            .push_tuple(Tuple::new(Eid(7), vec![Value::int(2)]))
            .unwrap();
        let sig = CopySignature::new(d, vec![A], s, vec![A]).unwrap();
        let mut cf = CopyFunction::new(sig);
        cf.set_mapping(d1, s1);
        cf.set_mapping(d2, s2);
        spec.add_copy(cf).unwrap();
        let mut p = Partition::of(&spec);
        assert_eq!(p.len(), 1, "copy merges the two cells");
        // Remove one mapped target tuple; the delta layer would cascade the
        // mapping, so mirror that here.
        spec.instance_mut(d).remove_tuple(d2).unwrap();
        spec.copy_mut(0).retain_mappings(|t, _| t != d2);
        let touched: BTreeSet<(RelId, Eid)> = [(d, Eid(1)), (s, Eid(7))].into();
        let plan = p.refresh(&spec, &touched);
        assert_eq!(p.len(), 2, "obligations gone: the component splits");
        assert_eq!(plan.rebuilt(), 2);
        assert_ne!(p.component_of(d, Eid(1)), p.component_of(s, Eid(7)));
        assert_refresh_matches_fresh(&p, &spec);
    }

    #[test]
    fn refresh_tracks_falsum_cells() {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A", "B"]));
        let mut spec = Specification::new(cat);
        let t0 = spec
            .instance_mut(r)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(1), Value::int(0)]))
            .unwrap();
        spec.instance_mut(r)
            .push_tuple(Tuple::new(Eid(2), vec![Value::int(9), Value::int(0)]))
            .unwrap();
        // "No entity may hold two tuples agreeing on A but not B": falsum
        // when violated (the B ≠ atom forces distinct tuples).
        let dc = DenialConstraint::builder(r, 2)
            .when_cmp(Term::attr(0, A), CmpOp::Eq, Term::attr(1, A))
            .when_cmp(
                Term::attr(0, AttrId(1)),
                CmpOp::Ne,
                Term::attr(1, AttrId(1)),
            )
            .then_false()
            .build()
            .unwrap();
        spec.add_constraint(dc).unwrap();
        let mut p = Partition::of(&spec);
        assert!(!p.has_ground_falsum);
        // A conflicting duplicate in entity 1 triggers the falsum.
        let t_dup = spec
            .instance_mut(r)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(1), Value::int(5)]))
            .unwrap();
        let touched: BTreeSet<(RelId, Eid)> = [(r, Eid(1))].into();
        p.refresh(&spec, &touched);
        assert!(p.has_ground_falsum);
        assert_refresh_matches_fresh(&p, &spec);
        // Removing the duplicate clears it again.
        spec.instance_mut(r).remove_tuple(t_dup).unwrap();
        let plan = p.refresh(&spec, &touched);
        assert!(!p.has_ground_falsum);
        assert_eq!(plan.rebuilt(), 1);
        assert_refresh_matches_fresh(&p, &spec);
        // Removing the last tuple of the entity drops the cell entirely.
        spec.instance_mut(r).remove_tuple(t0).unwrap();
        p.refresh(&spec, &touched);
        assert_eq!(p.len(), 1);
        assert!(p.component_of(r, Eid(1)).is_none());
        assert_refresh_matches_fresh(&p, &spec);
    }

    #[test]
    fn empty_spec_has_no_components() {
        let mut cat = Catalog::new();
        cat.add(RelationSchema::new("R", &["A"]));
        let spec = Specification::new(cat);
        let p = Partition::of(&spec);
        assert!(p.is_empty());
        assert!(!p.has_ground_falsum);
    }
}
