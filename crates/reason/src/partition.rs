//! Entity partitioning of specifications.
//!
//! The CNF encoding of a specification (see [`crate::encode`]) only ever
//! relates order variables of the *same entity group*: currency orders are
//! per-entity by definition, ground denial rules instantiate tuple
//! variables within one relation, and copy-compatibility obligations tie a
//! source entity's order to a target entity's order.  The encoding is
//! therefore a disjoint union of independent subproblems over connected
//! sets of `(relation, entity)` cells, where the connecting edges are:
//!
//! * a ground denial rule whose premises/conclusion span several entities
//!   of its relation (cross-entity denial constraints), and
//! * a copy-compatibility obligation, linking the source pair's entity to
//!   the target pair's entity.
//!
//! [`Partition::of`] computes the connected components with a union–find
//! over the cells, grounding every constraint and copy function **once**
//! and distributing the ground artifacts to their components.  The
//! [`crate::engine::CurrencyEngine`] compiles each component into its own
//! cached solver and answers queries against only the components they
//! touch.
//!
//! ## Incremental maintenance
//!
//! The partition is *dynamic*: after a [`currency_core::SpecDelta`] is
//! applied to the specification, [`Partition::refresh`] re-derives only
//! the **dirty region** — the components owning a touched cell, plus any
//! component a freshly derived copy obligation links into it.  Grounding
//! is entity-local ([`currency_core::DenialConstraint::ground_entity`]),
//! and obligations are enumerated only for the mapping groups the dirty
//! region's entities participate in
//! ([`currency_core::CopyFunction::obligations_for_region`], an indexed
//! lookup — never a scan of a copy's whole mapping set).  The dirty
//! region is then locally re-partitioned (merges *and* splits both fall
//! out of re-running the union–find over the region).
//!
//! ## Stable slots
//!
//! Components live in **slots** whose indices are stable across
//! refreshes: a clean component keeps its absolute index forever, so the
//! engine's cached per-slot state needs no remapping — slot identity
//! *is* component identity.  A refresh vacates the dirty slots, reuses
//! them (via a free-list) for the freshly derived components, and
//! appends only on overflow; the cell → slot index is patched for the
//! dirty region's cells only.  Refresh cost therefore scales with the
//! dirty region, not with the specification — the returned
//! [`RefreshPlan`] lists just the rebuilt and freed slots.

use currency_core::{Eid, GroundRule, OrderEdge, RelId, Specification};
use std::collections::{BTreeSet, HashMap};

/// A ground denial rule tagged with the relation it speaks about.
#[derive(Clone, Debug)]
pub struct GroundRuleAt {
    /// The relation whose tuples the rule's edges relate.
    pub rel: RelId,
    /// The ground rule (`⋀ premises → conclusion`).
    pub rule: GroundRule,
}

/// A ground copy-compatibility obligation tagged with its relations:
/// *if* the completed source order contains `source_edge`, *then* the
/// completed target order must contain `target_edge`.
#[derive(Clone, Debug)]
pub struct ObligationAt {
    /// Relation of the source edge.
    pub source_rel: RelId,
    /// The source-order edge.
    pub source_edge: OrderEdge,
    /// Relation of the target edge.
    pub target_rel: RelId,
    /// The target-order edge.
    pub target_edge: OrderEdge,
}

/// One independent subproblem: a connected set of `(relation, entity)`
/// cells together with the ground rules and obligations local to it.
#[derive(Clone, Debug, Default)]
pub struct Component {
    /// The cells (every tuple of the specification belongs to exactly one
    /// component through its `(relation, entity)` cell).
    pub cells: BTreeSet<(RelId, Eid)>,
    /// Ground denial rules whose edges live in this component.
    pub rules: Vec<GroundRuleAt>,
    /// Copy obligations whose edges live in this component.
    pub obligations: Vec<ObligationAt>,
}

/// The entity partition of a specification, stored in stable slots.
///
/// [`Partition::components`] is a slot array: a slot either holds a live
/// component or is *vacant* (empty cell set, tracked on a free-list).
/// Slot indices are the identity the engine caches against — a refresh
/// never moves a clean component.
#[derive(Clone, Debug)]
pub struct Partition {
    /// The slot array; vacant slots hold an empty [`Component`].
    components: Vec<Component>,
    /// Vacant slot indices, reused (LIFO) before the array grows.
    free: Vec<usize>,
    /// Number of live (non-vacant) components.
    live: usize,
    index: HashMap<(RelId, Eid), usize>,
    /// Cells whose grounding produced a premise-free falsum rule (an
    /// unconditional contradiction local to that cell).
    falsum_cells: BTreeSet<(RelId, Eid)>,
    /// `true` if grounding produced a premise-free falsum rule — the
    /// specification is inconsistent regardless of any order choice.
    pub has_ground_falsum: bool,
    /// Reusable buffers for [`Partition::refresh`], so steady-state
    /// deltas allocate nothing proportional to past refreshes.
    scratch: Scratch,
}

/// Scratch buffers reused across [`Partition::refresh`] calls (cleared,
/// never shrunk — capacity amortizes across the delta stream).
#[derive(Clone, Debug, Default)]
struct Scratch {
    dirty_slots: Vec<usize>,
    dirty_cells: Vec<(RelId, Eid)>,
    region: Vec<(RelId, Eid)>,
    cell_ids: HashMap<(RelId, Eid), u32>,
}

/// The outcome of [`Partition::refresh`]: which slots changed.  Sized by
/// the dirty region, not the component count.
#[derive(Clone, Debug)]
pub struct RefreshPlan {
    /// Slots holding freshly derived components — the engine must
    /// recompile exactly these.  Slots `>=` the pre-refresh slot count
    /// are appends (in increasing order, after every reused vacancy).
    pub rebuilt: Vec<usize>,
    /// Slots vacated by this refresh with no fresh component taking
    /// them — the engine clears their cached state.
    pub freed: Vec<usize>,
    /// Total slot count after the refresh.
    pub slots: usize,
    /// Live components untouched by the refresh.
    reused_components: usize,
}

impl RefreshPlan {
    /// Number of components rebuilt from the dirty region.
    pub fn rebuilt(&self) -> usize {
        self.rebuilt.len()
    }

    /// Number of live components carried over unchanged.
    pub fn reused(&self) -> usize {
        self.reused_components
    }
}

/// Union–find over dense cell ids: union by size, full path compression.
struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Full path compression: repoint everything on the walk.
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        // Union by size: graft the smaller tree under the larger so find
        // chains stay logarithmic under adversarial merge orders.
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
    }
}

/// The scope of a [`Partition::derive_region`] call: either the whole
/// specification (initial build) or a dirty region's live cells.
enum RegionScope<'r> {
    /// Enumerate every copy obligation.
    Full,
    /// Enumerate only obligations of groups touching the region (sorted
    /// cell list, shared with the derive pass).
    Cells(&'r [(RelId, Eid)]),
}

impl Partition {
    /// Partition `spec` into independent components.
    ///
    /// Grounds every denial constraint and enumerates every copy
    /// function's compatibility obligations exactly once; the caller is
    /// expected to have validated the specification.
    pub fn of(spec: &Specification) -> Partition {
        // Instances are iterated in relation order and entities in id
        // order, so the collected cell list is sorted.
        let cells: Vec<(RelId, Eid)> = spec
            .instances()
            .iter()
            .flat_map(|inst| inst.entities().map(move |eid| (inst.rel(), eid)))
            .collect();
        let mut partition = Partition {
            components: Vec::new(),
            free: Vec::new(),
            live: 0,
            index: HashMap::with_capacity(cells.len()),
            falsum_cells: BTreeSet::new(),
            has_ground_falsum: false,
            scratch: Scratch::default(),
        };
        let mut cell_ids = HashMap::with_capacity(cells.len());
        let fresh = partition.derive_region(spec, &cells, RegionScope::Full, &mut cell_ids);
        for (slot, comp) in fresh.iter().enumerate() {
            for &cell in &comp.cells {
                partition.index.insert(cell, slot);
            }
        }
        partition.live = fresh.len();
        partition.components = fresh;
        // `cell_ids` is full-spec-sized here; deliberately NOT kept as
        // refresh scratch — steady-state regions are tiny, and retaining
        // O(cells) of dead capacity per partition would defeat the point.
        // The scratch map re-grows only if a genuinely huge delta lands.
        drop(cell_ids);
        partition.has_ground_falsum = !partition.falsum_cells.is_empty();
        partition
    }

    /// Re-derive the partition after a delta touched `touched` cells,
    /// keeping every clean component — **and its slot index** —
    /// byte-identical.
    ///
    /// The dirty region is the touched cells plus every cell of a slot
    /// owning one.  Only the region's rules and obligations are
    /// re-derived (entity-local grounding, indexed obligation lookup);
    /// the region is then re-partitioned locally, which realizes merges
    /// *and* splits.  Dirty slots are vacated and refilled from the
    /// fresh components (free-list first, appends on overflow), and the
    /// cell → slot index is patched for the region's cells only — no
    /// step of a refresh walks the full component or cell set.
    ///
    /// **Contract** (guaranteed by `DeltaEffects::touched_cells`):
    /// `touched` must contain *both* endpoint cells of every copy mapping
    /// the delta added or removed.  That closes the region without any
    /// global scan: a pre-existing obligation already has both endpoints
    /// in one component (that is what the partition means), so an
    /// obligation can only cross the region boundary if its link is new —
    /// and then both its cells are in `touched`.
    ///
    /// The returned [`RefreshPlan`] lists the rebuilt and freed slots so
    /// the engine can patch exactly that cached state.
    pub fn refresh(
        &mut self,
        spec: &Specification,
        touched: &BTreeSet<(RelId, Eid)>,
    ) -> RefreshPlan {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.dirty_slots.clear();
        scratch.dirty_cells.clear();
        scratch.region.clear();

        // The dirty region: touched cells plus their slots' cells.
        for cell in touched {
            if let Some(&slot) = self.index.get(cell) {
                scratch.dirty_slots.push(slot);
            }
        }
        scratch.dirty_slots.sort_unstable();
        scratch.dirty_slots.dedup();
        scratch.dirty_cells.extend(touched.iter().copied());
        for &slot in &scratch.dirty_slots {
            scratch
                .dirty_cells
                .extend(self.components[slot].cells.iter().copied());
        }
        scratch.dirty_cells.sort_unstable();
        scratch.dirty_cells.dedup();

        // Cells may have vanished (their entity lost its last tuple): the
        // region to re-derive is the *live* part of the dirty cell set.
        scratch.region.extend(
            scratch
                .dirty_cells
                .iter()
                .copied()
                .filter(|&(rel, eid)| !spec.instance(rel).entity_group(eid).is_empty()),
        );
        // Stale falsum verdicts of the region go; derive_region re-adds
        // the ones that still hold.
        for cell in &scratch.dirty_cells {
            self.falsum_cells.remove(cell);
        }
        let Scratch {
            region, cell_ids, ..
        } = &mut scratch;
        let fresh = self.derive_region(spec, region, RegionScope::Cells(region), cell_ids);

        // Patch the index for the region only; clean entries survive.
        for cell in &scratch.dirty_cells {
            self.index.remove(cell);
        }
        // Vacate the dirty slots, then refill from the fresh components:
        // free-list first (most recently vacated first), appends on
        // overflow.
        for &slot in &scratch.dirty_slots {
            self.components[slot] = Component::default();
            self.free.push(slot);
            self.live -= 1;
        }
        let mut rebuilt = Vec::with_capacity(fresh.len());
        for comp in fresh {
            let slot = match self.free.pop() {
                Some(slot) => {
                    self.components[slot] = comp;
                    slot
                }
                None => {
                    self.components.push(comp);
                    self.components.len() - 1
                }
            };
            for &cell in &self.components[slot].cells {
                self.index.insert(cell, slot);
            }
            self.live += 1;
            rebuilt.push(slot);
        }
        let freed: Vec<usize> = scratch
            .dirty_slots
            .iter()
            .copied()
            .filter(|&slot| self.components[slot].cells.is_empty())
            .collect();
        self.scratch = scratch;
        self.has_ground_falsum = !self.falsum_cells.is_empty();
        RefreshPlan {
            reused_components: self.live - rebuilt.len(),
            rebuilt,
            freed,
            slots: self.components.len(),
        }
    }

    /// Derive the components covering `cells` (a sorted, duplicate-free
    /// list): ground every constraint for the cells' entities (recording
    /// premise-free falsum cells), collect the scope's copy obligations,
    /// and union-find the cells into components in deterministic
    /// first-seen order.
    ///
    /// Ground rules are entity-local, so only obligations merge cells.
    fn derive_region(
        &mut self,
        spec: &Specification,
        cells: &[(RelId, Eid)],
        scope: RegionScope<'_>,
        cell_ids: &mut HashMap<(RelId, Eid), u32>,
    ) -> Vec<Component> {
        cell_ids.clear();
        cell_ids.extend(cells.iter().enumerate().map(|(i, &c)| (c, i as u32)));
        let mut uf = UnionFind::new(cells.len());

        // Entity-local grounding: each cell's rules anchor at the cell.
        // Iterate the ordered cell list (not the id map) so rule order —
        // and with it clause order in the compiled encodings — is
        // deterministic.  One grounder per constraint: its value-atom
        // analysis is shared across all the cells it grounds for.
        let mut rules: Vec<(GroundRuleAt, u32)> = Vec::new();
        for dc in spec.constraints() {
            let inst = spec.instance(dc.rel());
            let grounder = dc.entity_grounder();
            for (cid, &cell) in cells.iter().enumerate() {
                let cid = cid as u32;
                if cell.0 != dc.rel() {
                    continue;
                }
                for rule in grounder.ground_entity(inst, cell.1) {
                    if rule.premises.is_empty() && rule.conclusion.is_none() {
                        // Premise-free falsum: an unconditional
                        // contradiction local to this cell.
                        self.falsum_cells.insert(cell);
                        continue;
                    }
                    rules.push((
                        GroundRuleAt {
                            rel: dc.rel(),
                            rule,
                        },
                        cid,
                    ));
                }
            }
        }

        // Copy obligations; union source and target entity cells.  The
        // scoped form asks each copy for the dirty entities' groups only
        // (an indexed lookup), so obligation enumeration scales with the
        // region, not the copy's mapping set.
        let mut obligations: Vec<(ObligationAt, u32)> = Vec::new();
        for cf in spec.copies() {
            let sig = cf.signature();
            let target = spec.instance(sig.target);
            let source = spec.instance(sig.source);
            let obls = match &scope {
                RegionScope::Full => cf.compatibility_obligations(target, source),
                RegionScope::Cells(region) => {
                    let dirty_targets = entities_of(region, sig.target);
                    let dirty_sources = entities_of(region, sig.source);
                    cf.obligations_for_region(target, source, &dirty_targets, &dirty_sources)
                }
            };
            for (src_edge, tgt_edge) in obls {
                let src_cell = cell_ids[&(sig.source, source.tuple(src_edge.lesser).eid)];
                let tgt_cell = cell_ids[&(sig.target, target.tuple(tgt_edge.lesser).eid)];
                uf.union(src_cell, tgt_cell);
                obligations.push((
                    ObligationAt {
                        source_rel: sig.source,
                        source_edge: src_edge,
                        target_rel: sig.target,
                        target_edge: tgt_edge,
                    },
                    src_cell,
                ));
            }
        }

        // Materialize components in first-seen (deterministic) order.
        let mut root_to_component: HashMap<u32, usize> = HashMap::new();
        let mut components: Vec<Component> = Vec::new();
        for (id, &key) in cells.iter().enumerate() {
            let root = uf.find(id as u32);
            let cix = *root_to_component.entry(root).or_insert_with(|| {
                components.push(Component::default());
                components.len() - 1
            });
            components[cix].cells.insert(key);
        }
        for (rule, anchor) in rules {
            let cix = root_to_component[&uf.find(anchor)];
            components[cix].rules.push(rule);
        }
        for (ob, anchor) in obligations {
            let cix = root_to_component[&uf.find(anchor)];
            components[cix].obligations.push(ob);
        }
        // Component-local determinism: rules arrive grouped by constraint
        // then cell (the iteration above), obligations by copy function.
        components
    }

    /// The component slots, in stable slot order.  Vacant slots hold an
    /// empty component (no cells); most callers filter on
    /// `!cells.is_empty()` or never see them (cell-driven lookups cannot
    /// reach a vacant slot).
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Number of **live** components (vacant slots excluded).
    pub fn len(&self) -> usize {
        self.live
    }

    /// Number of slots, vacant included — the exclusive upper bound on
    /// slot indices ([`Partition::components`]`.len()`).
    pub fn slots(&self) -> usize {
        self.components.len()
    }

    /// `true` if the specification has no cells at all.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The component owning a `(relation, entity)` cell.
    pub fn component_of(&self, rel: RelId, eid: Eid) -> Option<usize> {
        self.index.get(&(rel, eid)).copied()
    }

    /// Slot indices of the components holding any cell of `rel` (vacant
    /// slots have no cells and never match).
    pub fn components_touching(&self, rel: RelId) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .components
            .iter()
            .enumerate()
            .filter(|(_, c)| c.cells.iter().any(|&(r, _)| r == rel))
            .map(|(i, _)| i)
            .collect();
        out.sort_unstable();
        out
    }
}

/// The entities of `rel` within a sorted cell list — a range scan, so
/// region-scoped obligation lookups never walk cells of other relations.
fn entities_of(cells: &[(RelId, Eid)], rel: RelId) -> BTreeSet<Eid> {
    let lo = cells.partition_point(|&(r, _)| r < rel);
    cells[lo..]
        .iter()
        .take_while(|&&(r, _)| r == rel)
        .map(|&(_, eid)| eid)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use currency_core::{
        AttrId, Catalog, CmpOp, CopyFunction, CopySignature, DenialConstraint, RelationSchema,
        Term, Tuple, Value,
    };

    const A: AttrId = AttrId(0);

    #[test]
    fn independent_entities_get_separate_components() {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A"]));
        let mut spec = Specification::new(cat);
        for e in 0..4u64 {
            for v in 0..2 {
                spec.instance_mut(r)
                    .push_tuple(Tuple::new(Eid(e), vec![Value::int(v)]))
                    .unwrap();
            }
        }
        let p = Partition::of(&spec);
        assert_eq!(p.len(), 4);
        for e in 0..4u64 {
            assert!(p.component_of(r, Eid(e)).is_some());
        }
        assert_eq!(p.components_touching(r).len(), 4);
    }

    #[test]
    fn per_tuple_constraints_do_not_merge_entities() {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A"]));
        let mut spec = Specification::new(cat);
        for e in 0..3u64 {
            for v in 0..2 {
                spec.instance_mut(r)
                    .push_tuple(Tuple::new(Eid(e), vec![Value::int(v)]))
                    .unwrap();
            }
        }
        // Monotone rule: both tuple variables range over one entity (ground
        // rules relate same-entity pairs only), so entities stay separate.
        let dc = DenialConstraint::builder(r, 2)
            .when_cmp(Term::attr(0, A), CmpOp::Gt, Term::attr(1, A))
            .then_order(1, A, 0)
            .build()
            .unwrap();
        spec.add_constraint(dc).unwrap();
        let p = Partition::of(&spec);
        assert_eq!(p.len(), 3);
        let total_rules: usize = p.components().iter().map(|c| c.rules.len()).sum();
        assert_eq!(total_rules, 3, "one ground rule per entity");
    }

    #[test]
    fn copy_function_merges_source_and_target_entities() {
        let mut cat = Catalog::new();
        let d = cat.add(RelationSchema::new("D", &["A"]));
        let s = cat.add(RelationSchema::new("S", &["A"]));
        let mut spec = Specification::new(cat);
        let d1 = spec
            .instance_mut(d)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(1)]))
            .unwrap();
        let d2 = spec
            .instance_mut(d)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(2)]))
            .unwrap();
        // An unrelated entity in D.
        spec.instance_mut(d)
            .push_tuple(Tuple::new(Eid(9), vec![Value::int(7)]))
            .unwrap();
        let s1 = spec
            .instance_mut(s)
            .push_tuple(Tuple::new(Eid(7), vec![Value::int(1)]))
            .unwrap();
        let s2 = spec
            .instance_mut(s)
            .push_tuple(Tuple::new(Eid(7), vec![Value::int(2)]))
            .unwrap();
        let sig = CopySignature::new(d, vec![A], s, vec![A]).unwrap();
        let mut cf = CopyFunction::new(sig);
        cf.set_mapping(d1, s1);
        cf.set_mapping(d2, s2);
        spec.add_copy(cf).unwrap();
        let p = Partition::of(&spec);
        // (D, e1) and (S, e7) merge; (D, e9) stays alone.
        assert_eq!(p.len(), 2);
        assert_eq!(p.component_of(d, Eid(1)), p.component_of(s, Eid(7)));
        assert_ne!(p.component_of(d, Eid(1)), p.component_of(d, Eid(9)));
        let merged = &p.components()[p.component_of(d, Eid(1)).unwrap()];
        assert_eq!(merged.obligations.len(), 2, "both obligation directions");
    }

    #[test]
    fn components_touching_filters_by_relation() {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A"]));
        let s = cat.add(RelationSchema::new("S", &["A"]));
        let mut spec = Specification::new(cat);
        spec.instance_mut(r)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(1)]))
            .unwrap();
        spec.instance_mut(s)
            .push_tuple(Tuple::new(Eid(2), vec![Value::int(1)]))
            .unwrap();
        let p = Partition::of(&spec);
        assert_eq!(p.len(), 2);
        assert_eq!(p.components_touching(r).len(), 1);
        assert_eq!(p.components_touching(s).len(), 1);
        assert_ne!(p.components_touching(r), p.components_touching(s));
    }

    fn monotone(r: RelId) -> DenialConstraint {
        DenialConstraint::builder(r, 2)
            .when_cmp(Term::attr(0, A), CmpOp::Gt, Term::attr(1, A))
            .then_order(1, A, 0)
            .build()
            .unwrap()
    }

    /// `refresh` must produce exactly the partition `of` computes from the
    /// post-delta specification (same cells, rules, obligations per live
    /// component up to slot order; vacant slots are layout, not content).
    fn assert_refresh_matches_fresh(p: &Partition, spec: &Specification) {
        let fresh = Partition::of(spec);
        assert_eq!(p.len(), fresh.len(), "component count");
        assert_eq!(p.has_ground_falsum, fresh.has_ground_falsum);
        let mut a: Vec<_> = p
            .components()
            .iter()
            .filter(|c| !c.cells.is_empty())
            .cloned()
            .collect();
        let mut b: Vec<_> = fresh
            .components()
            .iter()
            .filter(|c| !c.cells.is_empty())
            .cloned()
            .collect();
        let key = |c: &Component| c.cells.iter().next().copied();
        a.sort_by_key(key);
        b.sort_by_key(key);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.cells, y.cells);
            let mut xr = x
                .rules
                .iter()
                .map(|r| (r.rel, r.rule.clone()))
                .collect::<Vec<_>>();
            let mut yr = y
                .rules
                .iter()
                .map(|r| (r.rel, r.rule.clone()))
                .collect::<Vec<_>>();
            xr.sort();
            yr.sort();
            assert_eq!(xr, yr, "rules of {:?}", x.cells);
            let ob_key =
                |o: &ObligationAt| (o.source_rel, o.source_edge, o.target_rel, o.target_edge);
            let mut xo = x.obligations.iter().map(ob_key).collect::<Vec<_>>();
            let mut yo = y.obligations.iter().map(ob_key).collect::<Vec<_>>();
            xo.sort();
            yo.sort();
            assert_eq!(xo, yo, "obligations of {:?}", x.cells);
        }
    }

    #[test]
    fn refresh_on_local_insert_rebuilds_one_component() {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A"]));
        let mut spec = Specification::new(cat);
        for e in 0..4u64 {
            for v in 0..2 {
                spec.instance_mut(r)
                    .push_tuple(Tuple::new(Eid(e), vec![Value::int(v)]))
                    .unwrap();
            }
        }
        spec.add_constraint(monotone(r)).unwrap();
        let mut p = Partition::of(&spec);
        assert_eq!(p.len(), 4);
        // Insert a third tuple into entity 2 only.
        spec.instance_mut(r)
            .push_tuple(Tuple::new(Eid(2), vec![Value::int(7)]))
            .unwrap();
        let touched: BTreeSet<(RelId, Eid)> = [(r, Eid(2))].into();
        let plan = p.refresh(&spec, &touched);
        assert_eq!(plan.rebuilt(), 1);
        assert_eq!(plan.reused(), 3);
        assert_eq!(p.len(), 4);
        // The rebuilt component carries the new entity-2 rules.
        let cix = p.component_of(r, Eid(2)).unwrap();
        assert!(p.components()[cix].rules.len() > 1);
        assert_refresh_matches_fresh(&p, &spec);
    }

    #[test]
    fn refresh_merges_components_linked_by_new_copy_mapping() {
        let mut cat = Catalog::new();
        let d = cat.add(RelationSchema::new("D", &["A"]));
        let s = cat.add(RelationSchema::new("S", &["A"]));
        let mut spec = Specification::new(cat);
        let d1 = spec
            .instance_mut(d)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(1)]))
            .unwrap();
        let d2 = spec
            .instance_mut(d)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(2)]))
            .unwrap();
        let s1 = spec
            .instance_mut(s)
            .push_tuple(Tuple::new(Eid(7), vec![Value::int(1)]))
            .unwrap();
        let s2 = spec
            .instance_mut(s)
            .push_tuple(Tuple::new(Eid(7), vec![Value::int(2)]))
            .unwrap();
        // A bystander entity that must stay untouched.
        spec.instance_mut(d)
            .push_tuple(Tuple::new(Eid(9), vec![Value::int(5)]))
            .unwrap();
        let sig = CopySignature::new(d, vec![A], s, vec![A]).unwrap();
        let mut cf = CopyFunction::new(sig);
        cf.set_mapping(d1, s1);
        spec.add_copy(cf).unwrap();
        let mut p = Partition::of(&spec);
        // One mapping yields no obligations: three separate components.
        assert_eq!(p.len(), 3);
        // Extend the copy with the second mapping: obligations appear,
        // merging (D, e1) with (S, e7).
        spec.copy_mut(0).set_mapping(d2, s2);
        let touched: BTreeSet<(RelId, Eid)> = [(d, Eid(1)), (s, Eid(7))].into();
        let plan = p.refresh(&spec, &touched);
        assert_eq!(p.len(), 2);
        assert_eq!(plan.rebuilt(), 1, "merged region is one component");
        assert_eq!(plan.reused(), 1, "bystander untouched");
        assert_eq!(p.component_of(d, Eid(1)), p.component_of(s, Eid(7)));
        assert_refresh_matches_fresh(&p, &spec);
    }

    #[test]
    fn refresh_splits_component_when_link_is_removed() {
        let mut cat = Catalog::new();
        let d = cat.add(RelationSchema::new("D", &["A"]));
        let s = cat.add(RelationSchema::new("S", &["A"]));
        let mut spec = Specification::new(cat);
        let d1 = spec
            .instance_mut(d)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(1)]))
            .unwrap();
        let d2 = spec
            .instance_mut(d)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(2)]))
            .unwrap();
        let s1 = spec
            .instance_mut(s)
            .push_tuple(Tuple::new(Eid(7), vec![Value::int(1)]))
            .unwrap();
        let s2 = spec
            .instance_mut(s)
            .push_tuple(Tuple::new(Eid(7), vec![Value::int(2)]))
            .unwrap();
        let sig = CopySignature::new(d, vec![A], s, vec![A]).unwrap();
        let mut cf = CopyFunction::new(sig);
        cf.set_mapping(d1, s1);
        cf.set_mapping(d2, s2);
        spec.add_copy(cf).unwrap();
        let mut p = Partition::of(&spec);
        assert_eq!(p.len(), 1, "copy merges the two cells");
        // Remove one mapped target tuple; the delta layer would cascade the
        // mapping, so mirror that here.
        spec.instance_mut(d).remove_tuple(d2).unwrap();
        spec.copy_mut(0).retain_mappings(|t, _| t != d2);
        let touched: BTreeSet<(RelId, Eid)> = [(d, Eid(1)), (s, Eid(7))].into();
        let plan = p.refresh(&spec, &touched);
        assert_eq!(p.len(), 2, "obligations gone: the component splits");
        assert_eq!(plan.rebuilt(), 2);
        assert_ne!(p.component_of(d, Eid(1)), p.component_of(s, Eid(7)));
        assert_refresh_matches_fresh(&p, &spec);
    }

    #[test]
    fn refresh_tracks_falsum_cells() {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A", "B"]));
        let mut spec = Specification::new(cat);
        let t0 = spec
            .instance_mut(r)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(1), Value::int(0)]))
            .unwrap();
        spec.instance_mut(r)
            .push_tuple(Tuple::new(Eid(2), vec![Value::int(9), Value::int(0)]))
            .unwrap();
        // "No entity may hold two tuples agreeing on A but not B": falsum
        // when violated (the B ≠ atom forces distinct tuples).
        let dc = DenialConstraint::builder(r, 2)
            .when_cmp(Term::attr(0, A), CmpOp::Eq, Term::attr(1, A))
            .when_cmp(
                Term::attr(0, AttrId(1)),
                CmpOp::Ne,
                Term::attr(1, AttrId(1)),
            )
            .then_false()
            .build()
            .unwrap();
        spec.add_constraint(dc).unwrap();
        let mut p = Partition::of(&spec);
        assert!(!p.has_ground_falsum);
        // A conflicting duplicate in entity 1 triggers the falsum.
        let t_dup = spec
            .instance_mut(r)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(1), Value::int(5)]))
            .unwrap();
        let touched: BTreeSet<(RelId, Eid)> = [(r, Eid(1))].into();
        p.refresh(&spec, &touched);
        assert!(p.has_ground_falsum);
        assert_refresh_matches_fresh(&p, &spec);
        // Removing the duplicate clears it again.
        spec.instance_mut(r).remove_tuple(t_dup).unwrap();
        let plan = p.refresh(&spec, &touched);
        assert!(!p.has_ground_falsum);
        assert_eq!(plan.rebuilt(), 1);
        assert_refresh_matches_fresh(&p, &spec);
        // Removing the last tuple of the entity drops the cell entirely.
        spec.instance_mut(r).remove_tuple(t0).unwrap();
        p.refresh(&spec, &touched);
        assert_eq!(p.len(), 1);
        assert!(p.component_of(r, Eid(1)).is_none());
        assert_refresh_matches_fresh(&p, &spec);
    }

    /// The stable-slot contract: a refresh never moves a clean component,
    /// and vacated slots are recycled before the slot array grows.
    #[test]
    fn clean_slots_are_stable_and_freed_slots_are_reused() {
        let mut cat = Catalog::new();
        let d = cat.add(RelationSchema::new("D", &["A"]));
        let s = cat.add(RelationSchema::new("S", &["A"]));
        let mut spec = Specification::new(cat);
        let d1 = spec
            .instance_mut(d)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(1)]))
            .unwrap();
        let d2 = spec
            .instance_mut(d)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(2)]))
            .unwrap();
        spec.instance_mut(d)
            .push_tuple(Tuple::new(Eid(9), vec![Value::int(5)]))
            .unwrap();
        let s1 = spec
            .instance_mut(s)
            .push_tuple(Tuple::new(Eid(7), vec![Value::int(1)]))
            .unwrap();
        let s2 = spec
            .instance_mut(s)
            .push_tuple(Tuple::new(Eid(7), vec![Value::int(2)]))
            .unwrap();
        let sig = CopySignature::new(d, vec![A], s, vec![A]).unwrap();
        let mut cf = CopyFunction::new(sig);
        cf.set_mapping(d1, s1);
        spec.add_copy(cf).unwrap();
        let mut p = Partition::of(&spec);
        // Cells sort (D,1) < (D,9) < (S,7): three slots, no vacancies.
        assert_eq!((p.len(), p.slots()), (3, 3));
        let bystander_slot = p.component_of(d, Eid(9)).unwrap();
        let touched: BTreeSet<(RelId, Eid)> = [(d, Eid(1)), (s, Eid(7))].into();
        // Merge → split → merge churn over the two linked cells.  The
        // bystander's slot must never move and the slot array must never
        // grow past its high-water mark (freed slots get recycled).
        for round in 0..3 {
            spec.copy_mut(0).set_mapping(d2, s2);
            let plan = p.refresh(&spec, &touched);
            assert_eq!(plan.rebuilt(), 1, "round {round}: merged into one");
            assert_eq!((p.len(), p.slots()), (2, 3), "round {round}");
            assert_eq!(
                p.component_of(d, Eid(1)),
                p.component_of(s, Eid(7)),
                "round {round}"
            );
            assert_eq!(p.component_of(d, Eid(9)), Some(bystander_slot));
            spec.copy_mut(0).retain_mappings(|t, _| t != d2);
            let plan = p.refresh(&spec, &touched);
            assert_eq!(plan.rebuilt(), 2, "round {round}: split in two");
            assert_eq!((p.len(), p.slots()), (3, 3), "round {round}");
            assert_eq!(p.component_of(d, Eid(9)), Some(bystander_slot));
            assert_refresh_matches_fresh(&p, &spec);
        }
    }

    /// Rebuilt slots listed by the plan, clean cells untouched by the
    /// index patch: a component-local insert leaves every other cell's
    /// slot assignment — not just its contents — bit-identical.
    #[test]
    fn refresh_patches_index_only_for_the_region() {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A"]));
        let mut spec = Specification::new(cat);
        for e in 0..6u64 {
            spec.instance_mut(r)
                .push_tuple(Tuple::new(Eid(e), vec![Value::int(e as i64)]))
                .unwrap();
        }
        spec.add_constraint(monotone(r)).unwrap();
        let mut p = Partition::of(&spec);
        let before: Vec<Option<usize>> = (0..6).map(|e| p.component_of(r, Eid(e))).collect();
        spec.instance_mut(r)
            .push_tuple(Tuple::new(Eid(3), vec![Value::int(42)]))
            .unwrap();
        let touched: BTreeSet<(RelId, Eid)> = [(r, Eid(3))].into();
        let plan = p.refresh(&spec, &touched);
        assert_eq!(plan.rebuilt, vec![before[3].unwrap()], "slot recycled");
        assert!(plan.freed.is_empty());
        assert_eq!(plan.slots, 6);
        let after: Vec<Option<usize>> = (0..6).map(|e| p.component_of(r, Eid(e))).collect();
        assert_eq!(before, after, "no cell changed slots");
    }

    #[test]
    fn empty_spec_has_no_components() {
        let mut cat = Catalog::new();
        cat.add(RelationSchema::new("R", &["A"]));
        let spec = Specification::new(cat);
        let p = Partition::of(&spec);
        assert!(p.is_empty());
        assert!(!p.has_ground_falsum);
    }
}
