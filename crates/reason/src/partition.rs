//! Entity partitioning of specifications.
//!
//! The CNF encoding of a specification (see [`crate::encode`]) only ever
//! relates order variables of the *same entity group*: currency orders are
//! per-entity by definition, ground denial rules instantiate tuple
//! variables within one relation, and copy-compatibility obligations tie a
//! source entity's order to a target entity's order.  The encoding is
//! therefore a disjoint union of independent subproblems over connected
//! sets of `(relation, entity)` cells, where the connecting edges are:
//!
//! * a ground denial rule whose premises/conclusion span several entities
//!   of its relation (cross-entity denial constraints), and
//! * a copy-compatibility obligation, linking the source pair's entity to
//!   the target pair's entity.
//!
//! [`Partition::of`] computes the connected components with a union–find
//! over the cells, grounding every constraint and copy function **once**
//! and distributing the ground artifacts to their components.  The
//! [`crate::engine::CurrencyEngine`] compiles each component into its own
//! cached solver and answers queries against only the components they
//! touch.

use currency_core::{Eid, GroundRule, OrderEdge, RelId, Specification};
use std::collections::{BTreeSet, HashMap};

/// A ground denial rule tagged with the relation it speaks about.
#[derive(Clone, Debug)]
pub struct GroundRuleAt {
    /// The relation whose tuples the rule's edges relate.
    pub rel: RelId,
    /// The ground rule (`⋀ premises → conclusion`).
    pub rule: GroundRule,
}

/// A ground copy-compatibility obligation tagged with its relations:
/// *if* the completed source order contains `source_edge`, *then* the
/// completed target order must contain `target_edge`.
#[derive(Clone, Debug)]
pub struct ObligationAt {
    /// Relation of the source edge.
    pub source_rel: RelId,
    /// The source-order edge.
    pub source_edge: OrderEdge,
    /// Relation of the target edge.
    pub target_rel: RelId,
    /// The target-order edge.
    pub target_edge: OrderEdge,
}

/// One independent subproblem: a connected set of `(relation, entity)`
/// cells together with the ground rules and obligations local to it.
#[derive(Clone, Debug, Default)]
pub struct Component {
    /// The cells (every tuple of the specification belongs to exactly one
    /// component through its `(relation, entity)` cell).
    pub cells: BTreeSet<(RelId, Eid)>,
    /// Ground denial rules whose edges live in this component.
    pub rules: Vec<GroundRuleAt>,
    /// Copy obligations whose edges live in this component.
    pub obligations: Vec<ObligationAt>,
}

/// The entity partition of a specification.
#[derive(Clone, Debug)]
pub struct Partition {
    components: Vec<Component>,
    index: HashMap<(RelId, Eid), usize>,
    /// `true` if grounding produced a premise-free falsum rule — the
    /// specification is inconsistent regardless of any order choice.
    pub has_ground_falsum: bool,
}

/// Plain union–find over dense cell ids.
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb as usize] = ra;
        }
    }
}

impl Partition {
    /// Partition `spec` into independent components.
    ///
    /// Grounds every denial constraint and enumerates every copy
    /// function's compatibility obligations exactly once; the caller is
    /// expected to have validated the specification.
    pub fn of(spec: &Specification) -> Partition {
        // Dense ids for the (relation, entity) cells.
        let mut cell_ids: HashMap<(RelId, Eid), u32> = HashMap::new();
        let mut cells: Vec<(RelId, Eid)> = Vec::new();
        for inst in spec.instances() {
            for eid in inst.entities() {
                let key = (inst.rel(), eid);
                cell_ids.insert(key, cells.len() as u32);
                cells.push(key);
            }
        }
        let mut uf = UnionFind::new(cells.len());
        let mut has_ground_falsum = false;

        // Ground denial rules; union the entities their edges mention.
        let mut rules: Vec<(GroundRuleAt, Option<u32>)> = Vec::new();
        for dc in spec.constraints() {
            let inst = spec.instance(dc.rel());
            let entity_of = |edge: &OrderEdge| inst.tuple(edge.lesser).eid;
            for rule in dc.ground(inst) {
                let mut anchor: Option<u32> = None;
                for edge in rule.premises.iter().chain(rule.conclusion.as_ref()) {
                    let cell = cell_ids[&(dc.rel(), entity_of(edge))];
                    match anchor {
                        None => anchor = Some(cell),
                        Some(a) => uf.union(a, cell),
                    }
                }
                if anchor.is_none() && rule.conclusion.is_none() {
                    // Premise-free falsum: an unconditional contradiction.
                    has_ground_falsum = true;
                }
                rules.push((
                    GroundRuleAt {
                        rel: dc.rel(),
                        rule,
                    },
                    anchor,
                ));
            }
        }

        // Copy obligations; union source and target entity cells.
        let mut obligations: Vec<(ObligationAt, u32)> = Vec::new();
        for cf in spec.copies() {
            let sig = cf.signature();
            let target = spec.instance(sig.target);
            let source = spec.instance(sig.source);
            for (src_edge, tgt_edge) in cf.compatibility_obligations(target, source) {
                let src_cell = cell_ids[&(sig.source, source.tuple(src_edge.lesser).eid)];
                let tgt_cell = cell_ids[&(sig.target, target.tuple(tgt_edge.lesser).eid)];
                uf.union(src_cell, tgt_cell);
                obligations.push((
                    ObligationAt {
                        source_rel: sig.source,
                        source_edge: src_edge,
                        target_rel: sig.target,
                        target_edge: tgt_edge,
                    },
                    src_cell,
                ));
            }
        }

        // Materialize components in first-seen (deterministic) order.
        let mut root_to_component: HashMap<u32, usize> = HashMap::new();
        let mut components: Vec<Component> = Vec::new();
        let mut index: HashMap<(RelId, Eid), usize> = HashMap::new();
        for (id, &key) in cells.iter().enumerate() {
            let root = uf.find(id as u32);
            let cix = *root_to_component.entry(root).or_insert_with(|| {
                components.push(Component::default());
                components.len() - 1
            });
            components[cix].cells.insert(key);
            index.insert(key, cix);
        }
        for (rule, anchor) in rules {
            if let Some(anchor) = anchor {
                let cix = root_to_component[&uf.find(anchor)];
                components[cix].rules.push(rule);
            }
            // Premise-free rules with a conclusion have an anchor; pure
            // falsum rules are recorded in `has_ground_falsum`.
        }
        for (ob, anchor) in obligations {
            let cix = root_to_component[&uf.find(anchor)];
            components[cix].obligations.push(ob);
        }
        Partition {
            components,
            index,
            has_ground_falsum,
        }
    }

    /// The components, in deterministic first-seen order.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// `true` if the specification has no cells at all.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// The component owning a `(relation, entity)` cell.
    pub fn component_of(&self, rel: RelId, eid: Eid) -> Option<usize> {
        self.index.get(&(rel, eid)).copied()
    }

    /// Indices of the components holding any cell of `rel`.
    pub fn components_touching(&self, rel: RelId) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .components
            .iter()
            .enumerate()
            .filter(|(_, c)| c.cells.iter().any(|&(r, _)| r == rel))
            .map(|(i, _)| i)
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use currency_core::{
        AttrId, Catalog, CmpOp, CopyFunction, CopySignature, DenialConstraint, RelationSchema,
        Term, Tuple, Value,
    };

    const A: AttrId = AttrId(0);

    #[test]
    fn independent_entities_get_separate_components() {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A"]));
        let mut spec = Specification::new(cat);
        for e in 0..4u64 {
            for v in 0..2 {
                spec.instance_mut(r)
                    .push_tuple(Tuple::new(Eid(e), vec![Value::int(v)]))
                    .unwrap();
            }
        }
        let p = Partition::of(&spec);
        assert_eq!(p.len(), 4);
        for e in 0..4u64 {
            assert!(p.component_of(r, Eid(e)).is_some());
        }
        assert_eq!(p.components_touching(r).len(), 4);
    }

    #[test]
    fn per_tuple_constraints_do_not_merge_entities() {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A"]));
        let mut spec = Specification::new(cat);
        for e in 0..3u64 {
            for v in 0..2 {
                spec.instance_mut(r)
                    .push_tuple(Tuple::new(Eid(e), vec![Value::int(v)]))
                    .unwrap();
            }
        }
        // Monotone rule: both tuple variables range over one entity (ground
        // rules relate same-entity pairs only), so entities stay separate.
        let dc = DenialConstraint::builder(r, 2)
            .when_cmp(Term::attr(0, A), CmpOp::Gt, Term::attr(1, A))
            .then_order(1, A, 0)
            .build()
            .unwrap();
        spec.add_constraint(dc).unwrap();
        let p = Partition::of(&spec);
        assert_eq!(p.len(), 3);
        let total_rules: usize = p.components().iter().map(|c| c.rules.len()).sum();
        assert_eq!(total_rules, 3, "one ground rule per entity");
    }

    #[test]
    fn copy_function_merges_source_and_target_entities() {
        let mut cat = Catalog::new();
        let d = cat.add(RelationSchema::new("D", &["A"]));
        let s = cat.add(RelationSchema::new("S", &["A"]));
        let mut spec = Specification::new(cat);
        let d1 = spec
            .instance_mut(d)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(1)]))
            .unwrap();
        let d2 = spec
            .instance_mut(d)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(2)]))
            .unwrap();
        // An unrelated entity in D.
        spec.instance_mut(d)
            .push_tuple(Tuple::new(Eid(9), vec![Value::int(7)]))
            .unwrap();
        let s1 = spec
            .instance_mut(s)
            .push_tuple(Tuple::new(Eid(7), vec![Value::int(1)]))
            .unwrap();
        let s2 = spec
            .instance_mut(s)
            .push_tuple(Tuple::new(Eid(7), vec![Value::int(2)]))
            .unwrap();
        let sig = CopySignature::new(d, vec![A], s, vec![A]).unwrap();
        let mut cf = CopyFunction::new(sig);
        cf.set_mapping(d1, s1);
        cf.set_mapping(d2, s2);
        spec.add_copy(cf).unwrap();
        let p = Partition::of(&spec);
        // (D, e1) and (S, e7) merge; (D, e9) stays alone.
        assert_eq!(p.len(), 2);
        assert_eq!(p.component_of(d, Eid(1)), p.component_of(s, Eid(7)));
        assert_ne!(p.component_of(d, Eid(1)), p.component_of(d, Eid(9)));
        let merged = &p.components()[p.component_of(d, Eid(1)).unwrap()];
        assert_eq!(merged.obligations.len(), 2, "both obligation directions");
    }

    #[test]
    fn components_touching_filters_by_relation() {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A"]));
        let s = cat.add(RelationSchema::new("S", &["A"]));
        let mut spec = Specification::new(cat);
        spec.instance_mut(r)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(1)]))
            .unwrap();
        spec.instance_mut(s)
            .push_tuple(Tuple::new(Eid(2), vec![Value::int(1)]))
            .unwrap();
        let p = Partition::of(&spec);
        assert_eq!(p.len(), 2);
        assert_eq!(p.components_touching(r).len(), 1);
        assert_eq!(p.components_touching(s).len(), 1);
        assert_ne!(p.components_touching(r), p.components_touching(s));
    }

    #[test]
    fn empty_spec_has_no_components() {
        let mut cat = Catalog::new();
        cat.add(RelationSchema::new("R", &["A"]));
        let spec = Specification::new(cat);
        let p = Partition::of(&spec);
        assert!(p.is_empty());
        assert!(!p.has_ground_falsum);
    }
}
