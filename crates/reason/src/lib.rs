//! # currency-reason
//!
//! Decision procedures for the seven data-currency problems of Fan, Geerts
//! & Wijsen (PODS 2011 / TODS 2012), over the model of `currency-core`:
//!
//! | Problem | Question | General complexity | This crate |
//! |---------|----------|--------------------|------------|
//! | **CPS**  | is the specification consistent (`Mod(S) ≠ ∅`)? | Σᵖ₂-c / NP-c | [`cps`] |
//! | **COP**  | is a currency order contained in every consistent completion? | Πᵖ₂-c / coNP-c | [`cop`] |
//! | **DCIP** | do all completions agree on the current instance? | Πᵖ₂-c / coNP-c | [`dcip`] |
//! | **CCQA** | is a tuple a certain current answer to a query? | Πᵖ₂–PSPACE / coNP-c | [`ccqa`], [`certain_answers`] |
//! | **CPP**  | do the copy functions already import enough current data? | Πᵖ₃–PSPACE / Πᵖ₂-c | [`cpp`] |
//! | **ECP**  | can the copy functions be extended to be currency preserving? | O(1) | [`ecp`], [`maximum_extension`] |
//! | **BCP**  | … with at most `k` additional copied tuples? | Σᵖ₄–PSPACE / Σᵖ₃-c | [`bcp`] |
//!
//! ## Engines
//!
//! * **SAT-based exact solvers** ([`encode`]): consistent completions are
//!   encoded as propositional models over *order variables* (one Boolean
//!   per unordered same-entity tuple pair per attribute), with structural
//!   totality/antisymmetry, ground transitivity clauses, grounded denial
//!   constraints, and copy-compatibility implications.  Current instances
//!   are enumerated through projected All-SAT over *value indicator*
//!   variables.  The engine is `currency-sat`'s CDCL solver.
//!
//!   The exact path is served by the **entity-partitioned
//!   [`CurrencyEngine`]** ([`engine`], [`partition`]): the CNF factors
//!   into independent components over `(relation, entity)` cells, each
//!   compiled once into a cached incremental solver and queried with
//!   assumptions — repeated queries over one specification cost
//!   O(solve touched components) instead of O(encode whole spec), and
//!   components compile and solve in parallel ([`Options::threads`]).
//!   The engine is also *live*: [`CurrencyEngine::apply`] feeds it a
//!   [`currency_core::SpecDelta`] (tuple inserts/removals, new order
//!   edges, constraints, copy extensions), re-partitions incrementally
//!   and recompiles only the touched components — see [`engine`] and
//!   [`partition`].
//!   The pre-partitioning whole-specification path is kept as the
//!   `*_monolithic` functions for differential testing.
//!
//!   For read-mostly concurrent serving, [`snapshot`] refactors the same
//!   compiled state into epoch-published immutable views: a single
//!   [`SnapshotEngine`] writer applies deltas through the O(dirty region)
//!   path and publishes [`EngineSnapshot`]s through a [`SnapshotCell`];
//!   any number of [`SnapshotReader`]s answer CPS/COP/DCIP/CCQA against
//!   their pinned epoch with per-reader solver scratch and zero shared
//!   locks.  The `currency-serve` crate builds the caching/rate-limited
//!   front door on top.
//! * **Enumeration reference solvers** ([`enumerate`]): brute-force
//!   iteration over all completions, used as ground truth in differential
//!   tests and the ablation benchmarks.
//! * **PTIME special-case algorithms** (paper §6): the fixpoint
//!   computation of certain orders `PO∞` ([`po_infinity`], Theorem 6.1),
//!   the `poss(S)` algorithm for SP queries ([`certain_answers_sp`],
//!   Proposition 6.3), and polynomial currency-preservation checks for SP
//!   queries without denial constraints ([`cpp_sp`], [`bcp_sp`],
//!   Theorem 6.4).
//!
//! Top-level functions dispatch automatically: when a specification has no
//! denial constraints (and, for query problems, the query is SP), the
//! PTIME algorithms are used; otherwise the SAT-based exact solvers run.

mod ccqa;
mod cop;
mod cps;
mod dcip;
pub mod encode;
pub mod engine;
pub mod enumerate;
mod error;
pub mod explain;
mod fixpoint;
pub mod obs;
pub mod partition;
mod preserve;
mod preserve_sp;
pub mod shard;
pub mod snapshot;
mod sp_ptime;

pub use ccqa::{
    ccqa, ccqa_exact, ccqa_exact_monolithic, certain_answers, certain_answers_exact,
    certain_answers_exact_monolithic, CertainAnswers,
};
pub use cop::{cop, cop_exact, cop_exact_monolithic, cop_ptime, CurrencyOrderQuery};
pub use cps::{
    cps, cps_enumerate, cps_exact, cps_exact_monolithic, cps_ptime, witness_completion,
    witness_completion_monolithic,
};
pub use dcip::{dcip, dcip_exact, dcip_exact_monolithic, dcip_ptime};
pub use encode::Bounds;
pub use engine::{ApplyReport, CurrencyEngine, EngineStats};
pub use error::ReasonError;
pub use explain::{explain_inconsistency, InconsistencyCore, SpecComponent};
pub use fixpoint::{po_infinity, CertainOrders};
pub use obs::EngineObs;
pub use partition::{Partition, RefreshPlan};
pub use preserve::{bcp, cpp, ecp, maximum_extension, ExtensionSlot, PreservationProblem};
pub use preserve_sp::{bcp_sp, cpp_sp};
pub use shard::{
    ShardError, ShardPlan, ShardedApplyReport, ShardedCompactReport, ShardedCompactStepReport,
    ShardedEngine, ShardedStats, SpecImport,
};
pub use snapshot::{EngineSnapshot, PublishReport, SnapshotCell, SnapshotEngine, SnapshotReader};
pub use sp_ptime::{ccqa_sp, certain_answers_sp, poss_instance};

/// Per-call SAT work budget threaded down to `currency-sat`.
///
/// Unlike [`Options::max_models`] (which bounds how many *models* an
/// enumeration may visit), these bound the work of each individual SAT
/// decision — the knob that matters when a single solve is the thing that
/// refuses to terminate.  Exhaustion surfaces as
/// [`ReasonError::Interrupted`]; cached per-component solvers keep their
/// learnt state, so retrying the same query grants the search another
/// installment and it resumes warm.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolveLimits {
    /// Interrupt a solve after this many conflicts.
    pub max_conflicts: Option<u64>,
    /// Interrupt a solve after this many unit propagations.
    pub max_props: Option<u64>,
}

impl SolveLimits {
    /// `true` if no per-solve budget is set.
    pub fn is_unbounded(&self) -> bool {
        self.max_conflicts.is_none() && self.max_props.is_none()
    }
}

/// Work actually performed before an interrupt, reported in
/// [`ReasonError::Interrupted`] so callers can size the retry budget.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Spent {
    /// Conflicts hit before the interrupt.
    pub conflicts: u64,
    /// Unit propagations performed before the interrupt.
    pub propagations: u64,
}

/// How the transitivity axiom of the order encoding is grounded (see
/// [`encode`]).
///
/// Transitivity is the only cubic part of the reduction: an entity group
/// of `n` tuples has `n·(n-1)·(n-2)` ordered triangles per attribute.
/// Eager grounding emits them all up front; lazy grounding solves without
/// them, checks each candidate model's order relation for transitivity
/// violations with a closure walk, installs only the violated triangles
/// as lemmas ([`currency_sat::Solver::add_lemma`]) and re-solves —
/// converging in a handful of refinement rounds while typically grounding
/// a tiny fraction of the triangles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransitivityMode {
    /// Ground all `O(n³)` triangle clauses up front.  Predictable and
    /// marginally faster on tiny entity groups (≲ 8 tuples) or when a
    /// query enumerates *many* models over one component (each model
    /// re-checks closure); infeasible for large groups.
    Eager,
    /// Encode only order variables, initial orders and constraints; add
    /// violated triangle clauses as lemmas between solver calls.  Lemmas
    /// persist in cached per-component solvers, so refinement work
    /// amortizes across queries.  The default.
    #[default]
    Lazy,
}

/// Pause budget for one incremental-compaction step
/// ([`engine::CurrencyEngine::compact_step`] and the
/// [`Options::auto_compact_budget`] policy).
///
/// A *step* executes canonical compaction slices
/// ([`currency_core::Specification::compact_slice`]) until either bound
/// trips: `max_slots_per_step` caps the slots scanned (the deterministic
/// bound — the only one the auto policy uses, so log replay reproduces
/// the same slices on any machine), `max_pause` caps wall-clock time for
/// explicit maintenance calls.  Every step leaves the engine fully
/// consistent and queryable; the sweep's progress lives in the
/// specification itself, so steps may be spread across applies, threads
/// of control, or process restarts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompactBudget {
    /// Wall-clock ceiling for one [`engine::CurrencyEngine::compact_step`]
    /// call.  Checked between slices (a single slice's work is already
    /// bounded by `max_slots_per_step`), ignored by the auto-step policy
    /// for replay determinism.
    pub max_pause: std::time::Duration,
    /// Maximum slots scanned per step across all its slices.  The
    /// deterministic work bound: a step over a specification state and a
    /// slot budget always executes the same slices.
    pub max_slots_per_step: usize,
}

impl Default for CompactBudget {
    /// 250 ms pause ceiling, 4096 scanned slots per step — small enough
    /// to interleave with a live delta stream, large enough that a churn
    /// backlog drains in a few hundred steps.
    fn default() -> CompactBudget {
        CompactBudget {
            max_pause: std::time::Duration::from_millis(250),
            max_slots_per_step: 4096,
        }
    }
}

/// Resource limits for the exact (enumeration-heavy) solvers.
///
/// The general problems are Σᵖ₂-hard and worse; the exact solvers can be
/// asked questions whose answer requires visiting exponentially many
/// projected models or extensions.  `Options` bounds that work so callers
/// get a [`ReasonError::BudgetExceeded`] instead of an unbounded run.
#[derive(Clone, Copy, Debug)]
pub struct Options {
    /// Maximum number of projected models visited per All-SAT enumeration.
    ///
    /// The [`engine::CurrencyEngine`] applies this bound per entity
    /// component *and* to the composed cross-component product, so a
    /// budget that held for the monolithic path keeps holding.
    pub max_models: usize,
    /// Maximum number of copy-function extensions examined per CPP/BCP
    /// check.
    pub max_extensions: usize,
    /// Worker threads for the engine's component compilation and solves.
    ///
    /// `0` (the default) means "use the machine's available parallelism";
    /// `1` forces sequential operation.
    pub threads: usize,
    /// How transitivity is grounded ([`TransitivityMode::Lazy`] by
    /// default).  The monolithic `*_monolithic` reference paths always
    /// ground eagerly and are differentially tested against both modes.
    pub transitivity: TransitivityMode,
    /// Auto-compaction threshold: once the specification's accumulated
    /// retraction tombstones reach this count,
    /// [`engine::CurrencyEngine::apply`] triggers
    /// [`engine::CurrencyEngine::compact`] itself after applying the
    /// delta (the compaction is surfaced through
    /// [`engine::ApplyReport::compacted`], since it invalidates every
    /// externally held tuple id).  `0` (the default) disables the policy;
    /// retraction-heavy streams then grow one dead id slot per removal
    /// until an explicit `compact()` call.
    ///
    /// Replay determinism: engines recovered from a durability log
    /// (`currency-store`) must be reopened with the same threshold, or
    /// log replay would compact at different points than the original
    /// run and de-synchronize tuple ids (the recovery path detects this
    /// and fails cleanly rather than diverging silently).
    pub auto_compact_tombstones: usize,
    /// Incremental auto-compaction: when set (together with a nonzero
    /// [`Options::auto_compact_tombstones`] threshold), crossing the
    /// threshold no longer triggers one stop-the-world
    /// [`engine::CurrencyEngine::compact`] — instead each
    /// [`engine::CurrencyEngine::apply`] call runs **one bounded
    /// compaction step** of at most
    /// [`CompactBudget::max_slots_per_step`] scanned slots (surfaced
    /// through [`engine::ApplyReport::compact_step`]), so reclamation
    /// interleaves with the delta stream and no single apply pauses for
    /// O(specification).
    ///
    /// The auto path deliberately ignores [`CompactBudget::max_pause`]:
    /// a wall-clock cutoff would make the step's slice boundaries depend
    /// on machine speed and break log-replay determinism.  Explicit
    /// [`engine::CurrencyEngine::compact_step`] calls honor both bounds
    /// (the durability layer logs whatever slices actually ran).
    ///
    /// `None` (the default) keeps the monolithic auto-compaction
    /// behavior unchanged.
    pub auto_compact_budget: Option<CompactBudget>,
    /// Per-SAT-call work budget (unbounded by default).  Checked by every
    /// engine/snapshot solve path; exhaustion surfaces as
    /// [`ReasonError::Interrupted`] and leaves the touched component
    /// undecided — never mis-cached as unsat.
    pub solve_limits: SolveLimits,
    /// Wall-clock deadline for a whole query (`None` = no deadline).
    /// Bounded solves run in conflict installments so the deadline is
    /// observed without any time syscalls inside the solver's hot loop,
    /// and the CCQA/current-instance odometer re-checks it between
    /// combination batches.
    pub deadline: Option<std::time::Instant>,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            max_models: 1_000_000,
            max_extensions: 1_000_000,
            threads: 0,
            transitivity: TransitivityMode::default(),
            auto_compact_tombstones: 0,
            auto_compact_budget: None,
            solve_limits: SolveLimits::default(),
            deadline: None,
        }
    }
}
