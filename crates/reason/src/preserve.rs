//! Currency preservation: CPP, ECP and BCP (paper §4–§5).
//!
//! A collection of copy functions `ρ̄` importing data from sources `D′`
//! into targets `D` is *currency preserving* for a query `Q` when
//! `Mod(S) ≠ ∅` and no extension of `ρ̄` changes the certain current
//! answers to `Q` — the functions already import every value that matters.
//!
//! ## Extensions, concretely
//!
//! Following the paper's definition (§4), an extension `ρ̄ᵉ ∈ Ext(ρ̄)` may,
//! per copy function:
//!
//! * **map an existing unmapped target tuple** to a value-equal source
//!   tuple (mappings that exist are preserved verbatim), or
//! * **import a source tuple as a new target tuple** — only through copy
//!   functions whose signature covers every target attribute, into any
//!   entity that already exists in the target (`π_EID(Dᵉ) = π_EID(D)`).
//!
//! Under set semantics both action families are finite, so `Ext(ρ̄)` is
//! finite and the Πᵖ₃-hard CPP check is implemented exactly by enumerating
//! it.  Extensions that induce identical *order obligations* and identical
//! new tuples have identical `Mod(Sᵉ)`, so the enumeration is deduplicated
//! by that signature — this collapses e.g. the many ways of mapping
//! isolated tuples (which constrain nothing) into one representative.

use crate::ccqa::{certain_answers, CertainAnswers};
use crate::cps::cps;
use crate::error::ReasonError;
use crate::Options;
use currency_core::{Eid, RelId, Specification, TupleId, Value};
use currency_query::Query;
use std::collections::BTreeSet;

/// A currency-preservation problem: a specification whose relations are
/// split into sources (`D′`) and targets (`D`), plus the query.
///
/// Copy functions are expected to import from `sources` into the remaining
/// relations; the query is posed over the target side.
#[derive(Clone, Copy)]
pub struct PreservationProblem<'a> {
    /// The specification (targets, sources, constraints, copy functions).
    pub spec: &'a Specification,
    /// The relations forming the source collection `D′`.
    pub sources: &'a BTreeSet<RelId>,
    /// The query whose certain current answers must be preserved.
    pub query: &'a Query,
}

/// One *unit action* available when extending the copy functions.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ExtensionSlot {
    /// Define `ρ(target) = source` for an existing, currently unmapped
    /// target tuple (the source tuple is value-equal on the signature).
    MapExisting {
        /// Index of the copy function within the specification.
        copy: usize,
        /// The unmapped target tuple.
        target: TupleId,
        /// The source tuple to map it to.
        source: TupleId,
    },
    /// Import `source` as a new tuple of entity `entity` in the copy
    /// function's target relation.
    Import {
        /// Index of the copy function within the specification.
        copy: usize,
        /// The source tuple to import.
        source: TupleId,
        /// The (existing) target entity the new tuple describes.
        entity: Eid,
    },
}

/// Enumerate every unit action available on `spec` (see module docs).
pub(crate) fn extension_slots(
    spec: &Specification,
    sources: &BTreeSet<RelId>,
) -> Vec<ExtensionSlot> {
    let mut slots = Vec::new();
    for (ci, cf) in spec.copies().iter().enumerate() {
        let sig = cf.signature();
        if !sources.contains(&sig.source) || sources.contains(&sig.target) {
            continue; // only functions importing from D′ into D extend
        }
        let target = spec.instance(sig.target);
        let source = spec.instance(sig.source);
        // Map existing unmapped tuples to value-equal source tuples.
        for (tid, t) in target.tuples() {
            if cf.mapping(tid).is_some() {
                continue;
            }
            for (sid, s) in source.tuples() {
                let equal = sig
                    .target_attrs
                    .iter()
                    .zip(&sig.source_attrs)
                    .all(|(ta, sa)| t.value(*ta) == s.value(*sa));
                if equal {
                    slots.push(ExtensionSlot::MapExisting {
                        copy: ci,
                        target: tid,
                        source: sid,
                    });
                }
            }
        }
        // Import new tuples (full-coverage signatures only).
        if sig.covers_all_target_attrs(target.arity()) {
            for (sid, s) in source.tuples() {
                let mut values: Vec<Value> = vec![Value::int(0); target.arity()];
                for (ta, sa) in sig.target_attrs.iter().zip(&sig.source_attrs) {
                    values[ta.index()] = s.value(*sa).clone();
                }
                for eid in target.entities() {
                    if !target.contains_tuple_value(eid, &values) {
                        slots.push(ExtensionSlot::Import {
                            copy: ci,
                            source: sid,
                            entity: eid,
                        });
                    }
                }
            }
        }
    }
    slots
}

/// Apply a set of unit actions, producing the extended specification.
///
/// Returns `None` when the actions are jointly malformed: two actions map
/// the same target tuple, or two imports create the same tuple (set
/// semantics would merge them into one tuple with two images).
pub(crate) fn apply_extension(
    spec: &Specification,
    actions: &[ExtensionSlot],
) -> Option<Specification> {
    let mut out = spec.clone();
    let mut mapped_targets: BTreeSet<(usize, TupleId)> = BTreeSet::new();
    for a in actions {
        match a {
            ExtensionSlot::MapExisting {
                copy,
                target,
                source,
            } => {
                if !mapped_targets.insert((*copy, *target)) {
                    return None; // same tuple mapped twice
                }
                out.copy_mut(*copy).set_mapping(*target, *source);
            }
            ExtensionSlot::Import {
                copy,
                source,
                entity,
            } => {
                let sig = out.copies()[*copy].signature().clone();
                let src_tuple = out.instance(sig.source).tuple(*source).clone();
                let mut values: Vec<Value> = vec![Value::int(0); out.instance(sig.target).arity()];
                for (ta, sa) in sig.target_attrs.iter().zip(&sig.source_attrs) {
                    values[ta.index()] = src_tuple.value(*sa).clone();
                }
                if out
                    .instance(sig.target)
                    .contains_tuple_value(*entity, &values)
                {
                    return None; // set semantics: tuple already present
                }
                let new_id = out
                    .instance_mut(sig.target)
                    .push_tuple(currency_core::Tuple::new(*entity, values))
                    .expect("arity correct by construction");
                out.copy_mut(*copy).set_mapping(new_id, *source);
            }
        }
    }
    Some(out)
}

/// The order-theoretic signature of an extension: the new tuples it
/// creates and the ≺-compatibility obligations its mappings induce.
/// Extensions with equal signatures have equal `Mod(Sᵉ)`.
fn extension_signature(spec: &Specification, ext: &Specification) -> Vec<[u64; 4]> {
    // Hash-free structural signature: serialize obligations and new-tuple
    // records into a canonical vector.  Records are sorted *as units* —
    // sorting their flattened fields would conflate extensions that pair
    // the same endpoints in different orientations (e.g. `{t0→s1, t2→s2}`
    // vs `{t0→s2, t2→s1}`), which have different `Mod(Sᵉ)`.
    let mut sig: Vec<[u64; 4]> = Vec::new();
    for (ci, cf) in ext.copies().iter().enumerate() {
        let s = cf.signature();
        let target = ext.instance(s.target);
        let source = ext.instance(s.source);
        // New tuples (beyond the original instance length), with values
        // identified by their source tuple id.
        let orig_len = spec.instance(s.target).len();
        for (tid, sid) in cf.mappings() {
            if tid.index() >= orig_len {
                sig.push([
                    0xA000_0000_0000_0000 | (ci as u64) << 48,
                    target.tuple(tid).eid.0,
                    sid.0 as u64,
                    0,
                ]);
            }
        }
        for (se, te) in cf.compatibility_obligations(target, source) {
            sig.push([
                0xB000_0000_0000_0000
                    | (ci as u64) << 48
                    | (se.attr.0 as u64) << 24
                    | te.attr.0 as u64,
                ((se.lesser.0 as u64) << 32) | se.greater.0 as u64,
                ((te.lesser.0 as u64) << 32) | te.greater.0 as u64,
                0,
            ]);
        }
    }
    sig.sort_unstable();
    sig
}

/// Drop unit actions that are *individually* inconsistent.
///
/// Consistency is inherited downward along extension inclusion (a
/// consistent completion of a larger extension restricts to one of any
/// smaller extension), so an action whose singleton extension has
/// `Mod = ∅` can never participate in a consistent extension and is
/// safely removed before enumeration.  This prunes e.g. imports into
/// entities that a fixed denial constraint forbids — the dominant slot
/// population in the paper's Theorem 5.1 gadgets.
fn viable_slots(
    spec: &Specification,
    slots: Vec<ExtensionSlot>,
) -> Result<Vec<ExtensionSlot>, ReasonError> {
    let mut out = Vec::with_capacity(slots.len());
    for slot in slots {
        let Some(ext) = apply_extension(spec, std::slice::from_ref(&slot)) else {
            continue;
        };
        if cps(&ext)? {
            out.push(slot);
        }
    }
    Ok(out)
}

/// Decide **CPP**: are the copy functions currency preserving for the
/// query?  (Paper Theorem 5.1: Πᵖ₃-complete for CQ; Πᵖ₂-complete in data
/// complexity.)
pub fn cpp(problem: &PreservationProblem, opts: &Options) -> Result<bool, ReasonError> {
    let base = certain_answers(problem.spec, problem.query, opts)?;
    if base == CertainAnswers::Inconsistent {
        return Ok(false); // definition clause (a): Mod(S) must be nonempty
    }
    let slots = viable_slots(problem.spec, extension_slots(problem.spec, problem.sources))?;
    let mut seen: BTreeSet<Vec<[u64; 4]>> = BTreeSet::new();
    let mut budget = opts.max_extensions;
    let mut changed = false;
    for_each_choice(
        &slots,
        &mut Vec::new(),
        0,
        opts.max_extensions,
        &mut budget,
        &mut |actions| {
            if actions.is_empty() {
                return Ok(true); // ρ̄ itself is not in Ext(ρ̄)
            }
            let Some(ext) = apply_extension(problem.spec, actions) else {
                return Ok(true);
            };
            if !seen.insert(extension_signature(problem.spec, &ext)) {
                return Ok(true); // equivalent extension already checked
            }
            if !cps(&ext)? {
                return Ok(true); // Mod(Sᵉ) = ∅: not quantified over
            }
            let ans = certain_answers(&ext, problem.query, opts)?;
            if ans != base {
                changed = true;
                return Ok(false); // witness found: stop the enumeration
            }
            Ok(true)
        },
    )?;
    Ok(!changed)
}

/// Decide **ECP**: can the copy functions be extended into a currency
/// preserving collection?  By the paper's Proposition 5.2 this is `O(1)`:
/// the answer is *yes* exactly when the specification is consistent (a
/// maximum extension is always currency preserving).
pub fn ecp(problem: &PreservationProblem) -> Result<bool, ReasonError> {
    cps(problem.spec)
}

/// Construct the *maximum extension* of Proposition 5.2's proof: greedily
/// add every unit action that keeps the specification consistent.  The
/// result is currency preserving for every query.
pub fn maximum_extension(
    spec: &Specification,
    sources: &BTreeSet<RelId>,
) -> Result<Specification, ReasonError> {
    if !cps(spec)? {
        return Err(ReasonError::UnsupportedQuery {
            detail: "maximum_extension requires a consistent specification".to_string(),
        });
    }
    let mut current = spec.clone();
    // Slots are recomputed against the evolving specification so that a
    // tuple mapped by an accepted action is not offered again.
    loop {
        let slots = extension_slots(&current, sources);
        let mut advanced = false;
        for slot in slots {
            if let Some(candidate) = apply_extension(&current, std::slice::from_ref(&slot)) {
                if cps(&candidate)? {
                    current = candidate;
                    advanced = true;
                }
            }
        }
        if !advanced {
            return Ok(current);
        }
    }
}

/// Decide **BCP**: does a currency preserving extension adding at most `k`
/// mappings exist?  (Paper Theorem 5.3: Σᵖ₄-complete for CQ; Σᵖ₃-complete
/// in data complexity.)
pub fn bcp(problem: &PreservationProblem, k: usize, opts: &Options) -> Result<bool, ReasonError> {
    if !cps(problem.spec)? {
        return Ok(false);
    }
    let slots = viable_slots(problem.spec, extension_slots(problem.spec, problem.sources))?;
    let mut budget = opts.max_extensions;
    let mut found = false;
    for_each_bounded_choice(
        &slots,
        k,
        &mut Vec::new(),
        0,
        opts.max_extensions,
        &mut budget,
        &mut |actions| {
            if actions.is_empty() {
                return Ok(true);
            }
            let Some(ext) = apply_extension(problem.spec, actions) else {
                return Ok(true);
            };
            if !cps(&ext)? {
                return Ok(true);
            }
            let sub = PreservationProblem {
                spec: &ext,
                sources: problem.sources,
                query: problem.query,
            };
            if cpp(&sub, opts)? {
                found = true;
                return Ok(false);
            }
            Ok(true)
        },
    )?;
    Ok(found)
}

/// Enumerate subsets of unit actions (each slot in or out), with at most
/// one mapping per target tuple enforced downstream by `apply_extension`.
fn for_each_choice(
    slots: &[ExtensionSlot],
    chosen: &mut Vec<ExtensionSlot>,
    ix: usize,
    limit: usize,
    budget: &mut usize,
    f: &mut impl FnMut(&[ExtensionSlot]) -> Result<bool, ReasonError>,
) -> Result<bool, ReasonError> {
    if ix == slots.len() {
        if *budget == 0 {
            return Err(ReasonError::BudgetExceeded {
                what: "copy-function extension enumeration",
                budget: limit,
                spent: limit.saturating_add(1),
            });
        }
        *budget -= 1;
        return f(chosen);
    }
    if !for_each_choice(slots, chosen, ix + 1, limit, budget, f)? {
        return Ok(false);
    }
    chosen.push(slots[ix].clone());
    let cont = for_each_choice(slots, chosen, ix + 1, limit, budget, f)?;
    chosen.pop();
    Ok(cont)
}

/// Like [`for_each_choice`] but with at most `k` chosen slots.
fn for_each_bounded_choice(
    slots: &[ExtensionSlot],
    k: usize,
    chosen: &mut Vec<ExtensionSlot>,
    ix: usize,
    limit: usize,
    budget: &mut usize,
    f: &mut impl FnMut(&[ExtensionSlot]) -> Result<bool, ReasonError>,
) -> Result<bool, ReasonError> {
    if ix == slots.len() {
        if *budget == 0 {
            return Err(ReasonError::BudgetExceeded {
                what: "bounded copy-function extension enumeration",
                budget: limit,
                spent: limit.saturating_add(1),
            });
        }
        *budget -= 1;
        return f(chosen);
    }
    if !for_each_bounded_choice(slots, k, chosen, ix + 1, limit, budget, f)? {
        return Ok(false);
    }
    if chosen.len() < k {
        chosen.push(slots[ix].clone());
        let cont = for_each_bounded_choice(slots, k, chosen, ix + 1, limit, budget, f)?;
        chosen.pop();
        if !cont {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use currency_core::{AttrId, Catalog, CopyFunction, CopySignature, RelationSchema, Tuple};
    use currency_query::{Atom, Formula, QueryBuilder, Term as QTerm};

    const A: AttrId = AttrId(0);

    /// Target R(A) with entity 1 = {10}; source S(A) with entity 1 tuples
    /// {10, 20} ordered 10 ≺ 20.  The copy function maps nothing yet.
    fn importing_spec() -> (Specification, RelId, RelId) {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A"]));
        let s = cat.add(RelationSchema::new("S", &["A"]));
        let mut spec = Specification::new(cat);
        spec.instance_mut(r)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(10)]))
            .unwrap();
        let s0 = spec
            .instance_mut(s)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(10)]))
            .unwrap();
        let s1 = spec
            .instance_mut(s)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(20)]))
            .unwrap();
        spec.instance_mut(s).add_order(A, s0, s1).unwrap();
        let sig = CopySignature::new(r, vec![A], s, vec![A]).unwrap();
        spec.add_copy(CopyFunction::new(sig)).unwrap();
        (spec, r, s)
    }

    fn value_query(r: RelId) -> Query {
        let mut b = QueryBuilder::new();
        let x = b.var();
        b.build(vec![x], Formula::Atom(Atom::new(r, vec![QTerm::Var(x)])))
    }

    #[test]
    fn slots_cover_maps_and_imports() {
        let (spec, _, _) = importing_spec();
        let sources: BTreeSet<RelId> = [RelId(1)].into();
        let slots = extension_slots(&spec, &sources);
        let maps = slots
            .iter()
            .filter(|s| matches!(s, ExtensionSlot::MapExisting { .. }))
            .count();
        let imports = slots
            .iter()
            .filter(|s| matches!(s, ExtensionSlot::Import { .. }))
            .count();
        assert_eq!(maps, 1, "target tuple 10 can map to source tuple 10");
        assert_eq!(imports, 1, "source 20 importable into entity 1");
    }

    #[test]
    fn empty_copy_function_is_not_preserving_when_imports_matter() {
        let (spec, r, s) = importing_spec();
        let sources: BTreeSet<RelId> = [s].into();
        let q = value_query(r);
        let problem = PreservationProblem {
            spec: &spec,
            sources: &sources,
            query: &q,
        };
        // Base certain answer: {10}.  Importing source tuple 20 creates a
        // second candidate with no order ⇒ answers become ∅.
        assert!(!cpp(&problem, &Options::default()).unwrap());
    }

    #[test]
    fn saturated_copy_function_is_preserving() {
        let (spec, r, s) = importing_spec();
        let sources: BTreeSet<RelId> = [s].into();
        // Build the maximum extension and check CPP on it.
        let maxed = maximum_extension(&spec, &sources).unwrap();
        assert!(
            maxed.instance(r).len() > spec.instance(r).len(),
            "maximum extension imports the missing tuple"
        );
        let q = value_query(r);
        let problem = PreservationProblem {
            spec: &maxed,
            sources: &sources,
            query: &q,
        };
        assert!(cpp(&problem, &Options::default()).unwrap());
    }

    #[test]
    fn ecp_is_consistency() {
        let (spec, r, s) = importing_spec();
        let q = value_query(r);
        let sources: BTreeSet<RelId> = [s].into();
        let problem = PreservationProblem {
            spec: &spec,
            sources: &sources,
            query: &q,
        };
        assert!(ecp(&problem).unwrap());
    }

    #[test]
    fn bcp_finds_bounded_extension() {
        let (spec, r, s) = importing_spec();
        let sources: BTreeSet<RelId> = [s].into();
        let q = value_query(r);
        let problem = PreservationProblem {
            spec: &spec,
            sources: &sources,
            query: &q,
        };
        // With k = 2 the extension {map 10→10, import 20} is available and
        // currency preserving (source order 10 ≺ 20 pins the answer to 20).
        assert!(bcp(&problem, 2, &Options::default()).unwrap());
    }

    #[test]
    fn bcp_with_zero_budget_fails() {
        let (spec, r, s) = importing_spec();
        let sources: BTreeSet<RelId> = [s].into();
        let q = value_query(r);
        let problem = PreservationProblem {
            spec: &spec,
            sources: &sources,
            query: &q,
        };
        assert!(!bcp(&problem, 0, &Options::default()).unwrap());
    }

    #[test]
    fn maximum_extension_is_currency_preserving_for_identity() {
        let (spec, r, s) = importing_spec();
        let sources: BTreeSet<RelId> = [s].into();
        let maxed = maximum_extension(&spec, &sources).unwrap();
        // After saturation the current value of entity 1 is certain: 20
        // (source order imported through the mappings).
        let q = value_query(r);
        let ans = certain_answers(&maxed, &q, &Options::default()).unwrap();
        assert_eq!(ans.rows().unwrap(), &[vec![Value::int(20)]]);
    }
}
