//! CCQA — certain current query answering (paper §3, Thm 3.5).
//!
//! *Is a tuple in `Q(LST(Dᶜ))` for **every** consistent completion `Dᶜ`?*
//! coNP-complete in data complexity; Πᵖ₂-complete (CQ/UCQ/∃FO⁺) to
//! PSPACE-complete (FO) in combined complexity.  For SP queries over
//! constraint-free specifications the problem is PTIME via the `poss(S)`
//! construction (paper Prop 6.3, implemented in [`crate::sp_ptime`]).
//!
//! The exact engine enumerates the *realizable current instances* of the
//! query's relations through projected All-SAT over value indicators and
//! intersects the query answers — typically far fewer instances than
//! completions, since order differences that do not change any most
//! current value are collapsed.

use crate::encode::Encoding;
use crate::engine::CurrencyEngine;
use crate::error::ReasonError;
use crate::sp_ptime;
use crate::Options;
use currency_core::{Specification, Value};
use currency_query::{as_sp, Database, Query};
use currency_sat::Enumeration;
use std::collections::BTreeSet;

/// The certain current answers of a query, or the marker that the
/// specification is inconsistent (in which case *every* tuple is vacuously
/// a certain answer — there is no finite answer set to report).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CertainAnswers {
    /// `Mod(S) = ∅`: every tuple is vacuously certain.
    Inconsistent,
    /// The intersection `⋂_{Dᶜ} Q(LST(Dᶜ))`, sorted and deduplicated.
    Answers(Vec<Vec<Value>>),
}

impl CertainAnswers {
    /// Membership respecting the vacuous-truth convention.
    pub fn contains(&self, tuple: &[Value]) -> bool {
        match self {
            CertainAnswers::Inconsistent => true,
            CertainAnswers::Answers(rows) => rows.iter().any(|r| r == tuple),
        }
    }

    /// The concrete rows, if the specification was consistent.
    pub fn rows(&self) -> Option<&[Vec<Value>]> {
        match self {
            CertainAnswers::Inconsistent => None,
            CertainAnswers::Answers(rows) => Some(rows),
        }
    }
}

/// Compute the certain current answers with automatic dispatch: the PTIME
/// `poss(S)` algorithm when the query is SP and the specification carries
/// no denial constraints, the exact enumerating engine otherwise.
pub fn certain_answers(
    spec: &Specification,
    query: &Query,
    opts: &Options,
) -> Result<CertainAnswers, ReasonError> {
    if spec.has_no_constraints() {
        if let Some(sp) = as_sp(query) {
            return sp_ptime::certain_answers_sp(spec, &sp);
        }
    }
    certain_answers_exact(spec, query, opts)
}

/// Decide whether `tuple` is a certain current answer (dispatching).
pub fn ccqa(
    spec: &Specification,
    query: &Query,
    tuple: &[Value],
    opts: &Options,
) -> Result<bool, ReasonError> {
    Ok(certain_answers(spec, query, opts)?.contains(tuple))
}

/// Decide CCQA with the exact engine regardless of query shape.
pub fn ccqa_exact(
    spec: &Specification,
    query: &Query,
    tuple: &[Value],
    opts: &Options,
) -> Result<bool, ReasonError> {
    Ok(certain_answers_exact(spec, query, opts)?.contains(tuple))
}

/// Compute certain current answers with the exact engine.  Routes through
/// a transient [`CurrencyEngine`] — realizable current instances are
/// enumerated per entity component and composed, so order differences in
/// unrelated components never multiply the model count.  For repeated
/// queries over one specification, build the engine once instead.
pub fn certain_answers_exact(
    spec: &Specification,
    query: &Query,
    opts: &Options,
) -> Result<CertainAnswers, ReasonError> {
    let rels: Vec<_> = query.body().relations().into_iter().collect();
    CurrencyEngine::with_value_rels(spec, &rels, opts)?.certain_answers(query)
}

/// Decide CCQA on one monolithic encoding (kept for differential testing).
pub fn ccqa_exact_monolithic(
    spec: &Specification,
    query: &Query,
    tuple: &[Value],
    opts: &Options,
) -> Result<bool, ReasonError> {
    Ok(certain_answers_exact_monolithic(spec, query, opts)?.contains(tuple))
}

/// [`certain_answers_exact`] on one monolithic whole-specification
/// encoding (kept for differential testing).
pub fn certain_answers_exact_monolithic(
    spec: &Specification,
    query: &Query,
    opts: &Options,
) -> Result<CertainAnswers, ReasonError> {
    let rels: Vec<_> = query.body().relations().into_iter().collect();
    let mut enc = Encoding::new(spec, &rels)?;
    let projection = enc.value_projection().to_vec();
    let mut models: Vec<Vec<bool>> = Vec::new();
    let enumeration = enc.for_each_model(&projection, opts.max_models, |m| {
        models.push(m.to_vec());
        true
    });
    if let Enumeration::LimitReached(n) = enumeration {
        return Err(ReasonError::BudgetExceeded {
            what: "current-instance enumeration (CCQA)",
            budget: opts.max_models,
            spent: n,
        });
    }
    if models.is_empty() {
        return Ok(CertainAnswers::Inconsistent);
    }
    let mut certain: Option<BTreeSet<Vec<Value>>> = None;
    for m in &models {
        let dbs = enc.decode_current_instances(spec, m);
        let db = Database::new(&dbs);
        let answers: BTreeSet<Vec<Value>> = query.eval(&db).into_iter().collect();
        certain = Some(match certain {
            None => answers,
            Some(acc) => acc.intersection(&answers).cloned().collect(),
        });
        if certain.as_ref().is_some_and(|c| c.is_empty()) {
            break; // the intersection can only shrink
        }
    }
    Ok(CertainAnswers::Answers(
        certain.unwrap_or_default().into_iter().collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use currency_core::{
        AttrId, Catalog, CmpOp, DenialConstraint, Eid, RelId, RelationSchema, Term, Tuple, TupleId,
    };
    use currency_query::{Atom, Formula, QueryBuilder, Term as QTerm};

    const SAL: AttrId = AttrId(0);

    /// Mary has salaries 50 and 80; φ₁ says salaries never decrease.
    fn mary_spec(constrained: bool) -> (Specification, RelId) {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("Emp", &["salary"]));
        let mut spec = Specification::new(cat);
        for s in [50, 80] {
            spec.instance_mut(r)
                .push_tuple(Tuple::new(Eid(1), vec![Value::int(s)]))
                .unwrap();
        }
        if constrained {
            let dc = DenialConstraint::builder(r, 2)
                .when_cmp(Term::attr(0, SAL), CmpOp::Gt, Term::attr(1, SAL))
                .then_order(1, SAL, 0)
                .build()
                .unwrap();
            spec.add_constraint(dc).unwrap();
        }
        (spec, r)
    }

    fn salary_query(r: RelId) -> Query {
        let mut b = QueryBuilder::new();
        let x = b.var();
        b.build(vec![x], Formula::Atom(Atom::new(r, vec![QTerm::Var(x)])))
    }

    #[test]
    fn q1_constraint_makes_80_certain() {
        let (spec, r) = mary_spec(true);
        let q = salary_query(r);
        let ans = certain_answers(&spec, &q, &Options::default()).unwrap();
        assert_eq!(
            ans.rows().unwrap(),
            &[vec![Value::int(80)]],
            "paper Example 1.1 Q1: Mary's current salary is 80k"
        );
        assert!(ccqa(&spec, &q, &[Value::int(80)], &Options::default()).unwrap());
        assert!(!ccqa(&spec, &q, &[Value::int(50)], &Options::default()).unwrap());
    }

    #[test]
    fn without_constraint_nothing_is_certain() {
        let (spec, r) = mary_spec(false);
        let q = salary_query(r);
        let ans = certain_answers_exact(&spec, &q, &Options::default()).unwrap();
        assert_eq!(ans.rows().unwrap().len(), 0);
    }

    #[test]
    fn dispatch_agrees_with_exact_on_sp_queries() {
        let (spec, r) = mary_spec(false);
        let q = salary_query(r);
        let fast = certain_answers(&spec, &q, &Options::default()).unwrap();
        let exact = certain_answers_exact(&spec, &q, &Options::default()).unwrap();
        assert_eq!(fast, exact);
    }

    #[test]
    fn inconsistent_spec_reports_inconsistent() {
        let (mut spec, r) = mary_spec(true);
        spec.instance_mut(r)
            .add_order(SAL, TupleId(1), TupleId(0))
            .unwrap();
        let q = salary_query(r);
        let ans = certain_answers_exact(&spec, &q, &Options::default()).unwrap();
        assert_eq!(ans, CertainAnswers::Inconsistent);
        assert!(ans.contains(&[Value::int(999)]), "vacuously certain");
    }

    #[test]
    fn certain_answers_intersect_across_instances() {
        // Entity with salaries {50, 80} unconstrained, plus a second entity
        // fixed at 80: only 80 is certain... but via different entities the
        // answer 80 is produced by entity 2 in every completion.
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("Emp", &["salary"]));
        let mut spec = Specification::new(cat);
        for s in [50, 80] {
            spec.instance_mut(r)
                .push_tuple(Tuple::new(Eid(1), vec![Value::int(s)]))
                .unwrap();
        }
        spec.instance_mut(r)
            .push_tuple(Tuple::new(Eid(2), vec![Value::int(80)]))
            .unwrap();
        let q = salary_query(r);
        let ans = certain_answers_exact(&spec, &q, &Options::default()).unwrap();
        assert_eq!(ans.rows().unwrap(), &[vec![Value::int(80)]]);
    }

    #[test]
    fn boolean_query_certainty() {
        let (spec, r) = mary_spec(true);
        let mut b = QueryBuilder::new();
        let x = b.var();
        // ∃x Emp(x) ∧ x = 80
        let q = b.build(
            vec![],
            Formula::Exists(
                vec![x],
                Box::new(Formula::And(vec![
                    Formula::Atom(Atom::new(r, vec![QTerm::Var(x)])),
                    Formula::Cmp {
                        left: QTerm::Var(x),
                        op: CmpOp::Eq,
                        right: QTerm::val(80),
                    },
                ])),
            ),
        );
        assert!(ccqa(&spec, &q, &[], &Options::default()).unwrap());
    }
}
