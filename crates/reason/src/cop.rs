//! COP — the certain ordering problem (paper §3, Thm 3.4).
//!
//! *Is a given currency order contained in every consistent completion?*
//! Πᵖ₂-complete in general (coNP-complete in data complexity); PTIME
//! without denial constraints via containment in `PO∞` (Lemma 6.2).
//!
//! Note the paper's convention: when the specification is inconsistent
//! (`Mod(S) = ∅`), every ordering is vacuously certain.

use crate::encode::Encoding;
use crate::engine::CurrencyEngine;
use crate::error::ReasonError;
use crate::fixpoint::po_infinity;
use crate::Options;
use currency_core::{AttrId, RelId, Specification, TupleId};
use currency_sat::SolveResult;

/// A candidate currency order `Ot` for one relation: the pairs whose
/// certainty is being asked about.
///
/// Derives `Hash`/`Eq` so the query itself can serve as a structural
/// cache key (see `currency-serve`'s epoch-keyed answer cache).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CurrencyOrderQuery {
    /// The relation the order speaks about.
    pub rel: RelId,
    /// `(attr, lesser, greater)` pairs.
    pub pairs: Vec<(AttrId, TupleId, TupleId)>,
}

impl CurrencyOrderQuery {
    /// A single-pair query: is `lesser ≺_attr greater` certain?
    pub fn single(rel: RelId, attr: AttrId, lesser: TupleId, greater: TupleId) -> Self {
        CurrencyOrderQuery {
            rel,
            pairs: vec![(attr, lesser, greater)],
        }
    }
}

/// Decide COP with automatic engine dispatch.
pub fn cop(spec: &Specification, ot: &CurrencyOrderQuery) -> Result<bool, ReasonError> {
    if spec.has_no_constraints() {
        cop_ptime(spec, ot)
    } else {
        cop_exact(spec, ot)
    }
}

/// Decide COP with the SAT engine: each pair must be entailed, i.e. the
/// encoding plus the negated pair must be unsatisfiable.  Routes through
/// a transient [`CurrencyEngine`] — only the components the pairs touch
/// are queried with assumptions; for repeated queries build the engine
/// once instead.
pub fn cop_exact(spec: &Specification, ot: &CurrencyOrderQuery) -> Result<bool, ReasonError> {
    CurrencyEngine::with_value_rels(spec, &[], &Options::default())?.cop(ot)
}

/// [`cop_exact`] on one monolithic encoding (kept for differential
/// testing).
pub fn cop_exact_monolithic(
    spec: &Specification,
    ot: &CurrencyOrderQuery,
) -> Result<bool, ReasonError> {
    let mut enc = Encoding::new(spec, &[])?;
    if enc.solve() == SolveResult::Unsat {
        return Ok(true); // Mod(S) = ∅: vacuously certain
    }
    for &(attr, lesser, greater) in &ot.pairs {
        match enc.order_lit(ot.rel, attr, lesser, greater) {
            None => return Ok(false), // reflexive or cross-entity: never holds
            Some(l) => {
                if enc.solve_with_assumptions(&[!l]) == SolveResult::Sat {
                    return Ok(false);
                }
            }
        }
    }
    Ok(true)
}

/// Decide COP with the PTIME fixpoint (no denial constraints): certain
/// pairs are exactly the pairs of `PO∞` (paper Lemma 6.2).
pub fn cop_ptime(spec: &Specification, ot: &CurrencyOrderQuery) -> Result<bool, ReasonError> {
    debug_assert!(
        spec.has_no_constraints(),
        "cop_ptime requires a constraint-free specification"
    );
    match po_infinity(spec)? {
        None => Ok(true), // inconsistent: vacuously certain
        Some(po) => Ok(ot
            .pairs
            .iter()
            .all(|&(attr, l, g)| po.certain(ot.rel, attr, l, g))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use currency_core::{
        Catalog, CmpOp, DenialConstraint, Eid, RelationSchema, Term, Tuple, Value,
    };

    const A: AttrId = AttrId(0);
    const B: AttrId = AttrId(1);

    fn salary_spec(constrained: bool) -> (Specification, RelId) {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("Emp", &["salary", "address"]));
        let mut spec = Specification::new(cat);
        for (s, addr) in [(50, "2 Small St"), (80, "6 Main St")] {
            spec.instance_mut(r)
                .push_tuple(Tuple::new(Eid(1), vec![Value::int(s), Value::str(addr)]))
                .unwrap();
        }
        if constrained {
            // φ₁: higher salary ⇒ more current salary.
            let dc = DenialConstraint::builder(r, 2)
                .when_cmp(Term::attr(0, A), CmpOp::Gt, Term::attr(1, A))
                .then_order(1, A, 0)
                .build()
                .unwrap();
            spec.add_constraint(dc).unwrap();
            // φ₃: more current salary ⇒ more current address.
            let dc3 = DenialConstraint::builder(r, 2)
                .when_order(0, A, 1)
                .then_order(0, B, 1)
                .build()
                .unwrap();
            spec.add_constraint(dc3).unwrap();
        }
        (spec, r)
    }

    #[test]
    fn constraint_entailed_pair_is_certain() {
        let (spec, r) = salary_spec(true);
        // Example 3.2 shape: s1 ≺salary s3 is assured by φ₁.
        let q = CurrencyOrderQuery::single(r, A, TupleId(0), TupleId(1));
        assert!(cop(&spec, &q).unwrap());
        // Derived through φ₃: the address order follows the salary order.
        let q2 = CurrencyOrderQuery::single(r, B, TupleId(0), TupleId(1));
        assert!(cop(&spec, &q2).unwrap());
        // The reverse is not certain.
        let q3 = CurrencyOrderQuery::single(r, A, TupleId(1), TupleId(0));
        assert!(!cop(&spec, &q3).unwrap());
    }

    #[test]
    fn unconstrained_pairs_are_not_certain() {
        let (spec, r) = salary_spec(false);
        let q = CurrencyOrderQuery::single(r, A, TupleId(0), TupleId(1));
        assert!(!cop(&spec, &q).unwrap());
        assert!(!cop_exact(&spec, &q).unwrap());
    }

    #[test]
    fn initial_orders_are_certain_in_both_engines() {
        let (mut spec, r) = salary_spec(false);
        spec.instance_mut(r)
            .add_order(A, TupleId(1), TupleId(0))
            .unwrap();
        let q = CurrencyOrderQuery::single(r, A, TupleId(1), TupleId(0));
        assert!(cop_ptime(&spec, &q).unwrap());
        assert!(cop_exact(&spec, &q).unwrap());
    }

    #[test]
    fn reflexive_pairs_are_never_certain() {
        let (spec, r) = salary_spec(true);
        let q = CurrencyOrderQuery::single(r, A, TupleId(0), TupleId(0));
        assert!(!cop(&spec, &q).unwrap());
    }

    #[test]
    fn inconsistent_spec_makes_everything_certain() {
        let (mut spec, r) = salary_spec(true);
        // Force the opposite of what φ₁ derives: inconsistent.
        spec.instance_mut(r)
            .add_order(A, TupleId(1), TupleId(0))
            .unwrap();
        let q = CurrencyOrderQuery::single(r, A, TupleId(1), TupleId(0));
        assert!(cop(&spec, &q).unwrap(), "vacuous certainty");
    }
}
