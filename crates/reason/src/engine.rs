//! The entity-partitioned incremental reasoning engine.
//!
//! [`CurrencyEngine`] compiles a specification **once** into per-component
//! cached solvers (see [`crate::partition`]) and answers repeated
//! CPS/COP/DCIP/CCQA/witness queries incrementally:
//!
//! * **compile once** — each entity component's CNF is built a single time
//!   ([`Encoding::for_component`]); constraints are grounded and copy
//!   obligations enumerated once for the whole specification;
//! * **solve incrementally** — consistency verdicts are cached per
//!   component, entailment queries run as assumption-based calls
//!   (`solve_with_assumptions`) against only the component a pair
//!   touches, and learnt clauses accumulate across queries.  With the
//!   default [`crate::TransitivityMode::Lazy`], transitivity lemmas
//!   discovered by refinement also persist in each cached component
//!   solver, so refinement work amortizes across the query stream;
//! * **enumerate locally** — current-instance enumeration projects onto
//!   one component's value indicators at a time, so order differences in
//!   unrelated components never multiply the model count, and All-SAT
//!   blocking clauses go to a throwaway clone of the component solver;
//! * **parallelize** — component compilation and component solves fan out
//!   across threads ([`crate::Options::threads`]);
//! * **update in place** — [`CurrencyEngine::apply`] feeds a
//!   [`SpecDelta`] through the engine: the owned specification mutates,
//!   the entity partition is maintained incrementally
//!   ([`Partition::refresh`]), and **only the touched component slots**
//!   are recompiled — every clean component keeps its cached solver,
//!   learnt clauses, lazy-transitivity lemmas and satisfiability verdict,
//!   *in place*: component slots are stable, so nothing is remapped,
//!   moved, or even looked at outside the dirty region.  The aggregate
//!   consistency verdict is maintained the same way (a count of known
//!   unsatisfiable slots plus the set of undecided ones), so a
//!   component-local delta followed by a [`CurrencyEngine::cps`] costs
//!   one component compile and one component solve — O(dirty region),
//!   independent of how many components the engine holds;
//! * **compact on demand** — retraction tombstones accumulate one dead
//!   tuple slot each ([`currency_core::TemporalInstance::remove_tuple`]);
//!   [`CurrencyEngine::compact`] reclaims them all, remapping tuple ids
//!   densely and rebuilding the compiled state (a full rebuild, priced
//!   accordingly — call it at maintenance points, not per delta).
//!
//! The monolithic one-shot path (`Encoding::new` over the whole
//! specification) remains available as the `*_monolithic` functions in
//! the problem modules and is differentially tested against the engine.

use crate::ccqa::CertainAnswers;
use crate::cop::CurrencyOrderQuery;
use crate::encode::{Bounds, Encoding};
use crate::error::ReasonError;
use crate::obs::EngineObs;
use crate::partition::{Partition, RefreshPlan};
use crate::{CompactBudget, Options};
use currency_core::{
    AttrId, CompactReport, CompactSlice, CompactStepReport, Completion, Eid, NormalInstance,
    RelCompletion, RelId, SpecDelta, Specification, Tuple, TupleId, Value,
};
use currency_obs::SpanGuard;
use currency_query::{Database, Query};
use currency_sat::{Enumeration, SolveResult, SolverStats};
use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Aggregate counters across an engine's component solvers.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    /// Number of entity components.
    pub components: usize,
    /// Number of `(relation, entity)` cells.
    pub cells: usize,
    /// Total variables across component solvers.
    pub vars: usize,
    /// Total clauses (original + learnt) across component solvers.
    pub clauses: usize,
    /// Deltas applied over the engine's lifetime
    /// ([`CurrencyEngine::apply`]).
    pub updates_applied: usize,
    /// Components recompiled across all applied deltas.
    pub components_rebuilt: usize,
    /// Components whose cached state survived a delta, summed across all
    /// applied deltas.
    pub components_reused: usize,
    /// Compactions performed over the engine's lifetime
    /// ([`CurrencyEngine::compact`]), whether explicit or triggered by
    /// the [`Options::auto_compact_tombstones`] policy.
    pub compactions: usize,
    /// Bounded compaction steps performed over the engine's lifetime
    /// ([`CurrencyEngine::compact_step`]), whether explicit or triggered
    /// by the [`Options::auto_compact_budget`] policy.  Steps that found
    /// nothing to reclaim are not counted.
    pub compact_steps: usize,
    /// Tombstone tuple slots reclaimed across all compactions and
    /// compaction steps.
    pub slots_reclaimed: usize,
    /// Times this engine was restored from a durability log
    /// ([`CurrencyEngine::note_recovery`]; `currency-store` calls it once
    /// per successful open).
    pub recoveries: usize,
    /// Deltas re-applied from log suffixes across all recoveries.
    pub deltas_replayed: usize,
    /// Aggregated CDCL counters.
    pub sat: SolverStats,
}

/// What one [`CurrencyEngine::apply`] call did.
#[derive(Clone, Debug)]
pub struct ApplyReport {
    /// Components recompiled by this delta.
    pub components_rebuilt: usize,
    /// Components whose cached solver state was carried over untouched.
    pub components_reused: usize,
    /// Number of `(relation, entity)` cells the delta touched.
    pub cells_touched: usize,
    /// Ids assigned to tuples the delta inserted, in operation order.
    pub inserted: Vec<(RelId, TupleId)>,
    /// The compaction the [`Options::auto_compact_tombstones`] policy
    /// triggered after this delta, if any.  **When set, every externally
    /// held tuple id is invalidated** — including this report's own
    /// `inserted` ids, which stay in pre-compaction form: translate them
    /// through [`CompactReport::new_id`] (`None` means the delta itself
    /// retracted the tuple again before the compaction ran).
    pub compacted: Option<CompactReport>,
    /// The bounded compaction step the [`Options::auto_compact_budget`]
    /// policy ran after this delta, if any.  Unlike [`Self::compacted`]
    /// it invalidates only the tuple ids its slices actually remapped:
    /// translate held ids (this report's `inserted` list included)
    /// through [`CompactStepReport::new_id`].
    pub compact_step: Option<CompactStepReport>,
}

struct ComponentState {
    enc: Encoding,
    /// Cached satisfiability of the component (`None` = not yet solved).
    status: Option<bool>,
}

/// Incrementally maintained aggregate-consistency cache.
///
/// Invariant (per slot, guarded by the slot's own component lock for the
/// status side and by this cache's lock for the set side): a slot's
/// `status` is `None` **iff** the slot is in `unsolved`, and `unsat`
/// counts the slots whose `status` is `Some(false)`.  [`CurrencyEngine::cps`]
/// is then "drain `unsolved`, check `unsat == 0`" — after a delta only
/// the rebuilt slots are in `unsolved`, so re-deciding consistency is
/// O(dirty region), never a sweep of all components.
#[derive(Debug, Default)]
struct CpsCache {
    /// Slots whose satisfiability has not been decided yet.
    unsolved: BTreeSet<usize>,
    /// Decided slots that are unsatisfiable.
    unsat: usize,
}

/// Retire a slot's old status from the cache (the slot is about to be
/// replaced or re-solved).
fn retire_status(cache: &mut CpsCache, slot: usize, status: Option<bool>) {
    match status {
        Some(false) => cache.unsat -= 1,
        Some(true) => {}
        None => {
            cache.unsolved.remove(&slot);
        }
    }
}

/// One component's model chains: `(rel, attr, eid, least → most current)`.
type ComponentChains = Vec<(RelId, AttrId, Eid, Vec<TupleId>)>;

/// One component's contribution to a product enumeration: the component
/// index, the restricted-projection indices, and the projected models.
/// Shared with the epoch-published snapshot path ([`crate::snapshot`]),
/// which enumerates against immutable encodings instead of locked slots.
pub(crate) struct ComponentModels {
    pub(crate) comp: usize,
    pub(crate) indices: Vec<usize>,
    pub(crate) models: Vec<Vec<bool>>,
}

/// Guard the composed cross-component product against the model budget.
pub(crate) fn check_product_budget(
    per_comp: &[ComponentModels],
    max_models: usize,
    what: &'static str,
) -> Result<(), ReasonError> {
    let mut product: usize = 1;
    for cm in per_comp {
        product = product.saturating_mul(cm.models.len().max(1));
        if product > max_models {
            return Err(ReasonError::BudgetExceeded {
                what,
                budget: max_models,
                spent: product,
            });
        }
    }
    Ok(())
}

/// Run `f` on the decoded rows of every combination of per-component
/// model choices (odometer over the product); `f` returning `false` stops
/// the iteration.  With no components, `f` runs once with no rows (the
/// empty product has one element).  `decode` turns one component's chosen
/// model into rows — the engine decodes under the component's lock, the
/// snapshot path against its immutable per-slot encoding.
///
/// The odometer itself can run for `max_models` combinations even though
/// every individual solve finished, so it re-checks `deadline` every
/// [`COMBINATION_CHECK`] combinations and surfaces
/// [`ReasonError::Interrupted`] on expiry.
pub(crate) fn for_each_combination(
    per_comp: &[ComponentModels],
    deadline: Option<std::time::Instant>,
    mut decode: impl FnMut(&ComponentModels, &[bool]) -> Vec<(RelId, Tuple)>,
    mut f: impl FnMut(Vec<(RelId, Tuple)>) -> bool,
) -> Result<(), ReasonError> {
    let mut pick = vec![0usize; per_comp.len()];
    let mut combos: u64 = 0;
    loop {
        if let Some(d) = deadline {
            if combos.is_multiple_of(COMBINATION_CHECK) && std::time::Instant::now() >= d {
                return Err(ReasonError::Interrupted {
                    spent: crate::Spent::default(),
                });
            }
            combos += 1;
        }
        let mut rows: Vec<(RelId, Tuple)> = Vec::new();
        for (k, cm) in per_comp.iter().enumerate() {
            rows.extend(decode(cm, &cm.models[pick[k]]));
        }
        if !f(rows) {
            return Ok(());
        }
        // Advance the odometer.
        let mut i = 0;
        loop {
            if i == per_comp.len() {
                return Ok(());
            }
            pick[i] += 1;
            if pick[i] < per_comp[i].models.len() {
                break;
            }
            pick[i] = 0;
            i += 1;
        }
    }
}

/// How often (in combinations) the odometer consults the wall clock.
/// The first combination always checks, so an already-expired deadline
/// interrupts before any row is decoded.
pub(crate) const COMBINATION_CHECK: u64 = 1024;

/// Internal scan granularity of one compaction slice: a step's slot
/// budget is consumed in slices of at most this many slots, so the
/// wall-clock deadline of [`CurrencyEngine::compact_step`] is consulted
/// at least once per `SLICE_QUANTUM` slots scanned.
const SLICE_QUANTUM: usize = 1024;

/// Fold the certain-answer intersection over every realizable combination
/// of current instances (the common tail of the engine's and the
/// snapshot's `certain_answers`).
pub(crate) fn intersect_certain_answers(
    query: &Query,
    rels: &[RelId],
    per_comp: &[ComponentModels],
    deadline: Option<std::time::Instant>,
    decode: impl FnMut(&ComponentModels, &[bool]) -> Vec<(RelId, Tuple)>,
) -> Result<CertainAnswers, ReasonError> {
    let mut certain: Option<BTreeSet<Vec<Value>>> = None;
    for_each_combination(per_comp, deadline, decode, |rows| {
        let mut insts: BTreeMap<RelId, NormalInstance> = rels
            .iter()
            .map(|&rel| (rel, NormalInstance::new(rel)))
            .collect();
        for (rel, t) in rows {
            insts.get_mut(&rel).expect("requested relation").push(t);
        }
        let dbs: Vec<NormalInstance> = insts.into_values().collect();
        let db = Database::new(&dbs);
        let answers: BTreeSet<Vec<Value>> = query.eval(&db).into_iter().collect();
        let next = match certain.take() {
            None => answers,
            Some(acc) => acc.intersection(&answers).cloned().collect(),
        };
        let keep_going = !next.is_empty(); // the intersection can only shrink
        certain = Some(next);
        keep_going
    })?;
    Ok(CertainAnswers::Answers(
        certain.unwrap_or_default().into_iter().collect(),
    ))
}

/// The compiled, query-ready form of a specification.
///
/// Construction cost is paid once; queries touch only the components they
/// involve.  All query methods take `&self` — component solvers sit
/// behind mutexes, so engines are `Sync` and queries on distinct
/// components proceed in parallel.
///
/// The engine holds its specification as a [`Cow`]: compiled from a
/// borrowed specification it stays zero-copy, and the first
/// [`CurrencyEngine::apply`] promotes it to an owned copy that mutates in
/// place from then on — either way the compiled clauses can never drift
/// from the specification the engine answers for.  Engines meant to live
/// beyond their construction scope can take ownership up front with
/// [`CurrencyEngine::new_owned`].
pub struct CurrencyEngine<'a> {
    spec: Cow<'a, Specification>,
    value_rels: Vec<RelId>,
    partition: Partition,
    /// Per-slot compiled state, aligned with [`Partition::components`]
    /// (vacant slots hold a trivially satisfiable [`Encoding::vacant`]).
    components: Vec<Mutex<ComponentState>>,
    /// O(dirty region) aggregate-consistency cache (see [`CpsCache`]).
    cps_cache: Mutex<CpsCache>,
    opts: Options,
    updates_applied: usize,
    components_rebuilt: usize,
    components_reused: usize,
    compactions: usize,
    compact_steps: usize,
    slots_reclaimed: usize,
    recoveries: usize,
    deltas_replayed: usize,
    /// Metric handles + trace recorder (see [`EngineObs`]).
    obs: EngineObs,
}

impl<'a> CurrencyEngine<'a> {
    /// Compile `spec` with value indicators for **every** relation, so all
    /// query kinds (including DCIP/CCQA over any relation) are available.
    pub fn new(spec: &'a Specification, opts: &Options) -> Result<CurrencyEngine<'a>, ReasonError> {
        let value_rels: Vec<RelId> = spec.instances().iter().map(|i| i.rel()).collect();
        CurrencyEngine::with_value_rels(spec, &value_rels, opts)
    }

    /// Compile `spec` with value indicators for `value_rels` only.
    ///
    /// DCIP/CCQA queries are then limited to those relations; CPS, COP and
    /// witness queries are always available.  Pass `&[]` for the leanest
    /// engine when only consistency/ordering queries are needed.
    pub fn with_value_rels(
        spec: &'a Specification,
        value_rels: &[RelId],
        opts: &Options,
    ) -> Result<CurrencyEngine<'a>, ReasonError> {
        CurrencyEngine::build(Cow::Borrowed(spec), value_rels, opts)
    }

    /// [`CurrencyEngine::new`], taking ownership of the specification —
    /// the natural form for a long-lived engine fed by
    /// [`CurrencyEngine::apply`].
    pub fn new_owned(
        spec: Specification,
        opts: &Options,
    ) -> Result<CurrencyEngine<'static>, ReasonError> {
        let value_rels: Vec<RelId> = spec.instances().iter().map(|i| i.rel()).collect();
        CurrencyEngine::build(Cow::Owned(spec), &value_rels, opts)
    }

    /// [`CurrencyEngine::with_value_rels`], taking ownership of the
    /// specification.
    pub fn with_value_rels_owned(
        spec: Specification,
        value_rels: &[RelId],
        opts: &Options,
    ) -> Result<CurrencyEngine<'static>, ReasonError> {
        CurrencyEngine::build(Cow::Owned(spec), value_rels, opts)
    }

    fn build<'s>(
        spec: Cow<'s, Specification>,
        value_rels: &[RelId],
        opts: &Options,
    ) -> Result<CurrencyEngine<'s>, ReasonError> {
        spec.validate()?;
        let partition = Partition::of(&spec);
        let components = compile_components(spec.as_ref(), value_rels, opts, &partition)?;
        let cps_cache = Mutex::new(undecided_cache(components.len()));
        Ok(CurrencyEngine {
            spec,
            value_rels: value_rels.to_vec(),
            partition,
            components,
            cps_cache,
            opts: *opts,
            updates_applied: 0,
            components_rebuilt: 0,
            components_reused: 0,
            compactions: 0,
            compact_steps: 0,
            slots_reclaimed: 0,
            recoveries: 0,
            deltas_replayed: 0,
            obs: EngineObs::new(),
        })
    }

    /// The engine's observability bundle (metric handles, recorder).
    pub fn obs(&self) -> &EngineObs {
        &self.obs
    }

    /// Mutable access for wiring: bind the handles onto a shared
    /// registry, attach a trace recorder, or switch metrics off.
    pub fn obs_mut(&mut self) -> &mut EngineObs {
        &mut self.obs
    }

    /// Apply a delta to the live specification and re-validate exactly the
    /// touched components.
    ///
    /// The delta is validated and applied atomically
    /// ([`Specification::apply_delta`]) — on error the engine and its
    /// specification are unchanged and remain fully usable.  On success
    /// the entity partition is refreshed incrementally
    /// ([`Partition::refresh`]): component slots the delta touched (or
    /// that a new copy obligation links to a touched one) are recompiled,
    /// in parallel under [`Options::threads`], and patched **in place** —
    /// slots are stable, so every clean component's compiled CNF, learnt
    /// clauses, transitivity lemmas and cached satisfiability verdict
    /// survive without being moved or remapped.  The aggregate CPS cache
    /// is likewise patched for the changed slots only, so the next
    /// [`CurrencyEngine::cps`] call solves exactly the rebuilt
    /// components.  Everything `apply` does is O(dirty region).
    ///
    /// A borrowed engine clones the specification on its first `apply`
    /// (`Cow` promotion); subsequent deltas mutate the owned copy in
    /// place.
    pub fn apply(&mut self, delta: &SpecDelta) -> Result<ApplyReport, ReasonError> {
        self.apply_inner(delta, true)
    }

    /// [`CurrencyEngine::apply`] with the auto-compaction policy
    /// suppressed for this one delta.
    ///
    /// Durability wrappers replaying a log use this so that replayed
    /// deltas do not *initiate* compaction work: the log records what the
    /// original run's policy actually did (as its own compaction
    /// records), and replay re-executes those records verbatim instead.
    /// Live traffic should always go through [`CurrencyEngine::apply`].
    pub fn apply_replayed(&mut self, delta: &SpecDelta) -> Result<ApplyReport, ReasonError> {
        self.apply_inner(delta, false)
    }

    fn apply_inner(
        &mut self,
        delta: &SpecDelta,
        fire_auto: bool,
    ) -> Result<ApplyReport, ReasonError> {
        let recorder = self.obs.recorder().clone();
        let apply_span = SpanGuard::enter(&*recorder, "engine.apply", 0);
        let parent = apply_span.as_ref().map_or(0, SpanGuard::id);
        let clock = self.obs.clock();
        let validate_span = SpanGuard::enter(&*recorder, "engine.validate", parent);
        // A rejected delta on a still-borrowed engine must not pay the
        // Cow promotion (a full spec clone), so validate first; owned
        // engines skip this — `apply_delta` validates internally.
        if matches!(self.spec, Cow::Borrowed(_)) {
            delta.validate(self.spec.as_ref())?;
        }
        let effects = self.spec.to_mut().apply_delta(delta)?;
        drop(validate_span);
        self.obs.lap(clock, &self.obs.apply_validate_ns);
        let plan = self.rebuild_touched(&effects.touched_cells, parent)?;
        self.updates_applied += 1;
        if let Some(start) = clock {
            self.obs.apply_ns.record(start.elapsed().as_nanos() as u64);
            self.obs.applies_total.inc();
        }
        let mut report = ApplyReport {
            components_rebuilt: plan.rebuilt(),
            components_reused: plan.reused(),
            cells_touched: effects.touched_cells.len(),
            inserted: effects.inserted,
            compacted: None,
            compact_step: None,
        };
        // Auto-compaction policy: once retraction tombstones accumulate
        // past the configured threshold, reclaim them here rather than
        // letting the id space grow until someone remembers to call
        // `compact()`.  The remap rides along in the report so callers
        // can translate the ids they hold (the `inserted` list included).
        // With a budget configured, each apply over the threshold runs
        // one slot-bounded step instead of a stop-the-world pass — the
        // pause bound deliberately does not apply here, so the step is a
        // pure function of the specification and the options and a log
        // replay reproduces it exactly.
        if fire_auto && self.opts.auto_compact_tombstones > 0 {
            let tombstones: usize = self.spec.instances().iter().map(|i| i.tombstones()).sum();
            if tombstones >= self.opts.auto_compact_tombstones {
                if let Some(budget) = self.opts.auto_compact_budget {
                    report.compact_step = Some(self.compact_step_slots(budget.max_slots_per_step)?);
                } else {
                    report.compacted = Some(self.compact()?);
                }
            }
        }
        Ok(report)
    }

    /// Recompile and patch exactly the components owning `touched` cells
    /// — the shared tail of [`CurrencyEngine::apply`] and
    /// [`CurrencyEngine::compact_step`].  Refreshes the partition over
    /// the dirty region, compiles the rebuilt slots, then patches the
    /// changed slots and the aggregate CPS cache in place; every clean
    /// component keeps its cached encoding untouched.
    fn rebuild_touched(
        &mut self,
        touched: &BTreeSet<(RelId, Eid)>,
        parent_span: u64,
    ) -> Result<RefreshPlan, ReasonError> {
        let recorder = self.obs.recorder().clone();
        let clock = self.obs.clock();
        let plan = {
            let _span = SpanGuard::enter(&*recorder, "engine.refresh", parent_span);
            self.partition.refresh(self.spec.as_ref(), touched)
        };
        let clock = self.obs.lap(clock, &self.obs.apply_refresh_ns);
        // Compile the rebuilt slots (in parallel when the fleet warrants
        // it) *before* patching any state, so the fallible step cannot
        // leave the engine half-updated.
        let transitivity = self.opts.transitivity;
        let compiled = {
            let _span = SpanGuard::enter(&*recorder, "engine.recompile", parent_span);
            let spec = self.spec.as_ref();
            let partition = &self.partition;
            let value_rels = &self.value_rels;
            let rebuilt = &plan.rebuilt;
            run_indexed(effective_threads(&self.opts), rebuilt.len(), |k| {
                Ok(Encoding::for_component(
                    spec,
                    value_rels,
                    &partition.components()[rebuilt[k]],
                    transitivity,
                ))
            })?
        };
        self.obs.lap(clock, &self.obs.apply_recompile_ns);
        // Patch exactly the changed slots (infallible from here on); no
        // other slot's mutex is even acquired.
        let cache = self
            .cps_cache
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner);
        for &slot in &plan.freed {
            let slot_mutex = &mut self.components[slot];
            let state = slot_mutex.get_mut().unwrap_or_else(PoisonError::into_inner);
            retire_status(cache, slot, state.status);
            *state = ComponentState {
                enc: Encoding::vacant(&self.value_rels, transitivity),
                status: Some(true),
            };
            // The slot holds brand-new state now; a stale poison flag
            // would make the next lock discard its status for nothing.
            slot_mutex.clear_poison();
        }
        for (&slot, enc) in plan.rebuilt.iter().zip(compiled) {
            if slot < self.components.len() {
                let slot_mutex = &mut self.components[slot];
                let state = slot_mutex.get_mut().unwrap_or_else(PoisonError::into_inner);
                retire_status(cache, slot, state.status);
                *state = ComponentState { enc, status: None };
                slot_mutex.clear_poison();
            } else {
                debug_assert_eq!(slot, self.components.len(), "appends are contiguous");
                self.components
                    .push(Mutex::new(ComponentState { enc, status: None }));
            }
            cache.unsolved.insert(slot);
        }
        debug_assert_eq!(self.components.len(), plan.slots, "slot arrays aligned");
        self.components_rebuilt += plan.rebuilt();
        self.components_reused += plan.reused();
        Ok(plan)
    }

    /// Reclaim every tombstone slot of the specification and rebuild the
    /// compiled state over the remapped tuple ids.
    ///
    /// Long churn streams grow one dead tuple slot per retraction (ids
    /// must stay stable between compactions); this hands the memory back
    /// and re-densifies the id space.  Internally the sweep runs through
    /// the same slice executor as [`CurrencyEngine::compact_step`] with
    /// an unbounded scan — one full-width slice per relation — so only
    /// the components whose tuples actually moved are re-derived and
    /// recompiled; a trailing dead block truncates without rebuilding
    /// anything.  The result is byte-identical to the core reference
    /// sweep ([`Specification::compact`]), which stays the independently
    /// implemented oracle the incremental path is differentially tested
    /// against.  With no tombstones this is a no-op: nothing is rebuilt
    /// and borrowed specifications are not cloned.
    ///
    /// Externally held [`TupleId`]s are invalidated; translate them
    /// through the returned [`CompactReport`] (whose per-relation tables
    /// match the reference sweep's entry for entry).
    pub fn compact(&mut self) -> Result<CompactReport, ReasonError> {
        let tombstones: usize = self.spec.instances().iter().map(|i| i.tombstones()).sum();
        if tombstones == 0 {
            // Identity report (empty tables = unchanged ids): nothing is
            // rebuilt, nothing proportional to the spec is allocated, and
            // a borrowed specification is not cloned.
            return Ok(CompactReport {
                reclaimed: 0,
                remap: Vec::new(),
            });
        }
        // Pre-sweep shape, for synthesizing the monolithic report: slot
        // count and whether each relation participates (a relation with
        // no tombstones keeps the empty = identity table convention).
        let shape: Vec<(RelId, usize, bool)> = self
            .spec
            .instances()
            .iter()
            .map(|i| (i.rel(), i.len(), i.tombstones() > 0))
            .collect();
        // Drain with an unbounded scan: slots are u32-indexed, so a
        // u32::MAX window always reaches the end of the relation (and
        // cannot overflow the bounds arithmetic).
        let mut step = CompactStepReport::default();
        {
            let spec = self.spec.to_mut();
            while let Some(slice) = spec.compact_slice(u32::MAX as usize) {
                step.reclaimed += slice.reclaimed as usize;
                step.slices.push(slice);
            }
        }
        step.done = true;
        self.rebuild_for_slices(&step.slices)?;
        let remap = shape
            .iter()
            .map(|&(rel, slots, touched)| {
                if !touched {
                    return Vec::new();
                }
                (0..slots as u32)
                    .map(|old| step.new_id(rel, TupleId(old)))
                    .collect()
            })
            .collect();
        self.compactions += 1;
        self.slots_reclaimed += step.reclaimed;
        Ok(CompactReport {
            reclaimed: step.reclaimed,
            remap,
        })
    }

    /// Run **one bounded compaction step**: reclaim tombstone slots in
    /// per-relation slices until the budget's slot bound is met, its
    /// pause deadline expires, or the specification is fully drained —
    /// then rebuild only the components whose tuples the step actually
    /// remapped.
    ///
    /// This is the incremental counterpart of
    /// [`CurrencyEngine::compact`]: each step is O(slots scanned) plus
    /// the dirty-region rebuild, the specification is fully valid and
    /// queryable between steps, and a drained sequence of steps leaves
    /// the specification byte-identical to what one stop-the-world
    /// `compact()` would have produced.  Components none of whose tuples
    /// moved keep their cached encodings, learnt clauses and
    /// satisfiability verdicts exactly as [`CurrencyEngine::apply`] does
    /// for clean components.
    ///
    /// Only the tuple ids listed in the returned report's slices are
    /// invalidated; translate held ids through
    /// [`CompactStepReport::new_id`].  `done` on the report means no
    /// tombstones remain.  With no tombstones the step is a free no-op.
    ///
    /// The deadline is best-effort and checked between slices, so a step
    /// can overshoot `max_pause` by at most one slice quantum; at least
    /// one slice always runs, so progress is guaranteed.  Callers that
    /// need bit-reproducible steps (log replay) should use
    /// [`CurrencyEngine::compact_step_slots`], which is a pure function
    /// of the specification.
    pub fn compact_step(
        &mut self,
        budget: &CompactBudget,
    ) -> Result<CompactStepReport, ReasonError> {
        let deadline = std::time::Instant::now() + budget.max_pause;
        self.compact_step_inner(budget.max_slots_per_step, Some(deadline))
    }

    /// [`CurrencyEngine::compact_step`] bounded by slot count only — a
    /// deterministic function of the specification, with no wall-clock
    /// dependence.  This is what the [`Options::auto_compact_budget`]
    /// policy runs after an apply, and what durability wrappers use when
    /// a replayed log ends mid-compaction.
    pub fn compact_step_slots(
        &mut self,
        max_slots: usize,
    ) -> Result<CompactStepReport, ReasonError> {
        self.compact_step_inner(max_slots, None)
    }

    fn compact_step_inner(
        &mut self,
        max_slots: usize,
        deadline: Option<std::time::Instant>,
    ) -> Result<CompactStepReport, ReasonError> {
        let mut step = CompactStepReport::default();
        if self.spec.total_tombstones() == 0 {
            // Nothing to reclaim: no Cow promotion, no rebuild, no
            // counter movement.
            step.done = true;
            return Ok(step);
        }
        let clock = self.obs.clock();
        let max_slots = max_slots.max(1);
        {
            let spec = self.spec.to_mut();
            let mut scanned = 0usize;
            while scanned < max_slots {
                if let Some(d) = deadline {
                    if !step.slices.is_empty() && std::time::Instant::now() >= d {
                        break;
                    }
                }
                let quantum = SLICE_QUANTUM.min(max_slots - scanned);
                let Some(slice) = spec.compact_slice(quantum) else {
                    break; // drained mid-step
                };
                // `max(1)` keeps a degenerate zero-width slice from
                // stalling the loop (cannot happen today — a slice always
                // scans at least one slot — but the loop must not rely on
                // that invariant for termination).
                scanned += ((slice.end - slice.start) as usize).max(1);
                step.reclaimed += slice.reclaimed as usize;
                step.slices.push(slice);
            }
            step.done = spec.total_tombstones() == 0;
        }
        self.finish_step(&step)?;
        if let Some(start) = clock {
            self.obs
                .compact_step_pause_ns
                .record(start.elapsed().as_nanos() as u64);
        }
        Ok(step)
    }

    /// Re-execute a logged compaction step verbatim against this engine.
    ///
    /// Durability wrappers call this during replay: the logged slices'
    /// bounds are re-applied through the same validated slice executor
    /// that produced them, so a replayed engine passes through the exact
    /// intermediate states of the original run.  Returns the freshly
    /// computed report — the caller compares it against the logged one
    /// and treats any difference as log divergence.  Bounds that do not
    /// describe a sweep state of the current specification (a corrupt or
    /// out-of-order log) fail cleanly with the specification untouched
    /// up to the offending slice.
    pub fn compact_apply_step(
        &mut self,
        step: &CompactStepReport,
    ) -> Result<CompactStepReport, ReasonError> {
        let mut replayed = CompactStepReport::default();
        if !step.slices.is_empty() {
            let spec = self.spec.to_mut();
            for logged in &step.slices {
                let slice =
                    spec.compact_slice_at(logged.rel, logged.write, logged.start, logged.end)?;
                replayed.reclaimed += slice.reclaimed as usize;
                replayed.slices.push(slice);
            }
        }
        replayed.done = self.spec.total_tombstones() == 0;
        self.finish_step(&replayed)?;
        Ok(replayed)
    }

    /// Patch the compiled state after a step's slices have executed: one
    /// batched dirty-region rebuild over every cell that holds a remapped
    /// tuple.  A step that only truncated trailing tombstones moved
    /// nothing and rebuilds nothing.
    fn finish_step(&mut self, step: &CompactStepReport) -> Result<(), ReasonError> {
        if step.slices.is_empty() {
            return Ok(());
        }
        self.rebuild_for_slices(&step.slices)?;
        self.compact_steps += 1;
        self.slots_reclaimed += step.reclaimed;
        Ok(())
    }

    /// The compiled-state rebuild shared by [`CurrencyEngine::compact`]
    /// and the step paths: re-derive and recompile exactly the components
    /// owning a cell some slice remapped a tuple into.
    fn rebuild_for_slices(&mut self, slices: &[CompactSlice]) -> Result<(), ReasonError> {
        // Touched cells: the post-move home of every remapped tuple.
        // Moved tuples keep their slots through the step's later slices
        // (later slices only write at or above this slice's final write
        // position), so `tuple(new)` is the tuple the table names.  Dead
        // slots need no cell: retraction already rebuilt their cells when
        // it removed them from their entity groups, and reclaiming the
        // slot renames no live id.
        let mut touched: BTreeSet<(RelId, Eid)> = BTreeSet::new();
        for slice in slices {
            let inst = self.spec.instance(slice.rel);
            for new_id in slice.remap.iter().flatten() {
                touched.insert((slice.rel, inst.tuple(*new_id).eid));
            }
        }
        if !touched.is_empty() {
            self.rebuild_touched(&touched, 0)?;
        }
        Ok(())
    }

    /// Record a completed log recovery in the engine's lifetime counters
    /// (surfaced as [`EngineStats::recoveries`] /
    /// [`EngineStats::deltas_replayed`]).
    ///
    /// Called by durability wrappers (`currency-store`'s `DurableEngine`)
    /// after rebuilding an engine from a snapshot and replaying the log
    /// suffix through [`CurrencyEngine::apply`]; the replayed applies
    /// also count toward [`EngineStats::updates_applied`], so the two
    /// counters together distinguish replayed from live traffic.
    pub fn note_recovery(&mut self, deltas_replayed: usize) {
        self.recoveries += 1;
        self.deltas_replayed += deltas_replayed;
    }

    /// The specification the engine currently answers for (including every
    /// applied delta).
    pub fn spec(&self) -> &Specification {
        self.spec.as_ref()
    }

    /// The entity partition the engine solves over.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The engine's options.
    pub fn options(&self) -> &Options {
        &self.opts
    }

    /// Aggregate solver counters (sizes plus CDCL statistics).
    pub fn stats(&self) -> EngineStats {
        let mut stats = EngineStats {
            components: self.partition.len(),
            cells: self
                .partition
                .components()
                .iter()
                .map(|c| c.cells.len())
                .sum(),
            updates_applied: self.updates_applied,
            components_rebuilt: self.components_rebuilt,
            components_reused: self.components_reused,
            compactions: self.compactions,
            compact_steps: self.compact_steps,
            slots_reclaimed: self.slots_reclaimed,
            recoveries: self.recoveries,
            deltas_replayed: self.deltas_replayed,
            ..EngineStats::default()
        };
        for ix in 0..self.components.len() {
            let st = self.component(ix);
            stats.vars += st.enc.num_vars();
            stats.clauses += st.enc.num_clauses();
            stats.sat += st.enc.solver_stats();
        }
        stats
    }

    /// Lock one slot's state, surviving mutex poisoning.
    ///
    /// A query that panics while holding a component lock (a budget
    /// assertion, a debug invariant) poisons the mutex; without recovery
    /// every later query on that slot would panic too, which is fatal for
    /// a long-lived engine.  The component state itself stays coherent
    /// across such a panic — queries mutate only the solver, whose
    /// operations keep its invariants — but the cached satisfiability
    /// verdict is conservatively dropped (and retired from the aggregate
    /// cache) so the next query re-derives it.
    fn component(&self, ix: usize) -> MutexGuard<'_, ComponentState> {
        match self.components[ix].lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.components[ix].clear_poison();
                let mut guard = poisoned.into_inner();
                if let Some(was_sat) = guard.status.take() {
                    let mut cache = self.cps_lock();
                    if !was_sat {
                        cache.unsat -= 1;
                    }
                    cache.unsolved.insert(ix);
                }
                guard
            }
        }
    }

    /// Lock the aggregate-consistency cache (poisoning cannot corrupt it:
    /// every mutation is a couple of integer/set updates).
    fn cps_lock(&self) -> MutexGuard<'_, CpsCache> {
        self.cps_cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Satisfiability of one slot, solved on first demand and cached
    /// (with the aggregate cache book-kept under the slot's lock, so
    /// concurrent solvers of the same slot cannot double-count).
    ///
    /// The solve runs under [`Options::solve_limits`] / deadline; an
    /// interrupt leaves `status` as `None` and the slot in the undecided
    /// set — the cache treats an interrupted slot as *undecided*, never
    /// unsat — and the cached solver keeps its learnt state, so the next
    /// attempt resumes warm.
    fn component_status(&self, ix: usize) -> Result<bool, ReasonError> {
        let mut st = self.component(ix);
        if let Some(sat) = st.status {
            return Ok(sat);
        }
        let bounds = Bounds::from_options(&self.opts);
        let clock = self.obs.clock();
        let before = if clock.is_some() {
            st.enc.solver_stats()
        } else {
            SolverStats::default()
        };
        let outcome = st.enc.solve_bounded(&bounds);
        // Record before propagating an interrupt: a budget-killed solve
        // spent real time and conflicts, and the histograms must show
        // it.
        self.obs
            .record_solve(clock, &before, &st.enc.solver_stats());
        let sat = outcome? == SolveResult::Sat;
        st.status = Some(sat);
        let mut cache = self.cps_lock();
        if cache.unsolved.remove(&ix) && !sat {
            cache.unsat += 1;
        }
        Ok(sat)
    }

    /// **CPS** — is the specification consistent?  Decides only the slots
    /// whose satisfiability is not yet known (in parallel when there are
    /// many): all of them on the first call, exactly the rebuilt slots
    /// after a delta, none at steady state — the call is O(undecided
    /// region), never a sweep of every component.
    pub fn cps(&self) -> Result<bool, ReasonError> {
        if self.partition.has_ground_falsum {
            return Ok(false);
        }
        // Loop until the undecided set is empty *at verdict time*: a
        // concurrent poison recovery can re-insert a slot between the
        // drain and the check, and "still undecided" must trigger another
        // drain, never masquerade as a verdict.
        loop {
            let pending: Vec<usize> = {
                let cache = self.cps_lock();
                if cache.unsolved.is_empty() {
                    return Ok(cache.unsat == 0);
                }
                cache.unsolved.iter().copied().collect()
            };
            run_indexed(effective_threads(&self.opts), pending.len(), |k| {
                self.component_status(pending[k])
            })?;
        }
    }

    /// **COP** — is every pair of the candidate order certain?  Vacuously
    /// true when the specification is inconsistent (paper convention);
    /// otherwise one assumption-based solve per pair, against only the
    /// pair's component.
    pub fn cop(&self, ot: &CurrencyOrderQuery) -> Result<bool, ReasonError> {
        if !self.cps()? {
            return Ok(true); // Mod(S) = ∅: vacuously certain
        }
        if ot.rel.index() >= self.spec.instances().len() {
            return Ok(ot.pairs.is_empty());
        }
        let inst = self.spec.instance(ot.rel);
        for &(attr, lesser, greater) in &ot.pairs {
            let (Ok(lt), Ok(gt)) = (inst.tuple_checked(lesser), inst.tuple_checked(greater)) else {
                return Ok(false); // unknown tuple: never certain
            };
            if lesser == greater || lt.eid != gt.eid {
                return Ok(false); // reflexive or cross-entity: never holds
            }
            let ix = self
                .partition
                .component_of(ot.rel, lt.eid)
                .expect("every entity has a component");
            let mut st = self.component(ix);
            let Some(l) = st.enc.order_lit(ot.rel, attr, lesser, greater) else {
                return Ok(false);
            };
            let bounds = Bounds::from_options(&self.opts);
            if st.enc.solve_bounded_with_assumptions(&[!l], &bounds)? == SolveResult::Sat {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// **DCIP** — do all completions agree on the current instance of
    /// `rel`?  Enumerates at most two rel-projected models per touched
    /// component, on throwaway solver clones.
    pub fn dcip(&self, rel: RelId) -> Result<bool, ReasonError> {
        self.require_value_rel(rel)?;
        if !self.cps()? {
            return Ok(true); // vacuously deterministic
        }
        let touched = self.partition.components_touching(rel);
        let verdicts = run_indexed(effective_threads(&self.opts), touched.len(), |k| {
            let ix = touched[k];
            let st = self.component(ix);
            let (_, vars) = st.enc.restricted_projection(&[rel]);
            if vars.is_empty() {
                return Ok(true); // every completion yields the same rows
            }
            let mut enc = st.enc.clone();
            drop(st);
            let bounds = Bounds::from_options(&self.opts);
            let mut count = 0usize;
            let enumeration =
                enc.for_each_model_bounded(&vars, self.opts.max_models, &bounds, |_| {
                    count += 1;
                    count < 2
                })?;
            if let Enumeration::LimitReached(n) = enumeration {
                return Err(ReasonError::BudgetExceeded {
                    what: "current-instance enumeration (DCIP)",
                    budget: self.opts.max_models,
                    spent: n,
                });
            }
            Ok(count < 2)
        })?;
        Ok(verdicts.into_iter().all(|deterministic| deterministic))
    }

    /// **CCQA** — is `tuple` a certain current answer of `query`?
    pub fn ccqa(&self, query: &Query, tuple: &[Value]) -> Result<bool, ReasonError> {
        Ok(self.certain_answers(query)?.contains(tuple))
    }

    /// The certain current answers of `query`: the intersection of the
    /// query's answers over every realizable combination of current
    /// instances.
    ///
    /// Realizable instances are enumerated **per component** and composed
    /// as a product, so the per-component All-SAT never pays for order
    /// choices in unrelated components.  Both the per-component model
    /// count and the composed product are bounded by
    /// [`Options::max_models`].
    pub fn certain_answers(&self, query: &Query) -> Result<CertainAnswers, ReasonError> {
        let rels: Vec<RelId> = query.body().relations().into_iter().collect();
        for &rel in &rels {
            self.require_value_rel(rel)?;
        }
        if !self.cps()? {
            return Ok(CertainAnswers::Inconsistent);
        }
        let touched = self.touched_components(&rels);
        let per_comp = self.enumerate_component_models(
            &rels,
            &touched,
            "current-instance enumeration (CCQA)",
        )?;
        intersect_certain_answers(query, &rels, &per_comp, self.opts.deadline, |cm, model| {
            self.decode_locked(&rels, cm, model)
        })
    }

    /// Decode one component's chosen model under the component's lock.
    fn decode_locked(
        &self,
        rels: &[RelId],
        cm: &ComponentModels,
        model: &[bool],
    ) -> Vec<(RelId, Tuple)> {
        let st = self.component(cm.comp);
        st.enc
            .decode_restricted(self.spec.as_ref(), rels, &cm.indices, model)
    }

    /// The components holding cells of any of `rels`, deduplicated.
    fn touched_components(&self, rels: &[RelId]) -> Vec<usize> {
        let mut out: Vec<usize> = rels
            .iter()
            .flat_map(|&rel| self.partition.components_touching(rel))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Enumerate each listed component's projected models over `rels`
    /// (parallel, on throwaway solver clones).  Both the per-component
    /// model count and the composed product are bounded by
    /// [`Options::max_models`]; `what` labels the budget error.
    fn enumerate_component_models(
        &self,
        rels: &[RelId],
        comps: &[usize],
        what: &'static str,
    ) -> Result<Vec<ComponentModels>, ReasonError> {
        let per_comp = run_indexed(effective_threads(&self.opts), comps.len(), |k| {
            let ix = comps[k];
            let st = self.component(ix);
            let (indices, vars) = st.enc.restricted_projection(rels);
            if vars.is_empty() {
                // One realizable outcome: the component's fixed rows.
                return Ok(ComponentModels {
                    comp: ix,
                    indices,
                    models: vec![Vec::new()],
                });
            }
            let mut enc = st.enc.clone();
            drop(st);
            let bounds = Bounds::from_options(&self.opts);
            let mut models: Vec<Vec<bool>> = Vec::new();
            let enumeration =
                enc.for_each_model_bounded(&vars, self.opts.max_models, &bounds, |m| {
                    models.push(m.to_vec());
                    true
                })?;
            if let Enumeration::LimitReached(n) = enumeration {
                return Err(ReasonError::BudgetExceeded {
                    what,
                    budget: self.opts.max_models,
                    spent: n,
                });
            }
            Ok(ComponentModels {
                comp: ix,
                indices,
                models,
            })
        })?;
        check_product_budget(&per_comp, self.opts.max_models, what)?;
        Ok(per_comp)
    }

    /// A witness completion from `Mod(S)`, assembled from per-component
    /// models; `Ok(None)` means the specification is inconsistent.
    pub fn witness_completion(&self) -> Result<Option<Completion>, ReasonError> {
        if !self.cps()? {
            return Ok(None);
        }
        let chains_per_comp: Vec<ComponentChains> =
            run_indexed(effective_threads(&self.opts), self.components.len(), |ix| {
                let mut st = self.component(ix);
                // Re-solve without assumptions so the model is a plain
                // completion model (assumption queries may have left the
                // solver without one); in lazy mode this also re-runs the
                // closure refinement so the model is transitive.
                let sat = st.enc.solve();
                debug_assert_eq!(sat, SolveResult::Sat, "component known satisfiable");
                Ok(st.enc.model_chains(self.spec.as_ref()))
            })?;
        let mut chains: BTreeMap<RelId, Vec<BTreeMap<Eid, Vec<TupleId>>>> = self
            .spec
            .instances()
            .iter()
            .map(|inst| (inst.rel(), vec![BTreeMap::new(); inst.arity()]))
            .collect();
        for (rel, attr, eid, chain) in chains_per_comp.into_iter().flatten() {
            chains.get_mut(&rel).expect("known relation")[attr.index()].insert(eid, chain);
        }
        let rels: Result<Vec<RelCompletion>, _> = self
            .spec
            .instances()
            .iter()
            .map(|inst| {
                RelCompletion::new(
                    inst,
                    chains.remove(&inst.rel()).expect("chains per relation"),
                )
            })
            .collect();
        let completion = Completion::new(rels?);
        debug_assert!(completion.is_consistent_for(self.spec.as_ref()));
        Ok(Some(completion))
    }

    /// The realizable current instances of `rel` (up to the model budget),
    /// composed across components.  Exposed for diagnostics and tests.
    pub fn current_instances(&self, rel: RelId) -> Result<Vec<NormalInstance>, ReasonError> {
        self.require_value_rel(rel)?;
        if !self.cps()? {
            return Ok(Vec::new());
        }
        let rels = [rel];
        let touched = self.partition.components_touching(rel);
        let per_comp =
            self.enumerate_component_models(&rels, &touched, "current-instance enumeration")?;
        let mut out: Vec<NormalInstance> = Vec::new();
        for_each_combination(
            &per_comp,
            self.opts.deadline,
            |cm, model| self.decode_locked(&rels, cm, model),
            |rows| {
                let mut inst = NormalInstance::new(rel);
                for (_, t) in rows {
                    inst.push(t);
                }
                out.push(inst);
                true
            },
        )?;
        Ok(out)
    }

    fn require_value_rel(&self, rel: RelId) -> Result<(), ReasonError> {
        if self.value_rels.contains(&rel) {
            Ok(())
        } else {
            Err(ReasonError::UnsupportedQuery {
                detail: format!(
                    "relation {rel:?} has no value indicators in this engine; \
                     build it with CurrencyEngine::new or include the relation \
                     in with_value_rels"
                ),
            })
        }
    }
}

/// Compile every slot of `partition` into an unsolved component state
/// (parallel under `opts.threads`) — shared by engine construction and
/// post-compaction rebuild so the two can never drift.
fn compile_components(
    spec: &Specification,
    value_rels: &[RelId],
    opts: &Options,
    partition: &Partition,
) -> Result<Vec<Mutex<ComponentState>>, ReasonError> {
    let encodings = run_indexed(effective_threads(opts), partition.slots(), |ix| {
        Ok(Encoding::for_component(
            spec,
            value_rels,
            &partition.components()[ix],
            opts.transitivity,
        ))
    })?;
    Ok(encodings
        .into_iter()
        .map(|enc| Mutex::new(ComponentState { enc, status: None }))
        .collect())
}

/// The consistency cache of an engine none of whose slots is decided.
fn undecided_cache(slots: usize) -> CpsCache {
    CpsCache {
        unsolved: (0..slots).collect(),
        unsat: 0,
    }
}

pub(crate) fn effective_threads(opts: &Options) -> usize {
    if opts.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        opts.threads
    }
}

/// Run `f(0..n)` and collect results in index order, fanning out across
/// `threads` workers when the job count warrants it.  The first error
/// wins; remaining work is still drained (workers are not cancelled).
pub(crate) fn run_indexed<T, F>(threads: usize, n: usize, f: F) -> Result<Vec<T>, ReasonError>
where
    T: Send,
    F: Fn(usize) -> Result<T, ReasonError> + Sync,
{
    // Thread spawn costs dwarf small jobs; only fan out for real fleets.
    const MIN_PARALLEL_JOBS: usize = 16;
    if threads <= 1 || n < MIN_PARALLEL_JOBS {
        return (0..n).map(&f).collect();
    }
    let slots: Vec<Mutex<Option<Result<T, ReasonError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let ix = next.fetch_add(1, Ordering::Relaxed);
                if ix >= n {
                    break;
                }
                *slots[ix].lock().expect("result slot") = Some(f(ix));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot")
                .expect("every index processed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use currency_core::{Catalog, CmpOp, DenialConstraint, RelationSchema, Term, Tuple};
    use currency_query::{Atom, Formula, QueryBuilder, Term as QTerm};

    const A: AttrId = AttrId(0);

    fn multi_entity_spec() -> (Specification, RelId) {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A"]));
        let mut spec = Specification::new(cat);
        for e in 0..3u64 {
            for v in [10, 20] {
                spec.instance_mut(r)
                    .push_tuple(Tuple::new(Eid(e), vec![Value::int(v + e as i64)]))
                    .unwrap();
            }
        }
        (spec, r)
    }

    fn monotone(r: RelId) -> DenialConstraint {
        DenialConstraint::builder(r, 2)
            .when_cmp(Term::attr(0, A), CmpOp::Gt, Term::attr(1, A))
            .then_order(1, A, 0)
            .build()
            .unwrap()
    }

    #[test]
    fn engine_partitions_per_entity() {
        let (spec, _) = multi_entity_spec();
        let engine = CurrencyEngine::new(&spec, &Options::default()).unwrap();
        assert_eq!(engine.partition().len(), 3);
        assert!(engine.cps().unwrap());
        let stats = engine.stats();
        assert_eq!(stats.components, 3);
        assert_eq!(stats.cells, 3);
        assert!(stats.vars > 0);
    }

    #[test]
    fn engine_cop_matches_expectations() {
        let (mut spec, r) = multi_entity_spec();
        spec.add_constraint(monotone(r)).unwrap();
        let engine = CurrencyEngine::new(&spec, &Options::default()).unwrap();
        // Within entity 0: 10 < 20 so t0 ≺ t1 is forced.
        assert!(engine
            .cop(&CurrencyOrderQuery::single(r, A, TupleId(0), TupleId(1)))
            .unwrap());
        assert!(!engine
            .cop(&CurrencyOrderQuery::single(r, A, TupleId(1), TupleId(0)))
            .unwrap());
        // Cross-entity pairs are never certain.
        assert!(!engine
            .cop(&CurrencyOrderQuery::single(r, A, TupleId(0), TupleId(2)))
            .unwrap());
        // Reflexive pairs are never certain.
        assert!(!engine
            .cop(&CurrencyOrderQuery::single(r, A, TupleId(0), TupleId(0)))
            .unwrap());
        // Unknown tuples are never certain.
        assert!(!engine
            .cop(&CurrencyOrderQuery::single(r, A, TupleId(0), TupleId(99)))
            .unwrap());
    }

    #[test]
    fn engine_dcip_and_answers() {
        let (mut spec, r) = multi_entity_spec();
        assert!(!CurrencyEngine::new(&spec, &Options::default())
            .unwrap()
            .dcip(r)
            .unwrap());
        spec.add_constraint(monotone(r)).unwrap();
        let engine = CurrencyEngine::new(&spec, &Options::default()).unwrap();
        assert!(engine.dcip(r).unwrap());
        let mut b = QueryBuilder::new();
        let x = b.var();
        let q = b.build(vec![x], Formula::Atom(Atom::new(r, vec![QTerm::Var(x)])));
        let ans = engine.certain_answers(&q).unwrap();
        assert_eq!(
            ans.rows().unwrap(),
            &[
                vec![Value::int(20)],
                vec![Value::int(21)],
                vec![Value::int(22)]
            ]
        );
    }

    #[test]
    fn engine_witness_is_consistent() {
        let (mut spec, r) = multi_entity_spec();
        spec.add_constraint(monotone(r)).unwrap();
        let engine = CurrencyEngine::new(&spec, &Options::default()).unwrap();
        let w = engine.witness_completion().unwrap().expect("consistent");
        assert!(w.is_consistent_for(&spec));
        assert!(w.rel(r).precedes(A, TupleId(0), TupleId(1)));
    }

    #[test]
    fn engine_detects_inconsistency() {
        let (mut spec, r) = multi_entity_spec();
        spec.add_constraint(monotone(r)).unwrap();
        // Contradict the constraint within entity 2 only.
        spec.instance_mut(r)
            .add_order(A, TupleId(5), TupleId(4))
            .unwrap();
        let engine = CurrencyEngine::new(&spec, &Options::default()).unwrap();
        assert!(!engine.cps().unwrap());
        // Vacuous conventions hold.
        assert!(engine
            .cop(&CurrencyOrderQuery::single(r, A, TupleId(1), TupleId(0)))
            .unwrap());
        assert!(engine.dcip(r).unwrap());
        assert!(engine.witness_completion().unwrap().is_none());
    }

    #[test]
    fn lean_engine_rejects_value_queries_politely() {
        let (spec, r) = multi_entity_spec();
        let engine = CurrencyEngine::with_value_rels(&spec, &[], &Options::default()).unwrap();
        assert!(engine.cps().unwrap());
        assert!(matches!(
            engine.dcip(r),
            Err(ReasonError::UnsupportedQuery { .. })
        ));
    }

    #[test]
    fn lazy_and_eager_engines_agree_and_surface_lemma_stats() {
        use crate::TransitivityMode;
        let (mut spec, r) = multi_entity_spec();
        spec.add_constraint(monotone(r)).unwrap();
        // A third tuple per entity so transitivity has triangles to check.
        for e in 0..3u64 {
            spec.instance_mut(r)
                .push_tuple(Tuple::new(Eid(e), vec![Value::int(15 + e as i64)]))
                .unwrap();
        }
        let eager_opts = Options {
            transitivity: TransitivityMode::Eager,
            ..Options::default()
        };
        let lazy_opts = Options {
            transitivity: TransitivityMode::Lazy,
            ..Options::default()
        };
        let eager = CurrencyEngine::new(&spec, &eager_opts).unwrap();
        let lazy = CurrencyEngine::new(&spec, &lazy_opts).unwrap();
        // Variable allocation is mode-independent (parity), clause counts
        // are not (lazy omits the eager triangle grounding).
        assert_eq!(eager.stats().vars, lazy.stats().vars);
        assert!(lazy.stats().clauses < eager.stats().clauses);
        assert_eq!(eager.cps().unwrap(), lazy.cps().unwrap());
        for u in 0..9u32 {
            for v in 0..9u32 {
                let q = CurrencyOrderQuery::single(r, A, TupleId(u), TupleId(v));
                assert_eq!(eager.cop(&q).unwrap(), lazy.cop(&q).unwrap(), "{u} ≺ {v}");
            }
        }
        assert_eq!(eager.dcip(r).unwrap(), lazy.dcip(r).unwrap());
        assert_eq!(
            eager.current_instances(r).unwrap().len(),
            lazy.current_instances(r).unwrap().len(),
            "realizable current-instance counts must match"
        );
        // The aggregated stats surface the new solver counters.
        assert_eq!(eager.stats().sat.lemmas_added, 0, "eager never lemmatizes");
        let _ = lazy.stats().sat.lemmas_added; // present and aggregated
    }

    #[test]
    fn apply_rebuilds_only_the_touched_component() {
        use currency_core::SpecDelta;
        let (mut spec, r) = multi_entity_spec();
        spec.add_constraint(monotone(r)).unwrap();
        let mut engine = CurrencyEngine::new(&spec, &Options::default()).unwrap();
        assert!(engine.cps().unwrap());
        // Insert a new most-current value into entity 1 only.
        let mut delta = SpecDelta::new();
        delta.insert_tuple(r, Tuple::new(Eid(1), vec![Value::int(99)]));
        let report = engine.apply(&delta).unwrap();
        assert_eq!(report.components_rebuilt, 1);
        assert_eq!(report.components_reused, 2);
        assert_eq!(report.inserted.len(), 1);
        let new_id = report.inserted[0].1;
        // The borrowed original is untouched (Cow promotion).
        assert_eq!(spec.instance(r).len(), 6);
        assert_eq!(engine.spec().instance(r).len(), 7);
        // Verdicts match a freshly built engine on the updated spec.
        let fresh = CurrencyEngine::new(engine.spec(), &Options::default()).unwrap();
        assert_eq!(engine.cps().unwrap(), fresh.cps().unwrap());
        for (u, v) in [(TupleId(2), new_id), (new_id, TupleId(2))] {
            let q = CurrencyOrderQuery::single(r, A, u, v);
            assert_eq!(engine.cop(&q).unwrap(), fresh.cop(&q).unwrap());
        }
        assert!(engine
            .cop(&CurrencyOrderQuery::single(r, A, TupleId(2), new_id))
            .unwrap());
        // Lifetime counters surface in the stats.
        let stats = engine.stats();
        assert_eq!(stats.updates_applied, 1);
        assert_eq!(stats.components_rebuilt, 1);
        assert_eq!(stats.components_reused, 2);
    }

    #[test]
    fn apply_chains_on_an_owned_engine() {
        use currency_core::SpecDelta;
        let (mut spec, r) = multi_entity_spec();
        spec.add_constraint(monotone(r)).unwrap();
        let mut engine = CurrencyEngine::new_owned(spec, &Options::default()).unwrap();
        for step in 0..3 {
            let mut delta = SpecDelta::new();
            delta.insert_tuple(r, Tuple::new(Eid(0), vec![Value::int(100 + step)]));
            let report = engine.apply(&delta).unwrap();
            assert_eq!(report.components_rebuilt, 1);
            assert!(engine.cps().unwrap());
        }
        assert_eq!(engine.stats().updates_applied, 3);
        assert_eq!(engine.spec().instance(r).entity_group(Eid(0)).len(), 5);
    }

    #[test]
    fn failed_apply_leaves_engine_untouched_and_usable() {
        use currency_core::SpecDelta;
        let (mut spec, r) = multi_entity_spec();
        spec.add_constraint(monotone(r)).unwrap();
        let mut engine = CurrencyEngine::new(&spec, &Options::default()).unwrap();
        assert!(engine.cps().unwrap());
        // Second op of the delta is invalid: nothing may change.
        let mut delta = SpecDelta::new();
        delta
            .insert_tuple(r, Tuple::new(Eid(0), vec![Value::int(5)]))
            .add_order_edge(r, A, TupleId(0), TupleId(2)); // cross-entity
        assert!(engine.apply(&delta).is_err());
        assert_eq!(engine.spec().instance(r).len(), 6, "no partial mutation");
        assert_eq!(engine.stats().updates_applied, 0);
        assert!(engine.cps().unwrap());
        assert!(engine
            .cop(&CurrencyOrderQuery::single(r, A, TupleId(0), TupleId(1)))
            .unwrap());
    }

    #[test]
    fn apply_handles_constraint_and_removal_deltas() {
        use currency_core::SpecDelta;
        let (spec, r) = multi_entity_spec();
        let mut engine = CurrencyEngine::new(&spec, &Options::default()).unwrap();
        // Unconstrained: 10 ≺ 20 is not certain.
        let q = CurrencyOrderQuery::single(r, A, TupleId(0), TupleId(1));
        assert!(!engine.cop(&q).unwrap());
        // Adding the monotone constraint touches every cell of R.
        let mut delta = SpecDelta::new();
        delta.add_constraint(monotone(r));
        let report = engine.apply(&delta).unwrap();
        assert_eq!(report.components_rebuilt, 3);
        assert!(engine.cop(&q).unwrap(), "constraint now forces the pair");
        // Removing the greater tuple makes the pair unknown → not certain.
        let mut delta = SpecDelta::new();
        delta.remove_tuple(r, TupleId(1));
        let report = engine.apply(&delta).unwrap();
        assert_eq!(report.components_rebuilt, 1);
        assert!(!engine.cop(&q).unwrap(), "removed tuple is never certain");
        let fresh = CurrencyEngine::new(engine.spec(), &Options::default()).unwrap();
        assert_eq!(engine.cps().unwrap(), fresh.cps().unwrap());
        assert_eq!(engine.dcip(r).unwrap(), fresh.dcip(r).unwrap());
    }

    #[test]
    fn compact_reclaims_churn_tombstones_and_preserves_verdicts() {
        use currency_core::SpecDelta;
        let (mut spec, r) = multi_entity_spec();
        spec.add_constraint(monotone(r)).unwrap();
        let mut engine = CurrencyEngine::new_owned(spec, &Options::default()).unwrap();
        // Churn entity 1: every insert+retract leaves one tombstone slot.
        for step in 0..5 {
            let mut delta = SpecDelta::new();
            delta.insert_tuple(r, Tuple::new(Eid(1), vec![Value::int(50 + step)]));
            let report = engine.apply(&delta).unwrap();
            let (rel, id) = report.inserted[0];
            let mut retract = SpecDelta::new();
            retract.remove_tuple(rel, id);
            engine.apply(&retract).unwrap();
        }
        assert!(engine.cps().unwrap());
        assert_eq!(engine.spec().instance(r).len(), 11, "6 live + 5 dead");
        let report = engine.compact().unwrap();
        assert_eq!(report.reclaimed, 5);
        // The tuple vector shrank; ids are dense again.
        assert_eq!(engine.spec().instance(r).len(), 6);
        assert_eq!(engine.spec().instance(r).live_len(), 6);
        // Verdicts equal a fresh engine over the compacted specification.
        let fresh = CurrencyEngine::new(engine.spec(), &Options::default()).unwrap();
        assert_eq!(engine.cps().unwrap(), fresh.cps().unwrap());
        for u in 0..6u32 {
            for v in 0..6u32 {
                let q = CurrencyOrderQuery::single(r, A, TupleId(u), TupleId(v));
                assert_eq!(engine.cop(&q).unwrap(), fresh.cop(&q).unwrap(), "{u}≺{v}");
            }
        }
        assert_eq!(engine.dcip(r).unwrap(), fresh.dcip(r).unwrap());
        let stats = engine.stats();
        assert_eq!(stats.compactions, 1);
        assert_eq!(stats.slots_reclaimed, 5);
        // Nothing left to reclaim: no rebuild, no counter bump.
        let noop = engine.compact().unwrap();
        assert_eq!(noop.reclaimed, 0);
        assert_eq!(noop.new_id(r, TupleId(2)), Some(TupleId(2)));
        assert_eq!(engine.stats().compactions, 1);
    }

    #[test]
    fn compact_remaps_ids_for_later_queries() {
        use currency_core::SpecDelta;
        let (mut spec, r) = multi_entity_spec();
        spec.add_constraint(monotone(r)).unwrap();
        let mut engine = CurrencyEngine::new_owned(spec, &Options::default()).unwrap();
        // Retract entity 0's lesser tuple (TupleId(0), value 10).
        let mut delta = SpecDelta::new();
        delta.remove_tuple(r, TupleId(0));
        engine.apply(&delta).unwrap();
        let report = engine.compact().unwrap();
        assert_eq!(report.reclaimed, 1);
        // Old ids shift down by one; the constraint still orders entity 1.
        let old_pair = (TupleId(2), TupleId(3));
        let new_pair = (
            report.new_id(r, old_pair.0).unwrap(),
            report.new_id(r, old_pair.1).unwrap(),
        );
        assert_eq!(new_pair, (TupleId(1), TupleId(2)));
        assert!(engine
            .cop(&CurrencyOrderQuery::single(r, A, new_pair.0, new_pair.1))
            .unwrap());
        // The vacated id space is live again: the last id is now unknown.
        assert!(!engine
            .cop(&CurrencyOrderQuery::single(r, A, TupleId(4), TupleId(5)))
            .unwrap());
    }

    #[test]
    fn apply_keeps_slot_count_bounded_under_churn() {
        use currency_core::SpecDelta;
        let (mut spec, r) = multi_entity_spec();
        spec.add_constraint(monotone(r)).unwrap();
        let mut engine = CurrencyEngine::new_owned(spec, &Options::default()).unwrap();
        let slots_before = engine.components.len();
        for step in 0..8 {
            // A brand-new entity appears and disappears: its component
            // slot must be recycled, not leaked.
            let mut delta = SpecDelta::new();
            delta.insert_tuple(r, Tuple::new(Eid(100), vec![Value::int(step)]));
            let report = engine.apply(&delta).unwrap();
            let (rel, id) = report.inserted[0];
            let mut retract = SpecDelta::new();
            retract.remove_tuple(rel, id);
            engine.apply(&retract).unwrap();
            assert!(engine.cps().unwrap());
        }
        assert!(
            engine.components.len() <= slots_before + 1,
            "vacated slots are reused: {} grew past {}",
            engine.components.len(),
            slots_before + 1
        );
        assert_eq!(engine.partition().len(), 3, "live components steady");
    }

    #[test]
    fn auto_compaction_fires_exactly_once_when_churn_crosses_the_threshold() {
        use currency_core::SpecDelta;
        let (mut spec, r) = multi_entity_spec();
        spec.add_constraint(monotone(r)).unwrap();
        let opts = Options {
            auto_compact_tombstones: 3,
            ..Options::default()
        };
        let mut engine = CurrencyEngine::new_owned(spec, &opts).unwrap();
        // Five insert+retract churn rounds: tombstones reach 1, 2, 3
        // (compaction fires, resets to 0), 1, 2 — exactly one compaction.
        let mut compactions_seen = 0;
        for step in 0..5 {
            let mut delta = SpecDelta::new();
            delta.insert_tuple(r, Tuple::new(Eid(1), vec![Value::int(50 + step)]));
            let report = engine.apply(&delta).unwrap();
            assert!(report.compacted.is_none(), "inserts leave no tombstones");
            let (rel, id) = report.inserted[0];
            let mut retract = SpecDelta::new();
            retract.remove_tuple(rel, id);
            let report = engine.apply(&retract).unwrap();
            if let Some(compact) = &report.compacted {
                compactions_seen += 1;
                assert_eq!(compact.reclaimed, 3, "threshold batch reclaimed");
                assert_eq!(
                    compact.new_id(rel, id),
                    None,
                    "the just-retracted tuple is gone from the id space"
                );
            }
            assert!(engine.cps().unwrap());
        }
        assert_eq!(compactions_seen, 1, "churn crossed the threshold once");
        let stats = engine.stats();
        assert_eq!(stats.compactions, 1);
        assert_eq!(stats.slots_reclaimed, 3);
        let tombstones: usize = engine
            .spec()
            .instances()
            .iter()
            .map(|i| i.tombstones())
            .sum();
        assert_eq!(tombstones, 2, "post-compaction churn accumulates anew");
        // Verdicts match a fresh engine over the compacted specification.
        let fresh = CurrencyEngine::new(engine.spec(), &Options::default()).unwrap();
        assert_eq!(engine.cps().unwrap(), fresh.cps().unwrap());
        assert_eq!(engine.dcip(r).unwrap(), fresh.dcip(r).unwrap());
    }

    /// Churn helper: `rounds` insert+retract pairs against `eid`,
    /// leaving one tombstone slot per round.
    fn churn(engine: &mut CurrencyEngine<'_>, r: RelId, eid: u64, rounds: usize) {
        use currency_core::SpecDelta;
        for step in 0..rounds {
            let mut delta = SpecDelta::new();
            delta.insert_tuple(r, Tuple::new(Eid(eid), vec![Value::int(50 + step as i64)]));
            let report = engine.apply(&delta).unwrap();
            let (rel, id) = report.inserted[0];
            let mut retract = SpecDelta::new();
            retract.remove_tuple(rel, id);
            engine.apply(&retract).unwrap();
        }
    }

    #[test]
    fn compact_steps_drain_to_the_monolithic_result() {
        let (mut spec, r) = multi_entity_spec();
        spec.add_constraint(monotone(r)).unwrap();
        let mut whole = CurrencyEngine::new_owned(spec.clone(), &Options::default()).unwrap();
        let mut sliced = CurrencyEngine::new_owned(spec, &Options::default()).unwrap();
        for eid in 0..3 {
            churn(&mut whole, r, eid, 3);
            churn(&mut sliced, r, eid, 3);
        }
        let monolithic = whole.compact().unwrap();
        // Drain in 2-slot steps; the engine stays fully queryable (and
        // correct) between every pair of steps.
        let mut reclaimed = 0;
        let mut steps = 0;
        loop {
            let step = sliced.compact_step_slots(2).unwrap();
            reclaimed += step.reclaimed;
            assert_eq!(sliced.cps().unwrap(), whole.cps().unwrap());
            if step.done {
                break;
            }
            steps += 1;
            assert!(steps < 100, "steps must terminate");
        }
        assert!(steps > 1, "the drain genuinely ran in several steps");
        assert_eq!(reclaimed, monolithic.reclaimed);
        assert_eq!(
            currency_core::wire::encode_spec(sliced.spec()),
            currency_core::wire::encode_spec(whole.spec()),
            "incremental drain lands on the byte-identical specification"
        );
        assert_eq!(
            sliced.stats().slots_reclaimed,
            whole.stats().slots_reclaimed
        );
        assert!(sliced.stats().compact_steps > 1);
        assert_eq!(sliced.stats().compactions, 0);
        for u in 0..6u32 {
            for v in 0..6u32 {
                let q = CurrencyOrderQuery::single(r, A, TupleId(u), TupleId(v));
                assert_eq!(sliced.cop(&q).unwrap(), whole.cop(&q).unwrap(), "{u}≺{v}");
            }
        }
        // Drained: further steps are free no-ops.
        let idle = sliced.compact_step_slots(8).unwrap();
        assert!(idle.done && idle.slices.is_empty());
    }

    #[test]
    fn budgeted_auto_policy_takes_bounded_steps() {
        use currency_core::SpecDelta;
        let (mut spec, r) = multi_entity_spec();
        spec.add_constraint(monotone(r)).unwrap();
        let opts = Options {
            auto_compact_tombstones: 3,
            auto_compact_budget: Some(CompactBudget {
                max_slots_per_step: 2,
                ..CompactBudget::default()
            }),
            ..Options::default()
        };
        let mut engine = CurrencyEngine::new_owned(spec, &opts).unwrap();
        let scanned = |s: &currency_core::CompactStepReport| -> usize {
            s.slices.iter().map(|sl| (sl.end - sl.start) as usize).sum()
        };
        let mut steps_seen = 0;
        for step in 0..6 {
            let mut delta = SpecDelta::new();
            delta.insert_tuple(r, Tuple::new(Eid(1), vec![Value::int(50 + step)]));
            let report = engine.apply(&delta).unwrap();
            // A small budget may leave residual tombstones ≥ the
            // threshold, so a step can legally fire on any apply.
            let (rel, mut id) = report.inserted[0];
            if let Some(s) = &report.compact_step {
                steps_seen += 1;
                assert!(
                    scanned(s) <= 2,
                    "step scanned {} slots > budget",
                    scanned(s)
                );
                // The step may have moved the tuple we just inserted;
                // the report's translation table tracks it.
                id = s.new_id(rel, id).expect("live tuple survives the step");
            }
            let mut retract = SpecDelta::new();
            retract.remove_tuple(rel, id);
            let report = engine.apply(&retract).unwrap();
            assert!(
                report.compacted.is_none(),
                "budget mode never stops the world"
            );
            if let Some(s) = &report.compact_step {
                steps_seen += 1;
                // The slot bound caps each step's scan work; reclaim
                // itself may exceed it when a slice reaches the end of
                // the relation and truncates a trailing dead block.
                assert!(
                    scanned(s) <= 2,
                    "step scanned {} slots > budget",
                    scanned(s)
                );
            }
            assert!(engine.cps().unwrap());
        }
        assert!(steps_seen >= 1, "the churn crossed the threshold");
        assert_eq!(engine.stats().compactions, 0);
        assert_eq!(engine.stats().compact_steps, steps_seen);
        // Verdicts match a fresh engine over the current specification.
        let fresh = CurrencyEngine::new(engine.spec(), &Options::default()).unwrap();
        assert_eq!(engine.cps().unwrap(), fresh.cps().unwrap());
        assert_eq!(engine.dcip(r).unwrap(), fresh.dcip(r).unwrap());
    }

    #[test]
    fn compact_apply_step_replays_logged_steps_verbatim() {
        let (mut spec, r) = multi_entity_spec();
        spec.add_constraint(monotone(r)).unwrap();
        let mut original = CurrencyEngine::new_owned(spec.clone(), &Options::default()).unwrap();
        let mut replica = CurrencyEngine::new_owned(spec, &Options::default()).unwrap();
        churn(&mut original, r, 0, 2);
        churn(&mut original, r, 2, 2);
        churn(&mut replica, r, 0, 2);
        churn(&mut replica, r, 2, 2);
        loop {
            let step = original.compact_step_slots(3).unwrap();
            let replayed = replica.compact_apply_step(&step).unwrap();
            assert_eq!(replayed, step, "re-execution reproduces the logged step");
            assert_eq!(
                currency_core::wire::encode_spec(replica.spec()),
                currency_core::wire::encode_spec(original.spec()),
                "replica tracks every intermediate state"
            );
            if step.done {
                break;
            }
        }
        // A stale step (bounds from a state the spec has moved past)
        // must fail cleanly, not corrupt the replica.
        churn(&mut original, r, 1, 2);
        let stale = original.compact_step_slots(1).unwrap();
        assert!(replica.compact_apply_step(&stale).is_err());
        assert!(replica.spec().validate().is_ok());
    }

    #[test]
    fn note_recovery_surfaces_in_stats() {
        let (spec, _) = multi_entity_spec();
        let mut engine = CurrencyEngine::new_owned(spec, &Options::default()).unwrap();
        assert_eq!(engine.stats().recoveries, 0);
        engine.note_recovery(17);
        engine.note_recovery(3);
        let stats = engine.stats();
        assert_eq!(stats.recoveries, 2);
        assert_eq!(stats.deltas_replayed, 20);
    }

    #[test]
    fn poisoned_component_lock_recovers() {
        let (mut spec, r) = multi_entity_spec();
        spec.add_constraint(monotone(r)).unwrap();
        let engine = CurrencyEngine::new(&spec, &Options::default()).unwrap();
        // Poison one component's mutex by panicking while holding it.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = engine.components[0].lock().unwrap();
            panic!("simulated query panic");
        }));
        assert!(result.is_err());
        assert!(engine.components[0].is_poisoned());
        // Every query path still works: the lock recovers, the cached
        // status is re-derived.
        assert!(engine.cps().unwrap());
        assert!(engine
            .cop(&CurrencyOrderQuery::single(r, A, TupleId(0), TupleId(1)))
            .unwrap());
        assert!(engine.witness_completion().unwrap().is_some());
        assert!(!engine.components[0].is_poisoned(), "poison cleared");
    }

    #[test]
    fn thread_knob_is_respected() {
        let (spec, _) = multi_entity_spec();
        for threads in [1usize, 2, 8] {
            let opts = Options {
                threads,
                ..Options::default()
            };
            let engine = CurrencyEngine::new(&spec, &opts).unwrap();
            assert!(engine.cps().unwrap());
        }
    }

    #[test]
    fn zero_budget_interrupts_every_query_path() {
        use crate::SolveLimits;
        let (mut spec, r) = multi_entity_spec();
        spec.add_constraint(monotone(r)).unwrap();
        let bounded = Options {
            solve_limits: SolveLimits {
                max_conflicts: Some(0),
                max_props: Some(0),
            },
            ..Options::default()
        };
        let engine = CurrencyEngine::new(&spec, &bounded).unwrap();
        // Every solve-backed path surfaces the typed interrupt — never a
        // verdict, never a panic.
        assert!(matches!(engine.cps(), Err(ReasonError::Interrupted { .. })));
        assert!(matches!(
            engine.cop(&CurrencyOrderQuery::single(r, A, TupleId(0), TupleId(1))),
            Err(ReasonError::Interrupted { .. })
        ));
        assert!(matches!(
            engine.dcip(r),
            Err(ReasonError::Interrupted { .. })
        ));
        let mut b = QueryBuilder::new();
        let x = b.var();
        let q = b.build(vec![x], Formula::Atom(Atom::new(r, vec![QTerm::Var(x)])));
        assert!(matches!(
            engine.certain_answers(&q),
            Err(ReasonError::Interrupted { .. })
        ));
        assert!(matches!(
            engine.current_instances(r),
            Err(ReasonError::Interrupted { .. })
        ));
        // The interrupted slots stayed undecided: the same spec under an
        // unbounded engine is satisfiable, so a cached "unsat" would be a
        // soundness bug.
        let unbounded = CurrencyEngine::new(&spec, &Options::default()).unwrap();
        assert!(unbounded.cps().unwrap());
        // Repeating the bounded query still interrupts (the cache did not
        // absorb a wrong verdict from the earlier interruption).
        assert!(matches!(engine.cps(), Err(ReasonError::Interrupted { .. })));
    }

    #[test]
    fn expired_deadline_interrupts_and_generous_deadline_completes() {
        use std::time::{Duration, Instant};
        let (mut spec, r) = multi_entity_spec();
        spec.add_constraint(monotone(r)).unwrap();
        let expired = Options {
            deadline: Some(Instant::now()),
            ..Options::default()
        };
        let engine = CurrencyEngine::new(&spec, &expired).unwrap();
        assert!(matches!(engine.cps(), Err(ReasonError::Interrupted { .. })));
        assert!(matches!(
            engine.dcip(r),
            Err(ReasonError::Interrupted { .. })
        ));
        let generous = Options {
            deadline: Some(Instant::now() + Duration::from_secs(3600)),
            ..Options::default()
        };
        let engine = CurrencyEngine::new(&spec, &generous).unwrap();
        assert!(engine.cps().unwrap());
        assert!(engine.dcip(r).unwrap());
        assert!(engine
            .cop(&CurrencyOrderQuery::single(r, A, TupleId(0), TupleId(1)))
            .unwrap());
    }

    #[test]
    fn escalating_budgets_reach_the_unbounded_verdict() {
        use crate::SolveLimits;
        let (mut spec, r) = multi_entity_spec();
        spec.add_constraint(monotone(r)).unwrap();
        let oracle = CurrencyEngine::new(&spec, &Options::default())
            .unwrap()
            .cps()
            .unwrap();
        let mut budget: u64 = 1;
        loop {
            let opts = Options {
                solve_limits: SolveLimits {
                    max_conflicts: Some(budget),
                    max_props: Some(budget * 64),
                },
                ..Options::default()
            };
            let engine = CurrencyEngine::new(&spec, &opts).unwrap();
            match engine.cps() {
                Ok(v) => {
                    assert_eq!(v, oracle, "first decided verdict must match");
                    break;
                }
                Err(ReasonError::Interrupted { spent }) => {
                    assert!(
                        spent.conflicts <= budget || spent.propagations > 0,
                        "spent accounting is sane: {spent:?}"
                    );
                    budget *= 2;
                    assert!(budget < 1 << 30, "budget escalation diverged");
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
    }
}
