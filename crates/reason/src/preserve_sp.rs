//! PTIME currency preservation for SP queries without denial constraints
//! (paper Theorem 6.4).
//!
//! The exact CPP check quantifies over the exponential extension space.
//! For SP queries over constraint-free specifications the paper shows a
//! polynomial algorithm; its engine is the observation that in this
//! regime the certain answers are a *deterministic function* of the
//! specification — `Q̂(poss(Sᵉ))`, one row per entity — and that whether an
//! extension can disturb an entity's row is detectable by polynomially
//! many *atomic spoiler* extensions:
//!
//! * a single import of a source tuple into the entity (a new candidate
//!   current value, possibly order-constrained through its mapping);
//! * a single mapping of one existing tuple (constrains nothing alone but
//!   participates in pairs with existing mappings);
//! * a *pair* of mappings whose targets share an entity and whose sources
//!   share an entity — the smallest mapping sets that import source
//!   order into the target (and export target order back).
//!
//! The decision then follows the proof's two conditions:
//!
//! * **(C2)** some atomic extension already changes the global answer set
//!   (a row appears or disappears outright) → not preserving;
//! * **(C1)** some base row `r₁` can be *removed* compositionally: every
//!   entity producing `r₁` has an atomic extension steering it away from
//!   `r₁` (the paper's per-entity flags; the composed extension removes
//!   the row even though each atomic piece leaves the answer set intact
//!   because another entity still produced `r₁`).
//!
//! Everything is polynomial: the atomic extension families have
//! polynomially many members and each is evaluated with the PTIME
//! fixpoint `PO∞` and `poss`.

use crate::error::ReasonError;
use crate::preserve::{apply_extension, extension_slots, ExtensionSlot};
use crate::sp_ptime::poss_instance;
use crate::Options;
use currency_core::{Eid, RelId, Specification, Value};
use currency_query::SpQuery;
use std::collections::{BTreeMap, BTreeSet};

/// The per-entity answer rows of an SP query: `None` entries are entities
/// whose row is suppressed (selection failed or a projected cell is
/// uncertain).  The certain answer set is the set of `Some` rows.
type EntityRows = BTreeMap<Eid, Option<Vec<Value>>>;

/// The per-entity answer rows of an SP query over `poss(S)`; `Ok(None)`
/// when the specification is inconsistent.
fn rows_by_entity(
    spec: &Specification,
    query: &SpQuery,
) -> Result<Option<EntityRows>, ReasonError> {
    let Some(poss) = poss_instance(spec, query.rel)? else {
        return Ok(None);
    };
    let mut out = BTreeMap::new();
    for t in poss.iter() {
        let row = if query.matches(t) {
            let projected = query.project(t);
            if projected.iter().any(Value::is_fresh) {
                None
            } else {
                Some(projected)
            }
        } else {
            None
        };
        out.insert(t.eid, row);
    }
    Ok(Some(out))
}

fn answer_set(rows: &EntityRows) -> BTreeSet<Vec<Value>> {
    rows.values().filter_map(|r| r.clone()).collect()
}

/// The `(copy, target entity)` class of a unit action: the copy function
/// it extends and the target entity whose tuple set or mappings it grows.
fn slot_class(spec: &Specification, slot: &ExtensionSlot) -> (usize, Eid) {
    match slot {
        ExtensionSlot::MapExisting { copy, target, .. } => {
            let sig = spec.copies()[*copy].signature();
            (*copy, spec.instance(sig.target).tuple(*target).eid)
        }
        ExtensionSlot::Import { copy, entity, .. } => (*copy, *entity),
    }
}

/// The atomic spoiler extensions: single slots, all well-formed action
/// pairs, and greedy saturations (per target-entity class and global).
///
/// Every member is a genuine extension and is *evaluated* (never assumed)
/// by the caller, so enlarging this family can only make [`cpp_sp`] more
/// complete, never unsound.  The families are chosen to reach the known
/// spoiler shapes:
///
/// * **singles** — an import adding an unordered candidate value, or a
///   mapping pairing with existing mappings;
/// * **pairs** — the smallest action sets that import source order on
///   their own (including pairs sharing one source tuple, which pin
///   values through a pre-existing third mapping, and pairs spanning
///   target entities coupled through a shared source entity);
/// * **saturations** — greedy maximal well-formed action sets, per
///   `(copy, target entity)` class and globally, one per starting slot:
///   chains of three or more mappings can pin a current value no pair
///   pins, and the greedy closure from each start reaches them.
fn atomic_extensions(spec: &Specification, sources: &BTreeSet<RelId>) -> Vec<Vec<ExtensionSlot>> {
    let slots = extension_slots(spec, sources);
    let classes: Vec<(usize, Eid)> = slots.iter().map(|s| slot_class(spec, s)).collect();
    let mut out: Vec<Vec<ExtensionSlot>> = slots.iter().map(|s| vec![s.clone()]).collect();
    // Pairs.
    for i in 0..slots.len() {
        for j in (i + 1)..slots.len() {
            let pair = vec![slots[i].clone(), slots[j].clone()];
            if apply_extension(spec, &pair).is_some() {
                out.push(pair);
            }
        }
    }
    // All-to-one families: for each (copy, target entity, source tuple),
    // the set of every action assigning that source tuple within the
    // entity.  Mapping all of an entity's unmapped tuples to one source
    // tuple leaves them mutually unordered but places each below/above the
    // entity's *pre-existing* mappings, which can pin a current value no
    // pair or greedy chain pins.
    {
        let mut by_source: BTreeMap<(usize, Eid, currency_core::TupleId), Vec<usize>> =
            BTreeMap::new();
        for (i, slot) in slots.iter().enumerate() {
            let (copy, entity) = classes[i];
            let source = match slot {
                ExtensionSlot::MapExisting { source, .. } => *source,
                ExtensionSlot::Import { source, .. } => *source,
            };
            by_source.entry((copy, entity, source)).or_default().push(i);
        }
        for group in by_source.values() {
            if group.len() < 2 {
                continue;
            }
            let actions: Vec<ExtensionSlot> = group.iter().map(|&i| slots[i].clone()).collect();
            if apply_extension(spec, &actions).is_some() {
                out.push(actions);
            }
        }
    }
    // Greedy saturations from each starting slot: class-local (only slots
    // of the start's (copy, target entity) class) and global (all slots).
    for start in 0..slots.len() {
        for class_local in [true, false] {
            let mut actions: Vec<ExtensionSlot> = vec![slots[start].clone()];
            for (j, slot) in slots.iter().enumerate() {
                if j == start || (class_local && classes[j] != classes[start]) {
                    continue;
                }
                let mut candidate = actions.clone();
                candidate.push(slot.clone());
                if apply_extension(spec, &candidate).is_some() {
                    actions = candidate;
                }
            }
            if actions.len() > 2 {
                out.push(actions);
            }
        }
    }
    out
}

/// Decide CPP for an SP query over a constraint-free specification in
/// polynomial time (paper Theorem 6.4).
pub fn cpp_sp(
    spec: &Specification,
    sources: &BTreeSet<RelId>,
    query: &SpQuery,
) -> Result<bool, ReasonError> {
    debug_assert!(
        spec.has_no_constraints(),
        "cpp_sp requires a constraint-free specification"
    );
    let Some(base_rows) = rows_by_entity(spec, query)? else {
        return Ok(false); // Mod(S) = ∅: not preserving by definition
    };
    let base_answers = answer_set(&base_rows);
    // Evaluate every atomic extension once.  For each entity and base row,
    // remember the first atomic extension that steers the entity away from
    // the row (for the compositional C1 check).
    let mut steer_away: BTreeMap<(Eid, Vec<Value>), Vec<ExtensionSlot>> = BTreeMap::new();
    for actions in atomic_extensions(spec, sources) {
        let Some(ext) = apply_extension(spec, &actions) else {
            continue;
        };
        let Some(rows) = rows_by_entity(&ext, query)? else {
            continue; // inconsistent extension: not quantified over
        };
        // (C2): the answer set itself moved.
        if answer_set(&rows) != base_answers {
            return Ok(false);
        }
        for (eid, base_row) in &base_rows {
            if let Some(r1) = base_row {
                if rows.get(eid).cloned().flatten().as_ref() != Some(r1) {
                    steer_away
                        .entry((*eid, r1.clone()))
                        .or_insert_with(|| actions.clone());
                }
            }
        }
    }
    // (C1): some base row removable at every entity that produces it.  The
    // composed extension is *verified*, not assumed: steering actions at
    // one entity can import order that re-pins another entity's row, so
    // the per-entity flags alone would over-report.
    for r1 in &base_answers {
        let producers: Vec<Eid> = base_rows
            .iter()
            .filter(|(_, row)| row.as_ref() == Some(r1))
            .map(|(e, _)| *e)
            .collect();
        if producers.is_empty() {
            continue;
        }
        let mut combo: Vec<ExtensionSlot> = Vec::new();
        let mut complete = true;
        for e in &producers {
            match steer_away.get(&(*e, r1.clone())) {
                Some(actions) => combo.extend(actions.iter().cloned()),
                None => {
                    complete = false;
                    break;
                }
            }
        }
        if !complete {
            continue;
        }
        combo.sort();
        combo.dedup();
        let Some(ext) = apply_extension(spec, &combo) else {
            continue;
        };
        let Some(rows) = rows_by_entity(&ext, query)? else {
            continue;
        };
        if answer_set(&rows) != base_answers {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Decide BCP for an SP query over a constraint-free specification with a
/// fixed bound `k` in polynomial time (paper Theorem 6.4): enumerate the
/// polynomially many extensions of at most `k` unit actions and test each
/// with [`cpp_sp`].
pub fn bcp_sp(
    spec: &Specification,
    sources: &BTreeSet<RelId>,
    query: &SpQuery,
    k: usize,
    opts: &Options,
) -> Result<bool, ReasonError> {
    debug_assert!(
        spec.has_no_constraints(),
        "bcp_sp requires a constraint-free specification"
    );
    if poss_instance(spec, query.rel)?.is_none() {
        return Ok(false);
    }
    let slots = extension_slots(spec, sources);
    let mut budget = opts.max_extensions;
    let mut chosen: Vec<ExtensionSlot> = Vec::new();
    #[allow(clippy::too_many_arguments)] // local recursion carries its whole state
    fn recurse(
        spec: &Specification,
        sources: &BTreeSet<RelId>,
        query: &SpQuery,
        slots: &[ExtensionSlot],
        k: usize,
        ix: usize,
        chosen: &mut Vec<ExtensionSlot>,
        limit: usize,
        budget: &mut usize,
    ) -> Result<bool, ReasonError> {
        if !chosen.is_empty() {
            if *budget == 0 {
                return Err(ReasonError::BudgetExceeded {
                    what: "bounded SP extension enumeration",
                    budget: limit,
                    spent: limit.saturating_add(1),
                });
            }
            *budget -= 1;
            if let Some(ext) = apply_extension(spec, chosen) {
                if poss_instance(&ext, query.rel)?.is_some() && cpp_sp(&ext, sources, query)? {
                    return Ok(true);
                }
            }
        }
        if chosen.len() == k || ix == slots.len() {
            return Ok(false);
        }
        for j in ix..slots.len() {
            chosen.push(slots[j].clone());
            if recurse(spec, sources, query, slots, k, j + 1, chosen, limit, budget)? {
                return Ok(true);
            }
            chosen.pop();
        }
        Ok(false)
    }
    recurse(
        spec,
        sources,
        query,
        &slots,
        k,
        0,
        &mut chosen,
        opts.max_extensions,
        &mut budget,
    )
}

/// Certain answers used by tests: the SP answer set.
#[cfg(test)]
fn sp_answers(spec: &Specification, q: &SpQuery) -> crate::ccqa::CertainAnswers {
    crate::sp_ptime::certain_answers_sp(spec, q).unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use currency_core::{
        AttrId, Catalog, CopyFunction, CopySignature, RelationSchema, Tuple, TupleId,
    };

    const A: AttrId = AttrId(0);

    /// Target R(A): entity 1 = {10}; source S(A): entity 1 = {10 ≺ 20}.
    fn importing_spec() -> (Specification, RelId, RelId) {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A"]));
        let s = cat.add(RelationSchema::new("S", &["A"]));
        let mut spec = Specification::new(cat);
        spec.instance_mut(r)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(10)]))
            .unwrap();
        let s0 = spec
            .instance_mut(s)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(10)]))
            .unwrap();
        let s1 = spec
            .instance_mut(s)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(20)]))
            .unwrap();
        spec.instance_mut(s).add_order(A, s0, s1).unwrap();
        let sig = CopySignature::new(r, vec![A], s, vec![A]).unwrap();
        spec.add_copy(CopyFunction::new(sig)).unwrap();
        (spec, r, s)
    }

    fn identity(r: RelId) -> SpQuery {
        SpQuery::identity(r, 1)
    }

    #[test]
    fn import_spoiler_detected() {
        let (spec, r, s) = importing_spec();
        let sources: BTreeSet<RelId> = [s].into();
        assert!(!cpp_sp(&spec, &sources, &identity(r)).unwrap());
    }

    #[test]
    fn saturated_spec_is_preserving() {
        let (mut spec, r, s) = importing_spec();
        // Map the existing tuple and import the newer one by hand.
        let new_t = spec
            .instance_mut(r)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(20)]))
            .unwrap();
        {
            let cf = spec.copy_mut(0);
            cf.set_mapping(TupleId(0), TupleId(0));
            cf.set_mapping(new_t, TupleId(1));
        }
        spec.validate().unwrap();
        let sources: BTreeSet<RelId> = [s].into();
        assert!(cpp_sp(&spec, &sources, &identity(r)).unwrap());
        // Sanity: the certain answer is pinned to 20 by the imported order.
        assert_eq!(
            sp_answers(&spec, &identity(r)).rows().unwrap(),
            &[vec![Value::int(20)]]
        );
    }

    #[test]
    fn bcp_sp_finds_two_action_extension() {
        let (spec, r, s) = importing_spec();
        let sources: BTreeSet<RelId> = [s].into();
        assert!(!bcp_sp(&spec, &sources, &identity(r), 0, &Options::default()).unwrap());
        assert!(bcp_sp(&spec, &sources, &identity(r), 2, &Options::default()).unwrap());
    }

    #[test]
    fn no_sources_means_trivially_preserving() {
        let (spec, r, _) = importing_spec();
        let sources: BTreeSet<RelId> = BTreeSet::new();
        // Without declared sources there are no extensions at all.
        assert!(cpp_sp(&spec, &sources, &identity(r)).unwrap());
    }
}
