//! Entity-sharded scale-out: N independent engines behind one front door.
//!
//! The partition module proves the load-bearing fact this module builds
//! on: **ground rules are entity-local** — a denial constraint grounded
//! for entity `e` mentions only `e`'s tuples — so the only edges relating
//! different entities are copy obligations.  Cut the entity set along
//! copy-closure boundaries and a specification falls apart into fully
//! independent sub-specifications: same components, same verdicts, no
//! shared state.  That is exactly what a shard is here.
//!
//! ## Routing policy
//!
//! * **Assignment** ([`ShardPlan::from_spec`]): union-find over entity
//!   ids with copy mappings as edges, representative = the *minimum* id
//!   of each closure (insertion-order independent), shard =
//!   `splitmix64(representative) mod N`.  Copy-linked entities are
//!   therefore co-located by construction.  Entities sharing an id
//!   across relations are co-located too (routing is by [`Eid`], not by
//!   `(relation, entity)` cell) — coarser than strictly necessary, never
//!   wrong.
//! * **Placement beats hashing**: once an entity has tuples in a shard,
//!   it routes there ([`ShardPlan::shard_of`]); only entities the plan
//!   has never seen route by hash.  After recovery the plan is re-derived
//!   from shard contents ([`ShardPlan::from_shards`]), so live and
//!   recovered routing agree for every entity that still has live tuples.
//! * **Delta routing** ([`localize`], policy `reject`): a delta whose
//!   entity anchors ([`SpecDelta::routing`]) span more than one shard is
//!   **rejected** with [`ShardError::CrossShard`] — split the batch and
//!   resubmit.  Structure-only deltas (constraints, new copy functions)
//!   are broadcast to every shard: constraints ground entity-locally, and
//!   a new copy function's mappings are filtered per shard.  A copy
//!   mapping whose endpoints live in different shards is rejected with
//!   [`ShardError::CrossShardCopy`] — co-location is decided at
//!   assignment time and new cross-shard links are not re-homed.
//!
//! ## Global tuple ids
//!
//! Shard-local tuple ids are interleaved into one global id space:
//! `global = local · N + shard` ([`global_id`] / [`locate`]).  Global ids
//! are thus a *pure function of shard-local state* — after a crash,
//! recovery reproduces them exactly without persisting any translation
//! table.  Compaction renumbers shard-local ids exactly like the
//! unsharded engine renumbers its ids; [`ShardedCompactReport::new_id`]
//! translates, and only the compacted shard's ids move.
//!
//! ## Scatter-gather queries
//!
//! CPS is the all-shards conjunction with early exit on the first unsat
//! shard ([`scatter_cps`]).  COP routes each pair to the shard owning
//! both tuples (pairs spanning shards relate different entities, which
//! are never certainly ordered).  Certain answers / CCQA are the union
//! across shards: with independent shards, a row is certain in the whole
//! specification iff it is certain in some shard — exact for every query
//! whose individual answers are witnessed inside one shard (in
//! particular all single-atom queries, the entity-local class the
//! differential suite sweeps); queries joining *across* copy-closures
//! would additionally need cross-shard products and are out of scope.
//! The paper's vacuous-truth conventions are preserved globally: one
//! unsat shard makes the whole specification inconsistent, so COP/DCIP
//! answer `true` and certain answers report
//! [`CertainAnswers::Inconsistent`].

use crate::ccqa::CertainAnswers;
use crate::cop::CurrencyOrderQuery;
use crate::engine::{ApplyReport, CurrencyEngine, EngineStats};
use crate::error::ReasonError;
use crate::obs::EngineObs;
use crate::{CompactBudget, Options};
use currency_core::{
    AttrId, CompactReport, CompactStepReport, CurrencyError, DeltaOp, DeltaRouting, Eid, RelId,
    SpecDelta, Specification, TupleId, Value,
};
use currency_obs::MetricsSnapshot;
use currency_query::Query;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// SplitMix64 finalizer: the entity → shard hash.  Fixed for all time —
/// it is part of the on-disk placement contract of sharded stores.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The global id of shard `shard`'s local tuple `local` under `shards`
/// shards (interleaved: `local · N + shard`).
pub fn global_id(shards: usize, shard: usize, local: TupleId) -> TupleId {
    TupleId(local.0 * shards as u32 + shard as u32)
}

/// Inverse of [`global_id`]: which shard owns `global`, and under which
/// local id.
pub fn locate(shards: usize, global: TupleId) -> (usize, TupleId) {
    (
        (global.0 as usize) % shards,
        TupleId(global.0 / shards as u32),
    )
}

/// A failure of the sharded layer (routing or a shard engine).
#[derive(Debug)]
pub enum ShardError {
    /// A delta's entity anchors span more than one shard.  Policy:
    /// rejected, never re-homed — split the batch and resubmit.
    CrossShard {
        /// The shards the anchors resolve to (at least two).
        shards: BTreeSet<usize>,
    },
    /// A new copy mapping links entities placed in different shards.
    /// Co-location is decided at assignment time; later links must stay
    /// inside one shard.
    CrossShardCopy {
        /// Target tuple (global id) and its shard.
        target: (TupleId, usize),
        /// Source tuple (global id) and its shard.
        source: (TupleId, usize),
    },
    /// A delta mixes broadcast-class structure operations (constraints,
    /// new copy functions) with entity-anchored operations.  Split it.
    MixedDelta,
    /// A previous broadcast apply failed part-way: the shards may
    /// disagree on structure, so every further mutation is refused.
    Poisoned,
    /// The delta is inadmissible (unknown tuple/copy, arity, cycles, …).
    Invalid(CurrencyError),
    /// A shard engine failed.
    Shard {
        /// The failing shard.
        shard: usize,
        /// The underlying engine error.
        source: ReasonError,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::CrossShard { shards } => {
                write!(f, "delta spans shards {shards:?}; split the batch")
            }
            ShardError::CrossShardCopy { target, source } => write!(
                f,
                "copy mapping {:?} (shard {}) → {:?} (shard {}) links entities in \
                 different shards",
                source.0, source.1, target.0, target.1
            ),
            ShardError::MixedDelta => write!(
                f,
                "delta mixes structure (constraint / new copy) and entity \
                 operations; split it into a broadcast part and a routed part"
            ),
            ShardError::Poisoned => write!(
                f,
                "a broadcast apply failed part-way; the sharded engine refuses \
                 further mutation"
            ),
            ShardError::Invalid(e) => write!(f, "inadmissible delta: {e}"),
            ShardError::Shard { shard, source } => write!(f, "shard {shard}: {source}"),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Invalid(e) => Some(e),
            ShardError::Shard { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<CurrencyError> for ShardError {
    fn from(e: CurrencyError) -> ShardError {
        ShardError::Invalid(e)
    }
}

/// Deterministic entity → shard assignment.
///
/// Placed entities (those with tuples in some shard) route to their
/// shard; unseen entities route by `splitmix64(closure representative)`.
/// See the module docs for the full policy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    shards: usize,
    placed: HashMap<Eid, usize>,
}

impl ShardPlan {
    /// Assign every entity of `spec`, co-locating copy closures: union
    /// entities over copy mappings, hash each closure's **minimum**
    /// entity id.  The result depends only on the specification's
    /// content, not on any insertion order (the minimum of a closure is
    /// order-free).
    pub fn from_spec(shards: usize, spec: &Specification) -> ShardPlan {
        let shards = shards.max(1);
        // Union-find keyed by entity id, representative = minimum.
        let mut parent: BTreeMap<Eid, Eid> = BTreeMap::new();
        fn find(parent: &BTreeMap<Eid, Eid>, mut e: Eid) -> Eid {
            while let Some(&p) = parent.get(&e) {
                if p == e {
                    break;
                }
                e = p;
            }
            e
        }
        for cf in spec.copies() {
            let sig = cf.signature();
            let target = spec.instance(sig.target);
            let source = spec.instance(sig.source);
            for (t, s) in cf.mappings() {
                let (a, b) = (target.tuple(t).eid, source.tuple(s).eid);
                let (ra, rb) = (find(&parent, a), find(&parent, b));
                if ra != rb {
                    let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
                    parent.insert(hi, lo);
                }
            }
        }
        let mut plan = ShardPlan {
            shards,
            placed: HashMap::new(),
        };
        for inst in spec.instances() {
            for eid in inst.entities() {
                let shard = plan.hash_shard(find(&parent, eid));
                plan.placed.insert(eid, shard);
            }
        }
        plan
    }

    /// Re-derive the plan from existing shard contents (the recovery
    /// path): every entity with tuples in shard `k` routes to `k`.
    /// Entities whose tuples were all retracted fall back to hash
    /// routing — harmless, since nothing ties an empty entity anywhere.
    pub fn from_shards<'a>(
        shards: usize,
        specs: impl IntoIterator<Item = &'a Specification>,
    ) -> ShardPlan {
        let mut plan = ShardPlan {
            shards: shards.max(1),
            placed: HashMap::new(),
        };
        for (k, spec) in specs.into_iter().enumerate() {
            for inst in spec.instances() {
                for eid in inst.entities() {
                    if !inst.entity_group(eid).is_empty() {
                        plan.placed.insert(eid, k);
                    }
                }
            }
        }
        plan
    }

    fn hash_shard(&self, eid: Eid) -> usize {
        (splitmix64(eid.0) % self.shards as u64) as usize
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard `eid` routes to: its placement if it has one, the hash
    /// of the entity id otherwise (a never-seen entity is its own
    /// closure).
    pub fn shard_of(&self, eid: Eid) -> usize {
        self.placed
            .get(&eid)
            .copied()
            .unwrap_or_else(|| self.hash_shard(eid))
    }

    /// Record that `eid` now has tuples in `shard` (first placement
    /// wins; an entity never migrates).
    pub fn place(&mut self, eid: Eid, shard: usize) {
        self.placed.entry(eid).or_insert(shard);
    }
}

/// The original → sharded-global tuple id translation produced by
/// [`split_spec`] (`None`: the original slot was a tombstone and was not
/// carried over).  Indexed `[relation][original id]`.
#[derive(Clone, Debug, Default)]
pub struct SpecImport {
    /// Per-relation translation tables.
    pub remap: Vec<Vec<Option<TupleId>>>,
}

impl SpecImport {
    /// The sharded-global id of the original spec's tuple `old`.
    pub fn new_id(&self, rel: RelId, old: TupleId) -> Option<TupleId> {
        self.remap.get(rel.index())?.get(old.index()).copied()?
    }
}

/// Decompose `spec` into `plan.shards()` independent sub-specifications:
/// each shard receives its entities' live tuples (ids reassigned
/// shard-locally, reported through the returned [`SpecImport`]), their
/// order edges, the mappings of its entities on every copy function, and
/// a copy of every denial constraint (grounding is entity-local, so each
/// shard grounds exactly its own rules).  Copy functions are added to
/// every shard — possibly with an empty mapping set — so copy *indices*
/// agree across shards and with the original specification.
pub fn split_spec(spec: &Specification, plan: &ShardPlan) -> (Vec<Specification>, SpecImport) {
    let n = plan.shards();
    let mut shards: Vec<Specification> = (0..n)
        .map(|_| Specification::new(spec.catalog().clone()))
        .collect();
    let mut import = SpecImport::default();
    for inst in spec.instances() {
        let rel = inst.rel();
        let mut table: Vec<Option<TupleId>> = vec![None; inst.len()];
        for (id, tuple) in inst.tuples() {
            let s = plan.shard_of(tuple.eid);
            let local = shards[s]
                .instance_mut(rel)
                .push_tuple(tuple.clone())
                .expect("schema is shared; arity holds");
            table[id.index()] = Some(global_id(n, s, local));
        }
        for a in 0..inst.arity() {
            let attr = AttrId(a as u32);
            for (lesser, greater) in inst.order(attr).iter() {
                let (ls, ll) = locate(n, table[lesser.index()].expect("ordered tuples are live"));
                let (gs, gl) = locate(n, table[greater.index()].expect("ordered tuples are live"));
                debug_assert_eq!(ls, gs, "order edges are entity-local");
                shards[ls]
                    .instance_mut(rel)
                    .add_order(attr, ll, gl)
                    .expect("edge was admissible in the original");
            }
        }
        import.remap.push(table);
    }
    for dc in spec.constraints() {
        for shard in &mut shards {
            shard
                .add_constraint(dc.clone())
                .expect("constraint was admissible in the original");
        }
    }
    for cf in spec.copies() {
        let sig = cf.signature();
        let mut per_shard: Vec<currency_core::CopyFunction> = (0..n)
            .map(|_| currency_core::CopyFunction::new(sig.clone()))
            .collect();
        for (t, s) in cf.mappings() {
            let (ts, tl) = locate(
                n,
                import
                    .new_id(sig.target, t)
                    .expect("mapped tuples are live"),
            );
            let (ss, sl) = locate(
                n,
                import
                    .new_id(sig.source, s)
                    .expect("mapped tuples are live"),
            );
            debug_assert_eq!(ts, ss, "copy closures are co-located by the plan");
            per_shard[ts].set_mapping(tl, sl);
        }
        for (shard, cf_local) in shards.iter_mut().zip(per_shard) {
            shard
                .add_copy(cf_local)
                .expect("copying condition held in the original");
        }
    }
    (shards, import)
}

/// A delta rewritten into shard-local id spaces (see [`localize`]).
#[derive(Clone, Debug)]
pub enum RoutedDelta {
    /// The delta carried no operations.
    Empty,
    /// All operations anchor in one shard.
    Single {
        /// The owning shard.
        shard: usize,
        /// The delta in that shard's local id space.
        delta: SpecDelta,
    },
    /// Structure-only delta, one localized copy per shard.
    Broadcast {
        /// One delta per shard, in shard order.
        deltas: Vec<SpecDelta>,
    },
}

/// A localized delta plus the entity placements to commit into the
/// [`ShardPlan`] *after* the apply succeeds.
#[derive(Clone, Debug)]
pub struct Localized {
    /// The rewritten delta.
    pub routed: RoutedDelta,
    /// `(entity, shard)` placements created by the delta's inserts.
    pub placements: Vec<(Eid, usize)>,
}

/// Route `delta` (global ids) against `plan` and rewrite it into
/// shard-local ids.  `specs` are the current per-shard specifications
/// (for resolving ids and predicting insert positions).  Enforces the
/// module's routing policy: single-shard entity deltas, broadcast
/// structure deltas, everything else rejected.
pub fn localize(
    delta: &SpecDelta,
    plan: &ShardPlan,
    specs: &[&Specification],
) -> Result<Localized, ShardError> {
    let n = plan.shards();
    debug_assert_eq!(n, specs.len());
    if delta.is_empty() {
        return Ok(Localized {
            routed: RoutedDelta::Empty,
            placements: Vec::new(),
        });
    }
    // Predict the global ids of this delta's own inserts so later ops of
    // the same delta can reference them: the k-th insert into (shard s,
    // rel r) lands at local id len(s, r) + k.
    let mut pending: HashMap<(RelId, TupleId), Eid> = HashMap::new();
    let mut extra: HashMap<(usize, RelId), u32> = HashMap::new();
    let mut placements: Vec<(Eid, usize)> = Vec::new();
    for op in delta.ops() {
        if let DeltaOp::InsertTuple { rel, tuple } = op {
            let s = plan.shard_of(tuple.eid);
            let slot = extra.entry((s, *rel)).or_insert(0);
            let local = TupleId(specs[s].instance(*rel).len() as u32 + *slot);
            *slot += 1;
            pending.insert((*rel, global_id(n, s, local)), tuple.eid);
            placements.push((tuple.eid, s));
        }
    }
    let copy_rels: Vec<(RelId, RelId)> = specs[0]
        .copies()
        .iter()
        .map(|cf| (cf.signature().target, cf.signature().source))
        .collect();
    let resolve = |rel: RelId, g: TupleId| -> Option<Eid> {
        let (s, l) = locate(n, g);
        let inst = specs[s].instance(rel);
        if l.index() < inst.len() {
            Some(inst.tuple(l).eid)
        } else {
            pending.get(&(rel, g)).copied()
        }
    };
    let routing = delta.routing(&copy_rels, resolve)?;
    let routed = match routing {
        DeltaRouting::Empty => RoutedDelta::Empty,
        DeltaRouting::Mixed(_) => return Err(ShardError::MixedDelta),
        DeltaRouting::Entities(eids) => {
            let shards: BTreeSet<usize> = eids.iter().map(|&e| plan.shard_of(e)).collect();
            if shards.len() != 1 {
                return Err(ShardError::CrossShard { shards });
            }
            let shard = *shards.iter().next().expect("non-empty anchor set");
            let mut local = SpecDelta::new();
            for op in delta.ops() {
                match op {
                    DeltaOp::InsertTuple { rel, tuple } => {
                        local.insert_tuple(*rel, tuple.clone());
                    }
                    DeltaOp::RemoveTuple { rel, tuple } => {
                        local.remove_tuple(*rel, locate(n, *tuple).1);
                    }
                    DeltaOp::AddOrderEdge {
                        rel,
                        attr,
                        lesser,
                        greater,
                    } => {
                        local.add_order_edge(
                            *rel,
                            *attr,
                            locate(n, *lesser).1,
                            locate(n, *greater).1,
                        );
                    }
                    DeltaOp::ExtendCopy {
                        copy,
                        target,
                        source,
                    } => {
                        let (ts, tl) = locate(n, *target);
                        let (ss, sl) = locate(n, *source);
                        if ts != ss {
                            return Err(ShardError::CrossShardCopy {
                                target: (*target, ts),
                                source: (*source, ss),
                            });
                        }
                        local.extend_copy(*copy, tl, sl);
                    }
                    DeltaOp::AddConstraint(_) | DeltaOp::AddCopy(_) => {
                        unreachable!("Entities class has no structure ops")
                    }
                }
            }
            RoutedDelta::Single {
                shard,
                delta: local,
            }
        }
        DeltaRouting::Broadcast => {
            let mut deltas: Vec<SpecDelta> = (0..n).map(|_| SpecDelta::new()).collect();
            for op in delta.ops() {
                match op {
                    DeltaOp::AddConstraint(dc) => {
                        for d in &mut deltas {
                            d.add_constraint(dc.clone());
                        }
                    }
                    DeltaOp::AddCopy(cf) => {
                        let sig = cf.signature();
                        let mut per_shard: Vec<currency_core::CopyFunction> = (0..n)
                            .map(|_| currency_core::CopyFunction::new(sig.clone()))
                            .collect();
                        for (t, s) in cf.mappings() {
                            let (ts, tl) = locate(n, t);
                            let (ss, sl) = locate(n, s);
                            if ts != ss {
                                return Err(ShardError::CrossShardCopy {
                                    target: (t, ts),
                                    source: (s, ss),
                                });
                            }
                            per_shard[ts].set_mapping(tl, sl);
                        }
                        for (d, cf_local) in deltas.iter_mut().zip(per_shard) {
                            d.add_copy(cf_local);
                        }
                    }
                    _ => unreachable!("Broadcast class has only structure ops"),
                }
            }
            RoutedDelta::Broadcast { deltas }
        }
    };
    Ok(Localized { routed, placements })
}

/// What a sharded apply did (the scatter-gather counterpart of
/// [`ApplyReport`]).
#[derive(Clone, Debug, Default)]
pub struct ShardedApplyReport {
    /// The shard an entity-routed delta landed in (`None` for broadcast
    /// or empty deltas).
    pub shard: Option<usize>,
    /// `true` when the delta was structure-only and reached every shard.
    pub broadcast: bool,
    /// Components recompiled, summed across touched shards.
    pub components_rebuilt: usize,
    /// Components reused untouched, summed across touched shards.
    pub components_reused: usize,
    /// `(relation, entity)` cells touched, summed across touched shards.
    pub cells_touched: usize,
    /// **Global** ids assigned to inserted tuples, in operation order.
    pub inserted: Vec<(RelId, TupleId)>,
    /// Auto-compactions triggered by the delta, per shard, with the
    /// shard-local remap (translate via [`global_id`] over the shard's
    /// entries).
    pub compacted: Vec<(usize, CompactReport)>,
    /// Bounded auto-compaction steps ([`Options::auto_compact_budget`])
    /// triggered by the delta, per shard, in **shard-local** ids
    /// (translate via [`global_id`] over the shard's entries).
    pub compact_steps: Vec<(usize, CompactStepReport)>,
}

impl ShardedApplyReport {
    /// Fold one shard's [`ApplyReport`] into this aggregate, translating
    /// its inserted ids to global (`n` = shard count).
    pub fn absorb(&mut self, shard: usize, n: usize, report: ApplyReport) {
        self.components_rebuilt += report.components_rebuilt;
        self.components_reused += report.components_reused;
        self.cells_touched += report.cells_touched;
        self.inserted.extend(
            report
                .inserted
                .iter()
                .map(|&(rel, local)| (rel, global_id(n, shard, local))),
        );
        if let Some(c) = report.compacted {
            self.compacted.push((shard, c));
        }
        if let Some(s) = report.compact_step {
            self.compact_steps.push((shard, s));
        }
    }
}

/// The result of compacting every shard (see [`ShardedEngine::compact`]):
/// one shard-local [`CompactReport`] per shard.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardedCompactReport {
    /// Shard count (for id translation).
    pub shards: usize,
    /// Per-shard reports, in shard order.
    pub per_shard: Vec<CompactReport>,
}

impl ShardedCompactReport {
    /// Total tombstone slots reclaimed across all shards.
    pub fn reclaimed(&self) -> usize {
        self.per_shard.iter().map(|r| r.reclaimed).sum()
    }

    /// Translate an old **global** id (`None` if the tuple was removed
    /// and its slot reclaimed).
    pub fn new_id(&self, rel: RelId, old: TupleId) -> Option<TupleId> {
        let (s, l) = locate(self.shards, old);
        self.per_shard[s]
            .new_id(rel, l)
            .map(|nl| global_id(self.shards, s, nl))
    }
}

/// The result of one bounded compaction step across every shard (see
/// [`ShardedEngine::compact_step`]): one shard-local
/// [`CompactStepReport`] per shard.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardedCompactStepReport {
    /// Shard count (for id translation).
    pub shards: usize,
    /// Per-shard step reports, in shard order.
    pub per_shard: Vec<CompactStepReport>,
}

impl ShardedCompactStepReport {
    /// Total tombstone slots reclaimed across all shards this step.
    pub fn reclaimed(&self) -> usize {
        self.per_shard.iter().map(|r| r.reclaimed).sum()
    }

    /// `true` when every shard is fully drained (no tombstones left
    /// anywhere).
    pub fn done(&self) -> bool {
        self.per_shard.iter().all(|r| r.done)
    }

    /// Translate an old **global** id through this step's slices
    /// (`None` if some slice reclaimed the tuple's slot; ids the step
    /// never scanned come back unchanged).
    pub fn new_id(&self, rel: RelId, old: TupleId) -> Option<TupleId> {
        let (s, l) = locate(self.shards, old);
        self.per_shard[s]
            .new_id(rel, l)
            .map(|nl| global_id(self.shards, s, nl))
    }
}

/// Per-shard plus aggregate engine statistics, assembled lock-free from
/// each shard's atomic counters (one [`CurrencyEngine::stats`] call per
/// shard, no cross-shard lock).
#[derive(Clone, Debug, Default)]
pub struct ShardedStats {
    /// Each shard's stats, in shard order.
    pub per_shard: Vec<EngineStats>,
    /// Field-wise sum across shards.
    pub total: EngineStats,
}

/// Assemble a [`ShardedStats`] view over `engines`.
pub fn sharded_stats(engines: &[&CurrencyEngine<'_>]) -> ShardedStats {
    let per_shard: Vec<EngineStats> = engines.iter().map(|e| e.stats()).collect();
    let mut total = EngineStats::default();
    for s in &per_shard {
        total.components += s.components;
        total.cells += s.cells;
        total.vars += s.vars;
        total.clauses += s.clauses;
        total.updates_applied += s.updates_applied;
        total.components_rebuilt += s.components_rebuilt;
        total.components_reused += s.components_reused;
        total.compactions += s.compactions;
        total.compact_steps += s.compact_steps;
        total.slots_reclaimed += s.slots_reclaimed;
        total.recoveries += s.recoveries;
        total.deltas_replayed += s.deltas_replayed;
        total.sat += s.sat;
    }
    ShardedStats { per_shard, total }
}

/// **CPS across shards**: the all-shards conjunction, early-exiting on
/// the first unsat shard (shards are independent, so one empty shard
/// model set empties the product).
pub fn scatter_cps(engines: &[&CurrencyEngine<'_>]) -> Result<bool, ReasonError> {
    for e in engines {
        if !e.cps()? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// **COP across shards**: vacuously true when some shard is unsat;
/// otherwise each pair routes to the shard owning both tuples, and pairs
/// spanning shards relate different entities — never certain.
pub fn scatter_cop(
    engines: &[&CurrencyEngine<'_>],
    ot: &CurrencyOrderQuery,
) -> Result<bool, ReasonError> {
    let n = engines.len();
    if !scatter_cps(engines)? {
        return Ok(true); // Mod(S) = ∅: vacuously certain
    }
    let mut per: Vec<Vec<(AttrId, TupleId, TupleId)>> = vec![Vec::new(); n];
    for &(attr, lesser, greater) in &ot.pairs {
        let (ls, ll) = locate(n, lesser);
        let (gs, gl) = locate(n, greater);
        if ls != gs {
            return Ok(false); // different shards ⇒ different entities
        }
        per[ls].push((attr, ll, gl));
    }
    for (s, pairs) in per.into_iter().enumerate() {
        if pairs.is_empty() {
            continue;
        }
        let local = CurrencyOrderQuery { rel: ot.rel, pairs };
        if !engines[s].cop(&local)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// **Certain answers across shards**: the union of per-shard certain
/// answers ([`CertainAnswers::Inconsistent`] when any shard is unsat).
/// Exact for queries whose individual answers are witnessed inside one
/// shard — see the module docs.
pub fn scatter_certain_answers(
    engines: &[&CurrencyEngine<'_>],
    query: &Query,
) -> Result<CertainAnswers, ReasonError> {
    if !scatter_cps(engines)? {
        return Ok(CertainAnswers::Inconsistent);
    }
    let mut rows: BTreeSet<Vec<Value>> = BTreeSet::new();
    for e in engines {
        match e.certain_answers(query)? {
            // A shard can only report inconsistency if it changed under
            // our feet; stay conservative.
            CertainAnswers::Inconsistent => return Ok(CertainAnswers::Inconsistent),
            CertainAnswers::Answers(r) => rows.extend(r),
        }
    }
    Ok(CertainAnswers::Answers(rows.into_iter().collect()))
}

/// **CCQA across shards**: membership in [`scatter_certain_answers`].
pub fn scatter_ccqa(
    engines: &[&CurrencyEngine<'_>],
    query: &Query,
    tuple: &[Value],
) -> Result<bool, ReasonError> {
    Ok(scatter_certain_answers(engines, query)?.contains(tuple))
}

/// **DCIP across shards**: vacuously true when some shard is unsat;
/// otherwise all shards must individually be deterministic (the global
/// current instance is the disjoint union of per-shard ones).
pub fn scatter_dcip(engines: &[&CurrencyEngine<'_>], rel: RelId) -> Result<bool, ReasonError> {
    if !scatter_cps(engines)? {
        return Ok(true);
    }
    for e in engines {
        if !e.dcip(rel)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// N independent [`CurrencyEngine`]s behind one front door: deterministic
/// entity routing, per-shard incremental applies, per-shard (never
/// global) compaction pauses, scatter-gather queries.  See the module
/// docs for the routing policy and global id scheme.
pub struct ShardedEngine {
    plan: ShardPlan,
    engines: Vec<CurrencyEngine<'static>>,
    import: SpecImport,
    poisoned: bool,
}

impl ShardedEngine {
    /// Decompose `spec` into `shards` sub-specifications (copy closures
    /// co-located) and compile one engine per shard.  Original tuple ids
    /// are reassigned; translate them through [`ShardedEngine::import`].
    pub fn new(spec: &Specification, shards: usize, opts: &Options) -> Result<Self, ShardError> {
        let plan = ShardPlan::from_spec(shards, spec);
        let (specs, import) = split_spec(spec, &plan);
        let engines = specs
            .into_iter()
            .enumerate()
            .map(|(shard, sp)| {
                CurrencyEngine::new_owned(sp, opts)
                    .map_err(|source| ShardError::Shard { shard, source })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedEngine {
            plan,
            engines,
            import,
            poisoned: false,
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.engines.len()
    }

    /// The routing plan.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The original → global tuple id translation of the construction.
    /// Valid until the first compaction touches the relevant shard.
    pub fn import(&self) -> &SpecImport {
        &self.import
    }

    /// Shard `k`'s engine (shard-local ids!).
    pub fn engine(&self, shard: usize) -> &CurrencyEngine<'static> {
        &self.engines[shard]
    }

    /// Mutable access to shard `k`'s observability bundle — for
    /// attaching a trace recorder or switching metrics per shard.
    pub fn obs_mut(&mut self, shard: usize) -> &mut EngineObs {
        self.engines[shard].obs_mut()
    }

    /// A merged metrics snapshot across all shards: every shard's
    /// registry decorated with its `shard` label, then folded into one
    /// family set (histograms merge bucket-wise).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot::merged(self.engines.iter().enumerate().map(|(k, e)| {
            e.obs()
                .registry()
                .snapshot()
                .with_label("shard", &k.to_string())
        }))
    }

    /// The merged per-shard metrics in the Prometheus text exposition
    /// format.
    pub fn metrics_text(&self) -> String {
        self.metrics_snapshot().render_prometheus()
    }

    fn engine_refs(&self) -> Vec<&CurrencyEngine<'static>> {
        self.engines.iter().collect()
    }

    /// The **global** id the next insert for `eid` into `rel` will be
    /// assigned (stable as long as no other delta lands in between).
    pub fn next_id(&self, rel: RelId, eid: Eid) -> TupleId {
        let s = self.plan.shard_of(eid);
        let local = TupleId(self.engines[s].spec().instance(rel).len() as u32);
        global_id(self.shards(), s, local)
    }

    /// Route and apply one delta (global ids).  Entity deltas land in
    /// exactly one shard; structure deltas broadcast (validated on every
    /// shard before any shard mutates — an apply-phase failure after
    /// that poisons the engine, since shards may disagree on structure).
    pub fn apply(&mut self, delta: &SpecDelta) -> Result<ShardedApplyReport, ShardError> {
        if self.poisoned {
            return Err(ShardError::Poisoned);
        }
        let n = self.shards();
        let specs: Vec<&Specification> = self.engines.iter().map(|e| e.spec()).collect();
        let localized = localize(delta, &self.plan, &specs)?;
        drop(specs);
        let mut report = ShardedApplyReport::default();
        match localized.routed {
            RoutedDelta::Empty => {}
            RoutedDelta::Single { shard, delta } => {
                let r = self.engines[shard]
                    .apply(&delta)
                    .map_err(|source| ShardError::Shard { shard, source })?;
                report.shard = Some(shard);
                report.absorb(shard, n, r);
            }
            RoutedDelta::Broadcast { deltas } => {
                for (shard, d) in deltas.iter().enumerate() {
                    d.validate(self.engines[shard].spec())
                        .map_err(ShardError::Invalid)?;
                }
                report.broadcast = true;
                for (shard, d) in deltas.iter().enumerate() {
                    match self.engines[shard].apply(d) {
                        Ok(r) => report.absorb(shard, n, r),
                        Err(source) => {
                            // Some shards have the structure, some do not:
                            // fail stop.
                            self.poisoned = shard > 0;
                            return Err(ShardError::Shard { shard, source });
                        }
                    }
                }
            }
        }
        for (eid, shard) in localized.placements {
            self.plan.place(eid, shard);
        }
        Ok(report)
    }

    /// Compact every shard, one at a time — each pause is shard-local,
    /// never global.  Shard-local ids are renumbered; translate global
    /// ids through the returned report.
    pub fn compact(&mut self) -> Result<ShardedCompactReport, ShardError> {
        let mut per_shard = Vec::with_capacity(self.shards());
        for shard in 0..self.engines.len() {
            per_shard.push(self.compact_shard(shard)?);
        }
        Ok(ShardedCompactReport {
            shards: self.shards(),
            per_shard,
        })
    }

    /// Compact one shard (the others keep serving untouched).  The
    /// returned report is in **shard-local** ids.
    pub fn compact_shard(&mut self, shard: usize) -> Result<CompactReport, ShardError> {
        self.engines[shard]
            .compact()
            .map_err(|source| ShardError::Shard { shard, source })
    }

    /// Run one bounded compaction step on **every** shard, one shard at
    /// a time — each shard's pause is independent and budget-bounded, so
    /// the longest stall any single entity's queries see is one shard's
    /// step, never a fleet-wide sweep.  Shards drain at their own pace;
    /// the aggregate is done when [`ShardedCompactStepReport::done`]
    /// reports every shard drained.
    pub fn compact_step(
        &mut self,
        budget: &CompactBudget,
    ) -> Result<ShardedCompactStepReport, ShardError> {
        let mut per_shard = Vec::with_capacity(self.shards());
        for shard in 0..self.engines.len() {
            per_shard.push(self.compact_step_shard(shard, budget)?);
        }
        Ok(ShardedCompactStepReport {
            shards: self.shards(),
            per_shard,
        })
    }

    /// Run one bounded compaction step on one shard (the others keep
    /// serving untouched).  The returned report is in **shard-local**
    /// ids.
    pub fn compact_step_shard(
        &mut self,
        shard: usize,
        budget: &CompactBudget,
    ) -> Result<CompactStepReport, ShardError> {
        self.engines[shard]
            .compact_step(budget)
            .map_err(|source| ShardError::Shard { shard, source })
    }

    /// **CPS** — scatter-gather conjunction with early exit.
    pub fn cps(&self) -> Result<bool, ReasonError> {
        scatter_cps(&self.engine_refs())
    }

    /// **COP** over global tuple ids.
    pub fn cop(&self, ot: &CurrencyOrderQuery) -> Result<bool, ReasonError> {
        scatter_cop(&self.engine_refs(), ot)
    }

    /// **DCIP** — all shards individually deterministic.
    pub fn dcip(&self, rel: RelId) -> Result<bool, ReasonError> {
        scatter_dcip(&self.engine_refs(), rel)
    }

    /// **Certain answers** — union across shards (module docs list the
    /// exactness class).
    pub fn certain_answers(&self, query: &Query) -> Result<CertainAnswers, ReasonError> {
        scatter_certain_answers(&self.engine_refs(), query)
    }

    /// **CCQA** — membership in the certain answers.
    pub fn ccqa(&self, query: &Query, tuple: &[Value]) -> Result<bool, ReasonError> {
        scatter_ccqa(&self.engine_refs(), query, tuple)
    }

    /// Per-shard + aggregate statistics, lock-free.
    pub fn stats(&self) -> ShardedStats {
        sharded_stats(&self.engine_refs())
    }
}
