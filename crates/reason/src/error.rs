//! Error type for the reasoning crate.

use currency_core::CurrencyError;
use std::fmt;

/// Errors raised by the decision procedures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReasonError {
    /// The input specification is malformed (propagated from the model).
    Currency(CurrencyError),
    /// An exact solver exceeded its [`crate::Options`] budget.
    BudgetExceeded {
        /// Which budget was exhausted.
        what: &'static str,
    },
    /// A query-shaped input was required but not met (e.g. an SP-only
    /// algorithm received a non-SP query).
    UnsupportedQuery {
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for ReasonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReasonError::Currency(e) => write!(f, "invalid specification: {e}"),
            ReasonError::BudgetExceeded { what } => {
                write!(f, "exact solver budget exceeded: {what}")
            }
            ReasonError::UnsupportedQuery { detail } => {
                write!(f, "unsupported query: {detail}")
            }
        }
    }
}

impl std::error::Error for ReasonError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReasonError::Currency(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CurrencyError> for ReasonError {
    fn from(e: CurrencyError) -> ReasonError {
        ReasonError::Currency(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ReasonError::from(CurrencyError::UnknownRelation {
            relation: "R".into(),
        });
        assert!(e.to_string().contains("R"));
        assert!(std::error::Error::source(&e).is_some());
        let b = ReasonError::BudgetExceeded { what: "models" };
        assert!(b.to_string().contains("models"));
        assert!(std::error::Error::source(&b).is_none());
    }
}
