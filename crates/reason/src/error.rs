//! Error type for the reasoning crate.

use currency_core::CurrencyError;
use std::fmt;

/// Errors raised by the decision procedures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReasonError {
    /// The input specification is malformed (propagated from the model).
    Currency(CurrencyError),
    /// An exact solver exceeded its [`crate::Options`] budget.
    BudgetExceeded {
        /// Which budget was exhausted.
        what: &'static str,
        /// The configured budget that was exceeded.
        budget: usize,
        /// The amount actually spent when the guard fired (≥ `budget`).
        spent: usize,
    },
    /// A cooperative work budget ([`crate::Options::solve_limits`] or
    /// [`crate::Options::deadline`]) interrupted the query before it was
    /// decided.  Never a verdict: the touched component stays undecided
    /// and a retry resumes the search warm.
    Interrupted {
        /// Solver work performed before the interrupt.
        spent: crate::Spent,
    },
    /// A query-shaped input was required but not met (e.g. an SP-only
    /// algorithm received a non-SP query).
    UnsupportedQuery {
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for ReasonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReasonError::Currency(e) => write!(f, "invalid specification: {e}"),
            ReasonError::BudgetExceeded {
                what,
                budget,
                spent,
            } => {
                write!(
                    f,
                    "exact solver budget exceeded: {what} (budget {budget}, spent {spent})"
                )
            }
            ReasonError::Interrupted { spent } => {
                write!(
                    f,
                    "query interrupted by work budget after {} conflicts and {} propagations",
                    spent.conflicts, spent.propagations
                )
            }
            ReasonError::UnsupportedQuery { detail } => {
                write!(f, "unsupported query: {detail}")
            }
        }
    }
}

impl std::error::Error for ReasonError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReasonError::Currency(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CurrencyError> for ReasonError {
    fn from(e: CurrencyError) -> ReasonError {
        ReasonError::Currency(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ReasonError::from(CurrencyError::UnknownRelation {
            relation: "R".into(),
        });
        assert!(e.to_string().contains("R"));
        assert!(std::error::Error::source(&e).is_some());
        let b = ReasonError::BudgetExceeded {
            what: "models",
            budget: 8,
            spent: 9,
        };
        assert!(b.to_string().contains("models"));
        assert!(b.to_string().contains("budget 8"));
        assert!(b.to_string().contains("spent 9"));
        assert!(std::error::Error::source(&b).is_none());
        let i = ReasonError::Interrupted {
            spent: crate::Spent {
                conflicts: 3,
                propagations: 41,
            },
        };
        assert!(i.to_string().contains("3 conflicts"));
        assert!(i.to_string().contains("41 propagations"));
    }
}
