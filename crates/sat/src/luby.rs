//! The Luby restart sequence.
//!
//! Restarting search according to the Luby et al. (1993) sequence
//! `1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, …` is within a constant
//! factor of the optimal universal restart strategy for Las Vegas
//! algorithms, and is the de-facto standard in CDCL solvers.

/// The `i`-th element of the Luby sequence, 0-based.
///
/// `luby(0) = 1, luby(1) = 1, luby(2) = 2, luby(3) = 1, …`
pub fn luby(mut i: u64) -> u64 {
    // Find the finite subsequence containing index i, then the index inside.
    // Subsequence k (k >= 1) has length 2^k - 1 and ends with value 2^(k-1).
    let mut k = 1u32;
    while (1u64 << k) - 1 <= i {
        k += 1;
    }
    // Now i lies in subsequence k: indices [2^(k-1) - 1, 2^k - 2].
    while k > 1 {
        let len = (1u64 << (k - 1)) - 1;
        if i == (1u64 << k) - 2 {
            return 1u64 << (k - 1);
        }
        i -= len;
        // Re-derive the subsequence for the shifted index.
        k = 1;
        while (1u64 << k) - 1 <= i {
            k += 1;
        }
    }
    1
}

#[cfg(test)]
mod tests {
    use super::luby;

    #[test]
    fn matches_reference_prefix() {
        let expect = [
            1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2,
            4, 8, 16,
        ];
        let got: Vec<u64> = (0..expect.len() as u64).map(luby).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn values_are_powers_of_two() {
        for i in 0..2000u64 {
            let v = luby(i);
            assert!(v.is_power_of_two(), "luby({i}) = {v}");
        }
    }

    #[test]
    fn sequence_is_self_similar() {
        // The sequence restarted after each "2^k" spike repeats its prefix.
        let s: Vec<u64> = (0..127).map(luby).collect();
        assert_eq!(&s[0..63], &s[63..126]);
        assert_eq!(s[126], 64);
    }
}
