//! The CDCL solver proper.
//!
//! Architecture follows MiniSat (Eén & Sörensson, 2003) with the standard
//! hot-path refinements of its descendants: two watched literals per
//! clause with *blocking literals* (a satisfied-clause probe that skips
//! the clause dereference entirely), *inlined binary-clause watchers*
//! (two-literal clauses propagate straight from the watch list, never
//! touching the clause database), first-UIP conflict analysis, VSIDS
//! decision heuristic, phase saving, Luby restarts, and Glucose-style
//! *LBD-based learnt-clause database reduction*: learnt clauses carry the
//! literal-block-distance of their derivation, low-LBD ("glue") clauses
//! and clauses locked as propagation reasons are kept forever, and the
//! rest is periodically halved by activity so long refinement runs (e.g.
//! the lazy transitivity loop in `currency-reason`) cannot drown the
//! solver in stale lemma-derived learnt clauses.

use crate::heap::ActivityHeap;
use crate::luby::luby;
use crate::types::{LBool, Lit, Var};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Outcome of a [`Solver::solve`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with
    /// [`Solver::model_value`].
    Sat,
    /// The clauses (under the given assumptions, if any) are unsatisfiable.
    Unsat,
}

/// Outcome of a budgeted [`Solver::solve_limited`] call: the two verdicts
/// of [`SolveResult`] plus the honest third answer a bounded search needs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveOutcome {
    /// A satisfying assignment was found; read it with
    /// [`Solver::model_value`].
    Sat,
    /// The clauses (under the given assumptions, if any) are unsatisfiable.
    Unsat,
    /// A [`Limits`] budget ran out (or the stop flag was raised) before
    /// the search decided the instance.  **Never a verdict**: the instance
    /// may be either satisfiable or unsatisfiable.  All state learnt so
    /// far — learnt clauses, variable activities, saved phases — is kept,
    /// so calling again with a fresh budget resumes the search warm
    /// instead of restarting it.
    Interrupted,
}

impl From<SolveResult> for SolveOutcome {
    fn from(r: SolveResult) -> SolveOutcome {
        match r {
            SolveResult::Sat => SolveOutcome::Sat,
            SolveResult::Unsat => SolveOutcome::Unsat,
        }
    }
}

/// Cooperative work budget for one [`Solver::solve_limited`] call.
///
/// All fields measure work *within the call* (spent counters start at
/// zero each call), so a caller granting installments of `n` conflicts
/// per call hands out exactly `n` more units of work each retry.  The
/// default is fully unbounded — identical to [`Solver::solve`].
#[derive(Clone, Debug, Default)]
pub struct Limits {
    /// Interrupt after this many conflicts within the call.
    pub max_conflicts: Option<u64>,
    /// Interrupt after this many unit propagations within the call.
    pub max_props: Option<u64>,
    /// Externally raised stop flag, polled once per search-loop
    /// iteration (`Relaxed`; raising it interrupts promptly but not
    /// instantaneously).
    pub stop: Option<Arc<AtomicBool>>,
}

impl Limits {
    /// `true` if no budget is set: the solve cannot be interrupted.
    pub fn is_unbounded(&self) -> bool {
        self.max_conflicts.is_none() && self.max_props.is_none() && self.stop.is_none()
    }
}

/// Outcome of [`Solver::for_each_model`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Enumeration {
    /// All projected models were visited; carries the count.
    Complete(usize),
    /// The callback requested an early stop; carries the count so far.
    Stopped(usize),
    /// The model limit was reached before exhausting the space.
    LimitReached(usize),
    /// The model source's budget ran out mid-enumeration (see
    /// [`SolveOutcome::Interrupted`]); carries the count found so far.
    /// The models already reported are real, but the space was not
    /// exhausted — treat the enumeration as undecided, never as complete.
    Interrupted(usize),
}

/// Counters exposed for benchmarking and ablation studies.
#[derive(Clone, Copy, Default, Debug)]
pub struct SolverStats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of decisions taken.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Learnt clauses surviving clause-database reductions (cumulative
    /// across reduction passes).
    pub learnt_kept: u64,
    /// Learnt clauses deleted by clause-database reductions.
    pub learnt_deleted: u64,
    /// Theory lemmas installed via [`Solver::add_lemma`] (e.g. lazy
    /// transitivity refinement rounds in `currency-reason`).
    pub lemmas_added: u64,
}

impl SolverStats {
    /// Counters accumulated since `earlier` — the per-solve delta an
    /// observability layer records as histogram observations.  Every
    /// field is monotone within one solver's lifetime; the subtraction
    /// saturates so comparing snapshots of unrelated solvers cannot
    /// wrap.
    pub fn delta(&self, earlier: &SolverStats) -> SolverStats {
        SolverStats {
            conflicts: self.conflicts.saturating_sub(earlier.conflicts),
            decisions: self.decisions.saturating_sub(earlier.decisions),
            propagations: self.propagations.saturating_sub(earlier.propagations),
            restarts: self.restarts.saturating_sub(earlier.restarts),
            learnt_kept: self.learnt_kept.saturating_sub(earlier.learnt_kept),
            learnt_deleted: self.learnt_deleted.saturating_sub(earlier.learnt_deleted),
            lemmas_added: self.lemmas_added.saturating_sub(earlier.lemmas_added),
        }
    }
}

impl std::ops::AddAssign for SolverStats {
    fn add_assign(&mut self, rhs: SolverStats) {
        self.conflicts += rhs.conflicts;
        self.decisions += rhs.decisions;
        self.propagations += rhs.propagations;
        self.restarts += rhs.restarts;
        self.learnt_kept += rhs.learnt_kept;
        self.learnt_deleted += rhs.learnt_deleted;
        self.lemmas_added += rhs.lemmas_added;
    }
}

impl std::iter::Sum for SolverStats {
    /// Aggregate per-solver counters, e.g. across the per-component
    /// solvers of an engine.
    fn sum<I: Iterator<Item = SolverStats>>(iter: I) -> SolverStats {
        let mut total = SolverStats::default();
        for s in iter {
            total += s;
        }
        total
    }
}

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    /// Learnt (eligible for database reduction) vs original.
    learnt: bool,
    /// Literal block distance at learning time (distinct decision levels).
    lbd: u32,
    /// Bump-and-decay activity, used to rank deletable learnt clauses.
    activity: f64,
}

/// Hand-rolled so that `Vec<Clause>::clone_from` (which is element-wise)
/// reuses each destination clause's literal buffer instead of
/// re-allocating it — the dominant allocation cost when refreshing a
/// scratch solver from a shared one.
impl Clone for Clause {
    fn clone(&self) -> Self {
        Clause {
            lits: self.lits.clone(),
            learnt: self.learnt,
            lbd: self.lbd,
            activity: self.activity,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.lits.clone_from(&source.lits);
        self.learnt = source.learnt;
        self.lbd = source.lbd;
        self.activity = source.activity;
    }
}

/// A watch-list entry: the watching clause plus a *blocking literal* — any
/// literal of the clause whose satisfaction proves the clause satisfied
/// without dereferencing it.  For binary clauses the blocker is the other
/// literal, making binary propagation a pure watch-list walk.
#[derive(Clone, Copy, Debug)]
struct Watcher {
    clause: u32,
    blocker: Lit,
}

const VAR_ACTIVITY_DECAY: f64 = 0.95;
const CLA_ACTIVITY_DECAY: f64 = 0.999;
const RESCALE_THRESHOLD: f64 = 1e100;
const CLA_RESCALE_THRESHOLD: f64 = 1e20;
const RESTART_BASE: u64 = 100;
/// Floor for the learnt-clause budget before the first reduction.
const MIN_LEARNT_LIMIT: usize = 2000;
/// Glue protection: learnt clauses with LBD at or below this survive every
/// reduction (binary learnts always qualify).
const GLUE_LBD: u32 = 2;

/// A CDCL SAT solver.
///
/// The solver is incremental in two ways: clauses may be added between
/// `solve` calls, and [`Solver::solve_with_assumptions`] checks
/// satisfiability under a set of temporarily-assumed literals without
/// permanently constraining the instance.  Cloning the solver clones the
/// entire state, which `currency-reason` uses to fork entailment queries
/// from a shared encoding.
#[derive(Debug, Default)]
pub struct Solver {
    clauses: Vec<Clause>,
    /// `watches[l.code()]` = watchers of clauses (length ≥ 3) currently
    /// watching literal `l`; consulted when `l` becomes false.
    watches: Vec<Vec<Watcher>>,
    /// `bin_watches[l.code()]` = watchers of binary clauses containing
    /// `l`; `blocker` is the other literal.  Binary clauses are never
    /// deleted, so these lists only change on clause addition and during
    /// database compaction (index remapping).
    bin_watches: Vec<Vec<Watcher>>,
    assign: Vec<LBool>,
    /// Decision level at which each variable was assigned.
    level: Vec<u32>,
    /// Clause that implied each variable (`u32::MAX` = decision/unset).
    reason: Vec<u32>,
    activity: Vec<f64>,
    phase: Vec<bool>,
    seen: Vec<bool>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    heap: ActivityHeap,
    var_inc: f64,
    cla_inc: f64,
    /// Level-indexed stamps for allocation-free LBD computation.
    lbd_stamp: Vec<u32>,
    lbd_counter: u32,
    /// Stored learnt clauses (kept in sync with the clause database).
    num_learnts: usize,
    /// Learnt budget; exceeded ⇒ reduce the clause database.
    max_learnts: usize,
    ok: bool,
    model: Vec<bool>,
    stats: SolverStats,
}

/// Cloning a solver copies its entire state — clause database, learnt
/// clauses, watches, activities — so a clone answers exactly like the
/// original while staying fully private (the basis for per-reader solver
/// scratch in concurrent serving).
///
/// The impl is hand-rolled for `clone_from`: refreshing an existing
/// scratch solver from a shared one reuses every buffer the scratch
/// already owns (clause literal vectors, watch lists, trail, heap), so a
/// reader that re-pins a new snapshot epoch pays memcpys instead of a
/// fresh allocation per clause and per watch list.
impl Clone for Solver {
    fn clone(&self) -> Self {
        Solver {
            clauses: self.clauses.clone(),
            watches: self.watches.clone(),
            bin_watches: self.bin_watches.clone(),
            assign: self.assign.clone(),
            level: self.level.clone(),
            reason: self.reason.clone(),
            activity: self.activity.clone(),
            phase: self.phase.clone(),
            seen: self.seen.clone(),
            trail: self.trail.clone(),
            trail_lim: self.trail_lim.clone(),
            qhead: self.qhead,
            heap: self.heap.clone(),
            var_inc: self.var_inc,
            cla_inc: self.cla_inc,
            lbd_stamp: self.lbd_stamp.clone(),
            lbd_counter: self.lbd_counter,
            num_learnts: self.num_learnts,
            max_learnts: self.max_learnts,
            ok: self.ok,
            model: self.model.clone(),
            stats: self.stats,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.clauses.clone_from(&source.clauses);
        self.watches.clone_from(&source.watches);
        self.bin_watches.clone_from(&source.bin_watches);
        self.assign.clone_from(&source.assign);
        self.level.clone_from(&source.level);
        self.reason.clone_from(&source.reason);
        self.activity.clone_from(&source.activity);
        self.phase.clone_from(&source.phase);
        self.seen.clone_from(&source.seen);
        self.trail.clone_from(&source.trail);
        self.trail_lim.clone_from(&source.trail_lim);
        self.qhead = source.qhead;
        self.heap.clone_from(&source.heap);
        self.var_inc = source.var_inc;
        self.cla_inc = source.cla_inc;
        self.lbd_stamp.clone_from(&source.lbd_stamp);
        self.lbd_counter = source.lbd_counter;
        self.num_learnts = source.num_learnts;
        self.max_learnts = source.max_learnts;
        self.ok = source.ok;
        self.model.clone_from(&source.model);
        self.stats = source.stats;
    }
}

const NO_REASON: u32 = u32::MAX;

/// Literal value under an assignment vector (free function so `propagate`
/// can borrow `assign` and `clauses` disjointly).
#[inline]
fn lit_value(assign: &[LBool], l: Lit) -> LBool {
    match assign[l.var().index()] {
        LBool::Undef => LBool::Undef,
        LBool::True => {
            if l.is_pos() {
                LBool::True
            } else {
                LBool::False
            }
        }
        LBool::False => {
            if l.is_pos() {
                LBool::False
            } else {
                LBool::True
            }
        }
    }
}

impl Solver {
    /// Create an empty solver with no variables and no clauses.
    pub fn new() -> Solver {
        Solver {
            var_inc: 1.0,
            cla_inc: 1.0,
            ok: true,
            ..Default::default()
        }
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses (original + learnt) currently stored.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Number of learnt clauses currently stored.
    pub fn num_learnts(&self) -> usize {
        self.num_learnts
    }

    /// Solver statistics accumulated across all `solve` calls.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Allocate a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.bin_watches.push(Vec::new());
        self.bin_watches.push(Vec::new());
        self.heap.push(v, 0.0);
        v
    }

    #[inline]
    fn value_lit(&self, l: Lit) -> LBool {
        lit_value(&self.assign, l)
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Add a clause.  Returns `false` if the solver became trivially
    /// unsatisfiable (an empty clause was derived at level zero).
    ///
    /// The clause is simplified: duplicate literals are merged, tautologies
    /// are dropped, and literals already false at level zero are removed.
    /// May be called between `solve` calls (used for blocking clauses during
    /// model enumeration); any partial assignment is undone first.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if !self.ok {
            return false;
        }
        self.cancel_until(0);
        let mut cl: Vec<Lit> = lits.to_vec();
        cl.sort_unstable();
        cl.dedup();
        // Tautology check: sorted order places l and ¬l adjacently.
        for w in cl.windows(2) {
            if w[0].var() == w[1].var() {
                return true; // contains l ∨ ¬l: always satisfied
            }
        }
        cl.retain(|&l| self.value_lit(l) != LBool::False);
        if cl.iter().any(|&l| self.value_lit(l) == LBool::True) {
            return true; // already satisfied at level 0
        }
        match cl.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                // Unit at level zero: assign and propagate to closure.
                if !self.enqueue(cl[0], NO_REASON) {
                    self.ok = false;
                    return false;
                }
                if self.propagate().is_some() {
                    self.ok = false;
                    return false;
                }
                true
            }
            _ => {
                self.attach_clause(Clause {
                    lits: cl,
                    learnt: false,
                    lbd: 0,
                    activity: 0.0,
                });
                true
            }
        }
    }

    /// Add a theory lemma: like [`Solver::add_clause`] but counted in
    /// [`SolverStats::lemmas_added`].  Used by lazy-encoding refinement
    /// loops (e.g. the transitivity closure walk in `currency-reason`).
    pub fn add_lemma(&mut self, lits: &[Lit]) -> bool {
        self.stats.lemmas_added += 1;
        self.add_clause(lits)
    }

    /// Store a simplified clause of length ≥ 2 and hook up its watchers.
    fn attach_clause(&mut self, cl: Clause) -> u32 {
        debug_assert!(cl.lits.len() >= 2);
        let idx = self.clauses.len() as u32;
        if cl.learnt {
            self.num_learnts += 1;
        }
        let (l0, l1) = (cl.lits[0], cl.lits[1]);
        if cl.lits.len() == 2 {
            self.bin_watches[l0.code()].push(Watcher {
                clause: idx,
                blocker: l1,
            });
            self.bin_watches[l1.code()].push(Watcher {
                clause: idx,
                blocker: l0,
            });
        } else {
            self.watches[l0.code()].push(Watcher {
                clause: idx,
                blocker: l1,
            });
            self.watches[l1.code()].push(Watcher {
                clause: idx,
                blocker: l0,
            });
        }
        self.clauses.push(cl);
        idx
    }

    /// Check satisfiability of the current clause set.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Check satisfiability under the given assumed literals.
    ///
    /// The assumptions hold only for this call; the clause database is not
    /// modified (beyond learnt clauses, which are logical consequences,
    /// and learnt-clause deletions, which only drop redundant ones).
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        match self.solve_limited_with_assumptions(assumptions, &Limits::default()) {
            SolveOutcome::Sat => SolveResult::Sat,
            SolveOutcome::Unsat => SolveResult::Unsat,
            SolveOutcome::Interrupted => unreachable!("unbounded solve cannot be interrupted"),
        }
    }

    /// Check satisfiability under a cooperative work budget.
    pub fn solve_limited(&mut self, limits: &Limits) -> SolveOutcome {
        self.solve_limited_with_assumptions(&[], limits)
    }

    /// Check satisfiability under the given assumed literals and a
    /// cooperative work budget.
    ///
    /// Once the budget is spent (or the stop flag is raised) the search
    /// exits with [`SolveOutcome::Interrupted`] — never a wrong Sat/Unsat
    /// verdict.  The budget counts work performed **within this call**,
    /// and everything learnt before the interrupt (learnt clauses,
    /// variable activities, saved phases) is kept, so calling again hands
    /// the search a fresh installment and it resumes warm.
    pub fn solve_limited_with_assumptions(
        &mut self,
        assumptions: &[Lit],
        limits: &Limits,
    ) -> SolveOutcome {
        if !self.ok {
            return SolveOutcome::Unsat;
        }
        self.cancel_until(0);
        if self.max_learnts == 0 {
            // First solve: size the learnt budget to the instance.  It
            // grows on every reduction thereafter.
            let originals = self.clauses.len() - self.num_learnts;
            self.max_learnts = (originals / 3).max(MIN_LEARNT_LIMIT);
        }
        let bounded = !limits.is_unbounded();
        let props_base = self.stats.propagations;
        let mut conflicts_spent: u64 = 0;
        let mut restart_idx: u64 = 0;
        let mut conflicts_here: u64 = 0;
        let mut budget = luby(restart_idx) * RESTART_BASE;
        loop {
            if bounded
                && (limits.max_conflicts.is_some_and(|m| conflicts_spent >= m)
                    || limits
                        .max_props
                        .is_some_and(|m| self.stats.propagations - props_base >= m)
                    || limits
                        .stop
                        .as_ref()
                        .is_some_and(|s| s.load(Ordering::Relaxed)))
            {
                self.cancel_until(0);
                return SolveOutcome::Interrupted;
            }
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_spent += 1;
                conflicts_here += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SolveOutcome::Unsat;
                }
                let (learnt, bt_level) = self.analyze(confl);
                self.cancel_until(bt_level);
                self.record_learnt(learnt);
                self.decay_var_activity();
                self.decay_clause_activity();
                if self.num_learnts > self.max_learnts {
                    self.reduce_db();
                }
                if conflicts_here >= budget {
                    // Luby restart.
                    self.stats.restarts += 1;
                    restart_idx += 1;
                    conflicts_here = 0;
                    budget = luby(restart_idx) * RESTART_BASE;
                    self.cancel_until(0);
                }
            } else if (self.decision_level() as usize) < assumptions.len() {
                // Re-establish the next assumption as a pseudo-decision.
                let p = assumptions[self.decision_level() as usize];
                match self.value_lit(p) {
                    LBool::True => {
                        // Already implied: open a vacuous level so that the
                        // remaining assumptions keep their positions.
                        self.trail_lim.push(self.trail.len());
                    }
                    LBool::False => {
                        // The assumptions contradict the clauses.
                        self.cancel_until(0);
                        return SolveOutcome::Unsat;
                    }
                    LBool::Undef => {
                        self.trail_lim.push(self.trail.len());
                        let enq = self.enqueue(p, NO_REASON);
                        debug_assert!(enq);
                    }
                }
            } else if let Some(v) = self.pick_branch_var() {
                self.stats.decisions += 1;
                self.trail_lim.push(self.trail.len());
                let lit = v.lit(self.phase[v.index()]);
                let enq = self.enqueue(lit, NO_REASON);
                debug_assert!(enq);
            } else {
                // Every variable assigned without conflict: model found.
                self.model = self.assign.iter().map(|&a| a == LBool::True).collect();
                self.cancel_until(0);
                return SolveOutcome::Sat;
            }
        }
    }

    /// Value of `v` in the most recently found model.
    ///
    /// Only meaningful after a `solve` call returned [`SolveResult::Sat`].
    pub fn model_value(&self, v: Var) -> bool {
        self.model[v.index()]
    }

    /// Enumerate models projected onto `projection`, invoking `f` with the
    /// projected assignment for each distinct projection found.
    ///
    /// Distinctness is with respect to the projection: after each model a
    /// blocking clause over the projection variables is added, so the same
    /// projected assignment is never reported twice.  `f` returning `false`
    /// stops the enumeration.  At most `limit` models are visited.
    ///
    /// Blocking clauses permanently constrain this solver; callers that need
    /// to reuse the instance should enumerate on a clone.
    pub fn for_each_model(
        &mut self,
        projection: &[Var],
        limit: usize,
        f: impl FnMut(&[bool]) -> bool,
    ) -> Enumeration {
        enumerate_projected(self, projection, limit, f)
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Assign `p` true with the given reason clause; `false` if `p` is
    /// already false (caller must treat as conflict).
    fn enqueue(&mut self, p: Lit, reason: u32) -> bool {
        match self.value_lit(p) {
            LBool::True => true,
            LBool::False => false,
            LBool::Undef => {
                let v = p.var().index();
                self.assign[v] = LBool::from_bool(p.is_pos());
                self.level[v] = self.decision_level();
                self.reason[v] = reason;
                self.phase[v] = p.is_pos();
                self.trail.push(p);
                true
            }
        }
    }

    /// Unit propagation; returns a conflicting clause index if one arises.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            // Binary clauses first: propagate straight off the watch list,
            // no clause dereference.  The list is static during search, so
            // plain index iteration is safe across `enqueue` calls.
            for i in 0..self.bin_watches[false_lit.code()].len() {
                let w = self.bin_watches[false_lit.code()][i];
                match lit_value(&self.assign, w.blocker) {
                    LBool::True => {}
                    LBool::False => {
                        self.qhead = self.trail.len();
                        return Some(w.clause);
                    }
                    LBool::Undef => {
                        let ok = self.enqueue(w.blocker, w.clause);
                        debug_assert!(ok);
                    }
                }
            }
            // Long clauses: take the watch list; entries are pushed back as
            // they survive.
            let mut ws = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            'watchers: while i < ws.len() {
                // Blocking literal: if it is already true the clause is
                // satisfied and never dereferenced.
                if lit_value(&self.assign, ws[i].blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                let ci = ws[i].clause;
                let assign = &self.assign;
                let cl = &mut self.clauses[ci as usize];
                // Normalize: the false literal sits at position 1.
                if cl.lits[0] == false_lit {
                    cl.lits.swap(0, 1);
                }
                debug_assert_eq!(cl.lits[1], false_lit);
                let first = cl.lits[0];
                if first != ws[i].blocker && lit_value(assign, first) == LBool::True {
                    // Clause satisfied; remember the satisfying literal as
                    // the new blocker and keep watching.
                    ws[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a replacement watch.
                for j in 2..cl.lits.len() {
                    if lit_value(assign, cl.lits[j]) != LBool::False {
                        cl.lits.swap(1, j);
                        let new_watch = cl.lits[1];
                        self.watches[new_watch.code()].push(Watcher {
                            clause: ci,
                            blocker: first,
                        });
                        ws.swap_remove(i);
                        continue 'watchers;
                    }
                }
                // Clause is unit or conflicting under the current assignment.
                if lit_value(&self.assign, first) == LBool::False {
                    // Conflict: restore remaining watches and report.
                    self.watches[false_lit.code()] = ws;
                    self.qhead = self.trail.len();
                    return Some(ci);
                }
                let ok = self.enqueue(first, ci);
                debug_assert!(ok);
                ws[i].blocker = first;
                i += 1;
            }
            self.watches[false_lit.code()] = ws;
        }
        None
    }

    /// First-UIP conflict analysis.  Returns the learnt clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, confl: u32) -> (Vec<Lit>, u32) {
        let current = self.decision_level();
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot 0 = asserting literal
        let mut counter = 0u32;
        let mut p: Option<Lit> = None;
        let mut clause_idx = confl;
        let mut trail_pos = self.trail.len();
        let mut bt_level = 0u32;
        loop {
            self.bump_clause_activity(clause_idx);
            let n_lits = self.clauses[clause_idx as usize].lits.len();
            let skip_first = p.is_some();
            // Indexed access instead of cloning the literal vector: the
            // borrow must end before each seen/activity update, and this
            // loop runs once per resolution step of every conflict.
            for k in 0..n_lits {
                if skip_first && k == 0 {
                    continue; // the literal being resolved on (== p)
                }
                let q = self.clauses[clause_idx as usize].lits[k];
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var_activity(q.var());
                    if self.level[v] == current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                        bt_level = bt_level.max(self.level[v]);
                    }
                }
            }
            // Walk the trail backwards to the next marked literal.
            loop {
                trail_pos -= 1;
                if self.seen[self.trail[trail_pos].var().index()] {
                    break;
                }
            }
            let q = self.trail[trail_pos];
            self.seen[q.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !q;
                break;
            }
            p = Some(q);
            clause_idx = self.reason[q.var().index()];
            debug_assert_ne!(clause_idx, NO_REASON);
            // Keep the reason clause normalized: position 0 holds q.
            let rc = &mut self.clauses[clause_idx as usize];
            if rc.lits[0] != q {
                let pos = rc.lits.iter().position(|&l| l == q).expect("reason lit");
                rc.lits.swap(0, pos);
            }
        }
        // Clear remaining marks.
        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }
        (learnt, bt_level)
    }

    /// Literal block distance: distinct decision levels among the clause's
    /// literals.  Low LBD ("glue") clauses connect few levels and are the
    /// learnt clauses worth keeping forever.
    ///
    /// Counted with a level-indexed stamp array (no allocation or sort —
    /// this runs once per conflict).
    fn compute_lbd(&mut self, lits: &[Lit]) -> u32 {
        if self.lbd_stamp.len() <= self.assign.len() {
            // One slot per possible decision level (≤ one per variable).
            self.lbd_stamp.resize(self.assign.len() + 1, 0);
        }
        self.lbd_counter = self.lbd_counter.wrapping_add(1);
        if self.lbd_counter == 0 {
            self.lbd_stamp.fill(0);
            self.lbd_counter = 1;
        }
        let mut lbd = 0u32;
        for &l in lits {
            let lev = self.level[l.var().index()] as usize;
            if self.lbd_stamp[lev] != self.lbd_counter {
                self.lbd_stamp[lev] = self.lbd_counter;
                lbd += 1;
            }
        }
        lbd
    }

    /// Install a learnt clause and enqueue its asserting literal.
    fn record_learnt(&mut self, mut learnt: Vec<Lit>) {
        if learnt.len() == 1 {
            let ok = self.enqueue(learnt[0], NO_REASON);
            debug_assert!(ok);
            return;
        }
        // Watch the asserting literal and a literal of the backjump level
        // (the maximum level among the rest), preserving the invariant that
        // watched literals are the last to become false.
        let mut max_pos = 1;
        for j in 2..learnt.len() {
            if self.level[learnt[j].var().index()] > self.level[learnt[max_pos].var().index()] {
                max_pos = j;
            }
        }
        learnt.swap(1, max_pos);
        let assert_lit = learnt[0];
        let lbd = self.compute_lbd(&learnt);
        let idx = self.attach_clause(Clause {
            lits: learnt,
            learnt: true,
            lbd,
            activity: self.cla_inc,
        });
        let ok = self.enqueue(assert_lit, idx);
        debug_assert!(ok);
    }

    /// `true` if the clause is the reason of a currently-assigned variable
    /// (its asserting literal is true and points back at it).  Locked
    /// clauses must never be deleted: conflict analysis resolves on them.
    fn locked(&self, ci: u32) -> bool {
        let l0 = self.clauses[ci as usize].lits[0];
        self.value_lit(l0) == LBool::True && self.reason[l0.var().index()] == ci
    }

    /// Glucose-style learnt-clause database reduction.
    ///
    /// Deletable clauses are the learnt ones that are neither glue
    /// (LBD ≤ [`GLUE_LBD`], which includes every binary learnt) nor locked
    /// as a propagation reason.  The half with the highest LBD (activity
    /// breaking ties) is deleted and the database is compacted in place:
    /// reason indices are remapped and both watch structures rebuilt.
    fn reduce_db(&mut self) {
        let mut cands: Vec<u32> = (0..self.clauses.len() as u32)
            .filter(|&ci| {
                let cl = &self.clauses[ci as usize];
                cl.learnt && cl.lits.len() > 2 && cl.lbd > GLUE_LBD && !self.locked(ci)
            })
            .collect();
        // Worst first: high LBD, then low activity.
        cands.sort_unstable_by(|&a, &b| {
            let (ca, cb) = (&self.clauses[a as usize], &self.clauses[b as usize]);
            cb.lbd
                .cmp(&ca.lbd)
                .then(ca.activity.partial_cmp(&cb.activity).expect("finite"))
        });
        let n_delete = cands.len() / 2;
        if n_delete == 0 {
            // Nothing deletable (everything is glue or locked): raise the
            // budget so the search is not re-entered every conflict.
            self.max_learnts += self.max_learnts / 2;
            return;
        }
        let mut delete = vec![false; self.clauses.len()];
        for &ci in &cands[..n_delete] {
            delete[ci as usize] = true;
        }
        // Compact the database, building the old → new index map.
        let mut remap = vec![NO_REASON; self.clauses.len()];
        let mut kept: Vec<Clause> = Vec::with_capacity(self.clauses.len() - n_delete);
        for (old, cl) in std::mem::take(&mut self.clauses).into_iter().enumerate() {
            if !delete[old] {
                remap[old] = kept.len() as u32;
                kept.push(cl);
            }
        }
        self.clauses = kept;
        for r in &mut self.reason {
            if *r != NO_REASON {
                *r = remap[*r as usize];
                debug_assert_ne!(*r, NO_REASON, "deleted a locked clause");
            }
        }
        // Rebuild both watch structures from the surviving clauses; the
        // watched literals are positionally invariant (slots 0 and 1), so
        // the rebuilt lists watch exactly what the old ones did.
        for w in &mut self.watches {
            w.clear();
        }
        for w in &mut self.bin_watches {
            w.clear();
        }
        for ci in 0..self.clauses.len() {
            let (l0, l1) = (self.clauses[ci].lits[0], self.clauses[ci].lits[1]);
            let target = if self.clauses[ci].lits.len() == 2 {
                &mut self.bin_watches
            } else {
                &mut self.watches
            };
            target[l0.code()].push(Watcher {
                clause: ci as u32,
                blocker: l1,
            });
            target[l1.code()].push(Watcher {
                clause: ci as u32,
                blocker: l0,
            });
        }
        self.num_learnts -= n_delete;
        self.stats.learnt_deleted += n_delete as u64;
        self.stats.learnt_kept += self.num_learnts as u64;
        // Let the database grow before the next reduction.
        self.max_learnts += self.max_learnts / 4;
    }

    /// Undo assignments above the given decision level.
    fn cancel_until(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        while self.decision_level() > target {
            let lim = self.trail_lim.pop().expect("trail limit");
            while self.trail.len() > lim {
                let p = self.trail.pop().expect("trail literal");
                let v = p.var();
                self.assign[v.index()] = LBool::Undef;
                self.reason[v.index()] = NO_REASON;
                // Re-insert into the decision heap.
                self.heap.push(v, self.activity[v.index()]);
            }
        }
        // Everything still on the trail was fully propagated when its level
        // was current, so propagation may resume at the end of the trail.
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        let assign = &self.assign;
        let activity = &self.activity;
        self.heap
            .pop_fresh(|v, act| assign[v.index()] == LBool::Undef && act == activity[v.index()])
    }

    fn bump_var_activity(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > RESCALE_THRESHOLD {
            for a in &mut self.activity {
                *a *= 1.0 / RESCALE_THRESHOLD;
            }
            self.var_inc *= 1.0 / RESCALE_THRESHOLD;
            self.heap.rescale(1.0 / RESCALE_THRESHOLD);
        }
        if self.assign[v.index()] == LBool::Undef {
            self.heap.push(v, self.activity[v.index()]);
        }
    }

    fn decay_var_activity(&mut self) {
        self.var_inc /= VAR_ACTIVITY_DECAY;
    }

    fn bump_clause_activity(&mut self, ci: u32) {
        let cl = &mut self.clauses[ci as usize];
        if !cl.learnt {
            return;
        }
        cl.activity += self.cla_inc;
        if cl.activity > CLA_RESCALE_THRESHOLD {
            for c in &mut self.clauses {
                if c.learnt {
                    c.activity *= 1.0 / CLA_RESCALE_THRESHOLD;
                }
            }
            self.cla_inc *= 1.0 / CLA_RESCALE_THRESHOLD;
        }
    }

    fn decay_clause_activity(&mut self) {
        self.cla_inc /= CLA_ACTIVITY_DECAY;
    }

    // ------------------------------------------------------------------
    // Test support
    // ------------------------------------------------------------------

    /// Override the learnt-clause budget (test hook for forcing database
    /// reductions on small instances).
    #[cfg(test)]
    pub(crate) fn set_max_learnts(&mut self, limit: usize) {
        self.max_learnts = limit.max(1);
    }

    /// Snapshot of the stored learnt clauses as `(sorted literals, lbd)`
    /// pairs, for reduction-invariant tests.
    #[cfg(test)]
    pub(crate) fn learnt_snapshot(&self) -> Vec<(Vec<Lit>, u32)> {
        self.clauses
            .iter()
            .filter(|c| c.learnt)
            .map(|c| {
                let mut lits = c.lits.clone();
                lits.sort_unstable();
                (lits, c.lbd)
            })
            .collect()
    }

    /// Force a clause-database reduction regardless of the budget.
    #[cfg(test)]
    pub(crate) fn force_reduce(&mut self) {
        self.reduce_db();
    }

    /// Verify the watch-list invariants; returns a description of the
    /// first violation found.
    ///
    /// * every clause of length ≥ 3 is watched exactly twice, under its
    ///   first two literals, with a blocker drawn from the clause;
    /// * every binary clause appears in `bin_watches` under both literals
    ///   with the other literal as blocker;
    /// * no watcher points outside the clause database and no clause is
    ///   filed in the wrong structure;
    /// * every assigned variable's reason clause holds the implied literal
    ///   in slot 0.
    #[doc(hidden)]
    pub fn debug_check_invariants(&self) -> Result<(), String> {
        let mut long_watches: Vec<Vec<Lit>> = vec![Vec::new(); self.clauses.len()];
        for (code, ws) in self.watches.iter().enumerate() {
            for w in ws {
                let ci = w.clause as usize;
                if ci >= self.clauses.len() {
                    return Err(format!("watcher for dead clause {ci}"));
                }
                let cl = &self.clauses[ci];
                if cl.lits.len() == 2 {
                    return Err(format!("binary clause {ci} in long watches"));
                }
                if !cl.lits.contains(&w.blocker) {
                    return Err(format!("clause {ci} blocker {:?} not in clause", w.blocker));
                }
                long_watches[ci].push(Lit::from_code(code));
            }
        }
        for (ci, cl) in self.clauses.iter().enumerate() {
            if cl.lits.len() == 2 {
                for (a, b) in [(cl.lits[0], cl.lits[1]), (cl.lits[1], cl.lits[0])] {
                    let hits = self.bin_watches[a.code()]
                        .iter()
                        .filter(|w| w.clause as usize == ci && w.blocker == b)
                        .count();
                    if hits != 1 {
                        return Err(format!("binary clause {ci} watched {hits}× under {a:?}"));
                    }
                }
            } else {
                let mut watched = long_watches[ci].clone();
                watched.sort_unstable();
                let mut expect = vec![cl.lits[0], cl.lits[1]];
                expect.sort_unstable();
                if watched != expect {
                    return Err(format!(
                        "clause {ci} watched under {watched:?}, expected {expect:?}"
                    ));
                }
            }
        }
        for (code, ws) in self.bin_watches.iter().enumerate() {
            for w in ws {
                let ci = w.clause as usize;
                if ci >= self.clauses.len() {
                    return Err(format!("bin watcher for dead clause {ci}"));
                }
                let cl = &self.clauses[ci];
                if cl.lits.len() != 2 {
                    return Err(format!("long clause {ci} in binary watches"));
                }
                let l = Lit::from_code(code);
                if !(cl.lits.contains(&l) && cl.lits.contains(&w.blocker) && l != w.blocker) {
                    return Err(format!("binary watcher mismatch on clause {ci}"));
                }
            }
        }
        for (vix, &r) in self.reason.iter().enumerate() {
            if r == NO_REASON || self.assign[vix] == LBool::Undef {
                continue;
            }
            let cl = &self.clauses[r as usize];
            // Binary reasons propagate off the watch list without position
            // normalization, so the implied literal may sit in either slot;
            // long reasons keep it in slot 0 (relied on by `locked`).
            let asserts = if cl.lits.len() == 2 {
                cl.lits.iter().any(|l| l.var().index() == vix)
            } else {
                cl.lits[0].var().index() == vix
            };
            if !asserts {
                return Err(format!(
                    "reason clause {r} of v{vix} does not assert it first"
                ));
            }
        }
        Ok(())
    }
}

/// A source of models for projected All-SAT enumeration: anything that
/// can be (re-)solved, report model values, and accept a blocking clause.
///
/// Implemented by [`Solver`] directly and by richer wrappers whose
/// `solve` does more than one SAT call (e.g. `currency-reason`'s lazy
/// transitivity refinement loop), so the blocking-clause enumeration
/// protocol lives in exactly one place: [`enumerate_projected`].
pub trait ModelSource {
    /// Decide satisfiability of the current state, or report that a work
    /// budget interrupted the attempt (bounded sources only; unbounded
    /// sources never return [`SolveOutcome::Interrupted`]).
    fn solve(&mut self) -> SolveOutcome;
    /// Value of `v` in the most recent model (after a `Sat` result).
    fn model_value(&self, v: Var) -> bool;
    /// Permanently add a blocking clause; `false` if the instance became
    /// trivially unsatisfiable.
    fn block(&mut self, clause: &[Lit]) -> bool;
}

impl ModelSource for Solver {
    fn solve(&mut self) -> SolveOutcome {
        Solver::solve(self).into()
    }

    fn model_value(&self, v: Var) -> bool {
        Solver::model_value(self, v)
    }

    fn block(&mut self, clause: &[Lit]) -> bool {
        self.add_clause(clause)
    }
}

/// The projected All-SAT loop shared by every [`ModelSource`] (see
/// [`Solver::for_each_model`] for the semantics).
pub fn enumerate_projected<S: ModelSource>(
    source: &mut S,
    projection: &[Var],
    limit: usize,
    mut f: impl FnMut(&[bool]) -> bool,
) -> Enumeration {
    let mut count = 0usize;
    let mut values = vec![false; projection.len()];
    while count < limit {
        match source.solve() {
            SolveOutcome::Sat => {}
            SolveOutcome::Unsat => return Enumeration::Complete(count),
            SolveOutcome::Interrupted => return Enumeration::Interrupted(count),
        }
        for (slot, &v) in values.iter_mut().zip(projection) {
            *slot = source.model_value(v);
        }
        count += 1;
        if !f(&values) {
            return Enumeration::Stopped(count);
        }
        // Block this projected assignment.
        let blocking: Vec<Lit> = projection
            .iter()
            .zip(&values)
            .map(|(&v, &val)| v.lit(!val))
            .collect();
        if !source.block(&blocking) {
            return Enumeration::Complete(count);
        }
    }
    Enumeration::LimitReached(count)
}
