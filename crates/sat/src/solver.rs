//! The CDCL solver proper.
//!
//! Architecture follows MiniSat (Eén & Sörensson, 2003): two watched
//! literals per clause, first-UIP conflict analysis, VSIDS decision
//! heuristic, phase saving, Luby restarts.  Learnt clauses are kept for the
//! lifetime of the solver — clause-database reduction is unnecessary at the
//! instance sizes produced by `currency-reason` and its omission keeps the
//! solver easy to audit.

use crate::heap::ActivityHeap;
use crate::luby::luby;
use crate::types::{LBool, Lit, Var};

/// Outcome of a [`Solver::solve`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with
    /// [`Solver::model_value`].
    Sat,
    /// The clauses (under the given assumptions, if any) are unsatisfiable.
    Unsat,
}

/// Outcome of [`Solver::for_each_model`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Enumeration {
    /// All projected models were visited; carries the count.
    Complete(usize),
    /// The callback requested an early stop; carries the count so far.
    Stopped(usize),
    /// The model limit was reached before exhausting the space.
    LimitReached(usize),
}

/// Counters exposed for benchmarking and ablation studies.
#[derive(Clone, Copy, Default, Debug)]
pub struct SolverStats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of decisions taken.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
}

impl std::ops::AddAssign for SolverStats {
    fn add_assign(&mut self, rhs: SolverStats) {
        self.conflicts += rhs.conflicts;
        self.decisions += rhs.decisions;
        self.propagations += rhs.propagations;
        self.restarts += rhs.restarts;
    }
}

impl std::iter::Sum for SolverStats {
    /// Aggregate per-solver counters, e.g. across the per-component
    /// solvers of an engine.
    fn sum<I: Iterator<Item = SolverStats>>(iter: I) -> SolverStats {
        let mut total = SolverStats::default();
        for s in iter {
            total += s;
        }
        total
    }
}

#[derive(Clone, Debug)]
struct Clause {
    lits: Vec<Lit>,
}

const VAR_ACTIVITY_DECAY: f64 = 0.95;
const RESCALE_THRESHOLD: f64 = 1e100;
const RESTART_BASE: u64 = 100;

/// A CDCL SAT solver.
///
/// The solver is incremental in two ways: clauses may be added between
/// `solve` calls, and [`Solver::solve_with_assumptions`] checks
/// satisfiability under a set of temporarily-assumed literals without
/// permanently constraining the instance.  Cloning the solver clones the
/// entire state, which `currency-reason` uses to fork entailment queries
/// from a shared encoding.
#[derive(Clone, Debug, Default)]
pub struct Solver {
    clauses: Vec<Clause>,
    /// `watches[l.code()]` = indices of clauses currently watching literal `l`.
    watches: Vec<Vec<u32>>,
    assign: Vec<LBool>,
    /// Decision level at which each variable was assigned.
    level: Vec<u32>,
    /// Clause that implied each variable (`u32::MAX` = decision/unset).
    reason: Vec<u32>,
    activity: Vec<f64>,
    phase: Vec<bool>,
    seen: Vec<bool>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    heap: ActivityHeap,
    var_inc: f64,
    ok: bool,
    model: Vec<bool>,
    stats: SolverStats,
}

const NO_REASON: u32 = u32::MAX;

/// Literal value under an assignment vector (free function so `propagate`
/// can borrow `assign` and `clauses` disjointly).
#[inline]
fn lit_value(assign: &[LBool], l: Lit) -> LBool {
    match assign[l.var().index()] {
        LBool::Undef => LBool::Undef,
        LBool::True => {
            if l.is_pos() {
                LBool::True
            } else {
                LBool::False
            }
        }
        LBool::False => {
            if l.is_pos() {
                LBool::False
            } else {
                LBool::True
            }
        }
    }
}

impl Solver {
    /// Create an empty solver with no variables and no clauses.
    pub fn new() -> Solver {
        Solver {
            var_inc: 1.0,
            ok: true,
            ..Default::default()
        }
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses (original + learnt) currently stored.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Solver statistics accumulated across all `solve` calls.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Allocate a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.push(v, 0.0);
        v
    }

    #[inline]
    fn value_lit(&self, l: Lit) -> LBool {
        match self.assign[l.var().index()] {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if l.is_pos() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
            LBool::False => {
                if l.is_pos() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
        }
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Add a clause.  Returns `false` if the solver became trivially
    /// unsatisfiable (an empty clause was derived at level zero).
    ///
    /// The clause is simplified: duplicate literals are merged, tautologies
    /// are dropped, and literals already false at level zero are removed.
    /// May be called between `solve` calls (used for blocking clauses during
    /// model enumeration); any partial assignment is undone first.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if !self.ok {
            return false;
        }
        self.cancel_until(0);
        let mut cl: Vec<Lit> = lits.to_vec();
        cl.sort_unstable();
        cl.dedup();
        // Tautology check: sorted order places l and ¬l adjacently.
        for w in cl.windows(2) {
            if w[0].var() == w[1].var() {
                return true; // contains l ∨ ¬l: always satisfied
            }
        }
        cl.retain(|&l| self.value_lit(l) != LBool::False);
        if cl.iter().any(|&l| self.value_lit(l) == LBool::True) {
            return true; // already satisfied at level 0
        }
        match cl.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                // Unit at level zero: assign and propagate to closure.
                if !self.enqueue(cl[0], NO_REASON) {
                    self.ok = false;
                    return false;
                }
                if self.propagate().is_some() {
                    self.ok = false;
                    return false;
                }
                true
            }
            _ => {
                let idx = self.clauses.len() as u32;
                self.watches[cl[0].code()].push(idx);
                self.watches[cl[1].code()].push(idx);
                self.clauses.push(Clause { lits: cl });
                true
            }
        }
    }

    /// Check satisfiability of the current clause set.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Check satisfiability under the given assumed literals.
    ///
    /// The assumptions hold only for this call; the clause database is not
    /// modified (beyond learnt clauses, which are logical consequences).
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat;
        }
        self.cancel_until(0);
        let mut restart_idx: u64 = 0;
        let mut conflicts_here: u64 = 0;
        let mut budget = luby(restart_idx) * RESTART_BASE;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SolveResult::Unsat;
                }
                let (learnt, bt_level) = self.analyze(confl);
                self.cancel_until(bt_level);
                self.record_learnt(learnt);
                self.decay_var_activity();
                if conflicts_here >= budget {
                    // Luby restart.
                    self.stats.restarts += 1;
                    restart_idx += 1;
                    conflicts_here = 0;
                    budget = luby(restart_idx) * RESTART_BASE;
                    self.cancel_until(0);
                }
            } else if (self.decision_level() as usize) < assumptions.len() {
                // Re-establish the next assumption as a pseudo-decision.
                let p = assumptions[self.decision_level() as usize];
                match self.value_lit(p) {
                    LBool::True => {
                        // Already implied: open a vacuous level so that the
                        // remaining assumptions keep their positions.
                        self.trail_lim.push(self.trail.len());
                    }
                    LBool::False => {
                        // The assumptions contradict the clauses.
                        self.cancel_until(0);
                        return SolveResult::Unsat;
                    }
                    LBool::Undef => {
                        self.trail_lim.push(self.trail.len());
                        let enq = self.enqueue(p, NO_REASON);
                        debug_assert!(enq);
                    }
                }
            } else if let Some(v) = self.pick_branch_var() {
                self.stats.decisions += 1;
                self.trail_lim.push(self.trail.len());
                let lit = v.lit(self.phase[v.index()]);
                let enq = self.enqueue(lit, NO_REASON);
                debug_assert!(enq);
            } else {
                // Every variable assigned without conflict: model found.
                self.model = self.assign.iter().map(|&a| a == LBool::True).collect();
                self.cancel_until(0);
                return SolveResult::Sat;
            }
        }
    }

    /// Value of `v` in the most recently found model.
    ///
    /// Only meaningful after a `solve` call returned [`SolveResult::Sat`].
    pub fn model_value(&self, v: Var) -> bool {
        self.model[v.index()]
    }

    /// Enumerate models projected onto `projection`, invoking `f` with the
    /// projected assignment for each distinct projection found.
    ///
    /// Distinctness is with respect to the projection: after each model a
    /// blocking clause over the projection variables is added, so the same
    /// projected assignment is never reported twice.  `f` returning `false`
    /// stops the enumeration.  At most `limit` models are visited.
    ///
    /// Blocking clauses permanently constrain this solver; callers that need
    /// to reuse the instance should enumerate on a clone.
    pub fn for_each_model(
        &mut self,
        projection: &[Var],
        limit: usize,
        mut f: impl FnMut(&[bool]) -> bool,
    ) -> Enumeration {
        let mut count = 0usize;
        let mut values = vec![false; projection.len()];
        while count < limit {
            if self.solve() == SolveResult::Unsat {
                return Enumeration::Complete(count);
            }
            for (slot, &v) in values.iter_mut().zip(projection) {
                *slot = self.model_value(v);
            }
            count += 1;
            if !f(&values) {
                return Enumeration::Stopped(count);
            }
            // Block this projected assignment.
            let blocking: Vec<Lit> = projection
                .iter()
                .zip(&values)
                .map(|(&v, &val)| v.lit(!val))
                .collect();
            if !self.add_clause(&blocking) {
                return Enumeration::Complete(count);
            }
        }
        Enumeration::LimitReached(count)
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Assign `p` true with the given reason clause; `false` if `p` is
    /// already false (caller must treat as conflict).
    fn enqueue(&mut self, p: Lit, reason: u32) -> bool {
        match self.value_lit(p) {
            LBool::True => true,
            LBool::False => false,
            LBool::Undef => {
                let v = p.var().index();
                self.assign[v] = LBool::from_bool(p.is_pos());
                self.level[v] = self.decision_level();
                self.reason[v] = reason;
                self.phase[v] = p.is_pos();
                self.trail.push(p);
                true
            }
        }
    }

    /// Unit propagation; returns a conflicting clause index if one arises.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            // Take the watch list; entries are pushed back as they survive.
            let mut ws = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            while i < ws.len() {
                let ci = ws[i];
                let assign = &self.assign;
                let cl = &mut self.clauses[ci as usize];
                // Normalize: the false literal sits at position 1.
                if cl.lits[0] == false_lit {
                    cl.lits.swap(0, 1);
                }
                debug_assert_eq!(cl.lits[1], false_lit);
                let first = cl.lits[0];
                if lit_value(assign, first) == LBool::True {
                    i += 1; // clause satisfied; keep watching
                    continue;
                }
                // Look for a replacement watch.
                let mut moved = false;
                for j in 2..cl.lits.len() {
                    if lit_value(assign, cl.lits[j]) != LBool::False {
                        cl.lits.swap(1, j);
                        let new_watch = cl.lits[1];
                        self.watches[new_watch.code()].push(ci);
                        ws.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting under the current assignment.
                if lit_value(&self.assign, first) == LBool::False {
                    // Conflict: restore remaining watches and report.
                    self.watches[false_lit.code()] = ws;
                    self.qhead = self.trail.len();
                    return Some(ci);
                }
                let ok = self.enqueue(first, ci);
                debug_assert!(ok);
                i += 1;
            }
            self.watches[false_lit.code()] = ws;
        }
        None
    }

    /// First-UIP conflict analysis.  Returns the learnt clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, confl: u32) -> (Vec<Lit>, u32) {
        let current = self.decision_level();
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot 0 = asserting literal
        let mut counter = 0u32;
        let mut p: Option<Lit> = None;
        let mut clause_idx = confl;
        let mut trail_pos = self.trail.len();
        let mut bt_level = 0u32;
        loop {
            let lits: Vec<Lit> = self.clauses[clause_idx as usize].lits.clone();
            let skip_first = p.is_some();
            for (k, &q) in lits.iter().enumerate() {
                if skip_first && k == 0 {
                    continue; // q == p: the literal being resolved on
                }
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var_activity(q.var());
                    if self.level[v] == current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                        bt_level = bt_level.max(self.level[v]);
                    }
                }
            }
            // Walk the trail backwards to the next marked literal.
            loop {
                trail_pos -= 1;
                if self.seen[self.trail[trail_pos].var().index()] {
                    break;
                }
            }
            let q = self.trail[trail_pos];
            self.seen[q.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !q;
                break;
            }
            p = Some(q);
            clause_idx = self.reason[q.var().index()];
            debug_assert_ne!(clause_idx, NO_REASON);
            // Keep the reason clause normalized: position 0 holds q.
            let rc = &mut self.clauses[clause_idx as usize];
            if rc.lits[0] != q {
                let pos = rc.lits.iter().position(|&l| l == q).expect("reason lit");
                rc.lits.swap(0, pos);
            }
        }
        // Clear remaining marks.
        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }
        (learnt, bt_level)
    }

    /// Install a learnt clause and enqueue its asserting literal.
    fn record_learnt(&mut self, mut learnt: Vec<Lit>) {
        if learnt.len() == 1 {
            let ok = self.enqueue(learnt[0], NO_REASON);
            debug_assert!(ok);
            return;
        }
        // Watch the asserting literal and a literal of the backjump level
        // (the maximum level among the rest), preserving the invariant that
        // watched literals are the last to become false.
        let mut max_pos = 1;
        for j in 2..learnt.len() {
            if self.level[learnt[j].var().index()] > self.level[learnt[max_pos].var().index()] {
                max_pos = j;
            }
        }
        learnt.swap(1, max_pos);
        let idx = self.clauses.len() as u32;
        self.watches[learnt[0].code()].push(idx);
        self.watches[learnt[1].code()].push(idx);
        let assert_lit = learnt[0];
        self.clauses.push(Clause { lits: learnt });
        let ok = self.enqueue(assert_lit, idx);
        debug_assert!(ok);
    }

    /// Undo assignments above the given decision level.
    fn cancel_until(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        while self.decision_level() > target {
            let lim = self.trail_lim.pop().expect("trail limit");
            while self.trail.len() > lim {
                let p = self.trail.pop().expect("trail literal");
                let v = p.var();
                self.assign[v.index()] = LBool::Undef;
                self.reason[v.index()] = NO_REASON;
                // Re-insert into the decision heap.
                self.heap.push(v, self.activity[v.index()]);
            }
        }
        // Everything still on the trail was fully propagated when its level
        // was current, so propagation may resume at the end of the trail.
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        let assign = &self.assign;
        let activity = &self.activity;
        self.heap
            .pop_fresh(|v, act| assign[v.index()] == LBool::Undef && act == activity[v.index()])
    }

    fn bump_var_activity(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > RESCALE_THRESHOLD {
            for a in &mut self.activity {
                *a *= 1.0 / RESCALE_THRESHOLD;
            }
            self.var_inc *= 1.0 / RESCALE_THRESHOLD;
            self.heap.rescale(1.0 / RESCALE_THRESHOLD);
        }
        if self.assign[v.index()] == LBool::Undef {
            self.heap.push(v, self.activity[v.index()]);
        }
    }

    fn decay_var_activity(&mut self) {
        self.var_inc /= VAR_ACTIVITY_DECAY;
    }
}
