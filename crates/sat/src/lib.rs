//! # currency-sat
//!
//! A small, self-contained CDCL SAT solver used as the exact-reasoning
//! substrate of the `data-currency` workspace.
//!
//! The decision problems of Fan, Geerts & Wijsen's *Determining the Currency
//! of Data* (PODS 2011) sit between NP and Σᵖ₄.  Their exact solvers in
//! `currency-reason` reduce consistent-completion search to propositional
//! satisfiability over *order variables* (one Boolean per unordered tuple
//! pair, per attribute).  This crate provides the engine:
//!
//! * conflict-driven clause learning (first-UIP),
//! * two-watched-literal unit propagation with blocking literals and
//!   inlined binary-clause watchers (binary clauses propagate without
//!   touching the clause database),
//! * LBD-based learnt-clause database reduction with glue protection —
//!   learnt clauses are no longer kept for the solver's lifetime; see
//!   [`SolverStats::learnt_deleted`],
//! * VSIDS-style activity heuristics with a lazy binary heap,
//! * Luby restarts and phase saving,
//! * solving under assumptions,
//! * model enumeration projected onto a variable subset (All-SAT with
//!   blocking clauses),
//! * theory-lemma installation ([`Solver::add_lemma`]) feeding the lazy
//!   transitivity refinement loop in `currency-reason`.
//!
//! A deliberately naive DPLL solver ([`solve_dpll`]) serves as a reference
//! implementation for differential testing.
//!
//! No external SAT crate is used: none is in the project's allowed offline
//! dependency set, and the engine is small enough to be in-scope substrate
//! work (see `DESIGN.md` §4).
//!
//! ## Example
//!
//! ```
//! use currency_sat::{Solver, SolveResult};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause(&[a.pos(), b.pos()]);
//! s.add_clause(&[a.neg(), b.pos()]);
//! assert_eq!(s.solve(), SolveResult::Sat);
//! assert!(s.model_value(b));
//! ```

mod dpll;
mod heap;
mod luby;
mod solver;
mod types;

pub use dpll::solve_dpll;
pub use luby::luby;
pub use solver::{
    enumerate_projected, Enumeration, Limits, ModelSource, SolveOutcome, SolveResult, Solver,
    SolverStats,
};
pub use types::{Lit, Var};

#[cfg(test)]
mod tests;
