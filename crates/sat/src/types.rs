//! Core value types of the SAT solver: variables and literals.

use std::fmt;

/// A propositional variable, identified by a dense index.
///
/// Variables are created by [`crate::Solver::new_var`]; indices are assigned
/// consecutively from zero, which lets the solver store per-variable state in
/// flat vectors.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) u32);

impl Var {
    /// The dense index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct a variable from a raw index.
    ///
    /// Callers are responsible for only using indices previously returned by
    /// [`crate::Solver::new_var`] with the solver they target.
    #[inline]
    pub fn from_index(ix: usize) -> Var {
        Var(ix as u32)
    }

    /// The positive literal `v`.
    #[inline]
    pub fn pos(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal `¬v`.
    #[inline]
    #[allow(clippy::should_implement_trait)] // not a unary negation of Var
    pub fn neg(self) -> Lit {
        Lit(self.0 << 1 | 1)
    }

    /// A literal of this variable with the given sign (`true` = positive).
    #[inline]
    pub fn lit(self, positive: bool) -> Lit {
        if positive {
            self.pos()
        } else {
            self.neg()
        }
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable together with a sign.
///
/// Encoded as `var << 1 | sign` where sign bit 1 means negated.  This is the
/// classic MiniSat encoding; it makes literal negation a single XOR and lets
/// watch lists be indexed directly by literal code.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` if this is a positive (unnegated) literal.
    #[inline]
    pub fn is_pos(self) -> bool {
        self.0 & 1 == 0
    }

    /// The literal code, usable as a dense index (`2 * var + sign`).
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Construct a literal from its dense code.
    #[inline]
    pub fn from_code(code: usize) -> Lit {
        Lit(code as u32)
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_pos() {
            write!(f, "v{}", self.0 >> 1)
        } else {
            write!(f, "¬v{}", self.0 >> 1)
        }
    }
}

/// Ternary assignment value used internally.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum LBool {
    True,
    False,
    Undef,
}

impl LBool {
    #[inline]
    pub(crate) fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_round_trips() {
        let v = Var::from_index(7);
        assert_eq!(v.pos().var(), v);
        assert_eq!(v.neg().var(), v);
        assert!(v.pos().is_pos());
        assert!(!v.neg().is_pos());
        assert_eq!(!v.pos(), v.neg());
        assert_eq!(!!v.pos(), v.pos());
        assert_eq!(Lit::from_code(v.pos().code()), v.pos());
    }

    #[test]
    fn lit_builder_respects_sign() {
        let v = Var::from_index(3);
        assert_eq!(v.lit(true), v.pos());
        assert_eq!(v.lit(false), v.neg());
    }

    #[test]
    fn codes_are_dense() {
        assert_eq!(Var::from_index(0).pos().code(), 0);
        assert_eq!(Var::from_index(0).neg().code(), 1);
        assert_eq!(Var::from_index(1).pos().code(), 2);
        assert_eq!(Var::from_index(1).neg().code(), 3);
    }
}
