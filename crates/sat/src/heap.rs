//! A max-heap over variables ordered by activity, with lazy deletion.
//!
//! The solver bumps variable activities on every conflict and needs to pick
//! the unassigned variable with maximal activity when deciding.  A classic
//! indexed heap (as in MiniSat) supports `decrease_key`; we instead use the
//! simpler *lazy* scheme: every bump or unassignment pushes the variable
//! again, and stale entries (assigned variables, or entries whose recorded
//! activity is outdated) are discarded on pop.  For the problem sizes of this
//! workspace (thousands of variables) the duplication is negligible and the
//! code is considerably simpler to audit.

use crate::types::Var;

#[derive(Debug, Default)]
pub(crate) struct ActivityHeap {
    /// Binary max-heap of `(activity, var)` entries; may contain duplicates
    /// and stale activities.
    entries: Vec<(f64, Var)>,
}

/// Hand-rolled so that `clone_from` reuses the existing heap allocation
/// (the derive's default `clone_from` re-allocates); see
/// [`crate::Solver`]'s `Clone` impl for why that matters.
impl Clone for ActivityHeap {
    fn clone(&self) -> Self {
        ActivityHeap {
            entries: self.entries.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.entries.clone_from(&source.entries);
    }
}

impl ActivityHeap {
    #[cfg(test)]
    pub(crate) fn new() -> Self {
        ActivityHeap {
            entries: Vec::new(),
        }
    }

    /// Push a (possibly duplicate) entry for `v` at activity `act`.
    pub(crate) fn push(&mut self, v: Var, act: f64) {
        self.entries.push((act, v));
        self.sift_up(self.entries.len() - 1);
    }

    /// Pop entries until one passes `is_fresh`; returns `None` if exhausted.
    ///
    /// `is_fresh(v, act)` should return `true` when `v` is currently
    /// unassigned *and* `act` equals its current activity (so that stale
    /// lower-priority duplicates of a re-bumped variable are skipped).
    pub(crate) fn pop_fresh(&mut self, mut is_fresh: impl FnMut(Var, f64) -> bool) -> Option<Var> {
        while let Some(&(act, v)) = self.entries.first() {
            self.pop_root();
            if is_fresh(v, act) {
                return Some(v);
            }
        }
        None
    }

    /// Rebuild the heap after a global activity rescale.
    pub(crate) fn rescale(&mut self, factor: f64) {
        for e in &mut self.entries {
            e.0 *= factor;
        }
        // Multiplying every key by the same positive factor preserves the
        // heap order, so no re-heapify is needed; this loop documents intent.
    }

    fn pop_root(&mut self) {
        let last = self.entries.len() - 1;
        self.entries.swap(0, last);
        self.entries.pop();
        if !self.entries.is_empty() {
            self.sift_down(0);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.entries[i].0 > self.entries[parent].0 {
                self.entries.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.entries.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut largest = i;
            if l < n && self.entries[l].0 > self.entries[largest].0 {
                largest = l;
            }
            if r < n && self.entries[r].0 > self.entries[largest].0 {
                largest = r;
            }
            if largest == i {
                break;
            }
            self.entries.swap(i, largest);
            i = largest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let mut h = ActivityHeap::new();
        h.push(Var::from_index(0), 1.0);
        h.push(Var::from_index(1), 3.0);
        h.push(Var::from_index(2), 2.0);
        let order: Vec<usize> = std::iter::from_fn(|| h.pop_fresh(|_, _| true))
            .map(|v| v.index())
            .collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn skips_stale_entries() {
        let mut h = ActivityHeap::new();
        h.push(Var::from_index(0), 1.0);
        h.push(Var::from_index(0), 5.0); // re-bumped duplicate
        h.push(Var::from_index(1), 3.0);
        // Current activity of v0 is 5.0: the 1.0 entry is stale.
        let current = [5.0, 3.0];
        let first = h.pop_fresh(|v, a| a == current[v.index()]).unwrap();
        assert_eq!(first.index(), 0);
        let second = h.pop_fresh(|v, a| a == current[v.index()]).unwrap();
        assert_eq!(second.index(), 1);
        assert!(h.pop_fresh(|v, a| a == current[v.index()]).is_none());
    }

    #[test]
    fn empty_heap_pops_none() {
        let mut h = ActivityHeap::new();
        assert!(h.pop_fresh(|_, _| true).is_none());
    }
}
