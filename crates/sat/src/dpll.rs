//! A deliberately naive DPLL solver used as a differential-testing oracle.
//!
//! No watched literals, no learning, no heuristics: just unit propagation
//! and chronological backtracking over a clause list.  Its simplicity is the
//! point — the CDCL solver in [`crate::Solver`] is property-tested against
//! this implementation on random instances.

use crate::types::{Lit, Var};

/// Decide satisfiability of `clauses` over variables `0..num_vars` and
/// return a model if satisfiable.
///
/// Clauses are slices of literals; an empty clause renders the instance
/// unsatisfiable.  Intended for small instances only (exponential time).
pub fn solve_dpll(num_vars: usize, clauses: &[Vec<Lit>]) -> Option<Vec<bool>> {
    let mut assign: Vec<Option<bool>> = vec![None; num_vars];
    if dpll(clauses, &mut assign) {
        Some(assign.into_iter().map(|a| a.unwrap_or(false)).collect())
    } else {
        None
    }
}

fn lit_value(assign: &[Option<bool>], l: Lit) -> Option<bool> {
    assign[l.var().index()].map(|v| v == l.is_pos())
}

/// Classify a clause under the partial assignment.
enum ClauseState {
    Satisfied,
    Conflict,
    Unit(Lit),
    Unresolved,
}

fn clause_state(assign: &[Option<bool>], clause: &[Lit]) -> ClauseState {
    let mut unassigned: Option<Lit> = None;
    let mut unassigned_count = 0;
    for &l in clause {
        match lit_value(assign, l) {
            Some(true) => return ClauseState::Satisfied,
            Some(false) => {}
            None => {
                unassigned = Some(l);
                unassigned_count += 1;
            }
        }
    }
    match unassigned_count {
        0 => ClauseState::Conflict,
        1 => ClauseState::Unit(unassigned.expect("unit literal")),
        _ => ClauseState::Unresolved,
    }
}

fn dpll(clauses: &[Vec<Lit>], assign: &mut Vec<Option<bool>>) -> bool {
    // Unit propagation to fixpoint, remembering what we assigned so the
    // assignments can be undone on backtrack.
    let mut propagated: Vec<Var> = Vec::new();
    loop {
        let mut changed = false;
        for clause in clauses {
            match clause_state(assign, clause) {
                ClauseState::Conflict => {
                    for v in propagated {
                        assign[v.index()] = None;
                    }
                    return false;
                }
                ClauseState::Unit(l) => {
                    assign[l.var().index()] = Some(l.is_pos());
                    propagated.push(l.var());
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            break;
        }
    }
    // Branch on the first unassigned variable.
    match assign.iter().position(|a| a.is_none()) {
        None => true, // complete assignment, no conflict: satisfiable
        Some(ix) => {
            for value in [true, false] {
                assign[ix] = Some(value);
                if dpll(clauses, assign) {
                    return true;
                }
                assign[ix] = None;
            }
            for v in propagated {
                assign[v.index()] = None;
            }
            false
        }
    }
}

/// Evaluate a clause set under a complete assignment (test helper).
#[cfg(test)]
pub(crate) fn evaluate(clauses: &[Vec<Lit>], model: &[bool]) -> bool {
    clauses
        .iter()
        .all(|c| c.iter().any(|&l| model[l.var().index()] == l.is_pos()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> Var {
        Var::from_index(i)
    }

    #[test]
    fn trivial_sat() {
        let model = solve_dpll(1, &[vec![v(0).pos()]]).expect("sat");
        assert!(model[0]);
    }

    #[test]
    fn trivial_unsat() {
        assert!(solve_dpll(1, &[vec![v(0).pos()], vec![v(0).neg()]]).is_none());
    }

    #[test]
    fn empty_clause_is_unsat() {
        assert!(solve_dpll(1, &[vec![]]).is_none());
    }

    #[test]
    fn no_clauses_is_sat() {
        assert!(solve_dpll(3, &[]).is_some());
    }

    #[test]
    fn chain_of_implications() {
        // x0 ∧ (¬x0 ∨ x1) ∧ (¬x1 ∨ x2) forces all true.
        let clauses = vec![
            vec![v(0).pos()],
            vec![v(0).neg(), v(1).pos()],
            vec![v(1).neg(), v(2).pos()],
        ];
        let model = solve_dpll(3, &clauses).expect("sat");
        assert_eq!(model, vec![true, true, true]);
        assert!(evaluate(&clauses, &model));
    }

    #[test]
    fn pigeonhole_2_into_1_is_unsat() {
        // Two pigeons, one hole: p0 ∧ p1 with exclusivity ¬p0 ∨ ¬p1.
        let clauses = vec![
            vec![v(0).pos()],
            vec![v(1).pos()],
            vec![v(0).neg(), v(1).neg()],
        ];
        assert!(solve_dpll(2, &clauses).is_none());
    }
}
