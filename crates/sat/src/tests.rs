//! Solver-level tests: unit tests for CDCL behaviour and differential tests
//! against the naive DPLL oracle on random instances.

use crate::dpll::evaluate;
use crate::{solve_dpll, Enumeration, Lit, SolveResult, Solver, Var};

fn build(num_vars: usize, clauses: &[Vec<Lit>]) -> Solver {
    let mut s = Solver::new();
    for _ in 0..num_vars {
        s.new_var();
    }
    for c in clauses {
        s.add_clause(c);
    }
    s
}

fn v(i: usize) -> Var {
    Var::from_index(i)
}

#[test]
fn empty_instance_is_sat() {
    let mut s = Solver::new();
    assert_eq!(s.solve(), SolveResult::Sat);
}

#[test]
fn single_unit_clause() {
    let mut s = Solver::new();
    let a = s.new_var();
    assert!(s.add_clause(&[a.neg()]));
    assert_eq!(s.solve(), SolveResult::Sat);
    assert!(!s.model_value(a));
}

#[test]
fn contradictory_units_unsat() {
    let mut s = Solver::new();
    let a = s.new_var();
    assert!(s.add_clause(&[a.pos()]));
    assert!(!s.add_clause(&[a.neg()]));
    assert_eq!(s.solve(), SolveResult::Unsat);
}

#[test]
fn tautological_clause_is_ignored() {
    let mut s = Solver::new();
    let a = s.new_var();
    assert!(s.add_clause(&[a.pos(), a.neg()]));
    assert_eq!(s.num_clauses(), 0);
    assert_eq!(s.solve(), SolveResult::Sat);
}

#[test]
fn duplicate_literals_are_merged() {
    let mut s = Solver::new();
    let a = s.new_var();
    let b = s.new_var();
    assert!(s.add_clause(&[a.pos(), a.pos(), b.pos()]));
    assert!(s.add_clause(&[a.neg()]));
    assert_eq!(s.solve(), SolveResult::Sat);
    assert!(s.model_value(b));
}

#[test]
fn implication_chain_propagates() {
    let n = 32;
    let mut s = Solver::new();
    let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
    s.add_clause(&[vars[0].pos()]);
    for w in vars.windows(2) {
        s.add_clause(&[w[0].neg(), w[1].pos()]);
    }
    assert_eq!(s.solve(), SolveResult::Sat);
    for &x in &vars {
        assert!(s.model_value(x));
    }
}

#[test]
fn pigeonhole_3_into_2_is_unsat() {
    // p[i][j]: pigeon i in hole j.  3 pigeons, 2 holes.
    let mut s = Solver::new();
    let p: Vec<Vec<Var>> = (0..3)
        .map(|_| (0..2).map(|_| s.new_var()).collect())
        .collect();
    for row in &p {
        s.add_clause(&[row[0].pos(), row[1].pos()]);
    }
    #[allow(clippy::needless_range_loop)] // j indexes two parallel rows
    for j in 0..2 {
        for i1 in 0..3 {
            for i2 in (i1 + 1)..3 {
                s.add_clause(&[p[i1][j].neg(), p[i2][j].neg()]);
            }
        }
    }
    assert_eq!(s.solve(), SolveResult::Unsat);
}

#[test]
fn pigeonhole_5_into_4_exercises_learning() {
    let (pigeons, holes) = (5usize, 4usize);
    let mut s = Solver::new();
    let p: Vec<Vec<Var>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| s.new_var()).collect())
        .collect();
    for row in &p {
        let lits: Vec<Lit> = row.iter().map(|v| v.pos()).collect();
        s.add_clause(&lits);
    }
    #[allow(clippy::needless_range_loop)] // j indexes parallel rows
    for j in 0..holes {
        for i1 in 0..pigeons {
            for i2 in (i1 + 1)..pigeons {
                s.add_clause(&[p[i1][j].neg(), p[i2][j].neg()]);
            }
        }
    }
    assert_eq!(s.solve(), SolveResult::Unsat);
    assert!(s.stats().conflicts > 0, "should have required learning");
}

#[test]
fn assumptions_restrict_without_committing() {
    let mut s = Solver::new();
    let a = s.new_var();
    let b = s.new_var();
    s.add_clause(&[a.pos(), b.pos()]);
    assert_eq!(s.solve_with_assumptions(&[a.neg()]), SolveResult::Sat);
    assert!(s.model_value(b));
    assert_eq!(
        s.solve_with_assumptions(&[a.neg(), b.neg()]),
        SolveResult::Unsat
    );
    // The instance itself is still satisfiable afterwards.
    assert_eq!(s.solve(), SolveResult::Sat);
    assert_eq!(s.solve_with_assumptions(&[a.pos()]), SolveResult::Sat);
}

#[test]
fn assumption_of_entailed_literal() {
    let mut s = Solver::new();
    let a = s.new_var();
    let b = s.new_var();
    s.add_clause(&[a.pos()]);
    s.add_clause(&[a.neg(), b.pos()]);
    // Both assumptions are already consequences.
    assert_eq!(
        s.solve_with_assumptions(&[a.pos(), b.pos()]),
        SolveResult::Sat
    );
    assert_eq!(s.solve_with_assumptions(&[b.neg()]), SolveResult::Unsat);
}

#[test]
fn entailment_via_assumptions() {
    // (a ∨ b) ∧ (¬a ∨ c) ∧ (¬b ∨ c) entails c.
    let mut s = Solver::new();
    let a = s.new_var();
    let b = s.new_var();
    let c = s.new_var();
    s.add_clause(&[a.pos(), b.pos()]);
    s.add_clause(&[a.neg(), c.pos()]);
    s.add_clause(&[b.neg(), c.pos()]);
    assert_eq!(s.solve_with_assumptions(&[c.neg()]), SolveResult::Unsat);
    assert_eq!(s.solve_with_assumptions(&[c.pos()]), SolveResult::Sat);
}

#[test]
fn model_enumeration_counts_projections() {
    // Free variables a, b and a constrained c = a ∨ b.
    let mut s = Solver::new();
    let a = s.new_var();
    let b = s.new_var();
    let c = s.new_var();
    s.add_clause(&[c.neg(), a.pos(), b.pos()]);
    s.add_clause(&[a.neg(), c.pos()]);
    s.add_clause(&[b.neg(), c.pos()]);
    let mut seen = Vec::new();
    let result = s.for_each_model(&[a, b], 100, |m| {
        seen.push(m.to_vec());
        true
    });
    assert_eq!(result, Enumeration::Complete(4));
    seen.sort();
    assert_eq!(
        seen,
        vec![
            vec![false, false],
            vec![false, true],
            vec![true, false],
            vec![true, true]
        ]
    );
}

#[test]
fn model_enumeration_respects_limit_and_stop() {
    let mut s = build(3, &[]);
    let r = s.for_each_model(&[v(0), v(1), v(2)], 3, |_| true);
    assert_eq!(r, Enumeration::LimitReached(3));

    let mut s2 = build(3, &[]);
    let r2 = s2.for_each_model(&[v(0), v(1), v(2)], 100, |_| false);
    assert_eq!(r2, Enumeration::Stopped(1));
}

#[test]
fn enumeration_with_empty_projection() {
    let mut s = build(2, &[vec![v(0).pos()]]);
    let r = s.for_each_model(&[], 10, |m| {
        assert!(m.is_empty());
        true
    });
    assert_eq!(r, Enumeration::Complete(1));
}

#[test]
fn enumeration_of_unsat_instance() {
    let mut s = build(1, &[vec![v(0).pos()], vec![v(0).neg()]]);
    let r = s.for_each_model(&[v(0)], 10, |_| true);
    assert_eq!(r, Enumeration::Complete(0));
}

#[test]
fn cloned_solver_is_independent() {
    let mut s = Solver::new();
    let a = s.new_var();
    let mut t = s.clone();
    assert!(s.add_clause(&[a.pos()]));
    assert!(t.add_clause(&[a.neg()]));
    assert_eq!(s.solve(), SolveResult::Sat);
    assert_eq!(t.solve(), SolveResult::Sat);
    assert!(s.model_value(a));
    assert!(!t.model_value(a));
}

// ---------------------------------------------------------------------------
// Watch-list integrity and clause-database reduction invariants.
// ---------------------------------------------------------------------------

/// Pigeonhole instance: `pigeons` into `holes`.  Unsat iff pigeons > holes;
/// reliably generates conflicts (and thus learnt clauses) for its size.
fn pigeonhole(pigeons: usize, holes: usize) -> Solver {
    let mut s = Solver::new();
    let p: Vec<Vec<Var>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| s.new_var()).collect())
        .collect();
    for row in &p {
        let lits: Vec<Lit> = row.iter().map(|v| v.pos()).collect();
        s.add_clause(&lits);
    }
    #[allow(clippy::needless_range_loop)] // j indexes parallel rows
    for j in 0..holes {
        for i1 in 0..pigeons {
            for i2 in (i1 + 1)..pigeons {
                s.add_clause(&[p[i1][j].neg(), p[i2][j].neg()]);
            }
        }
    }
    s
}

#[test]
fn watch_lists_stay_consistent_across_operations() {
    let mut s = Solver::new();
    let vars: Vec<Var> = (0..8).map(|_| s.new_var()).collect();
    s.debug_check_invariants().unwrap();
    // Mixed binary and long clauses.
    s.add_clause(&[vars[0].pos(), vars[1].pos()]);
    s.add_clause(&[vars[1].neg(), vars[2].pos(), vars[3].pos()]);
    s.add_clause(&[vars[2].neg(), vars[4].pos(), vars[5].pos(), vars[6].pos()]);
    s.debug_check_invariants().unwrap();
    assert_eq!(s.solve(), SolveResult::Sat);
    s.debug_check_invariants().unwrap();
    // Assumption solving and clause addition between solves.
    s.solve_with_assumptions(&[vars[0].neg(), vars[2].pos()]);
    s.add_clause(&[vars[6].neg(), vars[7].pos()]);
    s.debug_check_invariants().unwrap();
    // Enumeration adds blocking clauses.
    s.for_each_model(&[vars[0], vars[1]], 10, |_| true);
    s.debug_check_invariants().unwrap();
}

#[test]
fn watch_lists_survive_hard_search_and_reductions() {
    let mut s = pigeonhole(6, 5);
    s.set_max_learnts(8); // force frequent clause-database reductions
    assert_eq!(s.solve(), SolveResult::Unsat);
    let st = s.stats();
    assert!(st.conflicts > 0, "search must have conflicted");
    assert!(
        st.learnt_deleted > 0,
        "tiny budget must have triggered reductions: {st:?}"
    );
    s.debug_check_invariants().unwrap();
}

#[test]
fn reduction_keeps_glue_clauses_and_counts_deletions() {
    let mut s = pigeonhole(6, 5);
    // A satisfiable side variable keeps the instance usable after solving.
    assert_eq!(s.solve(), SolveResult::Unsat);
    assert!(s.num_learnts() > 0, "expected learnt clauses");
    let before = s.learnt_snapshot();
    let deleted_before = s.stats().learnt_deleted;
    s.set_max_learnts(0);
    s.force_reduce();
    let after = s.learnt_snapshot();
    s.debug_check_invariants().unwrap();
    let deleted = s.stats().learnt_deleted - deleted_before;
    assert_eq!(before.len() - after.len(), deleted as usize);
    // Glue protection: every learnt clause with LBD ≤ 2 (and every binary
    // learnt) survives the reduction.
    for (lits, lbd) in &before {
        if *lbd <= 2 || lits.len() == 2 {
            assert!(
                after.iter().any(|(l, _)| l == lits),
                "glue clause {lits:?} (lbd {lbd}) was deleted"
            );
        }
    }
    // Survivors are a subset of the previous database.
    for (lits, _) in &after {
        assert!(before.iter().any(|(l, _)| l == lits));
    }
}

#[test]
fn reduction_never_deletes_locked_reasons() {
    // Level-zero propagations lock their reason clauses for the lifetime
    // of the solver; reductions must keep them even at budget zero.
    let mut s = Solver::new();
    let a = s.new_var();
    let b = s.new_var();
    let c = s.new_var();
    let d = s.new_var();
    s.add_clause(&[a.neg(), b.pos(), c.pos()]);
    s.add_clause(&[a.pos()]);
    s.add_clause(&[b.neg()]);
    // `c` is now implied at level 0 with the ternary clause as its reason.
    assert_eq!(s.solve(), SolveResult::Sat);
    assert!(s.model_value(c));
    s.add_clause(&[c.neg(), d.pos()]);
    s.set_max_learnts(0);
    s.force_reduce();
    s.debug_check_invariants().unwrap();
    assert_eq!(s.solve(), SolveResult::Sat);
    assert!(s.model_value(c) && s.model_value(d));
}

#[test]
fn solver_correct_under_aggressive_reduction() {
    // Differential run with a pathologically small learnt budget: clause
    // deletion must never change verdicts.
    let mut rng = XorShift(0xdead_beef_0bad_cafe);
    for round in 0..150 {
        let num_vars = 6 + (round % 6);
        let num_clauses = 2 + (rng.below(5 * num_vars as u64) as usize);
        let clauses = random_3sat(&mut rng, num_vars, num_clauses);
        let oracle = solve_dpll(num_vars, &clauses);
        let mut s = build(num_vars, &clauses);
        s.set_max_learnts(2);
        let got = s.solve();
        assert_eq!(
            oracle.is_some(),
            got == SolveResult::Sat,
            "round {round}: {clauses:?}"
        );
        if got == SolveResult::Sat {
            let model: Vec<bool> = (0..num_vars).map(|i| s.model_value(v(i))).collect();
            assert!(evaluate(&clauses, &model), "round {round}: non-model");
        }
        s.debug_check_invariants().unwrap();
    }
}

#[test]
fn lemma_counter_tracks_add_lemma() {
    let mut s = Solver::new();
    let a = s.new_var();
    let b = s.new_var();
    let c = s.new_var();
    assert!(s.add_lemma(&[a.neg(), b.neg(), c.pos()]));
    assert!(s.add_lemma(&[a.pos(), b.pos()]));
    assert_eq!(s.stats().lemmas_added, 2);
    assert_eq!(s.stats().conflicts, 0);
    s.debug_check_invariants().unwrap();
}

#[test]
fn stats_aggregation_covers_new_counters() {
    let mut x = crate::SolverStats {
        learnt_kept: 1,
        learnt_deleted: 2,
        lemmas_added: 3,
        ..Default::default()
    };
    let y = crate::SolverStats {
        learnt_kept: 10,
        learnt_deleted: 20,
        lemmas_added: 30,
        conflicts: 5,
        ..Default::default()
    };
    x += y;
    assert_eq!(
        (x.learnt_kept, x.learnt_deleted, x.lemmas_added, x.conflicts),
        (11, 22, 33, 5)
    );
    let total: crate::SolverStats = [x, y].into_iter().sum();
    assert_eq!(total.lemmas_added, 63);
}

// ---------------------------------------------------------------------------
// Differential testing against the DPLL oracle.
// ---------------------------------------------------------------------------

/// Small deterministic xorshift generator so the test needs no external
/// crates at unit-test level.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn random_3sat(rng: &mut XorShift, num_vars: usize, num_clauses: usize) -> Vec<Vec<Lit>> {
    (0..num_clauses)
        .map(|_| {
            (0..3)
                .map(|_| {
                    let var = Var::from_index(rng.below(num_vars as u64) as usize);
                    var.lit(rng.below(2) == 0)
                })
                .collect()
        })
        .collect()
}

#[test]
fn cdcl_agrees_with_dpll_on_random_3sat() {
    let mut rng = XorShift(0x5eed_cafe_f00d_0001);
    for round in 0..300 {
        let num_vars = 3 + (round % 8);
        // Around the phase-transition ratio 4.26 plus sparser/denser mixes.
        let num_clauses = 1 + (rng.below(5 * num_vars as u64) as usize);
        let clauses = random_3sat(&mut rng, num_vars, num_clauses);
        let oracle = solve_dpll(num_vars, &clauses);
        let mut s = build(num_vars, &clauses);
        let got = s.solve();
        match (&oracle, got) {
            (Some(_), SolveResult::Sat) => {
                let model: Vec<bool> = (0..num_vars).map(|i| s.model_value(v(i))).collect();
                assert!(
                    evaluate(&clauses, &model),
                    "CDCL produced a non-model in round {round}: {clauses:?}"
                );
            }
            (None, SolveResult::Unsat) => {}
            _ => panic!(
                "solver disagreement in round {round}: oracle={:?} cdcl={:?}\nclauses={clauses:?}",
                oracle.is_some(),
                got
            ),
        }
    }
}

#[test]
fn cdcl_assumptions_agree_with_clause_addition() {
    let mut rng = XorShift(0xabcd_1234_5678_9def);
    for round in 0..200 {
        let num_vars = 4 + (round % 5);
        let num_clauses = 2 + (rng.below(4 * num_vars as u64) as usize);
        let clauses = random_3sat(&mut rng, num_vars, num_clauses);
        // Pick one or two assumption literals.
        let n_assume = 1 + (rng.below(2) as usize);
        let assumptions: Vec<Lit> = (0..n_assume)
            .map(|_| Var::from_index(rng.below(num_vars as u64) as usize).lit(rng.below(2) == 0))
            .collect();
        let mut s = build(num_vars, &clauses);
        let with_assumptions = s.solve_with_assumptions(&assumptions);
        // Reference: add the assumptions as unit clauses to a fresh solver.
        let mut hard = clauses.clone();
        for &a in &assumptions {
            hard.push(vec![a]);
        }
        let oracle = solve_dpll(num_vars, &hard);
        assert_eq!(
            with_assumptions == SolveResult::Sat,
            oracle.is_some(),
            "round {round}: assumptions {assumptions:?} over {clauses:?}"
        );
        // The solver must remain usable and consistent with the
        // unconstrained instance afterwards.
        let base = solve_dpll(num_vars, &clauses);
        assert_eq!(s.solve() == SolveResult::Sat, base.is_some());
    }
}

#[test]
fn enumeration_counts_match_dpll_model_count() {
    let mut rng = XorShift(0x0123_4567_89ab_cdef);
    for round in 0..120 {
        let num_vars = 3 + (round % 4); // <= 6 vars: count all models
        let num_clauses = 1 + (rng.below(3 * num_vars as u64) as usize);
        let clauses = random_3sat(&mut rng, num_vars, num_clauses);
        // Count models by brute force.
        let mut expected = 0usize;
        for bits in 0..(1u32 << num_vars) {
            let model: Vec<bool> = (0..num_vars).map(|i| bits >> i & 1 == 1).collect();
            if evaluate(&clauses, &model) {
                expected += 1;
            }
        }
        let mut s = build(num_vars, &clauses);
        let all: Vec<Var> = (0..num_vars).map(v).collect();
        let mut seen = std::collections::HashSet::new();
        let r = s.for_each_model(&all, 1 << 16, |m| {
            assert!(seen.insert(m.to_vec()), "duplicate model in round {round}");
            true
        });
        assert_eq!(
            r,
            Enumeration::Complete(expected),
            "round {round}: {clauses:?}"
        );
    }
}

#[test]
fn clone_and_clone_from_yield_independent_equivalent_solvers() {
    // Per-reader scratch relies on two properties of `Clone`: the copy
    // answers exactly like the original (clause database, learnt clauses
    // and phases included), and work done on the copy never leaks back.
    let mut rng = XorShift(0xfeed_f00d_dead_beef);
    let mut recycled = Solver::new(); // refreshed via clone_from each round
    for round in 0..60 {
        let num_vars = 4 + (round % 5);
        let num_clauses = 2 + (rng.below(3 * num_vars as u64) as usize);
        let clauses = random_3sat(&mut rng, num_vars, num_clauses);
        let mut shared = build(num_vars, &clauses);
        let shared_result = shared.solve(); // accumulate learnt state first
        let mut fresh = shared.clone();
        recycled.clone_from(&shared); // reuses the previous round's buffers
        assert_eq!(fresh.num_vars(), shared.num_vars(), "round {round}");
        assert_eq!(fresh.num_clauses(), shared.num_clauses(), "round {round}");
        assert_eq!(
            recycled.num_clauses(),
            shared.num_clauses(),
            "round {round}"
        );
        // Both copies agree with the original on every single-assumption
        // entailment probe.
        for i in 0..num_vars {
            for lit in [v(i).pos(), v(i).neg()] {
                let want = shared.solve_with_assumptions(&[lit]);
                assert_eq!(fresh.solve_with_assumptions(&[lit]), want, "round {round}");
                assert_eq!(
                    recycled.solve_with_assumptions(&[lit]),
                    want,
                    "round {round}"
                );
            }
        }
        // Mutating a copy (extra unit lemma) leaves the original untouched.
        if shared_result == SolveResult::Sat {
            let pinned = v(0).pos();
            fresh.add_clause(&[pinned]);
            let _ = fresh.solve();
            assert_eq!(shared.solve(), SolveResult::Sat, "round {round}");
        }
    }
}

// ---------------------------------------------------------------------------
// Cooperative work budgets.
// ---------------------------------------------------------------------------

#[test]
fn unbounded_limits_are_recognized() {
    use crate::Limits;
    assert!(Limits::default().is_unbounded());
    assert!(!Limits {
        max_conflicts: Some(1),
        ..Default::default()
    }
    .is_unbounded());
    assert!(!Limits {
        max_props: Some(1),
        ..Default::default()
    }
    .is_unbounded());
    assert!(!Limits {
        stop: Some(std::sync::Arc::new(std::sync::atomic::AtomicBool::new(
            false
        ))),
        ..Default::default()
    }
    .is_unbounded());
}

#[test]
fn raised_stop_flag_interrupts_before_any_work() {
    use crate::{Limits, SolveOutcome};
    let mut rng = XorShift(0x5702_f1a6_0000_0001);
    let clauses = random_3sat(&mut rng, 8, 30);
    let mut s = build(8, &clauses);
    let flag = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
    let limits = Limits {
        stop: Some(flag.clone()),
        ..Default::default()
    };
    let before = s.stats().decisions;
    assert_eq!(s.solve_limited(&limits), SolveOutcome::Interrupted);
    assert_eq!(s.stats().decisions, before, "interrupt must precede search");
    // Lowering the flag lets the same call signature finish the solve.
    flag.store(false, std::sync::atomic::Ordering::Relaxed);
    let finished = s.solve_limited(&limits);
    assert_ne!(finished, SolveOutcome::Interrupted);
    assert_eq!(
        finished == SolveOutcome::Sat,
        solve_dpll(8, &clauses).is_some()
    );
}

#[test]
fn propagation_budget_interrupts_mid_search() {
    use crate::{Limits, SolveOutcome};
    // A chain a -> b -> c -> d forces propagations once `a` is decided.
    let mut s = Solver::new();
    let vars: Vec<Var> = (0..8).map(|_| s.new_var()).collect();
    for w in vars.windows(2) {
        s.add_clause(&[w[0].neg(), w[1].pos()]);
    }
    let limits = Limits {
        max_props: Some(1),
        ..Default::default()
    };
    assert_eq!(s.solve_limited(&limits), SolveOutcome::Interrupted);
    // Unbounded retry resumes and completes.
    assert_eq!(s.solve(), SolveResult::Sat);
}

#[test]
fn escalating_conflict_budgets_never_flip_the_verdict() {
    use crate::{Limits, SolveOutcome};
    // Warm resume: retry the SAME solver with budgets 1, 2, 4, ... and
    // assert the first decided outcome equals the unbounded verdict.
    let mut rng = XorShift(0x1717_c0de_beef_0042);
    for round in 0..150 {
        let num_vars = 5 + (round % 6);
        let num_clauses = 2 + (rng.below(5 * num_vars as u64) as usize);
        let clauses = random_3sat(&mut rng, num_vars, num_clauses);
        let oracle = solve_dpll(num_vars, &clauses);
        let mut s = build(num_vars, &clauses);
        let mut budget = 1u64;
        let decided = loop {
            let limits = Limits {
                max_conflicts: Some(budget),
                max_props: Some(budget * 16),
                ..Default::default()
            };
            match s.solve_limited(&limits) {
                SolveOutcome::Interrupted => {
                    s.debug_check_invariants().unwrap();
                    budget *= 2;
                }
                decided => break decided,
            }
        };
        assert_eq!(
            decided == SolveOutcome::Sat,
            oracle.is_some(),
            "round {round}: warm resume flipped the verdict on {clauses:?}"
        );
        if decided == SolveOutcome::Sat {
            let model: Vec<bool> = (0..num_vars).map(|i| s.model_value(v(i))).collect();
            assert!(evaluate(&clauses, &model), "round {round}: non-model");
        }
    }
}
