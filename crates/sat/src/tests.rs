//! Solver-level tests: unit tests for CDCL behaviour and differential tests
//! against the naive DPLL oracle on random instances.

use crate::dpll::evaluate;
use crate::{solve_dpll, Enumeration, Lit, SolveResult, Solver, Var};

fn build(num_vars: usize, clauses: &[Vec<Lit>]) -> Solver {
    let mut s = Solver::new();
    for _ in 0..num_vars {
        s.new_var();
    }
    for c in clauses {
        s.add_clause(c);
    }
    s
}

fn v(i: usize) -> Var {
    Var::from_index(i)
}

#[test]
fn empty_instance_is_sat() {
    let mut s = Solver::new();
    assert_eq!(s.solve(), SolveResult::Sat);
}

#[test]
fn single_unit_clause() {
    let mut s = Solver::new();
    let a = s.new_var();
    assert!(s.add_clause(&[a.neg()]));
    assert_eq!(s.solve(), SolveResult::Sat);
    assert!(!s.model_value(a));
}

#[test]
fn contradictory_units_unsat() {
    let mut s = Solver::new();
    let a = s.new_var();
    assert!(s.add_clause(&[a.pos()]));
    assert!(!s.add_clause(&[a.neg()]));
    assert_eq!(s.solve(), SolveResult::Unsat);
}

#[test]
fn tautological_clause_is_ignored() {
    let mut s = Solver::new();
    let a = s.new_var();
    assert!(s.add_clause(&[a.pos(), a.neg()]));
    assert_eq!(s.num_clauses(), 0);
    assert_eq!(s.solve(), SolveResult::Sat);
}

#[test]
fn duplicate_literals_are_merged() {
    let mut s = Solver::new();
    let a = s.new_var();
    let b = s.new_var();
    assert!(s.add_clause(&[a.pos(), a.pos(), b.pos()]));
    assert!(s.add_clause(&[a.neg()]));
    assert_eq!(s.solve(), SolveResult::Sat);
    assert!(s.model_value(b));
}

#[test]
fn implication_chain_propagates() {
    let n = 32;
    let mut s = Solver::new();
    let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
    s.add_clause(&[vars[0].pos()]);
    for w in vars.windows(2) {
        s.add_clause(&[w[0].neg(), w[1].pos()]);
    }
    assert_eq!(s.solve(), SolveResult::Sat);
    for &x in &vars {
        assert!(s.model_value(x));
    }
}

#[test]
fn pigeonhole_3_into_2_is_unsat() {
    // p[i][j]: pigeon i in hole j.  3 pigeons, 2 holes.
    let mut s = Solver::new();
    let p: Vec<Vec<Var>> = (0..3)
        .map(|_| (0..2).map(|_| s.new_var()).collect())
        .collect();
    for row in &p {
        s.add_clause(&[row[0].pos(), row[1].pos()]);
    }
    #[allow(clippy::needless_range_loop)] // j indexes two parallel rows
    for j in 0..2 {
        for i1 in 0..3 {
            for i2 in (i1 + 1)..3 {
                s.add_clause(&[p[i1][j].neg(), p[i2][j].neg()]);
            }
        }
    }
    assert_eq!(s.solve(), SolveResult::Unsat);
}

#[test]
fn pigeonhole_5_into_4_exercises_learning() {
    let (pigeons, holes) = (5usize, 4usize);
    let mut s = Solver::new();
    let p: Vec<Vec<Var>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| s.new_var()).collect())
        .collect();
    for row in &p {
        let lits: Vec<Lit> = row.iter().map(|v| v.pos()).collect();
        s.add_clause(&lits);
    }
    #[allow(clippy::needless_range_loop)] // j indexes parallel rows
    for j in 0..holes {
        for i1 in 0..pigeons {
            for i2 in (i1 + 1)..pigeons {
                s.add_clause(&[p[i1][j].neg(), p[i2][j].neg()]);
            }
        }
    }
    assert_eq!(s.solve(), SolveResult::Unsat);
    assert!(s.stats().conflicts > 0, "should have required learning");
}

#[test]
fn assumptions_restrict_without_committing() {
    let mut s = Solver::new();
    let a = s.new_var();
    let b = s.new_var();
    s.add_clause(&[a.pos(), b.pos()]);
    assert_eq!(s.solve_with_assumptions(&[a.neg()]), SolveResult::Sat);
    assert!(s.model_value(b));
    assert_eq!(
        s.solve_with_assumptions(&[a.neg(), b.neg()]),
        SolveResult::Unsat
    );
    // The instance itself is still satisfiable afterwards.
    assert_eq!(s.solve(), SolveResult::Sat);
    assert_eq!(s.solve_with_assumptions(&[a.pos()]), SolveResult::Sat);
}

#[test]
fn assumption_of_entailed_literal() {
    let mut s = Solver::new();
    let a = s.new_var();
    let b = s.new_var();
    s.add_clause(&[a.pos()]);
    s.add_clause(&[a.neg(), b.pos()]);
    // Both assumptions are already consequences.
    assert_eq!(
        s.solve_with_assumptions(&[a.pos(), b.pos()]),
        SolveResult::Sat
    );
    assert_eq!(s.solve_with_assumptions(&[b.neg()]), SolveResult::Unsat);
}

#[test]
fn entailment_via_assumptions() {
    // (a ∨ b) ∧ (¬a ∨ c) ∧ (¬b ∨ c) entails c.
    let mut s = Solver::new();
    let a = s.new_var();
    let b = s.new_var();
    let c = s.new_var();
    s.add_clause(&[a.pos(), b.pos()]);
    s.add_clause(&[a.neg(), c.pos()]);
    s.add_clause(&[b.neg(), c.pos()]);
    assert_eq!(s.solve_with_assumptions(&[c.neg()]), SolveResult::Unsat);
    assert_eq!(s.solve_with_assumptions(&[c.pos()]), SolveResult::Sat);
}

#[test]
fn model_enumeration_counts_projections() {
    // Free variables a, b and a constrained c = a ∨ b.
    let mut s = Solver::new();
    let a = s.new_var();
    let b = s.new_var();
    let c = s.new_var();
    s.add_clause(&[c.neg(), a.pos(), b.pos()]);
    s.add_clause(&[a.neg(), c.pos()]);
    s.add_clause(&[b.neg(), c.pos()]);
    let mut seen = Vec::new();
    let result = s.for_each_model(&[a, b], 100, |m| {
        seen.push(m.to_vec());
        true
    });
    assert_eq!(result, Enumeration::Complete(4));
    seen.sort();
    assert_eq!(
        seen,
        vec![
            vec![false, false],
            vec![false, true],
            vec![true, false],
            vec![true, true]
        ]
    );
}

#[test]
fn model_enumeration_respects_limit_and_stop() {
    let mut s = build(3, &[]);
    let r = s.for_each_model(&[v(0), v(1), v(2)], 3, |_| true);
    assert_eq!(r, Enumeration::LimitReached(3));

    let mut s2 = build(3, &[]);
    let r2 = s2.for_each_model(&[v(0), v(1), v(2)], 100, |_| false);
    assert_eq!(r2, Enumeration::Stopped(1));
}

#[test]
fn enumeration_with_empty_projection() {
    let mut s = build(2, &[vec![v(0).pos()]]);
    let r = s.for_each_model(&[], 10, |m| {
        assert!(m.is_empty());
        true
    });
    assert_eq!(r, Enumeration::Complete(1));
}

#[test]
fn enumeration_of_unsat_instance() {
    let mut s = build(1, &[vec![v(0).pos()], vec![v(0).neg()]]);
    let r = s.for_each_model(&[v(0)], 10, |_| true);
    assert_eq!(r, Enumeration::Complete(0));
}

#[test]
fn cloned_solver_is_independent() {
    let mut s = Solver::new();
    let a = s.new_var();
    let mut t = s.clone();
    assert!(s.add_clause(&[a.pos()]));
    assert!(t.add_clause(&[a.neg()]));
    assert_eq!(s.solve(), SolveResult::Sat);
    assert_eq!(t.solve(), SolveResult::Sat);
    assert!(s.model_value(a));
    assert!(!t.model_value(a));
}

// ---------------------------------------------------------------------------
// Differential testing against the DPLL oracle.
// ---------------------------------------------------------------------------

/// Small deterministic xorshift generator so the test needs no external
/// crates at unit-test level.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn random_3sat(rng: &mut XorShift, num_vars: usize, num_clauses: usize) -> Vec<Vec<Lit>> {
    (0..num_clauses)
        .map(|_| {
            (0..3)
                .map(|_| {
                    let var = Var::from_index(rng.below(num_vars as u64) as usize);
                    var.lit(rng.below(2) == 0)
                })
                .collect()
        })
        .collect()
}

#[test]
fn cdcl_agrees_with_dpll_on_random_3sat() {
    let mut rng = XorShift(0x5eed_cafe_f00d_0001);
    for round in 0..300 {
        let num_vars = 3 + (round % 8);
        // Around the phase-transition ratio 4.26 plus sparser/denser mixes.
        let num_clauses = 1 + (rng.below(5 * num_vars as u64) as usize);
        let clauses = random_3sat(&mut rng, num_vars, num_clauses);
        let oracle = solve_dpll(num_vars, &clauses);
        let mut s = build(num_vars, &clauses);
        let got = s.solve();
        match (&oracle, got) {
            (Some(_), SolveResult::Sat) => {
                let model: Vec<bool> = (0..num_vars).map(|i| s.model_value(v(i))).collect();
                assert!(
                    evaluate(&clauses, &model),
                    "CDCL produced a non-model in round {round}: {clauses:?}"
                );
            }
            (None, SolveResult::Unsat) => {}
            _ => panic!(
                "solver disagreement in round {round}: oracle={:?} cdcl={:?}\nclauses={clauses:?}",
                oracle.is_some(),
                got
            ),
        }
    }
}

#[test]
fn cdcl_assumptions_agree_with_clause_addition() {
    let mut rng = XorShift(0xabcd_1234_5678_9def);
    for round in 0..200 {
        let num_vars = 4 + (round % 5);
        let num_clauses = 2 + (rng.below(4 * num_vars as u64) as usize);
        let clauses = random_3sat(&mut rng, num_vars, num_clauses);
        // Pick one or two assumption literals.
        let n_assume = 1 + (rng.below(2) as usize);
        let assumptions: Vec<Lit> = (0..n_assume)
            .map(|_| Var::from_index(rng.below(num_vars as u64) as usize).lit(rng.below(2) == 0))
            .collect();
        let mut s = build(num_vars, &clauses);
        let with_assumptions = s.solve_with_assumptions(&assumptions);
        // Reference: add the assumptions as unit clauses to a fresh solver.
        let mut hard = clauses.clone();
        for &a in &assumptions {
            hard.push(vec![a]);
        }
        let oracle = solve_dpll(num_vars, &hard);
        assert_eq!(
            with_assumptions == SolveResult::Sat,
            oracle.is_some(),
            "round {round}: assumptions {assumptions:?} over {clauses:?}"
        );
        // The solver must remain usable and consistent with the
        // unconstrained instance afterwards.
        let base = solve_dpll(num_vars, &clauses);
        assert_eq!(s.solve() == SolveResult::Sat, base.is_some());
    }
}

#[test]
fn enumeration_counts_match_dpll_model_count() {
    let mut rng = XorShift(0x0123_4567_89ab_cdef);
    for round in 0..120 {
        let num_vars = 3 + (round % 4); // <= 6 vars: count all models
        let num_clauses = 1 + (rng.below(3 * num_vars as u64) as usize);
        let clauses = random_3sat(&mut rng, num_vars, num_clauses);
        // Count models by brute force.
        let mut expected = 0usize;
        for bits in 0..(1u32 << num_vars) {
            let model: Vec<bool> = (0..num_vars).map(|i| bits >> i & 1 == 1).collect();
            if evaluate(&clauses, &model) {
                expected += 1;
            }
        }
        let mut s = build(num_vars, &clauses);
        let all: Vec<Var> = (0..num_vars).map(v).collect();
        let mut seen = std::collections::HashSet::new();
        let r = s.for_each_model(&all, 1 << 16, |m| {
            assert!(seen.insert(m.to_vec()), "duplicate model in round {round}");
            true
        });
        assert_eq!(
            r,
            Enumeration::Complete(expected),
            "round {round}: {clauses:?}"
        );
    }
}
