//! Durable entity-sharded stores: N [`DurableEngine`]s, one directory
//! each, behind one front door.
//!
//! A sharded store directory looks like:
//!
//! ```text
//! store/
//!   shards.meta          # shard count, written last at create
//!   shard-000/           # a complete DurableEngine store
//!     snapshot-<seq>.cur
//!     wal.log
//!   shard-001/
//!   …
//! ```
//!
//! Each shard is a full, self-contained [`DurableEngine`] store —
//! snapshots, WAL, rotation, fail-stop poisoning — holding the
//! sub-specification of its entities under the routing plan of
//! [`currency_reason::shard`] (copy closures co-located, shard-local
//! tuple ids interleaved into the global id space).  Because the shards
//! are semantically independent, so are their failure domains: a fault
//! in one shard's WAL poisons *that shard's* store and recovery; the
//! others recover untouched (the chaos suite pins this).
//!
//! **Recovery is parallel**: [`ShardedStore::open`] opens every shard on
//! its own thread, so a replay-bound reopen takes roughly
//! `max(shard replay)` instead of `sum(shard replay)` —
//! [`ShardedStore::open_sequential`] keeps the one-at-a-time path for
//! comparison benchmarks (and for deterministic-op-order chaos
//! schedules).  The routing plan is *not* persisted: it is re-derived
//! from the recovered shard contents ([`ShardPlan::from_shards`]), which
//! agrees with the live plan for every entity that still has live
//! tuples.
//!
//! Writes route exactly as in [`currency_reason::shard`]: an
//! entity-anchored delta lands in one shard's log, a structure-only
//! delta is broadcast to every shard's log.  A broadcast that fails
//! part-way (some shards logged it, some did not) poisons the *front
//! door* — per-shard recovery still works, but the shards' structure may
//! disagree until the operator resolves the partial batch, so the
//! sharded store refuses further mutation
//! ([`ShardedStoreError::Poisoned`]).

use crate::durable::{DurableEngine, RecoveryReport, StoreOptions};
use crate::error::StoreError;
use crate::vfs::{RealVfs, Vfs};
use currency_core::{RelId, SpecDelta, Specification, Value};
use currency_obs::MetricsSnapshot;
use currency_query::Query;
use currency_reason::shard::{
    localize, scatter_ccqa, scatter_certain_answers, scatter_cop, scatter_cps, scatter_dcip,
    sharded_stats, split_spec, RoutedDelta, ShardError, ShardPlan, ShardedApplyReport,
    ShardedCompactReport, ShardedCompactStepReport, ShardedStats, SpecImport,
};
use currency_reason::{CertainAnswers, CompactBudget, CurrencyEngine, CurrencyOrderQuery, Options};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic first line of the `shards.meta` file.
const META_MAGIC: &str = "currency-sharded-store v1";

/// A failure of the sharded durability layer.
#[derive(Debug)]
pub enum ShardedStoreError {
    /// The delta violated the routing policy (cross-shard, mixed).
    Routing(ShardError),
    /// One shard's store failed.
    Shard {
        /// The failing shard.
        shard: usize,
        /// The underlying store error.
        source: StoreError,
    },
    /// The `shards.meta` file is missing or malformed.
    Meta {
        /// The file involved.
        path: PathBuf,
        /// What is wrong with it.
        detail: String,
    },
    /// A filesystem operation outside any one shard failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The OS error.
        source: std::io::Error,
    },
    /// [`ShardedStore::create`] refused to overwrite an existing store.
    AlreadyExists {
        /// The directory involved.
        dir: PathBuf,
    },
    /// A broadcast apply failed after some shards had already logged it;
    /// the shards' structure may disagree, so the front door is
    /// fail-stop until the store is reopened and the partial batch
    /// resolved.
    Poisoned {
        /// The original failure.
        detail: String,
    },
}

impl fmt::Display for ShardedStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardedStoreError::Routing(e) => write!(f, "routing: {e}"),
            ShardedStoreError::Shard { shard, source } => write!(f, "shard {shard}: {source}"),
            ShardedStoreError::Meta { path, detail } => {
                write!(f, "{}: {detail}", path.display())
            }
            ShardedStoreError::Io { path, source } => {
                write!(f, "I/O error on {}: {source}", path.display())
            }
            ShardedStoreError::AlreadyExists { dir } => write!(
                f,
                "{} already holds a sharded store (open it instead of creating)",
                dir.display()
            ),
            ShardedStoreError::Poisoned { detail } => write!(
                f,
                "sharded store is poisoned by a partial broadcast ({detail}); \
                 reopen it to recover the durable per-shard states"
            ),
        }
    }
}

impl std::error::Error for ShardedStoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardedStoreError::Routing(e) => Some(e),
            ShardedStoreError::Shard { source, .. } => Some(source),
            ShardedStoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<ShardError> for ShardedStoreError {
    fn from(e: ShardError) -> ShardedStoreError {
        ShardedStoreError::Routing(e)
    }
}

/// The directory of shard `k` inside a sharded store.
fn shard_dir(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:03}"))
}

fn meta_path(dir: &Path) -> PathBuf {
    dir.join("shards.meta")
}

/// Read and parse `shards.meta`, returning the shard count.
fn read_meta(vfs: &dyn Vfs, dir: &Path) -> Result<usize, ShardedStoreError> {
    let path = meta_path(dir);
    let mut file = vfs
        .open_read_write(&path)
        .map_err(|source| ShardedStoreError::Io {
            path: path.clone(),
            source,
        })?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)
        .map_err(|source| ShardedStoreError::Io {
            path: path.clone(),
            source,
        })?;
    let text = String::from_utf8(bytes).map_err(|_| ShardedStoreError::Meta {
        path: path.clone(),
        detail: "not UTF-8".to_string(),
    })?;
    let mut lines = text.lines();
    if lines.next() != Some(META_MAGIC) {
        return Err(ShardedStoreError::Meta {
            path,
            detail: format!("bad magic (expected {META_MAGIC:?})"),
        });
    }
    let shards = lines
        .next()
        .and_then(|l| l.strip_prefix("shards "))
        .and_then(|n| n.parse::<usize>().ok())
        .filter(|&n| n >= 1);
    match shards {
        Some(n) => Ok(n),
        None => Err(ShardedStoreError::Meta {
            path,
            detail: "missing or malformed `shards <N>` line".to_string(),
        }),
    }
}

fn write_meta(
    vfs: &dyn Vfs,
    dir: &Path,
    shards: usize,
    sync: bool,
) -> Result<(), ShardedStoreError> {
    let path = meta_path(dir);
    let io = |source| ShardedStoreError::Io {
        path: path.clone(),
        source,
    };
    let mut file = vfs.create_truncate(&path).map_err(io)?;
    file.write_all(format!("{META_MAGIC}\nshards {shards}\n").as_bytes())
        .map_err(io)?;
    if sync {
        file.sync_all().map_err(io)?;
        vfs.sync_dir(dir).map_err(|source| ShardedStoreError::Io {
            path: dir.to_path_buf(),
            source,
        })?;
    }
    Ok(())
}

/// N [`DurableEngine`] shards behind one scatter-gather front door (see
/// module docs for the directory layout and failure model).
pub struct ShardedStore {
    dir: PathBuf,
    plan: ShardPlan,
    shards: Vec<DurableEngine>,
    import: SpecImport,
    poisoned: Option<String>,
}

impl ShardedStore {
    /// Create a fresh sharded store in `dir`: derive the routing plan,
    /// split `spec`, lay down one [`DurableEngine`] store per shard, and
    /// write `shards.meta` last — a crash mid-create leaves a directory
    /// [`ShardedStore::open`] refuses (no meta), to be wiped and retried.
    pub fn create(
        dir: &Path,
        spec: &Specification,
        shards: usize,
        engine_opts: &Options,
        store_opts: StoreOptions,
    ) -> Result<ShardedStore, ShardedStoreError> {
        ShardedStore::create_with_vfs(
            Arc::new(RealVfs),
            dir,
            spec,
            shards,
            engine_opts,
            store_opts,
        )
    }

    /// [`ShardedStore::create`] through an explicit [`Vfs`] (the chaos
    /// harness's entry point).
    pub fn create_with_vfs(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        spec: &Specification,
        shards: usize,
        engine_opts: &Options,
        store_opts: StoreOptions,
    ) -> Result<ShardedStore, ShardedStoreError> {
        vfs.create_dir_all(dir).map_err(|e| ShardedStoreError::Io {
            path: dir.to_path_buf(),
            source: e,
        })?;
        if read_meta(&*vfs, dir).is_ok() {
            return Err(ShardedStoreError::AlreadyExists {
                dir: dir.to_path_buf(),
            });
        }
        let plan = ShardPlan::from_spec(shards, spec);
        let (specs, import) = split_spec(spec, &plan);
        let engines = specs
            .into_iter()
            .enumerate()
            .map(|(k, sub)| {
                DurableEngine::create_with_vfs(
                    vfs.clone(),
                    &shard_dir(dir, k),
                    sub,
                    engine_opts,
                    store_opts,
                )
                .map_err(|source| ShardedStoreError::Shard { shard: k, source })
            })
            .collect::<Result<Vec<_>, _>>()?;
        write_meta(&*vfs, dir, plan.shards(), store_opts.sync_data)?;
        Ok(ShardedStore {
            dir: dir.to_path_buf(),
            plan,
            shards: engines,
            import,
            poisoned: None,
        })
    }

    /// Recover a sharded store, opening **all shards in parallel** (one
    /// thread per shard) — the reopen takes roughly the slowest shard's
    /// replay instead of the sum.  The routing plan is re-derived from
    /// the recovered contents.
    pub fn open(
        dir: &Path,
        engine_opts: &Options,
        store_opts: StoreOptions,
    ) -> Result<ShardedStore, ShardedStoreError> {
        ShardedStore::open_with_vfs(Arc::new(RealVfs), dir, engine_opts, store_opts, true)
    }

    /// Recover a sharded store shard-by-shard on the calling thread —
    /// the baseline the parallel-recovery benchmark compares against,
    /// and the path chaos schedules use (a scripted fault plan needs the
    /// deterministic operation order a single thread provides).
    pub fn open_sequential(
        dir: &Path,
        engine_opts: &Options,
        store_opts: StoreOptions,
    ) -> Result<ShardedStore, ShardedStoreError> {
        ShardedStore::open_with_vfs(Arc::new(RealVfs), dir, engine_opts, store_opts, false)
    }

    /// [`ShardedStore::open`] / [`ShardedStore::open_sequential`]
    /// through an explicit [`Vfs`].
    pub fn open_with_vfs(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        engine_opts: &Options,
        store_opts: StoreOptions,
        parallel: bool,
    ) -> Result<ShardedStore, ShardedStoreError> {
        let n = read_meta(&*vfs, dir)?;
        let engines: Vec<Result<DurableEngine, ShardedStoreError>> = if parallel {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..n)
                    .map(|k| {
                        let vfs = vfs.clone();
                        let dir = shard_dir(dir, k);
                        scope.spawn(move || {
                            DurableEngine::open_with_vfs(vfs, &dir, engine_opts, store_opts)
                                .map_err(|source| ShardedStoreError::Shard { shard: k, source })
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard open thread never panics"))
                    .collect()
            })
        } else {
            (0..n)
                .map(|k| {
                    DurableEngine::open_with_vfs(
                        vfs.clone(),
                        &shard_dir(dir, k),
                        engine_opts,
                        store_opts,
                    )
                    .map_err(|source| ShardedStoreError::Shard { shard: k, source })
                })
                .collect()
        };
        let engines = engines.into_iter().collect::<Result<Vec<_>, _>>()?;
        let plan = ShardPlan::from_shards(n, engines.iter().map(|e| e.spec()));
        Ok(ShardedStore {
            dir: dir.to_path_buf(),
            plan,
            shards: engines,
            import: SpecImport::default(),
            poisoned: None,
        })
    }

    fn check_poison(&self) -> Result<(), ShardedStoreError> {
        match &self.poisoned {
            None => Ok(()),
            Some(detail) => Err(ShardedStoreError::Poisoned {
                detail: detail.clone(),
            }),
        }
    }

    /// Route one delta (global ids) and apply it durably: an
    /// entity-anchored delta becomes one shard's log-then-apply, a
    /// structure-only delta is broadcast to every shard (validated
    /// everywhere before any shard logs it; a part-way failure after
    /// that poisons the front door — see module docs).
    pub fn apply(&mut self, delta: &SpecDelta) -> Result<ShardedApplyReport, ShardedStoreError> {
        self.check_poison()?;
        let n = self.shards.len();
        let specs: Vec<&Specification> = self.shards.iter().map(|s| s.spec()).collect();
        let localized = localize(delta, &self.plan, &specs)?;
        drop(specs);
        let mut report = ShardedApplyReport::default();
        match localized.routed {
            RoutedDelta::Empty => {}
            RoutedDelta::Single { shard, delta } => {
                let r = self.shards[shard]
                    .apply(&delta)
                    .map_err(|source| ShardedStoreError::Shard { shard, source })?;
                report.shard = Some(shard);
                report.absorb(shard, n, r);
            }
            RoutedDelta::Broadcast { deltas } => {
                for (shard, d) in deltas.iter().enumerate() {
                    d.validate(self.shards[shard].spec()).map_err(|source| {
                        ShardedStoreError::Shard {
                            shard,
                            source: source.into(),
                        }
                    })?;
                }
                report.broadcast = true;
                for (shard, d) in deltas.iter().enumerate() {
                    match self.shards[shard].apply(d) {
                        Ok(r) => report.absorb(shard, n, r),
                        Err(source) => {
                            if shard > 0 {
                                self.poisoned =
                                    Some(format!("broadcast failed at shard {shard}: {source}"));
                            }
                            return Err(ShardedStoreError::Shard { shard, source });
                        }
                    }
                }
            }
        }
        for (eid, shard) in localized.placements {
            self.plan.place(eid, shard);
        }
        Ok(report)
    }

    /// Compact every shard, one at a time — each pause (and each logged
    /// remap record) is shard-local, never global.
    pub fn compact(&mut self) -> Result<ShardedCompactReport, ShardedStoreError> {
        self.check_poison()?;
        let mut per_shard = Vec::with_capacity(self.shards.len());
        for shard in 0..self.shards.len() {
            per_shard.push(
                self.shards[shard]
                    .compact()
                    .map_err(|source| ShardedStoreError::Shard { shard, source })?,
            );
        }
        Ok(ShardedCompactReport {
            shards: self.shards.len(),
            per_shard,
        })
    }

    /// Run one bounded compaction step on every shard, one at a time —
    /// each pause (and each logged step record) is shard-local, never
    /// global, and every shard drains at its own pace across repeated
    /// calls.
    pub fn compact_step(
        &mut self,
        budget: &CompactBudget,
    ) -> Result<ShardedCompactStepReport, ShardedStoreError> {
        self.check_poison()?;
        let mut per_shard = Vec::with_capacity(self.shards.len());
        for shard in 0..self.shards.len() {
            per_shard.push(
                self.shards[shard]
                    .compact_step(budget)
                    .map_err(|source| ShardedStoreError::Shard { shard, source })?,
            );
        }
        Ok(ShardedCompactStepReport {
            shards: self.shards.len(),
            per_shard,
        })
    }

    /// Flush every shard's group-commit buffer.
    pub fn flush(&mut self) -> Result<(), ShardedStoreError> {
        for (shard, s) in self.shards.iter_mut().enumerate() {
            s.flush()
                .map_err(|source| ShardedStoreError::Shard { shard, source })?;
        }
        Ok(())
    }

    fn engine_refs(&self) -> Vec<&CurrencyEngine<'static>> {
        self.shards.iter().map(|s| s.engine()).collect()
    }

    /// **CPS** across shards (all-shards AND, early exit).
    pub fn cps(&self) -> Result<bool, StoreError> {
        Ok(scatter_cps(&self.engine_refs())?)
    }

    /// **COP** across shards, over global tuple ids.
    pub fn cop(&self, query: &CurrencyOrderQuery) -> Result<bool, StoreError> {
        Ok(scatter_cop(&self.engine_refs(), query)?)
    }

    /// **DCIP** across shards.
    pub fn dcip(&self, rel: RelId) -> Result<bool, StoreError> {
        Ok(scatter_dcip(&self.engine_refs(), rel)?)
    }

    /// Certain current answers — union across shards.
    pub fn certain_answers(&self, query: &Query) -> Result<CertainAnswers, StoreError> {
        Ok(scatter_certain_answers(&self.engine_refs(), query)?)
    }

    /// **CCQA** — membership in the certain answers.
    pub fn ccqa(&self, query: &Query, tuple: &[Value]) -> Result<bool, StoreError> {
        Ok(scatter_ccqa(&self.engine_refs(), query, tuple)?)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard `k`'s durable engine (shard-local ids!).
    pub fn shard(&self, shard: usize) -> &DurableEngine {
        &self.shards[shard]
    }

    /// The routing plan.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The original → global id translation of [`ShardedStore::create`]
    /// (empty after an `open` — recovered stores speak global ids
    /// already).
    pub fn import(&self) -> &SpecImport {
        &self.import
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// What each shard's opening recovery did, in shard order.
    pub fn recoveries(&self) -> Vec<RecoveryReport> {
        self.shards.iter().map(|s| *s.recovery()).collect()
    }

    /// Per-shard + aggregate engine statistics, lock-free.
    pub fn stats(&self) -> ShardedStats {
        sharded_stats(&self.engine_refs())
    }

    /// Every shard's metrics, merged into one snapshot with each series
    /// labeled `shard="<k>"` — counters sum, gauges take the max,
    /// histograms merge bucket-wise.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot::merged(
            self.shards
                .iter()
                .enumerate()
                .map(|(k, s)| s.metrics().snapshot().with_label("shard", &k.to_string())),
        )
    }

    /// The merged metrics in Prometheus text exposition format.
    pub fn metrics_text(&self) -> String {
        self.metrics_snapshot().render_prometheus()
    }
}
