//! Error type of the durability layer.

use currency_core::wire::WireError;
use currency_core::CurrencyError;
use currency_reason::ReasonError;
use std::fmt;
use std::path::PathBuf;

/// Everything that can go wrong persisting or recovering a specification.
///
/// The durability contract is that **corruption and truncation are
/// errors, never panics or silently wrong states**: a torn log tail is
/// recovered from (it is the expected shape of a crash mid-write), while
/// a checksum mismatch anywhere else refuses the file with
/// [`StoreError::Corrupt`].
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The OS error.
        source: std::io::Error,
    },
    /// A file's framing or checksum is wrong (flipped bytes, a bad magic
    /// number, a mid-log CRC mismatch).
    Corrupt {
        /// The file involved.
        path: PathBuf,
        /// Byte offset of the first bad frame (0 for header corruption).
        offset: u64,
        /// What failed.
        detail: String,
    },
    /// The file was written by a different wire-format version.
    UnsupportedVersion {
        /// The file involved.
        path: PathBuf,
        /// The version found in its header.
        found: u32,
    },
    /// The directory holds no readable snapshot (it is not a store, or
    /// every snapshot generation failed its checksum).
    NoSnapshot {
        /// The directory searched.
        dir: PathBuf,
    },
    /// [`crate::DurableEngine::create`] refused to overwrite an existing
    /// store.
    AlreadyExists {
        /// The directory involved.
        dir: PathBuf,
    },
    /// A persisted payload failed to decode back into a model object.
    Wire(WireError),
    /// A logged delta no longer validates against the recovered
    /// specification — the log and snapshot are from diverging histories.
    ReplayInvalid {
        /// Sequence number of the offending record.
        seq: u64,
        /// The validation failure.
        source: CurrencyError,
    },
    /// Replay reproduced a different state than the log records claim
    /// (e.g. a compaction remap mismatch because the engine was reopened
    /// with different [`currency_reason::Options`] than it was written
    /// under).
    ReplayDiverged {
        /// Sequence number of the offending record.
        seq: u64,
        /// What diverged.
        detail: String,
    },
    /// The wrapped reasoning engine failed.
    Reason(ReasonError),
    /// A model-layer operation failed.
    Model(CurrencyError),
    /// A previous write failed partway, so the log and the in-memory
    /// engine can no longer be trusted to agree; the store is fail-stop
    /// until reopened (recovery rebuilds the one consistent state the
    /// durable files define).
    Poisoned {
        /// The original failure.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "I/O error on {}: {source}", path.display())
            }
            StoreError::Corrupt {
                path,
                offset,
                detail,
            } => write!(
                f,
                "{} is corrupt at byte {offset}: {detail}",
                path.display()
            ),
            StoreError::UnsupportedVersion { path, found } => write!(
                f,
                "{} uses wire-format version {found}, this build speaks {}",
                path.display(),
                currency_core::wire::WIRE_VERSION
            ),
            StoreError::NoSnapshot { dir } => {
                write!(f, "{} holds no readable snapshot", dir.display())
            }
            StoreError::AlreadyExists { dir } => write!(
                f,
                "{} already holds a store (open it instead of creating)",
                dir.display()
            ),
            StoreError::Wire(e) => write!(f, "persisted payload failed to decode: {e}"),
            StoreError::ReplayInvalid { seq, source } => write!(
                f,
                "log record #{seq} no longer validates against the recovered specification: {source}"
            ),
            StoreError::ReplayDiverged { seq, detail } => write!(
                f,
                "log replay diverged at record #{seq}: {detail} \
                 (was the store reopened with different engine options?)"
            ),
            StoreError::Reason(e) => write!(f, "engine error: {e}"),
            StoreError::Model(e) => write!(f, "model error: {e}"),
            StoreError::Poisoned { detail } => write!(
                f,
                "store is poisoned by an earlier write failure ({detail}); \
                 reopen it to recover the durable state"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Wire(e) => Some(e),
            StoreError::ReplayInvalid { source, .. } => Some(source),
            StoreError::Reason(e) => Some(e),
            StoreError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for StoreError {
    fn from(e: WireError) -> StoreError {
        StoreError::Wire(e)
    }
}

impl From<ReasonError> for StoreError {
    fn from(e: ReasonError) -> StoreError {
        StoreError::Reason(e)
    }
}

impl From<CurrencyError> for StoreError {
    fn from(e: CurrencyError) -> StoreError {
        StoreError::Model(e)
    }
}

/// Attach a path to a raw I/O error.
pub(crate) fn io_err(path: &std::path::Path, source: std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        source,
    }
}
