//! The append-only write-ahead log.
//!
//! ## File layout
//!
//! ```text
//! header:  magic "CURWAL01" (8 bytes) ‖ wire version (u32 LE)
//! frame*:  payload length (u32 LE) ‖ CRC-32 of payload (u32 LE) ‖ payload
//! ```
//!
//! Each frame's payload is one [`Record`]: a tag byte, the record's
//! monotonically increasing sequence number, and the wire-encoded body
//! ([`currency_core::wire`]).  Frames are written strictly append-only;
//! nothing in the file is ever updated in place, so the only states a
//! crash can leave behind are a clean prefix and (at most) one torn
//! frame at the tail.
//!
//! ## Torn-tail detection vs corruption
//!
//! [`Wal::open`] walks the frames front to back and classifies the first
//! bad one:
//!
//! * **torn tail** — the frame is *incomplete*: the header is cut short
//!   or the declared length runs past end-of-file.  This is the expected
//!   residue of a crash mid-append; the tail is truncated away and the
//!   log opens with the clean prefix.
//! * **corruption** — the frame is complete but its CRC (or its decoded
//!   payload) is wrong.  Bytes were altered after being fully written —
//!   that is not a crash artifact, and open refuses the file with
//!   [`StoreError::Corrupt`] rather than guess at the damage.
//!
//! ## Group commit
//!
//! Appends are buffered in memory and flushed (written + optionally
//! `fsync`ed) every `group_commit` records, amortizing the syscall and
//! sync cost across a batch — the classic group-commit trade: records in
//! an unflushed buffer are acknowledged to the in-process engine but not
//! yet durable, so a crash can lose at most the last `group_commit - 1`
//! acknowledged records, always a *suffix* (prefix consistency is never
//! at risk).  `group_commit = 1` (the default) makes every append
//! durable before [`Wal::append`] returns.

use crate::crc::crc32;
use crate::error::{io_err, StoreError};
use crate::vfs::{RealVfs, Vfs, VfsFile};
use currency_core::wire::{self, WireReader, WireWriter, WIRE_VERSION};
use currency_core::{CompactReport, CompactStepReport, SpecDelta};
use currency_obs::{Counter, Histogram, MetricsRegistry};
use std::io::SeekFrom;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"CURWAL01";

/// Header length: magic + wire version.
pub const WAL_HEADER_LEN: u64 = 12;

/// Per-frame overhead: payload length + CRC.
const FRAME_HEADER_LEN: usize = 8;

/// Sanity cap on a single frame's payload (a specification delta is tiny;
/// anything past this is a garbage length field, classified by position
/// like any other bad length).
const MAX_FRAME_LEN: u32 = 1 << 30;

const TAG_RECORD_DELTA: u8 = 0;
const TAG_RECORD_COMPACT: u8 = 1;
const TAG_RECORD_COMPACT_STEP: u8 = 2;

/// One logged operation.
#[derive(Clone, Debug)]
pub enum Record {
    /// A specification delta, logged **before** it is applied
    /// (write-ahead).
    Delta {
        /// Monotonic sequence number.
        seq: u64,
        /// The delta.
        delta: SpecDelta,
    },
    /// A compaction's remap tables, logged so post-compaction replay
    /// stays id-correct: every delta after this record speaks the
    /// compacted id space.
    Compact {
        /// Monotonic sequence number.
        seq: u64,
        /// `true` if the [`currency_reason::Options::auto_compact_tombstones`]
        /// policy triggered it from inside the preceding delta's apply
        /// (replay then *verifies* the rides-along compaction instead of
        /// issuing a second one).
        auto: bool,
        /// The translation tables the compaction produced.
        report: CompactReport,
    },
    /// One **bounded compaction step**'s slices, logged after the step
    /// ran: every delta after this record speaks the post-step id space.
    /// Replay re-executes the logged slice bounds verbatim (and verifies
    /// the outcome), so a recovered engine passes through the exact
    /// intermediate states of the original run — a crash between steps
    /// recovers to the mid-compaction state, not to either end.
    CompactStep {
        /// Monotonic sequence number.
        seq: u64,
        /// `true` if the [`currency_reason::Options::auto_compact_budget`]
        /// policy ran it from inside the preceding delta's apply.
        auto: bool,
        /// The step's slices and totals.
        step: CompactStepReport,
    },
}

impl Record {
    /// The record's sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            Record::Delta { seq, .. }
            | Record::Compact { seq, .. }
            | Record::CompactStep { seq, .. } => *seq,
        }
    }

    fn encode(&self) -> Vec<u8> {
        match self {
            Record::Delta { seq, delta } => encode_delta_payload(*seq, delta),
            Record::Compact { seq, auto, report } => encode_compact_payload(*seq, *auto, report),
            Record::CompactStep { seq, auto, step } => {
                encode_compact_step_payload(*seq, *auto, step)
            }
        }
    }

    fn decode(payload: &[u8]) -> Result<Record, StoreError> {
        let mut r = WireReader::new(payload);
        let record = match r.get_u8("record tag")? {
            TAG_RECORD_DELTA => Record::Delta {
                seq: r.get_u64("record seq")?,
                delta: wire::get_delta(&mut r)?,
            },
            TAG_RECORD_COMPACT => Record::Compact {
                seq: r.get_u64("record seq")?,
                auto: r.get_bool("compact auto flag")?,
                report: wire::get_compact_report(&mut r)?,
            },
            TAG_RECORD_COMPACT_STEP => Record::CompactStep {
                seq: r.get_u64("record seq")?,
                auto: r.get_bool("compact step auto flag")?,
                step: wire::get_compact_step(&mut r)?,
            },
            tag => {
                return Err(StoreError::Wire(currency_core::wire::WireError::BadTag {
                    what: "log record",
                    tag,
                }))
            }
        };
        r.expect_empty().map_err(StoreError::Wire)?;
        Ok(record)
    }
}

/// A delta record's payload, encoded from a borrow (the hot append path
/// never clones the delta into an owned [`Record`]).
fn encode_delta_payload(seq: u64, delta: &SpecDelta) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u8(TAG_RECORD_DELTA);
    w.put_u64(seq);
    wire::put_delta(&mut w, delta);
    w.into_bytes()
}

/// A compaction record's payload, encoded from a borrow.
fn encode_compact_payload(seq: u64, auto: bool, report: &CompactReport) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u8(TAG_RECORD_COMPACT);
    w.put_u64(seq);
    w.put_bool(auto);
    wire::put_compact_report(&mut w, report);
    w.into_bytes()
}

/// A compaction step record's payload, encoded from a borrow.
fn encode_compact_step_payload(seq: u64, auto: bool, step: &CompactStepReport) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u8(TAG_RECORD_COMPACT_STEP);
    w.put_u64(seq);
    w.put_bool(auto);
    wire::put_compact_step(&mut w, step);
    w.into_bytes()
}

/// What [`Wal::open`] found.
pub struct WalOpen {
    /// The log, positioned to append after the last valid frame.
    pub wal: Wal,
    /// Every valid record, in log order.
    pub records: Vec<Record>,
    /// Bytes of torn tail truncated away (0 on a clean log).
    pub torn_tail_bytes: u64,
}

/// The append-only log file (see module docs).
pub struct Wal {
    file: Box<dyn VfsFile>,
    path: PathBuf,
    /// Bytes durably framed on disk (header included).
    durable_len: u64,
    /// Frames awaiting the next flush.
    buf: Vec<u8>,
    /// Records inside `buf`.
    pending: usize,
    group_commit: usize,
    sync_data: bool,
    /// Set after a flush (or reset) failed partway: how much of the
    /// buffer reached the file is unknown, so *re*-flushing would risk
    /// appending duplicate frames.  Every later flush refuses until the
    /// log is reopened (reopen re-derives the durable prefix from disk).
    failed: bool,
    /// Optional timing instrumentation (see [`Wal::bind_metrics`]).
    obs: Option<WalObs>,
}

/// Metric handles the log records into when bound to a registry.
struct WalObs {
    append_ns: Arc<Histogram>,
    flush_ns: Arc<Histogram>,
    fsync_ns: Arc<Histogram>,
    appends_total: Arc<Counter>,
    flushes_total: Arc<Counter>,
}

impl Wal {
    /// Create a fresh log at `path` (truncating anything there), writing
    /// and syncing the header.
    pub fn create(path: &Path, group_commit: usize, sync_data: bool) -> Result<Wal, StoreError> {
        Wal::create_with(&RealVfs, path, group_commit, sync_data)
    }

    /// [`Wal::create`] through an explicit [`Vfs`] (fault injection,
    /// alternative filesystems).
    pub fn create_with(
        vfs: &dyn Vfs,
        path: &Path,
        group_commit: usize,
        sync_data: bool,
    ) -> Result<Wal, StoreError> {
        let mut file = vfs.create_truncate(path).map_err(|e| io_err(path, e))?;
        let mut header = Vec::with_capacity(WAL_HEADER_LEN as usize);
        header.extend_from_slice(WAL_MAGIC);
        header.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        file.write_all(&header).map_err(|e| io_err(path, e))?;
        if sync_data {
            file.sync_data().map_err(|e| io_err(path, e))?;
            // The new log's directory entry must survive power loss too.
            if let Some(dir) = path.parent() {
                vfs.sync_dir(dir).map_err(|e| io_err(dir, e))?;
            }
        }
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            durable_len: WAL_HEADER_LEN,
            buf: Vec::new(),
            pending: 0,
            group_commit: group_commit.max(1),
            sync_data,
            failed: false,
            obs: None,
        })
    }

    /// Open an existing log, parsing every frame: a torn tail is
    /// truncated away, any other framing or checksum damage is refused
    /// (see module docs for the classification).
    pub fn open(path: &Path, group_commit: usize, sync_data: bool) -> Result<WalOpen, StoreError> {
        Wal::open_with(&RealVfs, path, group_commit, sync_data)
    }

    /// [`Wal::open`] through an explicit [`Vfs`].
    pub fn open_with(
        vfs: &dyn Vfs,
        path: &Path,
        group_commit: usize,
        sync_data: bool,
    ) -> Result<WalOpen, StoreError> {
        let mut file = vfs.open_read_write(path).map_err(|e| io_err(path, e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(|e| io_err(path, e))?;
        if bytes.len() < WAL_HEADER_LEN as usize || &bytes[..8] != WAL_MAGIC {
            return Err(StoreError::Corrupt {
                path: path.to_path_buf(),
                offset: 0,
                detail: "bad or truncated log header".to_string(),
            });
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != WIRE_VERSION {
            return Err(StoreError::UnsupportedVersion {
                path: path.to_path_buf(),
                found: version,
            });
        }
        let mut records = Vec::new();
        let mut pos = WAL_HEADER_LEN as usize;
        let mut torn_tail_bytes = 0u64;
        let mut last_seq = 0u64;
        while pos < bytes.len() {
            let remaining = bytes.len() - pos;
            if remaining < FRAME_HEADER_LEN {
                // Frame header cut short: a torn append.
                torn_tail_bytes = remaining as u64;
                break;
            }
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
            let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
            let body_start = pos + FRAME_HEADER_LEN;
            if len > MAX_FRAME_LEN || (len as usize) > bytes.len() - body_start {
                // Declared length runs past end-of-file: the append never
                // finished.  (A garbage length from a flipped byte lands
                // here too when it points past EOF — the suffix is
                // unreadable either way, and dropping it keeps the clean
                // prefix.)
                torn_tail_bytes = remaining as u64;
                break;
            }
            let payload = &bytes[body_start..body_start + len as usize];
            if crc32(payload) != crc {
                // The frame is complete but its bytes changed after the
                // write: corruption, not a crash artifact.
                return Err(StoreError::Corrupt {
                    path: path.to_path_buf(),
                    offset: pos as u64,
                    detail: "frame checksum mismatch".to_string(),
                });
            }
            let record = Record::decode(payload).map_err(|e| match e {
                StoreError::Wire(w) => StoreError::Corrupt {
                    path: path.to_path_buf(),
                    offset: pos as u64,
                    detail: format!("checksummed frame decodes to garbage: {w}"),
                },
                other => other,
            })?;
            if record.seq() <= last_seq && !(records.is_empty() && record.seq() == 0) {
                return Err(StoreError::Corrupt {
                    path: path.to_path_buf(),
                    offset: pos as u64,
                    detail: format!(
                        "sequence numbers not increasing ({} after {last_seq})",
                        record.seq()
                    ),
                });
            }
            last_seq = record.seq();
            records.push(record);
            pos = body_start + len as usize;
        }
        let durable_len = pos as u64;
        if torn_tail_bytes > 0 {
            file.set_len(durable_len).map_err(|e| io_err(path, e))?;
            if sync_data {
                file.sync_data().map_err(|e| io_err(path, e))?;
            }
        }
        file.seek(SeekFrom::Start(durable_len))
            .map_err(|e| io_err(path, e))?;
        Ok(WalOpen {
            wal: Wal {
                file,
                path: path.to_path_buf(),
                durable_len,
                buf: Vec::new(),
                pending: 0,
                group_commit: group_commit.max(1),
                sync_data,
                failed: false,
                obs: None,
            },
            records,
            torn_tail_bytes,
        })
    }

    /// Append a record, flushing when the group-commit batch fills.
    pub fn append(&mut self, record: &Record) -> Result<(), StoreError> {
        self.append_payload(record.encode())
    }

    /// Append a delta record encoded straight from the borrow (no clone
    /// into an owned [`Record`] on the hot path).
    pub fn append_delta(&mut self, seq: u64, delta: &SpecDelta) -> Result<(), StoreError> {
        self.append_payload(encode_delta_payload(seq, delta))
    }

    /// Append a compaction record encoded straight from the borrow.
    pub fn append_compact(
        &mut self,
        seq: u64,
        auto: bool,
        report: &CompactReport,
    ) -> Result<(), StoreError> {
        self.append_payload(encode_compact_payload(seq, auto, report))
    }

    /// Append a compaction step record encoded straight from the borrow.
    pub fn append_compact_step(
        &mut self,
        seq: u64,
        auto: bool,
        step: &CompactStepReport,
    ) -> Result<(), StoreError> {
        self.append_payload(encode_compact_step_payload(seq, auto, step))
    }

    fn append_payload(&mut self, payload: Vec<u8>) -> Result<(), StoreError> {
        let start = self.obs.as_ref().map(|_| Instant::now());
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&crc32(&payload).to_le_bytes());
        self.buf.extend_from_slice(&payload);
        self.pending += 1;
        let result = if self.pending >= self.group_commit {
            self.flush()
        } else {
            Ok(())
        };
        if let (Some(start), Some(obs)) = (start, self.obs.as_ref()) {
            obs.append_ns.record(start.elapsed().as_nanos() as u64);
            obs.appends_total.inc();
        }
        result
    }

    /// Write (and, when configured, `fsync`) every buffered frame.  The
    /// durability point: records are crash-safe once this returns.
    ///
    /// A flush that fails partway leaves the log **fail-stop**: how many
    /// buffered bytes reached the file is unknown, so retrying could
    /// append the same frames twice (a reopen would then refuse the log
    /// as corrupt).  Every later flush returns an error until the log is
    /// reopened and the durable prefix re-derived from disk.
    pub fn flush(&mut self) -> Result<(), StoreError> {
        if self.failed {
            return Err(io_err(
                &self.path,
                std::io::Error::other("log is fail-stop after an earlier flush failure"),
            ));
        }
        if self.buf.is_empty() {
            return Ok(());
        }
        let start = self.obs.as_ref().map(|_| Instant::now());
        if let Err(e) = self.flush_inner() {
            self.failed = true;
            return Err(e);
        }
        if let (Some(start), Some(obs)) = (start, self.obs.as_ref()) {
            obs.flush_ns.record(start.elapsed().as_nanos() as u64);
            obs.flushes_total.inc();
        }
        self.durable_len += self.buf.len() as u64;
        self.buf.clear();
        self.pending = 0;
        Ok(())
    }

    fn flush_inner(&mut self) -> Result<(), StoreError> {
        self.file
            .write_all(&self.buf)
            .map_err(|e| io_err(&self.path, e))?;
        if self.sync_data {
            let start = self.obs.as_ref().map(|_| Instant::now());
            self.file.sync_data().map_err(|e| io_err(&self.path, e))?;
            if let (Some(start), Some(obs)) = (start, self.obs.as_ref()) {
                obs.fsync_ns.record(start.elapsed().as_nanos() as u64);
            }
        }
        Ok(())
    }

    /// Total log size if everything buffered were flushed — the rotation
    /// policy's measure.
    pub fn total_len(&self) -> u64 {
        self.durable_len + self.buf.len() as u64
    }

    /// Records appended but not yet flushed.
    pub fn pending_records(&self) -> usize {
        self.pending
    }

    /// Discard every frame, truncating back to the header (called after a
    /// snapshot made the log's prefix redundant).  Flushes pending frames
    /// first so the caller cannot silently drop acknowledged records.
    pub fn reset(&mut self) -> Result<(), StoreError> {
        self.flush()?;
        if let Err(e) = self.reset_inner() {
            // The file's length or cursor is now unknown; appending to it
            // would interleave new frames with truncation residue.
            self.failed = true;
            return Err(e);
        }
        self.durable_len = WAL_HEADER_LEN;
        Ok(())
    }

    fn reset_inner(&mut self) -> Result<(), StoreError> {
        self.file
            .set_len(WAL_HEADER_LEN)
            .map_err(|e| io_err(&self.path, e))?;
        self.file
            .seek(SeekFrom::Start(WAL_HEADER_LEN))
            .map_err(|e| io_err(&self.path, e))?;
        if self.sync_data {
            self.file.sync_data().map_err(|e| io_err(&self.path, e))?;
        }
        Ok(())
    }

    /// Register this log's timing metrics in `registry` and start
    /// recording into them: `currency_wal_append_ns` (whole append,
    /// group-commit flush included when it triggers),
    /// `currency_wal_flush_ns` (write + optional sync),
    /// `currency_wal_fsync_ns` (the `sync_data` call alone), plus
    /// `currency_wal_appends_total` / `currency_wal_flushes_total`.
    /// Unbound logs (the default) skip every clock read.
    pub fn bind_metrics(&mut self, registry: &Arc<MetricsRegistry>) {
        self.obs = Some(WalObs {
            append_ns: registry.histogram(
                "currency_wal_append_ns",
                "Wall time of one WAL append (group-commit flush included when it triggers)",
                &[],
            ),
            flush_ns: registry.histogram(
                "currency_wal_flush_ns",
                "Wall time of one group-commit flush (write + optional sync)",
                &[],
            ),
            fsync_ns: registry.histogram(
                "currency_wal_fsync_ns",
                "Wall time of the sync_data call inside a flush",
                &[],
            ),
            appends_total: registry.counter(
                "currency_wal_appends_total",
                "Records appended to the WAL",
                &[],
            ),
            flushes_total: registry.counter(
                "currency_wal_flushes_total",
                "Group-commit flushes that reached disk",
                &[],
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use currency_core::{Eid, SpecDelta};
    use currency_core::{RelId, Tuple, TupleId, Value};

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("currency-store-wal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn sample_delta(step: i64) -> SpecDelta {
        let mut d = SpecDelta::new();
        d.insert_tuple(RelId(0), Tuple::new(Eid(1), vec![Value::int(step)]));
        if step % 2 == 0 {
            d.remove_tuple(RelId(0), TupleId(step as u32));
        }
        d
    }

    fn fill(path: &Path, n: u64) -> Vec<Record> {
        let mut wal = Wal::create(path, 1, false).unwrap();
        let mut records = Vec::new();
        for seq in 1..=n {
            let rec = Record::Delta {
                seq,
                delta: sample_delta(seq as i64),
            };
            wal.append(&rec).unwrap();
            records.push(rec);
        }
        wal.flush().unwrap();
        records
    }

    #[test]
    fn round_trips_records_in_order() {
        let path = tmp("round-trip");
        let written = fill(&path, 5);
        let opened = Wal::open(&path, 1, false).unwrap();
        assert_eq!(opened.torn_tail_bytes, 0);
        assert_eq!(opened.records.len(), 5);
        for (a, b) in opened.records.iter().zip(&written) {
            assert_eq!(a.seq(), b.seq());
            match (a, b) {
                (Record::Delta { delta: da, .. }, Record::Delta { delta: db, .. }) => {
                    assert_eq!(wire::encode_delta(da), wire::encode_delta(db));
                }
                _ => panic!("record kind changed"),
            }
        }
    }

    #[test]
    fn compact_records_round_trip() {
        let path = tmp("compact");
        let mut wal = Wal::create(&path, 1, false).unwrap();
        let report = CompactReport {
            reclaimed: 2,
            remap: vec![vec![Some(TupleId(0)), None, Some(TupleId(1))], vec![]],
        };
        wal.append(&Record::Compact {
            seq: 1,
            auto: true,
            report: report.clone(),
        })
        .unwrap();
        wal.flush().unwrap();
        let opened = Wal::open(&path, 1, false).unwrap();
        match &opened.records[..] {
            [Record::Compact {
                seq: 1,
                auto: true,
                report: r,
            }] => assert_eq!(*r, report),
            other => panic!("unexpected records {other:?}"),
        }
    }

    #[test]
    fn group_commit_buffers_until_the_batch_fills() {
        let path = tmp("group-commit");
        let mut wal = Wal::create(&path, 3, false).unwrap();
        for seq in 1..=2 {
            wal.append(&Record::Delta {
                seq,
                delta: sample_delta(seq as i64),
            })
            .unwrap();
        }
        assert_eq!(wal.pending_records(), 2, "batch not yet full");
        // A reopen at this point sees nothing: the buffer never hit disk.
        drop(wal);
        let opened = Wal::open(&path, 3, false).unwrap();
        assert!(opened.records.is_empty(), "unflushed suffix lost, cleanly");
        // The third append fills the batch and flushes all three.
        let mut wal = opened.wal;
        for seq in 1..=3 {
            wal.append(&Record::Delta {
                seq,
                delta: sample_delta(seq as i64),
            })
            .unwrap();
        }
        assert_eq!(wal.pending_records(), 0, "batch flushed at group size");
        drop(wal);
        assert_eq!(Wal::open(&path, 3, false).unwrap().records.len(), 3);
    }

    #[test]
    fn torn_tail_is_truncated_and_the_prefix_survives() {
        let path = tmp("torn-tail");
        fill(&path, 4);
        let full = std::fs::read(&path).unwrap();
        // Chop the file mid-final-frame at several depths, including mid
        // frame-header.
        for cut in [1u64, 4, 9, 12] {
            std::fs::write(&path, &full[..full.len() - cut as usize]).unwrap();
            let opened = Wal::open(&path, 1, false).unwrap();
            assert_eq!(opened.records.len(), 3, "prefix recovered (cut {cut})");
            assert!(opened.torn_tail_bytes > 0, "torn bytes reported");
            // The truncation is persistent: reopening is clean.
            let again = Wal::open(&path, 1, false).unwrap();
            assert_eq!(again.torn_tail_bytes, 0);
            assert_eq!(again.records.len(), 3);
        }
    }

    #[test]
    fn appends_after_torn_tail_recovery_continue_the_log() {
        let path = tmp("torn-append");
        fill(&path, 3);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let mut opened = Wal::open(&path, 1, false).unwrap();
        assert_eq!(opened.records.len(), 2);
        opened
            .wal
            .append(&Record::Delta {
                seq: 3,
                delta: sample_delta(3),
            })
            .unwrap();
        opened.wal.flush().unwrap();
        let again = Wal::open(&path, 1, false).unwrap();
        assert_eq!(again.records.len(), 3);
        assert_eq!(again.records[2].seq(), 3);
    }

    #[test]
    fn mid_log_corruption_is_refused() {
        let path = tmp("corrupt");
        fill(&path, 3);
        let full = std::fs::read(&path).unwrap();
        // Flip a byte inside the *first* frame's payload.
        let mut bad = full.clone();
        let o = WAL_HEADER_LEN as usize + FRAME_HEADER_LEN + 2;
        bad[o] ^= 0x40;
        std::fs::write(&path, &bad).unwrap();
        match Wal::open(&path, 1, false) {
            Err(StoreError::Corrupt { offset, .. }) => {
                assert_eq!(offset, WAL_HEADER_LEN, "first frame blamed");
            }
            other => panic!("expected corruption, got {:?}", other.map(|o| o.records)),
        }
    }

    #[test]
    fn header_damage_is_refused() {
        let path = tmp("header");
        fill(&path, 1);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Wal::open(&path, 1, false),
            Err(StoreError::Corrupt { offset: 0, .. })
        ));
        // Version from the future.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'C';
        bytes[8] = 99;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Wal::open(&path, 1, false),
            Err(StoreError::UnsupportedVersion { found: 99, .. })
        ));
    }

    #[test]
    fn reset_truncates_to_the_header() {
        let path = tmp("reset");
        fill(&path, 4);
        let mut opened = Wal::open(&path, 1, false).unwrap();
        opened.wal.reset().unwrap();
        assert_eq!(opened.wal.total_len(), WAL_HEADER_LEN);
        opened
            .wal
            .append(&Record::Delta {
                seq: 5,
                delta: sample_delta(5),
            })
            .unwrap();
        opened.wal.flush().unwrap();
        let again = Wal::open(&path, 1, false).unwrap();
        assert_eq!(again.records.len(), 1);
        assert_eq!(again.records[0].seq(), 5);
    }
}
