//! The crash-recoverable engine: log-then-apply over a
//! [`CurrencyEngine`].
//!
//! A [`DurableEngine`] owns a store directory holding two kinds of file:
//!
//! * `snapshot-<seq>.cur` — checksummed full-state snapshots
//!   ([`crate::snapshot`]), each covering the log prefix up to `seq`;
//! * `wal.log` — the append-only write-ahead log ([`crate::wal`]) of
//!   everything since.
//!
//! ## Write path
//!
//! [`DurableEngine::apply`] validates the delta against the live
//! specification ([`SpecDelta::validate`] — an inadmissible delta is
//! rejected *before* it can pollute the log), appends it as a log record,
//! and only then feeds it to the in-memory engine — **log-then-apply**,
//! so every state the engine ever reaches is reconstructible from disk
//! (up to the group-commit window; see [`StoreOptions::group_commit`]).
//! [`DurableEngine::compact`] appends the [`CompactReport`]'s remap
//! tables as a log record, so replaying the suffix applies the *same* id
//! translation at the same point and every later record's tuple ids
//! resolve correctly.
//!
//! ## Recovery
//!
//! [`DurableEngine::open`] loads the newest snapshot that passes its
//! checksum (older generations are fallbacks), rebuilds a
//! [`CurrencyEngine`] from it, and replays the log suffix — each delta
//! re-validated through the normal [`SpecDelta::validate`] path and
//! applied through the normal [`CurrencyEngine::apply`] path, each
//! compaction record re-executed and **verified** against the logged
//! remap tables.  A torn log tail (the footprint of a crash mid-append)
//! is truncated away; checksum damage anywhere else is a refusal, never
//! a silently wrong specification.  What recovery did is reported in
//! [`DurableEngine::recovery`] and counted into
//! [`currency_reason::EngineStats`].
//!
//! ## Rotation
//!
//! When the log grows past [`StoreOptions::snapshot_rotate_bytes`], the
//! engine writes a fresh snapshot (temp-file + atomic rename), truncates
//! the log, and prunes old snapshot generations — bounding both recovery
//! time (replay length) and disk use.  The crash-safe order is
//! flush-log → write-snapshot → truncate-log: a crash between the last
//! two steps leaves a snapshot plus a log of already-covered records,
//! which replay skips by sequence number.

use crate::error::{io_err, StoreError};
use crate::snapshot::{
    list_snapshots_with, prune_snapshots_with, read_snapshot_with, sweep_tmp_snapshots_with,
    write_snapshot_with,
};
use crate::vfs::{RealVfs, Vfs};
use crate::wal::{Record, Wal};
use currency_core::{CompactReport, CompactStepReport, SpecDelta, Specification};
use currency_obs::MetricsRegistry;
use currency_query::Query;
use currency_reason::{
    ApplyReport, CertainAnswers, CompactBudget, CurrencyEngine, CurrencyOrderQuery, EngineStats,
    Options,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Durability knobs of a [`DurableEngine`].
#[derive(Clone, Copy, Debug)]
pub struct StoreOptions {
    /// Rotate (snapshot + truncate the log) once the log exceeds this
    /// many bytes.  Bounds recovery replay length.  Default: 1 MiB.
    pub snapshot_rotate_bytes: u64,
    /// Group-commit batch: log records are flushed to disk every this
    /// many appends.  `1` (the default) makes every [`DurableEngine::apply`]
    /// durable before it returns; larger batches amortize the write/sync
    /// cost and widen the crash-loss window to at most the last
    /// `group_commit - 1` acknowledged records — always a suffix, never
    /// a hole.
    pub group_commit: usize,
    /// `fsync` file data at every flush point.  Default `true`; turn off
    /// for benchmarks and tests where the OS page cache is trusted.
    pub sync_data: bool,
    /// Snapshot generations to retain after rotation (the newest plus
    /// `keep_snapshots - 1` fallbacks for checksum-failure recovery).
    /// Clamped to at least 1.  Default: 2.
    pub keep_snapshots: usize,
    /// Skip the per-record [`SpecDelta::validate`] re-simulation during
    /// recovery replay.  Every logged delta *was* validated before it was
    /// appended, and the log's CRC framing already proves the bytes are
    /// the ones that were written — so for a log nothing else ever
    /// touches, re-validation only re-proves what the checksum proved.
    /// The replay's structural defenses all stay on: sequence contiguity,
    /// compaction-remap verification, and the engine's own `apply`
    /// (which still rejects a truly inconsistent record).  Default
    /// `false` — the validating path remains the paranoid default; turn
    /// this on for recovery-latency-sensitive reopens of trusted
    /// directories (the sharded parallel-recovery path benchmarks both).
    pub trusted_replay: bool,
}

impl Default for StoreOptions {
    fn default() -> StoreOptions {
        StoreOptions {
            snapshot_rotate_bytes: 1 << 20,
            group_commit: 1,
            sync_data: true,
            keep_snapshots: 2,
            trusted_replay: false,
        }
    }
}

/// What [`DurableEngine::open`] had to do.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveryReport {
    /// Covered sequence number of the snapshot recovery started from.
    pub snapshot_seq: u64,
    /// Newer snapshot generations skipped because they failed their
    /// checksum.
    pub snapshots_skipped: usize,
    /// Delta records replayed from the log suffix.
    pub deltas_replayed: usize,
    /// Compaction records re-executed (and verified) from the suffix.
    pub compacts_replayed: usize,
    /// Bounded compaction *step* records re-executed (slice by slice,
    /// and verified) from the suffix.
    pub compact_steps_replayed: usize,
    /// Records skipped because the snapshot already covered them (the
    /// residue of a rotation interrupted between snapshot and log
    /// truncation).
    pub records_skipped: usize,
    /// Torn-tail bytes truncated from the log (a crash mid-append).
    pub torn_tail_bytes: u64,
}

/// The log file's name within a store directory.
fn wal_path(dir: &Path) -> PathBuf {
    dir.join("wal.log")
}

/// A [`CurrencyEngine`] whose specification survives process restarts
/// (see module docs).
pub struct DurableEngine {
    dir: PathBuf,
    vfs: Arc<dyn Vfs>,
    engine: CurrencyEngine<'static>,
    wal: Wal,
    store_opts: StoreOptions,
    /// Sequence number of the last appended record.
    seq: u64,
    /// Sequence number the newest on-disk snapshot covers.
    snapshot_seq: u64,
    recovery: RecoveryReport,
    /// Set when a write failed partway through the log-then-apply
    /// sequence: the log and the engine may disagree from that point on,
    /// so every further mutation is refused ([`StoreError::Poisoned`])
    /// until the store is reopened — recovery rebuilds the one
    /// consistent state the durable files define.  A *rejected* delta
    /// (validation failure before anything is written) never poisons.
    poisoned: Option<String>,
    /// The store's metric registry: WAL timings, engine phase timings,
    /// and recovery progress all land here (see
    /// [`DurableEngine::metrics`]).
    metrics: Arc<MetricsRegistry>,
}

impl DurableEngine {
    /// Create a fresh store in `dir` (created if missing, refused if it
    /// already holds one): the initial specification is written as
    /// snapshot 0 and an empty log is laid down, so the store is
    /// reopenable from its first instant.
    pub fn create(
        dir: &Path,
        spec: Specification,
        engine_opts: &Options,
        store_opts: StoreOptions,
    ) -> Result<DurableEngine, StoreError> {
        DurableEngine::create_with_vfs(Arc::new(RealVfs), dir, spec, engine_opts, store_opts)
    }

    /// [`DurableEngine::create`] through an explicit [`Vfs`] — the chaos
    /// harness's entry point, and the hook for alternative filesystems.
    pub fn create_with_vfs(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        spec: Specification,
        engine_opts: &Options,
        store_opts: StoreOptions,
    ) -> Result<DurableEngine, StoreError> {
        vfs.create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        if !list_snapshots_with(&*vfs, dir)?.is_empty() {
            return Err(StoreError::AlreadyExists {
                dir: dir.to_path_buf(),
            });
        }
        sweep_tmp_snapshots_with(&*vfs, dir)?;
        // Log before snapshot: a store "exists" once its base snapshot
        // does (the `AlreadyExists` check above), so the snapshot must be
        // the *last* artifact laid down — a crash in between leaves a
        // directory a retried `create` simply recreates, never a
        // half-store that both `create` and `open` refuse.
        let mut wal = Wal::create_with(
            &*vfs,
            &wal_path(dir),
            store_opts.group_commit,
            store_opts.sync_data,
        )?;
        write_snapshot_with(&*vfs, dir, 0, &spec, store_opts.sync_data)?;
        let mut engine = CurrencyEngine::new_owned(spec, engine_opts)?;
        let metrics = Arc::new(MetricsRegistry::new());
        wal.bind_metrics(&metrics);
        engine.obs_mut().bind_metrics(&metrics);
        Ok(DurableEngine {
            dir: dir.to_path_buf(),
            vfs,
            engine,
            wal,
            store_opts,
            seq: 0,
            snapshot_seq: 0,
            recovery: RecoveryReport::default(),
            poisoned: None,
            metrics,
        })
    }

    /// Recover a store from `dir`: newest valid snapshot, then log-suffix
    /// replay (see module docs).
    ///
    /// `engine_opts` must match the options the log was written under —
    /// [`Options::auto_compact_tombstones`] in particular decides *where*
    /// compactions fire along the delta stream, and replaying under a
    /// different policy would de-synchronize tuple ids.  The logged
    /// compaction records verify this and fail with
    /// [`StoreError::ReplayDiverged`] instead of recovering wrongly.
    pub fn open(
        dir: &Path,
        engine_opts: &Options,
        store_opts: StoreOptions,
    ) -> Result<DurableEngine, StoreError> {
        DurableEngine::open_with_vfs(Arc::new(RealVfs), dir, engine_opts, store_opts)
    }

    /// [`DurableEngine::open`] through an explicit [`Vfs`].
    pub fn open_with_vfs(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        engine_opts: &Options,
        store_opts: StoreOptions,
    ) -> Result<DurableEngine, StoreError> {
        let snaps = list_snapshots_with(&*vfs, dir)?;
        if snaps.is_empty() {
            return Err(StoreError::NoSnapshot {
                dir: dir.to_path_buf(),
            });
        }
        // A crash mid-snapshot-write can orphan a `.cur.tmp`; it was
        // never renamed into a live name, so it holds no committed state
        // and accumulating them would leak a full spec encoding per
        // crashed rotation.
        sweep_tmp_snapshots_with(&*vfs, dir)?;
        // Newest snapshot that passes its checksum wins; older
        // generations are the fallback chain.  If every generation is
        // damaged, surface the newest one's error.  Falling back is only
        // sound if the log still covers the gap — the file name of a
        // skipped generation tells us the sequence number recovery must
        // reach, and the contiguity checks below enforce it.
        let mut snapshot = None;
        let mut snapshots_skipped = 0;
        let mut max_skipped_seq = 0u64;
        let mut first_err = None;
        for (name_seq, path) in snaps.iter().rev() {
            match read_snapshot_with(&*vfs, path) {
                Ok(loaded) => {
                    snapshot = Some(loaded);
                    break;
                }
                Err(e) => {
                    snapshots_skipped += 1;
                    max_skipped_seq = max_skipped_seq.max(*name_seq);
                    first_err.get_or_insert(e);
                }
            }
        }
        let Some((snapshot_seq, spec)) = snapshot else {
            return Err(first_err.expect("at least one snapshot was tried"));
        };
        let opened = Wal::open_with(
            &*vfs,
            &wal_path(dir),
            store_opts.group_commit,
            store_opts.sync_data,
        )?;
        let mut engine = CurrencyEngine::new_owned(spec, engine_opts)?;
        let metrics = Arc::new(MetricsRegistry::new());
        engine.obs_mut().bind_metrics(&metrics);
        // Recovery progress gauges: total is known up front, replayed
        // advances record by record, so a concurrent scrape (or a
        // post-mortem snapshot) shows how far the replay got.
        let recovery_total = metrics.gauge(
            "currency_recovery_records_total",
            "Log records found at open (replay target)",
            &[],
        );
        let recovery_replayed = metrics.gauge(
            "currency_recovery_records_replayed",
            "Log records replayed (or skipped as already covered) so far",
            &[],
        );
        recovery_total.set(opened.records.len() as u64);
        let mut recovery = RecoveryReport {
            snapshot_seq,
            snapshots_skipped,
            torn_tail_bytes: opened.torn_tail_bytes,
            ..RecoveryReport::default()
        };
        let mut seq = snapshot_seq;
        // With a compaction budget configured, replayed deltas must not
        // *initiate* compaction steps: the log records the steps the
        // original run actually took (as `CompactStep` records whose
        // slices replay re-executes verbatim), so firing the policy a
        // second time would compact twice.  The monolithic path keeps
        // its ride-along semantics: the replayed apply reproduces the
        // compaction and the marker record verifies it.
        let budget_mode = engine_opts.auto_compact_budget.is_some();
        // The auto-compaction a replayed delta triggered, awaiting its
        // verification record.
        let mut pending_auto: Option<CompactReport> = None;
        // Budget mode: the previous replayed delta crossed the
        // auto-compaction threshold, so the original run took a bounded
        // step right after it — its record must be next.
        let mut pending_step = false;
        for record in opened.records {
            recovery_replayed.add(1);
            if record.seq() <= snapshot_seq {
                // Rotation crashed between snapshot and log truncation:
                // the snapshot already contains these records' effects.
                recovery.records_skipped += 1;
                continue;
            }
            if record.seq() != seq + 1 {
                // Sequence numbers are assigned contiguously, so a hole
                // means records between the loaded snapshot and this one
                // are gone (a rotation truncated them and the newer
                // snapshot that covered them failed its checksum).
                // Recovering around the hole would silently drop
                // acknowledged updates.
                return Err(StoreError::ReplayDiverged {
                    seq: record.seq(),
                    detail: format!(
                        "log gap: expected record #{}, found #{} — the \
                         records in between are covered only by an \
                         unreadable snapshot",
                        seq + 1,
                        record.seq()
                    ),
                });
            }
            // An auto-compaction triggered by the previous replayed delta
            // must be matched by its marker as the very next record (the
            // writer appends the two back to back).  Any other record
            // here means the original run did *not* compact at that point
            // — the reopening options' auto-compaction policy differs —
            // and every id in the remaining suffix would resolve against
            // the wrong id space.  (A compaction left unconsumed at
            // end-of-log is the crashed-between-delta-and-marker case;
            // its marker is backfilled after the loop.)
            if pending_auto.is_some() && !matches!(record, Record::Compact { auto: true, .. }) {
                return Err(StoreError::ReplayDiverged {
                    seq: record.seq(),
                    detail: "replayed delta triggered an auto-compaction the log \
                             has no marker for"
                        .to_string(),
                });
            }
            if pending_step && !matches!(record, Record::CompactStep { auto: true, .. }) {
                return Err(StoreError::ReplayDiverged {
                    seq: record.seq(),
                    detail: "replayed delta crossed the auto-compaction threshold \
                             but the log has no step record for it"
                        .to_string(),
                });
            }
            seq = record.seq();
            match record {
                Record::Delta { seq, delta } => {
                    // Re-validate through the same admissibility path the
                    // live `apply` uses; a delta that no longer validates
                    // means snapshot and log diverged.  Under
                    // `trusted_replay` the CRC stands in for this check —
                    // see [`StoreOptions::trusted_replay`].
                    if !store_opts.trusted_replay {
                        delta
                            .validate(engine.spec())
                            .map_err(|source| StoreError::ReplayInvalid { seq, source })?;
                    }
                    let report = if budget_mode {
                        engine.apply_replayed(&delta)?
                    } else {
                        engine.apply(&delta)?
                    };
                    pending_auto = report.compacted;
                    if budget_mode && engine_opts.auto_compact_tombstones > 0 {
                        // Reconstruct the original run's policy decision:
                        // it stepped iff the post-delta tombstone count
                        // crossed the threshold.
                        pending_step =
                            engine.spec().total_tombstones() >= engine_opts.auto_compact_tombstones;
                    }
                    recovery.deltas_replayed += 1;
                }
                Record::Compact { seq, auto, report } => {
                    if auto && budget_mode {
                        // The log was written under the monolithic auto
                        // policy; replaying it with a budget would put
                        // every later record in the wrong id space.
                        return Err(StoreError::ReplayDiverged {
                            seq,
                            detail: "log records a stop-the-world auto-compaction, \
                                     but the store was reopened with a compaction \
                                     budget"
                                .to_string(),
                        });
                    }
                    let actual = if auto {
                        pending_auto
                            .take()
                            .ok_or_else(|| StoreError::ReplayDiverged {
                                seq,
                                detail: "log records an auto-compaction the replayed \
                                     delta did not trigger"
                                    .to_string(),
                            })?
                    } else {
                        engine.compact()?
                    };
                    if actual != report {
                        return Err(StoreError::ReplayDiverged {
                            seq,
                            detail: format!(
                                "compaction remap mismatch: replay reclaimed {} \
                                 slot(s), the log records {}",
                                actual.reclaimed, report.reclaimed
                            ),
                        });
                    }
                    recovery.compacts_replayed += 1;
                }
                Record::CompactStep { seq, auto, step } => {
                    if auto {
                        if !budget_mode {
                            return Err(StoreError::ReplayDiverged {
                                seq,
                                detail: "log records an auto compaction step, but \
                                         the store was reopened without a \
                                         compaction budget"
                                    .to_string(),
                            });
                        }
                        if !pending_step {
                            return Err(StoreError::ReplayDiverged {
                                seq,
                                detail: "log records an auto compaction step the \
                                         replayed delta did not trigger"
                                    .to_string(),
                            });
                        }
                        pending_step = false;
                    }
                    // Re-execute the logged slices verbatim — the step's
                    // bounds capture exactly what ran, wall-clock budget
                    // included, so replay needs no policy reconstruction.
                    let actual = engine.compact_apply_step(&step).map_err(|e| {
                        StoreError::ReplayDiverged {
                            seq,
                            detail: format!(
                                "logged compaction step does not re-execute \
                                 against the replayed state: {e}"
                            ),
                        }
                    })?;
                    if actual != step {
                        return Err(StoreError::ReplayDiverged {
                            seq,
                            detail: format!(
                                "compaction step mismatch: replay reclaimed {} \
                                 slot(s) over {} slice(s), the log records {} \
                                 over {}",
                                actual.reclaimed,
                                actual.slices.len(),
                                step.reclaimed,
                                step.slices.len()
                            ),
                        });
                    }
                    recovery.compact_steps_replayed += 1;
                }
            }
        }
        if seq < max_skipped_seq {
            // An unreadable newer snapshot covered records the log no
            // longer holds (its rotation truncated them): recovery cannot
            // reach the acknowledged state, so refuse rather than hand
            // back a silently older one.
            return Err(StoreError::ReplayDiverged {
                seq,
                detail: format!(
                    "an unreadable snapshot covers up to record #{max_skipped_seq}, \
                     but snapshot + log only reach #{seq}"
                ),
            });
        }
        let mut wal = opened.wal;
        wal.bind_metrics(&metrics);
        if let Some(report) = pending_auto.take() {
            // The original run crashed between the final delta and its
            // auto-compaction marker.  The compaction itself was
            // reproduced by the replay above; backfill the marker now so
            // the log is self-consistent — otherwise any record appended
            // after this open would sit where the marker belongs, and
            // every *later* open would refuse with `ReplayDiverged`.
            seq += 1;
            wal.append_compact(seq, true, &report)?;
            wal.flush()?;
            recovery.compacts_replayed += 1;
        }
        if pending_step {
            // The original run crashed between the final delta and its
            // auto step record.  Unlike the monolithic case the step was
            // *not* reproduced during replay (budget-mode applies
            // suppress the policy), so run the deterministic
            // slot-bounded step now — exactly what the original apply
            // did in memory — and backfill its record.
            let budget = engine_opts
                .auto_compact_budget
                .expect("pending_step is only set in budget mode");
            let step = engine.compact_step_slots(budget.max_slots_per_step)?;
            seq += 1;
            wal.append_compact_step(seq, true, &step)?;
            wal.flush()?;
            recovery.compact_steps_replayed += 1;
        }
        engine.note_recovery(recovery.deltas_replayed);
        Ok(DurableEngine {
            dir: dir.to_path_buf(),
            vfs,
            engine,
            wal,
            store_opts,
            seq,
            snapshot_seq,
            recovery,
            poisoned: None,
            metrics,
        })
    }

    /// Refuse mutations after a partial write (see the `poisoned` field).
    fn check_poison(&self) -> Result<(), StoreError> {
        match &self.poisoned {
            None => Ok(()),
            Some(detail) => Err(StoreError::Poisoned {
                detail: detail.clone(),
            }),
        }
    }

    /// Mark the store fail-stop, preserving the original error.
    fn poison<T>(&mut self, what: &str, err: StoreError) -> Result<T, StoreError> {
        self.poisoned = Some(format!("{what}: {err}"));
        Err(err)
    }

    /// Apply a delta durably: validate, log, apply, maybe rotate (see the
    /// module-level write-path contract).
    ///
    /// A *rejected* delta (inadmissible against the live specification)
    /// is a clean error — nothing is written, the store stays usable.  A
    /// failure *after* the log append (an I/O error mid-flush, say)
    /// poisons the store: the log and the engine may now disagree, so
    /// every further mutation returns [`StoreError::Poisoned`] until the
    /// store is reopened and recovery re-derives the consistent state
    /// from the durable files.
    pub fn apply(&mut self, delta: &SpecDelta) -> Result<ApplyReport, StoreError> {
        self.check_poison()?;
        // Reject before logging — the log must only ever hold deltas that
        // were admissible when appended.
        delta.validate(self.engine.spec())?;
        self.seq += 1;
        if let Err(e) = self.wal.append_delta(self.seq, delta) {
            // The frame may be half-written or stuck in the buffer while
            // `seq` advanced: retrying would duplicate the record.
            return self.poison("log append failed", e);
        }
        let report = match self.engine.apply(delta) {
            Ok(report) => report,
            // The log holds a delta the engine never applied.
            Err(e) => return self.poison("apply after log append failed", e.into()),
        };
        if let Some(compact) = &report.compacted {
            // The auto-compaction policy fired inside `apply`: log its
            // remap so replay can verify it reproduces the same one.
            self.seq += 1;
            if let Err(e) = self.wal.append_compact(self.seq, true, compact) {
                return self.poison("auto-compaction marker append failed", e);
            }
        }
        if let Some(step) = &report.compact_step {
            // The budgeted auto policy ran one bounded step inside
            // `apply`: log its slices so replay re-executes them in
            // place (logged even when the step found nothing, so the
            // record stream matches the policy decision replay
            // reconstructs).
            self.seq += 1;
            if let Err(e) = self.wal.append_compact_step(self.seq, true, step) {
                return self.poison("auto compaction step record append failed", e);
            }
        }
        if let Err(e) = self.maybe_rotate() {
            return self.poison("snapshot rotation failed", e);
        }
        Ok(report)
    }

    /// Compact the engine ([`CurrencyEngine::compact`]), logging the
    /// remap record that keeps post-compaction replay id-correct.  The
    /// tombstone-free no-op logs nothing.  Failure handling matches
    /// [`DurableEngine::apply`]: a failure after the engine compacted
    /// poisons the store.
    pub fn compact(&mut self) -> Result<CompactReport, StoreError> {
        self.check_poison()?;
        let report = self.engine.compact()?;
        if report.reclaimed > 0 {
            self.seq += 1;
            if let Err(e) = self.wal.append_compact(self.seq, false, &report) {
                // The engine's ids moved but the log never heard of it.
                return self.poison("compaction record append failed", e);
            }
            if let Err(e) = self.maybe_rotate() {
                return self.poison("snapshot rotation failed", e);
            }
        }
        Ok(report)
    }

    /// Run one bounded compaction step
    /// ([`CurrencyEngine::compact_step`]), logging its slices as a
    /// [`Record::CompactStep`] so post-step replay stays id-correct.  A
    /// step that ran no slice logs nothing.  A crash between two steps
    /// recovers to the valid intermediate state the completed steps
    /// left: each step is its own durable record, re-executed verbatim
    /// by the next open.  Failure handling matches
    /// [`DurableEngine::apply`]: a failure after the engine stepped
    /// poisons the store.
    pub fn compact_step(
        &mut self,
        budget: &CompactBudget,
    ) -> Result<CompactStepReport, StoreError> {
        self.check_poison()?;
        let step = self.engine.compact_step(budget)?;
        if !step.slices.is_empty() {
            self.seq += 1;
            if let Err(e) = self.wal.append_compact_step(self.seq, false, &step) {
                // The engine's ids moved but the log never heard of it.
                return self.poison("compaction step record append failed", e);
            }
            if let Err(e) = self.maybe_rotate() {
                return self.poison("snapshot rotation failed", e);
            }
        }
        Ok(step)
    }

    /// Force every buffered log record to disk (the group-commit
    /// durability point).  Also runs on drop, best-effort.
    pub fn flush(&mut self) -> Result<(), StoreError> {
        self.wal.flush()
    }

    /// Write a snapshot of the current state now, truncating the log and
    /// pruning old generations — what rotation does, on demand.
    ///
    /// A failure partway (a torn snapshot publish, a log truncation that
    /// errored mid-way) poisons the store, like any other write failure:
    /// which on-disk artifacts survived is unknown, and only a reopen's
    /// recovery can re-derive the consistent state.
    pub fn snapshot_now(&mut self) -> Result<(), StoreError> {
        // A poisoned store's engine may disagree with its log; a snapshot
        // claiming to cover `seq` would persist that disagreement.
        self.check_poison()?;
        if let Err(e) = self.snapshot_inner() {
            return self.poison("snapshot write failed", e);
        }
        Ok(())
    }

    fn snapshot_inner(&mut self) -> Result<(), StoreError> {
        self.wal.flush()?;
        write_snapshot_with(
            &*self.vfs,
            &self.dir,
            self.seq,
            self.engine.spec(),
            self.store_opts.sync_data,
        )?;
        self.snapshot_seq = self.seq;
        self.wal.reset()?;
        prune_snapshots_with(&*self.vfs, &self.dir, self.store_opts.keep_snapshots)?;
        Ok(())
    }

    fn maybe_rotate(&mut self) -> Result<(), StoreError> {
        if self.wal.total_len() > self.store_opts.snapshot_rotate_bytes {
            self.snapshot_now()?;
        }
        Ok(())
    }

    /// The wrapped engine, for queries (mutation must go through
    /// [`DurableEngine::apply`] / [`DurableEngine::compact`], so only a
    /// shared reference is handed out).
    pub fn engine(&self) -> &CurrencyEngine<'static> {
        &self.engine
    }

    /// The live specification (including every applied delta).
    pub fn spec(&self) -> &Specification {
        self.engine.spec()
    }

    /// What the opening recovery did (all zeros for a freshly created
    /// store).
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Sequence number of the last logged record.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Sequence number the newest snapshot covers (records after it live
    /// only in the log until the next rotation).
    pub fn snapshot_seq(&self) -> u64 {
        self.snapshot_seq
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// **CPS** — see [`CurrencyEngine::cps`].
    pub fn cps(&self) -> Result<bool, StoreError> {
        Ok(self.engine.cps()?)
    }

    /// **COP** — see [`CurrencyEngine::cop`].
    pub fn cop(&self, query: &CurrencyOrderQuery) -> Result<bool, StoreError> {
        Ok(self.engine.cop(query)?)
    }

    /// **DCIP** — see [`CurrencyEngine::dcip`].
    pub fn dcip(&self, rel: currency_core::RelId) -> Result<bool, StoreError> {
        Ok(self.engine.dcip(rel)?)
    }

    /// Certain current answers — see [`CurrencyEngine::certain_answers`].
    pub fn certain_answers(&self, query: &Query) -> Result<CertainAnswers, StoreError> {
        Ok(self.engine.certain_answers(query)?)
    }

    /// Aggregate engine statistics (includes the recovery counters).
    pub fn stats(&self) -> EngineStats {
        self.engine.stats()
    }

    /// The store's metric registry: engine apply phase timings, WAL
    /// append/flush/fsync histograms, and the recovery progress gauges
    /// all live here.  Hand the same registry to other components (or
    /// snapshot-and-merge several stores') for a single exposition.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Current metrics in Prometheus text exposition format.
    pub fn metrics_text(&self) -> String {
        self.metrics.snapshot().render_prometheus()
    }
}

impl Drop for DurableEngine {
    fn drop(&mut self) {
        // Best-effort group-commit drain; an explicit `flush` is the way
        // to observe failures.
        let _ = self.wal.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{list_snapshots, write_snapshot};
    use crate::vfs::{ChaosPlan, ChaosVfs, Fault};
    use currency_core::wire::encode_spec;
    use currency_core::{
        AttrId, Catalog, CmpOp, DenialConstraint, Eid, RelId, RelationSchema, Term, Tuple, TupleId,
        Value,
    };

    const A: AttrId = AttrId(0);

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "currency-store-durable-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn monotone(r: RelId) -> DenialConstraint {
        DenialConstraint::builder(r, 2)
            .when_cmp(Term::attr(0, A), CmpOp::Gt, Term::attr(1, A))
            .then_order(1, A, 0)
            .build()
            .unwrap()
    }

    fn seed_spec() -> (Specification, RelId) {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A"]));
        let mut spec = Specification::new(cat);
        for e in 0..3u64 {
            for v in [10, 20] {
                spec.instance_mut(r)
                    .push_tuple(Tuple::new(Eid(e), vec![Value::int(v + e as i64)]))
                    .unwrap();
            }
        }
        spec.add_constraint(monotone(r)).unwrap();
        (spec, r)
    }

    fn insert(r: RelId, e: u64, v: i64) -> SpecDelta {
        let mut d = SpecDelta::new();
        d.insert_tuple(r, Tuple::new(Eid(e), vec![Value::int(v)]));
        d
    }

    fn fast() -> StoreOptions {
        StoreOptions {
            sync_data: false,
            ..StoreOptions::default()
        }
    }

    #[test]
    fn create_apply_reopen_recovers_the_exact_state() {
        let dir = tmpdir("reopen");
        let (spec, r) = seed_spec();
        let opts = Options::default();
        let mut durable = DurableEngine::create(&dir, spec, &opts, fast()).unwrap();
        assert!(durable.cps().unwrap());
        for step in 0..4 {
            durable
                .apply(&insert(r, step % 3, 100 + step as i64))
                .unwrap();
        }
        assert_eq!(durable.seq(), 4);
        let live_bytes = encode_spec(durable.spec());
        drop(durable);
        let recovered = DurableEngine::open(&dir, &opts, fast()).unwrap();
        assert_eq!(encode_spec(recovered.spec()), live_bytes);
        let rec = recovered.recovery();
        assert_eq!(rec.snapshot_seq, 0);
        assert_eq!(rec.deltas_replayed, 4);
        assert_eq!(rec.torn_tail_bytes, 0);
        assert_eq!(recovered.seq(), 4);
        let stats = recovered.stats();
        assert_eq!(stats.recoveries, 1);
        assert_eq!(stats.deltas_replayed, 4);
        assert!(recovered.cps().unwrap());
        assert!(recovered
            .cop(&CurrencyOrderQuery::single(r, A, TupleId(0), TupleId(1)))
            .unwrap());
    }

    #[test]
    fn create_refuses_an_existing_store() {
        let dir = tmpdir("exists");
        let (spec, _) = seed_spec();
        let opts = Options::default();
        let durable = DurableEngine::create(&dir, spec.clone(), &opts, fast()).unwrap();
        drop(durable);
        assert!(matches!(
            DurableEngine::create(&dir, spec, &opts, fast()),
            Err(StoreError::AlreadyExists { .. })
        ));
        assert!(matches!(
            DurableEngine::open(&tmpdir("not-a-store"), &opts, fast()),
            Err(StoreError::Io { .. } | StoreError::NoSnapshot { .. })
        ));
    }

    #[test]
    fn rejected_deltas_never_reach_the_log() {
        let dir = tmpdir("rejected");
        let (spec, r) = seed_spec();
        let opts = Options::default();
        let mut durable = DurableEngine::create(&dir, spec, &opts, fast()).unwrap();
        let mut bad = SpecDelta::new();
        bad.add_order_edge(r, A, TupleId(0), TupleId(2)); // cross-entity
        assert!(durable.apply(&bad).is_err());
        assert_eq!(durable.seq(), 0, "nothing was logged");
        durable.apply(&insert(r, 0, 99)).unwrap();
        drop(durable);
        let recovered = DurableEngine::open(&dir, &opts, fast()).unwrap();
        assert_eq!(recovered.recovery().deltas_replayed, 1);
        assert!(recovered.cps().unwrap());
    }

    #[test]
    fn rotation_snapshots_truncate_the_log_and_bound_replay() {
        let dir = tmpdir("rotate");
        let (spec, r) = seed_spec();
        let opts = Options::default();
        let store_opts = StoreOptions {
            snapshot_rotate_bytes: 256, // a few deltas per generation
            sync_data: false,
            keep_snapshots: 2,
            ..StoreOptions::default()
        };
        let mut durable = DurableEngine::create(&dir, spec, &opts, store_opts).unwrap();
        for step in 0..20 {
            durable
                .apply(&insert(r, step % 3, 1000 + step as i64))
                .unwrap();
        }
        assert!(durable.snapshot_seq() > 0, "rotation happened");
        assert!(
            list_snapshots(&dir).unwrap().len() <= 2,
            "old generations pruned"
        );
        let live_bytes = encode_spec(durable.spec());
        let snapshot_seq = durable.snapshot_seq();
        drop(durable);
        let recovered = DurableEngine::open(&dir, &opts, store_opts).unwrap();
        assert_eq!(encode_spec(recovered.spec()), live_bytes);
        assert_eq!(recovered.recovery().snapshot_seq, snapshot_seq);
        assert!(
            recovered.recovery().deltas_replayed < 20,
            "the snapshot absorbed most of the history"
        );
        assert_eq!(recovered.seq(), 20);
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_when_the_log_covers_the_gap() {
        // The recoverable fallback shape: a snapshot was written (e.g. a
        // rotation crashed right after the atomic rename, before the log
        // truncation) and later went bad, while the log still holds
        // everything since the previous generation.
        let dir = tmpdir("fallback-ok");
        let (spec, r) = seed_spec();
        let opts = Options::default();
        let mut durable = DurableEngine::create(&dir, spec, &opts, fast()).unwrap();
        durable.apply(&insert(r, 0, 50)).unwrap();
        durable.apply(&insert(r, 1, 60)).unwrap();
        durable.flush().unwrap();
        // A snapshot covering seq 2 exists but the log was NOT truncated.
        write_snapshot(&dir, 2, durable.spec(), false).unwrap();
        let live_bytes = encode_spec(durable.spec());
        drop(durable);
        // Damage that newest snapshot's payload.
        let snaps = list_snapshots(&dir).unwrap();
        let newest = &snaps.last().unwrap().1;
        let mut bytes = std::fs::read(newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(newest, &bytes).unwrap();
        let recovered = DurableEngine::open(&dir, &opts, fast()).unwrap();
        let rec = *recovered.recovery();
        assert_eq!(rec.snapshots_skipped, 1, "newest generation refused");
        assert_eq!(rec.snapshot_seq, 0, "fell back to the base snapshot");
        assert_eq!(rec.deltas_replayed, 2, "log bridged the whole gap");
        assert_eq!(encode_spec(recovered.spec()), live_bytes);
    }

    #[test]
    fn corrupt_newest_snapshot_with_a_truncated_log_fails_cleanly() {
        // The unrecoverable shape: rotation truncated the log, then the
        // snapshot that covered those records went bad.  Recovery must
        // refuse (the acknowledged state is unreachable) instead of
        // silently handing back the older generation minus the gap.
        let dir = tmpdir("fallback-gap");
        let (spec, r) = seed_spec();
        let opts = Options::default();
        let mut durable = DurableEngine::create(&dir, spec, &opts, fast()).unwrap();
        durable.apply(&insert(r, 0, 50)).unwrap();
        durable.snapshot_now().unwrap(); // truncates the log at seq 1
        durable.apply(&insert(r, 1, 60)).unwrap(); // seq 2, in the log
        drop(durable);
        let snaps = list_snapshots(&dir).unwrap();
        let newest = snaps.last().unwrap().1.clone();
        let mut bytes = std::fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&newest, &bytes).unwrap();
        assert!(
            matches!(
                DurableEngine::open(&dir, &opts, fast()),
                Err(StoreError::ReplayDiverged { .. })
            ),
            "a log gap behind an unreadable snapshot must refuse recovery"
        );
        // Same refusal when the gap sits at the log's tail (log empty
        // since the rotation).
        let dir = tmpdir("fallback-tail-gap");
        let (spec, r) = seed_spec();
        let mut durable = DurableEngine::create(&dir, spec, &opts, fast()).unwrap();
        durable.apply(&insert(r, 0, 50)).unwrap();
        durable.snapshot_now().unwrap();
        drop(durable);
        let snaps = list_snapshots(&dir).unwrap();
        let newest = snaps.last().unwrap().1.clone();
        let mut bytes = std::fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&newest, &bytes).unwrap();
        assert!(matches!(
            DurableEngine::open(&dir, &opts, fast()),
            Err(StoreError::ReplayDiverged { .. })
        ));
    }

    #[test]
    fn compaction_records_replay_id_correct_histories() {
        let dir = tmpdir("compact-replay");
        let (spec, r) = seed_spec();
        let opts = Options::default();
        let mut durable = DurableEngine::create(&dir, spec, &opts, fast()).unwrap();
        // Insert, retract, compact — then keep writing deltas whose ids
        // only make sense *after* the compaction's remap.
        let report = durable.apply(&insert(r, 1, 77)).unwrap();
        let (rel, id) = report.inserted[0];
        let mut retract = SpecDelta::new();
        retract.remove_tuple(rel, id);
        durable.apply(&retract).unwrap();
        let compact = durable.compact().unwrap();
        assert_eq!(compact.reclaimed, 1);
        // Post-compaction: an order edge between two remapped ids.
        let last = TupleId(durable.spec().instance(r).len() as u32 - 1);
        let group = durable
            .spec()
            .instance(r)
            .entity_group(durable.spec().instance(r).tuple(last).eid);
        let first = group[0];
        let mut edge = SpecDelta::new();
        edge.add_order_edge(r, A, first, last);
        durable.apply(&edge).unwrap();
        let live_bytes = encode_spec(durable.spec());
        drop(durable);
        let recovered = DurableEngine::open(&dir, &opts, fast()).unwrap();
        assert_eq!(encode_spec(recovered.spec()), live_bytes);
        assert_eq!(recovered.recovery().compacts_replayed, 1);
        assert_eq!(recovered.recovery().deltas_replayed, 3);
        assert!(recovered.cps().unwrap());
    }

    #[test]
    fn auto_compaction_is_logged_and_verified_on_replay() {
        let dir = tmpdir("auto-compact");
        let (spec, r) = seed_spec();
        let opts = Options {
            auto_compact_tombstones: 2,
            ..Options::default()
        };
        let mut durable = DurableEngine::create(&dir, spec, &opts, fast()).unwrap();
        let mut auto_seen = 0;
        for step in 0..3 {
            let report = durable.apply(&insert(r, 0, 500 + step)).unwrap();
            let (rel, id) = report.inserted[0];
            let mut retract = SpecDelta::new();
            retract.remove_tuple(rel, id);
            if durable.apply(&retract).unwrap().compacted.is_some() {
                auto_seen += 1;
            }
        }
        assert_eq!(auto_seen, 1, "threshold crossed once in three rounds");
        let live_bytes = encode_spec(durable.spec());
        drop(durable);
        // Same options: replay reproduces the auto-compaction and its
        // verification record passes.
        let recovered = DurableEngine::open(&dir, &opts, fast()).unwrap();
        assert_eq!(encode_spec(recovered.spec()), live_bytes);
        assert_eq!(recovered.recovery().compacts_replayed, 1);
        assert_eq!(recovered.stats().compactions, 1);
        drop(recovered);
        // Different auto-compaction policy: the verification record
        // detects the divergence instead of recovering a wrong id space.
        let err = DurableEngine::open(&dir, &Options::default(), fast());
        assert!(
            matches!(err, Err(StoreError::ReplayDiverged { .. })),
            "policy mismatch must fail cleanly, got {:?}",
            err.map(|d| d.recovery().deltas_replayed)
        );
    }

    #[test]
    fn replay_refuses_an_auto_compaction_the_log_never_recorded() {
        // The mirror image of the marker-without-compaction case: the
        // log was written with auto-compaction OFF, and the store is
        // reopened with a threshold the replayed churn crosses.  Replay
        // then compacts where the original run did not — every later
        // record's tuple ids would resolve against the wrong id space —
        // so recovery must refuse, not proceed.
        let dir = tmpdir("auto-unrecorded");
        let (spec, r) = seed_spec();
        let mut durable = DurableEngine::create(&dir, spec, &Options::default(), fast()).unwrap();
        for step in 0..3 {
            let report = durable.apply(&insert(r, 0, 700 + step)).unwrap();
            let (rel, id) = report.inserted[0];
            let mut retract = SpecDelta::new();
            retract.remove_tuple(rel, id);
            let report = durable.apply(&retract).unwrap();
            assert!(report.compacted.is_none(), "policy off while writing");
        }
        drop(durable);
        let strict = Options {
            auto_compact_tombstones: 2,
            ..Options::default()
        };
        assert!(
            matches!(
                DurableEngine::open(&dir, &strict, fast()),
                Err(StoreError::ReplayDiverged { .. })
            ),
            "an unrecorded replay-side auto-compaction must refuse recovery"
        );
        // The matching options still recover fine.
        let recovered = DurableEngine::open(&dir, &Options::default(), fast()).unwrap();
        assert_eq!(recovered.recovery().deltas_replayed, 6);
        assert!(recovered.cps().unwrap());
    }

    /// Byte offsets where each log frame starts (walks the public frame
    /// format: 12-byte header, then `[len u32][crc u32][payload]`).
    fn frame_starts(bytes: &[u8]) -> Vec<usize> {
        let mut starts = Vec::new();
        let mut pos = 12;
        while pos + 8 <= bytes.len() {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            starts.push(pos);
            pos += 8 + len;
        }
        starts
    }

    #[test]
    fn crash_between_delta_and_auto_marker_backfills_instead_of_bricking() {
        // A crash after the delta flush but before its auto-compaction
        // marker leaves the marker missing at end-of-log.  Recovery must
        // reproduce the compaction AND backfill the marker — otherwise
        // the next appended record sits where the marker belongs and
        // every later open fails ReplayDiverged forever.
        let dir = tmpdir("marker-gap");
        let (spec, r) = seed_spec();
        let opts = Options {
            auto_compact_tombstones: 2,
            ..Options::default()
        };
        let mut durable = DurableEngine::create(&dir, spec, &opts, fast()).unwrap();
        let mut marker_seen = false;
        for step in 0..2 {
            let report = durable.apply(&insert(r, 0, 800 + step)).unwrap();
            let (rel, id) = report.inserted[0];
            let mut retract = SpecDelta::new();
            retract.remove_tuple(rel, id);
            marker_seen |= durable.apply(&retract).unwrap().compacted.is_some();
        }
        assert!(marker_seen, "threshold crossed during the churn");
        let seq_before = durable.seq();
        drop(durable);
        // Chop the final frame (the auto marker) off the log: the
        // crash-between-appends footprint.
        let wal = dir.join("wal.log");
        let bytes = std::fs::read(&wal).unwrap();
        let last = *frame_starts(&bytes).last().unwrap();
        std::fs::write(&wal, &bytes[..last]).unwrap();
        // First reopen: the replayed churn re-triggers the compaction and
        // the marker is backfilled at the same sequence number.
        let mut recovered = DurableEngine::open(&dir, &opts, fast()).unwrap();
        assert_eq!(recovered.recovery().compacts_replayed, 1);
        assert_eq!(recovered.seq(), seq_before, "marker seq restored");
        recovered.apply(&insert(r, 1, 900)).unwrap();
        let live = encode_spec(recovered.spec());
        drop(recovered);
        // Second reopen is the regression: it must find the backfilled
        // marker where it belongs and recover, not brick.
        let again = DurableEngine::open(&dir, &opts, fast())
            .expect("store must stay openable after the backfill");
        assert_eq!(encode_spec(again.spec()), live);
        assert!(again.cps().unwrap());
    }

    #[test]
    fn create_crash_before_the_base_snapshot_is_retryable() {
        // The creation order is log first, snapshot last: a crash in
        // between leaves a log-only directory, which `open` reports as
        // not-a-store and a retried `create` simply rebuilds.
        let dir = tmpdir("create-crash");
        std::fs::create_dir_all(&dir).unwrap();
        drop(crate::wal::Wal::create(&dir.join("wal.log"), 1, false).unwrap());
        assert!(matches!(
            DurableEngine::open(&dir, &Options::default(), fast()),
            Err(StoreError::NoSnapshot { .. })
        ));
        let (spec, r) = seed_spec();
        let mut durable = DurableEngine::create(&dir, spec, &Options::default(), fast()).unwrap();
        durable.apply(&insert(r, 0, 7)).unwrap();
        drop(durable);
        assert!(DurableEngine::open(&dir, &Options::default(), fast()).is_ok());
    }

    #[test]
    fn orphaned_tmp_snapshots_are_swept_on_open() {
        let dir = tmpdir("tmp-sweep");
        let (spec, r) = seed_spec();
        let mut durable = DurableEngine::create(&dir, spec, &Options::default(), fast()).unwrap();
        durable.apply(&insert(r, 0, 7)).unwrap();
        drop(durable);
        // The residue of a crash between temp write and rename.
        let orphan = dir.join("snapshot-00000000000000000099.cur.tmp");
        std::fs::write(&orphan, b"half-written snapshot").unwrap();
        let recovered = DurableEngine::open(&dir, &Options::default(), fast()).unwrap();
        assert!(!orphan.exists(), "orphaned temp file swept");
        assert!(recovered.cps().unwrap());
    }

    #[test]
    fn poisoned_store_refuses_mutations_but_reopens_cleanly() {
        let dir = tmpdir("poison");
        let (spec, r) = seed_spec();
        let mut durable = DurableEngine::create(&dir, spec, &Options::default(), fast()).unwrap();
        durable.apply(&insert(r, 0, 41)).unwrap();
        durable.poisoned = Some("simulated partial write".to_string());
        assert!(matches!(
            durable.apply(&insert(r, 0, 42)),
            Err(StoreError::Poisoned { .. })
        ));
        assert!(matches!(
            durable.compact(),
            Err(StoreError::Poisoned { .. })
        ));
        assert!(matches!(
            durable.snapshot_now(),
            Err(StoreError::Poisoned { .. })
        ));
        assert_eq!(durable.seq(), 1, "poisoned mutations never advance seq");
        // Queries still answer (the in-memory engine is coherent).
        assert!(durable.cps().unwrap());
        drop(durable);
        // Reopening recovers the durable prefix and clears the poison.
        let mut recovered = DurableEngine::open(&dir, &Options::default(), fast()).unwrap();
        assert_eq!(recovered.recovery().deltas_replayed, 1);
        recovered.apply(&insert(r, 0, 42)).unwrap();
        assert!(recovered.cps().unwrap());
    }

    #[test]
    fn group_commit_loses_at_most_the_unflushed_suffix() {
        let dir = tmpdir("group-commit");
        let (spec, r) = seed_spec();
        let opts = Options::default();
        let store_opts = StoreOptions {
            group_commit: 4,
            sync_data: false,
            ..StoreOptions::default()
        };
        let mut durable = DurableEngine::create(&dir, spec, &opts, store_opts).unwrap();
        for step in 0..5 {
            durable
                .apply(&insert(r, step % 3, 300 + step as i64))
                .unwrap();
        }
        // 4 records flushed as one batch, the 5th is buffered.  Simulate
        // a crash: leak the engine so Drop's flush never runs.
        assert_eq!(durable.wal.pending_records(), 1);
        std::mem::forget(durable);
        let recovered = DurableEngine::open(&dir, &opts, store_opts).unwrap();
        assert_eq!(
            recovered.recovery().deltas_replayed,
            4,
            "exactly the flushed prefix survives"
        );
        assert_eq!(recovered.seq(), 4);
        assert!(recovered.cps().unwrap());
    }

    #[test]
    fn injected_fsync_failure_is_fail_stop_and_reopen_recovers() {
        // Dry run against a fault-free chaos layer to learn the exact
        // operation sequence, then aim an fsync fault at the first log
        // sync a real apply would issue.
        let opts = Options::default();
        let durable_opts = StoreOptions::default(); // sync_data ON
        let dry_dir = tmpdir("chaos-fsync-dry");
        let probe = Arc::new(ChaosVfs::new(ChaosPlan::new()));
        let (spec, r) = seed_spec();
        let mut dry = DurableEngine::create_with_vfs(
            probe.clone(),
            &dry_dir,
            spec.clone(),
            &opts,
            durable_opts,
        )
        .unwrap();
        let created_at = probe.ops();
        dry.apply(&insert(r, 0, 50)).unwrap();
        drop(dry);
        let target = probe
            .trace()
            .iter()
            .find(|(op, kind)| *op >= created_at && *kind == "sync_data")
            .expect("a sync_data op inside apply")
            .0;

        // The measured run: same workload, fault injected.
        let dir = tmpdir("chaos-fsync");
        let chaos = Arc::new(ChaosVfs::new(
            ChaosPlan::new().fail_at(target, Fault::FsyncErr),
        ));
        let mut durable =
            DurableEngine::create_with_vfs(chaos.clone(), &dir, spec, &opts, durable_opts).unwrap();
        assert!(
            matches!(durable.apply(&insert(r, 0, 50)), Err(StoreError::Io { .. })),
            "the failed fsync surfaces as a typed I/O error"
        );
        assert_eq!(chaos.injected(), 1);
        // Fail-stop: the log's durability is now unknown, so every
        // further mutation is refused until a reopen re-derives truth
        // from disk.
        assert!(matches!(
            durable.apply(&insert(r, 1, 60)),
            Err(StoreError::Poisoned { .. })
        ));
        assert!(matches!(
            durable.compact(),
            Err(StoreError::Poisoned { .. })
        ));
        assert!(durable.cps().unwrap(), "reads still answer");
        drop(durable);
        // Reopen (no faults): recovery lands on a prefix-consistent
        // state.  An fsync that *errored* may still have persisted the
        // bytes, so either the delta survived whole or it is gone whole —
        // never half.
        let recovered = DurableEngine::open(&dir, &opts, durable_opts).unwrap();
        let replayed = recovered.recovery().deltas_replayed;
        assert!(replayed <= 1, "at most the acknowledged suffix is lost");
        assert_eq!(recovered.seq(), replayed as u64);
        assert!(recovered.cps().unwrap());
        let mut recovered = recovered;
        recovered.apply(&insert(r, 2, 70)).unwrap();
        assert!(recovered.cps().unwrap(), "store is fully usable again");
    }

    #[test]
    fn torn_rename_during_rotation_falls_back_by_checksum() {
        // Aim a torn rename at the snapshot publish inside an explicit
        // rotation: the half-written snapshot sits under a live name and
        // must be refused by checksum on reopen, with the log bridging
        // the gap.
        let opts = Options::default();
        let durable_opts = StoreOptions {
            sync_data: false,
            ..StoreOptions::default()
        };
        let dry_dir = tmpdir("chaos-torn-dry");
        let probe = Arc::new(ChaosVfs::new(ChaosPlan::new()));
        let (spec, r) = seed_spec();
        let mut dry = DurableEngine::create_with_vfs(
            probe.clone(),
            &dry_dir,
            spec.clone(),
            &opts,
            durable_opts,
        )
        .unwrap();
        dry.apply(&insert(r, 0, 50)).unwrap();
        let before_rotation = probe.ops();
        dry.snapshot_now().unwrap();
        drop(dry);
        let target = probe
            .trace()
            .iter()
            .find(|(op, kind)| *op >= before_rotation && *kind == "rename")
            .expect("the snapshot publish rename")
            .0;

        let dir = tmpdir("chaos-torn");
        let chaos = Arc::new(ChaosVfs::new(
            ChaosPlan::new().fail_at(target, Fault::TornRename),
        ));
        let mut durable =
            DurableEngine::create_with_vfs(chaos.clone(), &dir, spec, &opts, durable_opts).unwrap();
        durable.apply(&insert(r, 0, 50)).unwrap();
        let live_bytes = encode_spec(durable.spec());
        assert!(
            matches!(durable.snapshot_now(), Err(StoreError::Io { .. })),
            "the torn publish surfaces as a typed I/O error"
        );
        assert!(matches!(
            durable.apply(&insert(r, 1, 60)),
            Err(StoreError::Poisoned { .. })
        ));
        drop(durable);
        // Reopen: the torn snapshot-1 fails its checksum, recovery falls
        // back to the base snapshot, and the (untruncated) log replays
        // the delta — byte-for-byte the acknowledged state.
        let recovered = DurableEngine::open(&dir, &opts, durable_opts).unwrap();
        assert_eq!(recovered.recovery().snapshots_skipped, 1);
        assert_eq!(recovered.recovery().snapshot_seq, 0);
        assert_eq!(recovered.recovery().deltas_replayed, 1);
        assert_eq!(encode_spec(recovered.spec()), live_bytes);
    }

    fn budget_opts(max_slots: usize) -> Options {
        Options {
            auto_compact_tombstones: 2,
            auto_compact_budget: Some(CompactBudget {
                max_slots_per_step: max_slots,
                ..CompactBudget::default()
            }),
            ..Options::default()
        }
    }

    #[test]
    fn budgeted_auto_steps_are_logged_and_replayed() {
        let dir = tmpdir("budget-auto");
        let (spec, r) = seed_spec();
        let opts = budget_opts(2);
        let mut durable = DurableEngine::create(&dir, spec, &opts, fast()).unwrap();
        let mut steps_seen = 0;
        for step in 0..4 {
            let report = durable.apply(&insert(r, 0, 500 + step)).unwrap();
            assert!(
                report.compacted.is_none(),
                "budget mode never stops the world"
            );
            let (rel, id) = report.inserted[0];
            let mut retract = SpecDelta::new();
            retract.remove_tuple(rel, id);
            let report = durable.apply(&retract).unwrap();
            assert!(report.compacted.is_none());
            if report.compact_step.is_some() {
                steps_seen += 1;
            }
        }
        assert!(steps_seen >= 1, "threshold crossed during the churn");
        let live_bytes = encode_spec(durable.spec());
        drop(durable);
        // Same options: replay re-executes every logged step's slices
        // and verifies them.
        let recovered = DurableEngine::open(&dir, &opts, fast()).unwrap();
        assert_eq!(encode_spec(recovered.spec()), live_bytes);
        assert_eq!(recovered.recovery().compact_steps_replayed, steps_seen);
        assert_eq!(recovered.stats().compact_steps, steps_seen);
        assert_eq!(recovered.stats().compactions, 0);
        assert!(recovered.cps().unwrap());
        drop(recovered);
        // Reopening the budget-mode log under the monolithic auto policy
        // must refuse: the replayed apply would compact stop-the-world
        // where the original run took one bounded step.
        let monolithic = Options {
            auto_compact_tombstones: 2,
            ..Options::default()
        };
        assert!(
            matches!(
                DurableEngine::open(&dir, &monolithic, fast()),
                Err(StoreError::ReplayDiverged { .. })
            ),
            "budget-mode log + monolithic reopen must diverge"
        );
    }

    #[test]
    fn monolithic_log_refuses_a_budgeted_reopen() {
        let dir = tmpdir("budget-mismatch");
        let (spec, r) = seed_spec();
        let monolithic = Options {
            auto_compact_tombstones: 2,
            ..Options::default()
        };
        let mut durable = DurableEngine::create(&dir, spec, &monolithic, fast()).unwrap();
        let mut auto_seen = false;
        for step in 0..3 {
            let report = durable.apply(&insert(r, 0, 600 + step)).unwrap();
            let (rel, id) = report.inserted[0];
            let mut retract = SpecDelta::new();
            retract.remove_tuple(rel, id);
            auto_seen |= durable.apply(&retract).unwrap().compacted.is_some();
        }
        assert!(auto_seen, "a stop-the-world auto-compaction was logged");
        drop(durable);
        assert!(
            matches!(
                DurableEngine::open(&dir, &budget_opts(2), fast()),
                Err(StoreError::ReplayDiverged { .. })
            ),
            "monolithic log + budgeted reopen must diverge"
        );
    }

    #[test]
    fn explicit_compact_steps_drain_durably_across_reopens() {
        let dir = tmpdir("explicit-steps");
        let (spec, r) = seed_spec();
        let opts = Options::default();
        let mut durable = DurableEngine::create(&dir, spec, &opts, fast()).unwrap();
        // Churn up a scattered set of tombstones.
        for step in 0..6 {
            let report = durable
                .apply(&insert(r, step % 3, 700 + step as i64))
                .unwrap();
            if step % 2 == 0 {
                let (rel, id) = report.inserted[0];
                let mut retract = SpecDelta::new();
                retract.remove_tuple(rel, id);
                durable.apply(&retract).unwrap();
            }
        }
        let tombstones = durable.spec().total_tombstones();
        assert!(tombstones > 0);
        // Drain in 1-slot steps, reopening the store between two of them:
        // a crash mid-compaction must recover to the intermediate state.
        let budget = CompactBudget {
            max_slots_per_step: 1,
            ..CompactBudget::default()
        };
        let mut reclaimed = 0;
        let mut steps_logged = 0;
        loop {
            let step = durable.compact_step(&budget).unwrap();
            reclaimed += step.reclaimed;
            if !step.slices.is_empty() {
                steps_logged += 1;
                // Reopen once mid-drain, from the first productive step.
                if steps_logged == 1 {
                    let mid_bytes = encode_spec(durable.spec());
                    drop(durable);
                    durable = DurableEngine::open(&dir, &opts, fast()).unwrap();
                    assert_eq!(
                        encode_spec(durable.spec()),
                        mid_bytes,
                        "recovery lands on the mid-compaction state"
                    );
                }
            }
            if step.done {
                break;
            }
        }
        assert_eq!(reclaimed, tombstones, "every tombstone slot reclaimed");
        assert_eq!(durable.spec().total_tombstones(), 0);
        let drained_bytes = encode_spec(durable.spec());
        drop(durable);
        let recovered = DurableEngine::open(&dir, &opts, fast()).unwrap();
        assert_eq!(encode_spec(recovered.spec()), drained_bytes);
        assert!(recovered.recovery().compact_steps_replayed > 0);
        assert!(recovered.cps().unwrap());
    }

    #[test]
    fn crash_between_delta_and_auto_step_record_backfills() {
        // Budget-mode twin of the auto-marker backfill: a crash after
        // the delta flush but before its step record leaves the step
        // missing at end-of-log.  Recovery must run the deterministic
        // slot-bounded step and backfill its record.
        let dir = tmpdir("step-gap");
        let (spec, r) = seed_spec();
        let opts = budget_opts(2);
        let mut durable = DurableEngine::create(&dir, spec, &opts, fast()).unwrap();
        let mut step_seen = false;
        for step in 0..2 {
            let report = durable.apply(&insert(r, 0, 800 + step)).unwrap();
            let (rel, id) = report.inserted[0];
            let mut retract = SpecDelta::new();
            retract.remove_tuple(rel, id);
            step_seen |= durable.apply(&retract).unwrap().compact_step.is_some();
        }
        assert!(step_seen, "threshold crossed during the churn");
        let seq_before = durable.seq();
        let live_bytes = encode_spec(durable.spec());
        drop(durable);
        // Chop the final frame (the step record) off the log.
        let wal = dir.join("wal.log");
        let bytes = std::fs::read(&wal).unwrap();
        let last = *frame_starts(&bytes).last().unwrap();
        std::fs::write(&wal, &bytes[..last]).unwrap();
        // First reopen: replay re-runs the deterministic step and
        // backfills its record at the same sequence number.
        let mut recovered = DurableEngine::open(&dir, &opts, fast()).unwrap();
        assert_eq!(recovered.recovery().compact_steps_replayed, 1);
        assert_eq!(recovered.seq(), seq_before, "step record seq restored");
        assert_eq!(encode_spec(recovered.spec()), live_bytes);
        recovered.apply(&insert(r, 1, 900)).unwrap();
        let live = encode_spec(recovered.spec());
        drop(recovered);
        // Second reopen must find the backfilled record and recover.
        let again = DurableEngine::open(&dir, &opts, fast())
            .expect("store must stay openable after the backfill");
        assert_eq!(encode_spec(again.spec()), live);
        assert!(again.cps().unwrap());
    }
}
