//! The filesystem seam: every byte the durability layer moves goes
//! through a [`Vfs`], so the same code path runs against the real
//! filesystem in production ([`RealVfs`]) and against a scripted
//! fault injector in tests ([`ChaosVfs`]).
//!
//! ## Why a trait and not `#[cfg(test)]` hooks
//!
//! The recovery contract ("fail-stop, prefix-consistent, never silently
//! wrong") is only worth what the fault coverage proves.  Hooking
//! individual `std::fs` calls tests the hooks; routing *all* I/O through
//! one narrow trait means a fault schedule can land on any operation the
//! store will ever issue — the exact op set, in the exact order, that
//! production executes.
//!
//! ## The chaos model
//!
//! [`ChaosVfs`] numbers every operation with a global counter and
//! consults a [`ChaosPlan`] — a map from operation index to [`Fault`].
//! The schedule is **scripted**: the same plan over the same workload
//! injects the same fault at the same byte, so every chaos failure is
//! replayable from its seed.  Four fault shapes cover the crash
//! folklore:
//!
//! * [`Fault::Io`] — the operation fails outright (disk yanked, EIO);
//! * [`Fault::ShortWrite`] — half the buffer reaches the file, then the
//!   write errors (a torn append's on-disk footprint);
//! * [`Fault::FsyncErr`] — the sync fails *after* the data was handed to
//!   the OS (the infamous fsync-gate shape: the bytes may or may not be
//!   durable, and the caller must treat the file as suspect);
//! * [`Fault::TornRename`] — the destination materializes half-written
//!   and the rename errors (a crash mid-publish on a non-atomic
//!   filesystem; the checksum layer must refuse the torn file).

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// An open file handle behind the [`Vfs`] seam.
pub trait VfsFile: Send {
    /// Read the rest of the file into `buf`.
    fn read_to_end(&mut self, buf: &mut Vec<u8>) -> io::Result<usize>;
    /// Write the whole buffer at the current position.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Reposition the file cursor.
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64>;
    /// Truncate (or extend) the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
    /// Flush file *data* to stable storage.
    fn sync_data(&mut self) -> io::Result<()>;
    /// Flush file data and metadata to stable storage.
    fn sync_all(&mut self) -> io::Result<()>;
}

/// The filesystem operations the durability layer needs — nothing more.
/// Implementations must be shareable across threads (the serving stack
/// holds stores behind `Arc`).
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Open an existing file for reading and appending/patching.
    fn open_read_write(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Create (or truncate) a file for reading and writing.
    fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Atomically rename `from` to `to` (the snapshot publish step).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Delete a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Every entry in `dir`, as full paths (order unspecified).
    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
    /// Create a directory and its ancestors.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// `fsync` a directory so a just-created or just-renamed entry in it
    /// survives power loss — file-data syncs alone do not persist the
    /// directory entry.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

/// The production [`Vfs`]: a thin veneer over `std::fs`.
#[derive(Clone, Copy, Debug, Default)]
pub struct RealVfs;

struct RealFile(File);

impl VfsFile for RealFile {
    fn read_to_end(&mut self, buf: &mut Vec<u8>) -> io::Result<usize> {
        self.0.read_to_end(buf)
    }
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        self.0.seek(pos)
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }
    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
    fn sync_all(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
}

impl Vfs for RealVfs {
    fn open_read_write(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        Ok(Box::new(RealFile(file)))
    }

    fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(RealFile(file)))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            out.push(entry?.path());
        }
        Ok(out)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        match File::open(dir) {
            Ok(handle) => handle.sync_all(),
            // Opening a directory read-only can be unsupported (non-POSIX
            // platforms); the rename itself is still atomic, so degrade
            // to the pre-fsync guarantee instead of failing the write.
            Err(_) => Ok(()),
        }
    }
}

/// One injected failure shape (see the module docs for the crash
/// folklore each models).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The operation fails outright, touching nothing.
    Io,
    /// Half the buffer is written, then the write errors.
    ShortWrite,
    /// The sync errors; the preceding writes may or may not be durable.
    FsyncErr,
    /// The rename's destination materializes half-written, then errors.
    TornRename,
}

/// A scripted fault schedule: operation index → fault.  Operation
/// indices count **every** [`Vfs`]/[`VfsFile`] call the wrapped store
/// issues, in issue order, starting from 0 — run the workload once
/// against a fault-free [`ChaosVfs`] and [`ChaosVfs::trace`] names every
/// index a fault can land on.
///
/// A fault whose shape does not match its operation (a
/// [`Fault::TornRename`] landing on a read, say) degrades to
/// [`Fault::Io`]: the operation still fails, which keeps randomly
/// generated schedules meaningful everywhere they land.
#[derive(Clone, Debug, Default)]
pub struct ChaosPlan {
    faults: BTreeMap<u64, Fault>,
}

impl ChaosPlan {
    /// An empty schedule (every operation succeeds).
    pub fn new() -> ChaosPlan {
        ChaosPlan::default()
    }

    /// Schedule `fault` at global operation index `op`.
    pub fn fail_at(mut self, op: u64, fault: Fault) -> ChaosPlan {
        self.faults.insert(op, fault);
        self
    }

    /// A reproducible random schedule: up to `faults` faults at indices
    /// below `horizon`, derived from `seed` alone (splitmix64 — no
    /// global state, the same seed always builds the same plan).
    pub fn from_seed(seed: u64, horizon: u64, faults: usize) -> ChaosPlan {
        let mut plan = ChaosPlan::new();
        if horizon == 0 {
            return plan;
        }
        let mut state = seed ^ 0xD6E8_FEB8_6659_FD93;
        for _ in 0..faults {
            let op = splitmix64(&mut state) % horizon;
            let fault = match splitmix64(&mut state) % 4 {
                0 => Fault::Io,
                1 => Fault::ShortWrite,
                2 => Fault::FsyncErr,
                _ => Fault::TornRename,
            };
            plan.faults.insert(op, fault);
        }
        plan
    }

    /// The scheduled faults, by operation index.
    pub fn faults(&self) -> &BTreeMap<u64, Fault> {
        &self.faults
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Debug)]
struct ChaosState {
    plan: ChaosPlan,
    next_op: AtomicU64,
    injected: AtomicU64,
    trace: Mutex<Vec<(u64, &'static str)>>,
}

impl ChaosState {
    /// Number the operation, record it in the trace, and look up its
    /// scheduled fault (if any).
    fn step(&self, kind: &'static str) -> (u64, Option<Fault>) {
        let op = self.next_op.fetch_add(1, Ordering::Relaxed);
        self.trace
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push((op, kind));
        let fault = self.plan.faults.get(&op).copied();
        if fault.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        (op, fault)
    }
}

fn injected(op: u64, fault: Fault, kind: &'static str) -> io::Error {
    io::Error::other(format!("chaos: injected {fault:?} at op #{op} ({kind})"))
}

/// A fault-injecting [`Vfs`] wrapper (see the module docs).  Wraps
/// [`RealVfs`] by default; every operation — including those issued by
/// files it handed out — is globally numbered and checked against the
/// [`ChaosPlan`].
#[derive(Debug)]
pub struct ChaosVfs {
    inner: Arc<dyn Vfs>,
    state: Arc<ChaosState>,
}

impl ChaosVfs {
    /// A chaos layer over the real filesystem.
    pub fn new(plan: ChaosPlan) -> ChaosVfs {
        ChaosVfs::over(Arc::new(RealVfs), plan)
    }

    /// A chaos layer over an arbitrary inner [`Vfs`].
    pub fn over(inner: Arc<dyn Vfs>, plan: ChaosPlan) -> ChaosVfs {
        ChaosVfs {
            inner,
            state: Arc::new(ChaosState {
                plan,
                next_op: AtomicU64::new(0),
                injected: AtomicU64::new(0),
                trace: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Operations issued so far — run a workload fault-free and this is
    /// the `horizon` for [`ChaosPlan::from_seed`].
    pub fn ops(&self) -> u64 {
        self.state.next_op.load(Ordering::Relaxed)
    }

    /// Faults actually injected so far (a schedule whose indices the
    /// workload never reached injects nothing).
    pub fn injected(&self) -> u64 {
        self.state.injected.load(Ordering::Relaxed)
    }

    /// Every operation issued so far, as `(index, kind)` — the map for
    /// aiming a targeted schedule at, say, "the first `sync_data` after
    /// the store was created".
    pub fn trace(&self) -> Vec<(u64, &'static str)> {
        self.state
            .trace
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

struct ChaosFile {
    inner: Box<dyn VfsFile>,
    state: Arc<ChaosState>,
}

impl VfsFile for ChaosFile {
    fn read_to_end(&mut self, buf: &mut Vec<u8>) -> io::Result<usize> {
        match self.state.step("read_to_end") {
            (op, Some(fault)) => Err(injected(op, fault, "read_to_end")),
            _ => self.inner.read_to_end(buf),
        }
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self.state.step("write_all") {
            (op, Some(Fault::ShortWrite)) => {
                // Half the buffer lands before the failure: the torn
                // footprint the frame/checksum layers must absorb.
                let _ = self.inner.write_all(&buf[..buf.len() / 2]);
                Err(injected(op, Fault::ShortWrite, "write_all"))
            }
            (op, Some(fault)) => Err(injected(op, fault, "write_all")),
            _ => self.inner.write_all(buf),
        }
    }

    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        match self.state.step("seek") {
            (op, Some(fault)) => Err(injected(op, fault, "seek")),
            _ => self.inner.seek(pos),
        }
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        match self.state.step("set_len") {
            (op, Some(fault)) => Err(injected(op, fault, "set_len")),
            _ => self.inner.set_len(len),
        }
    }

    fn sync_data(&mut self) -> io::Result<()> {
        match self.state.step("sync_data") {
            // FsyncErr semantics: the error surfaces but the preceding
            // writes were already handed to the OS — durability is
            // *unknown*, exactly the ambiguity callers must fail-stop on.
            (op, Some(fault)) => Err(injected(op, fault, "sync_data")),
            _ => self.inner.sync_data(),
        }
    }

    fn sync_all(&mut self) -> io::Result<()> {
        match self.state.step("sync_all") {
            (op, Some(fault)) => Err(injected(op, fault, "sync_all")),
            _ => self.inner.sync_all(),
        }
    }
}

impl Vfs for ChaosVfs {
    fn open_read_write(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        match self.state.step("open_read_write") {
            (op, Some(fault)) => Err(injected(op, fault, "open_read_write")),
            _ => Ok(Box::new(ChaosFile {
                inner: self.inner.open_read_write(path)?,
                state: self.state.clone(),
            })),
        }
    }

    fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        match self.state.step("create_truncate") {
            (op, Some(fault)) => Err(injected(op, fault, "create_truncate")),
            _ => Ok(Box::new(ChaosFile {
                inner: self.inner.create_truncate(path)?,
                state: self.state.clone(),
            })),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.state.step("rename") {
            (op, Some(Fault::TornRename)) => {
                // A crash mid-publish on a non-atomic filesystem: the
                // destination shows up half-written (and the source
                // stays).  The torn file sits under a *live* name, so
                // whoever reads it must refuse it by checksum.
                let mut bytes = Vec::new();
                if let Ok(mut src) = self.inner.open_read_write(from) {
                    let _ = src.read_to_end(&mut bytes);
                }
                if let Ok(mut dst) = self.inner.create_truncate(to) {
                    let _ = dst.write_all(&bytes[..bytes.len() / 2]);
                }
                Err(injected(op, Fault::TornRename, "rename"))
            }
            (op, Some(fault)) => Err(injected(op, fault, "rename")),
            _ => self.inner.rename(from, to),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match self.state.step("remove_file") {
            (op, Some(fault)) => Err(injected(op, fault, "remove_file")),
            _ => self.inner.remove_file(path),
        }
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        match self.state.step("read_dir") {
            (op, Some(fault)) => Err(injected(op, fault, "read_dir")),
            _ => self.inner.read_dir(dir),
        }
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        match self.state.step("create_dir_all") {
            (op, Some(fault)) => Err(injected(op, fault, "create_dir_all")),
            _ => self.inner.create_dir_all(dir),
        }
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        match self.state.step("sync_dir") {
            (op, Some(fault)) => Err(injected(op, fault, "sync_dir")),
            _ => self.inner.sync_dir(dir),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("currency-store-vfs-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn real_vfs_round_trips_and_lists() {
        let dir = tmpdir("real");
        let vfs = RealVfs;
        let path = dir.join("a.bin");
        {
            let mut f = vfs.create_truncate(&path).unwrap();
            f.write_all(b"hello").unwrap();
            f.sync_data().unwrap();
        }
        let mut f = vfs.open_read_write(&path).unwrap();
        let mut buf = Vec::new();
        f.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"hello");
        f.seek(SeekFrom::Start(0)).unwrap();
        f.set_len(2).unwrap();
        drop(f);
        let renamed = dir.join("b.bin");
        vfs.rename(&path, &renamed).unwrap();
        let listed = vfs.read_dir(&dir).unwrap();
        assert_eq!(listed, vec![renamed.clone()]);
        vfs.sync_dir(&dir).unwrap();
        vfs.remove_file(&renamed).unwrap();
        assert!(vfs.read_dir(&dir).unwrap().is_empty());
    }

    #[test]
    fn chaos_counts_ops_and_injects_at_the_scheduled_index() {
        let dir = tmpdir("chaos-count");
        let vfs = ChaosVfs::new(ChaosPlan::new().fail_at(2, Fault::Io));
        let path = dir.join("a.bin");
        let mut f = vfs.create_truncate(&path).unwrap(); // op 0
        f.write_all(b"xy").unwrap(); // op 1
        let err = f.write_all(b"zw").unwrap_err(); // op 2: injected
        assert_eq!(err.to_string(), "chaos: injected Io at op #2 (write_all)");
        f.write_all(b"ok").unwrap(); // op 3: schedule exhausted
        assert_eq!(vfs.ops(), 4);
        assert_eq!(vfs.injected(), 1);
        let kinds: Vec<_> = vfs.trace().iter().map(|(_, k)| *k).collect();
        assert_eq!(
            kinds,
            vec!["create_truncate", "write_all", "write_all", "write_all"]
        );
    }

    #[test]
    fn short_write_leaves_half_the_buffer() {
        let dir = tmpdir("chaos-short");
        let vfs = ChaosVfs::new(ChaosPlan::new().fail_at(1, Fault::ShortWrite));
        let path = dir.join("a.bin");
        let mut f = vfs.create_truncate(&path).unwrap();
        assert!(f.write_all(b"12345678").is_err());
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"1234");
    }

    #[test]
    fn torn_rename_leaves_a_half_written_destination() {
        let dir = tmpdir("chaos-torn");
        let src = dir.join("src.tmp");
        std::fs::write(&src, b"ABCDEFGH").unwrap();
        let vfs = ChaosVfs::new(ChaosPlan::new().fail_at(0, Fault::TornRename));
        let dst = dir.join("dst.bin");
        assert!(vfs.rename(&src, &dst).is_err());
        assert_eq!(std::fs::read(&dst).unwrap(), b"ABCD", "torn destination");
        assert!(src.exists(), "source not consumed");
    }

    #[test]
    fn seeded_plans_are_reproducible_and_bounded() {
        let a = ChaosPlan::from_seed(42, 100, 3);
        let b = ChaosPlan::from_seed(42, 100, 3);
        assert_eq!(a.faults(), b.faults(), "same seed, same schedule");
        assert!(a.faults().len() <= 3);
        assert!(a.faults().keys().all(|&op| op < 100));
        let c = ChaosPlan::from_seed(43, 100, 3);
        assert_ne!(a.faults(), c.faults(), "different seed diverges");
        assert!(ChaosPlan::from_seed(1, 0, 5).faults().is_empty());
    }
}
