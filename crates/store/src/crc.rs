//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the frame
//! checksum of the write-ahead log and the payload checksum of snapshot
//! files.
//!
//! Hand-rolled table-driven implementation (no external dependencies,
//! matching the workspace's offline discipline).  The table is computed
//! at compile time; `crc32(b"123456789") == 0xCBF4_3926` is the standard
//! check value and is pinned by a unit test so the format can never
//! silently drift.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Initial state for incremental computation
/// ([`crc32_update`]/[`crc32_finish`]).
pub const CRC_INIT: u32 = !0u32;

/// Fold `bytes` into an incremental CRC state.
pub fn crc32_update(mut state: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        state = (state >> 8) ^ TABLE[((state ^ b as u32) & 0xFF) as usize];
    }
    state
}

/// Finalize an incremental CRC state.
pub fn crc32_finish(state: u32) -> u32 {
    !state
}

/// The CRC-32 of `bytes` in one shot.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_finish(crc32_update(CRC_INIT, bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn distinguishes_single_bit_flips() {
        let base = crc32(b"currency");
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"currencz"), base);
        assert_ne!(crc32(b"Currency"), base);
        assert_eq!(crc32(b"currency"), base, "deterministic");
    }

    #[test]
    fn incremental_matches_one_shot() {
        let state = crc32_update(CRC_INIT, b"123");
        let state = crc32_update(state, b"456789");
        assert_eq!(crc32_finish(state), crc32(b"123456789"));
    }
}
