//! # currency-store
//!
//! Durability for the data-currency model: specifications — tuples,
//! partial currency orders, denial constraints, copy functions — as
//! **long-lived services** that survive process restarts, not one-shot
//! in-memory solves.
//!
//! The live layers already exist: `currency-core`'s [`SpecDelta`] batches
//! updates and `currency-reason`'s [`CurrencyEngine`] applies them with
//! O(dirty region) recompilation.  This crate adds the missing
//! persistence spine underneath, built from three pieces:
//!
//! * **[`wal`]** — an append-only write-ahead log of every applied delta
//!   (and every compaction's id-remap tables), length-prefixed and
//!   CRC-framed, with group-commit buffering and torn-tail detection on
//!   open;
//! * **[`snapshot`]** — versioned, checksummed full-state snapshots in
//!   the hand-rolled binary wire format of [`currency_core::wire`]
//!   (no external dependencies — the same offline discipline as the
//!   workspace's shims), rotated when the log grows past a threshold;
//! * **[`DurableEngine`]** — the crash-recoverable wrapper routing
//!   `apply`/`compact` through **log-then-apply** semantics and
//!   recovering on startup from the newest valid snapshot plus a log
//!   suffix replay, each delta re-validated through the normal
//!   [`SpecDelta::validate`] path.
//!
//! Every byte any of them moves goes through the [`vfs`] seam: the
//! production path is [`RealVfs`] (a thin veneer over `std::fs`), and
//! the chaos harness swaps in [`ChaosVfs`] — a scripted fault injector
//! (outright I/O errors, short writes, fsync failures, torn renames)
//! that proves the fail-stop contract *on the exact operation sequence
//! production executes*.  A store that hits an injected write fault
//! refuses every further mutation ([`StoreError::Poisoned`]) until a
//! reopen re-derives the one consistent state the durable files define.
//!
//! The recovery contract, enforced by the fault-injection suite: opening
//! a store either reproduces a **prefix-consistent** state (everything up
//! to the last durable log record; a torn tail from a crash mid-append
//! is truncated away) or reports a checksum/divergence error — never a
//! panic, never a silently wrong specification.
//!
//! ## Example
//!
//! ```
//! use currency_core::*;
//! use currency_reason::Options;
//! use currency_store::{DurableEngine, StoreOptions};
//!
//! let dir = std::env::temp_dir().join(format!("currency-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//!
//! // Build a specification and put it behind a durable engine.
//! let mut catalog = Catalog::new();
//! let r = catalog.add(RelationSchema::new("R", &["A"]));
//! let mut spec = Specification::new(catalog);
//! spec.instance_mut(r).push_tuple(Tuple::new(Eid(1), vec![Value::int(1)])).unwrap();
//! let opts = Options::default();
//! let mut engine = DurableEngine::create(&dir, spec, &opts, StoreOptions::default()).unwrap();
//!
//! // Updates are logged before they are applied.
//! let mut delta = SpecDelta::new();
//! delta.insert_tuple(r, Tuple::new(Eid(1), vec![Value::int(2)]));
//! engine.apply(&delta).unwrap();
//! assert!(engine.cps().unwrap());
//! drop(engine); // "crash"
//!
//! // Reopening recovers snapshot + log suffix.
//! let recovered = DurableEngine::open(&dir, &opts, StoreOptions::default()).unwrap();
//! assert_eq!(recovered.recovery().deltas_replayed, 1);
//! assert_eq!(recovered.spec().instance(r).live_len(), 2);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```
//!
//! [`SpecDelta`]: currency_core::SpecDelta
//! [`SpecDelta::validate`]: currency_core::SpecDelta::validate
//! [`CurrencyEngine`]: currency_reason::CurrencyEngine

pub mod crc;
mod durable;
mod error;
mod sharded;
pub mod snapshot;
pub mod vfs;
pub mod wal;

pub use durable::{DurableEngine, RecoveryReport, StoreOptions};
pub use error::StoreError;
pub use sharded::{ShardedStore, ShardedStoreError};
pub use vfs::{ChaosPlan, ChaosVfs, Fault, RealVfs, Vfs, VfsFile};
pub use wal::{Record, Wal, WalOpen};
