//! Checksummed, versioned specification snapshots.
//!
//! ## File layout
//!
//! ```text
//! magic "CURSNAP1" (8 bytes) ‖ wire version (u32 LE) ‖ covered seq (u64 LE)
//! ‖ payload length (u64 LE) ‖ CRC-32 of seq‖length‖payload (u32 LE) ‖ payload
//! ```
//!
//! The payload is a wire-encoded [`Specification`]
//! ([`currency_core::wire::encode_spec`]); the *covered sequence number*
//! says which log prefix the snapshot subsumes — recovery loads the
//! snapshot and replays only records with a higher sequence number.  The
//! checksum covers the sequence number and length alongside the payload,
//! so a flipped bit anywhere meaningful (a wrong seq would silently skip
//! or double-replay log records) is caught.
//!
//! Snapshots are written to a temporary file and atomically renamed into
//! place, so a crash mid-write leaves either the old generation or the
//! new one, never a half-written file under a live name.  File names
//! embed the covered sequence number zero-padded
//! (`snapshot-00000000000000000042.cur`), so lexicographic directory
//! order is recovery order.

use crate::crc::{crc32_finish, crc32_update, CRC_INIT};
use crate::error::{io_err, StoreError};
use crate::vfs::{RealVfs, Vfs};
use currency_core::wire::{self, WIRE_VERSION};
use currency_core::Specification;
use std::path::{Path, PathBuf};

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"CURSNAP1";

/// Fixed-size snapshot header: magic + version + seq + length + CRC.
const SNAPSHOT_HEADER_LEN: usize = 8 + 4 + 8 + 8 + 4;

/// The snapshot checksum: CRC-32 over covered seq ‖ payload length ‖
/// payload (see module docs for why the header fields are included).
fn snapshot_crc(seq: u64, len: u64, payload: &[u8]) -> u32 {
    let state = crc32_update(CRC_INIT, &seq.to_le_bytes());
    let state = crc32_update(state, &len.to_le_bytes());
    crc32_finish(crc32_update(state, payload))
}

/// Snapshot file name for a covered sequence number.
pub fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snapshot-{seq:020}.cur"))
}

/// The `(seq, path)` of every snapshot file in `dir`, sorted ascending
/// by covered sequence number (non-snapshot files are ignored).
pub fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    list_snapshots_with(&RealVfs, dir)
}

/// [`list_snapshots`] through an explicit [`Vfs`].
pub fn list_snapshots_with(vfs: &dyn Vfs, dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let mut out = Vec::new();
    for path in vfs.read_dir(dir).map_err(|e| io_err(dir, e))? {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(seq) = name
            .strip_prefix("snapshot-")
            .and_then(|s| s.strip_suffix(".cur"))
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        out.push((seq, path));
    }
    out.sort();
    Ok(out)
}

/// Write a snapshot covering log records up to and including `seq`,
/// atomically (write to a temporary sibling, `fsync`, rename).
pub fn write_snapshot(
    dir: &Path,
    seq: u64,
    spec: &Specification,
    sync_data: bool,
) -> Result<PathBuf, StoreError> {
    write_snapshot_with(&RealVfs, dir, seq, spec, sync_data)
}

/// [`write_snapshot`] through an explicit [`Vfs`].
pub fn write_snapshot_with(
    vfs: &dyn Vfs,
    dir: &Path,
    seq: u64,
    spec: &Specification,
    sync_data: bool,
) -> Result<PathBuf, StoreError> {
    let payload = wire::encode_spec(spec);
    let crc = snapshot_crc(seq, payload.len() as u64, &payload);
    let mut bytes = Vec::with_capacity(SNAPSHOT_HEADER_LEN + payload.len());
    bytes.extend_from_slice(SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    bytes.extend_from_slice(&seq.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&crc.to_le_bytes());
    bytes.extend_from_slice(&payload);
    let path = snapshot_path(dir, seq);
    let tmp = path.with_extension("cur.tmp");
    {
        let mut file = vfs.create_truncate(&tmp).map_err(|e| io_err(&tmp, e))?;
        file.write_all(&bytes).map_err(|e| io_err(&tmp, e))?;
        if sync_data {
            file.sync_data().map_err(|e| io_err(&tmp, e))?;
        }
    }
    vfs.rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
    if sync_data {
        // The renamed entry must itself reach disk: without the directory
        // fsync a power cut could forget the new snapshot while keeping a
        // later log truncation, silently losing acknowledged records.
        vfs.sync_dir(dir).map_err(|e| io_err(dir, e))?;
    }
    Ok(path)
}

/// Read and verify a snapshot, returning the covered sequence number and
/// the decoded specification.
pub fn read_snapshot(path: &Path) -> Result<(u64, Specification), StoreError> {
    read_snapshot_with(&RealVfs, path)
}

/// [`read_snapshot`] through an explicit [`Vfs`].
pub fn read_snapshot_with(vfs: &dyn Vfs, path: &Path) -> Result<(u64, Specification), StoreError> {
    let mut bytes = Vec::new();
    vfs.open_read_write(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| io_err(path, e))?;
    if bytes.len() < SNAPSHOT_HEADER_LEN || &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(StoreError::Corrupt {
            path: path.to_path_buf(),
            offset: 0,
            detail: "bad or truncated snapshot header".to_string(),
        });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != WIRE_VERSION {
        return Err(StoreError::UnsupportedVersion {
            path: path.to_path_buf(),
            found: version,
        });
    }
    let seq = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let len = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
    let crc = u32::from_le_bytes(bytes[28..32].try_into().unwrap());
    let payload = &bytes[SNAPSHOT_HEADER_LEN..];
    if payload.len() as u64 != len {
        return Err(StoreError::Corrupt {
            path: path.to_path_buf(),
            offset: SNAPSHOT_HEADER_LEN as u64,
            detail: format!(
                "payload length mismatch: header says {len}, file holds {}",
                payload.len()
            ),
        });
    }
    if snapshot_crc(seq, len, payload) != crc {
        return Err(StoreError::Corrupt {
            path: path.to_path_buf(),
            offset: SNAPSHOT_HEADER_LEN as u64,
            detail: "snapshot checksum mismatch".to_string(),
        });
    }
    let spec = wire::decode_spec(payload)?;
    Ok((seq, spec))
}

/// Delete orphaned `.cur.tmp` files (the residue of a crash between a
/// snapshot's temp write and its atomic rename — never part of the
/// committed state, but a full spec encoding each if left to pile up).
pub fn sweep_tmp_snapshots(dir: &Path) -> Result<usize, StoreError> {
    sweep_tmp_snapshots_with(&RealVfs, dir)
}

/// [`sweep_tmp_snapshots`] through an explicit [`Vfs`].
pub fn sweep_tmp_snapshots_with(vfs: &dyn Vfs, dir: &Path) -> Result<usize, StoreError> {
    let mut swept = 0;
    for path in vfs.read_dir(dir).map_err(|e| io_err(dir, e))? {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.starts_with("snapshot-") && name.ends_with(".cur.tmp") {
            vfs.remove_file(&path).map_err(|e| io_err(&path, e))?;
            swept += 1;
        }
    }
    Ok(swept)
}

/// Delete every snapshot older than the newest `keep` generations.
pub fn prune_snapshots(dir: &Path, keep: usize) -> Result<usize, StoreError> {
    prune_snapshots_with(&RealVfs, dir, keep)
}

/// [`prune_snapshots`] through an explicit [`Vfs`].
pub fn prune_snapshots_with(vfs: &dyn Vfs, dir: &Path, keep: usize) -> Result<usize, StoreError> {
    let snaps = list_snapshots_with(vfs, dir)?;
    let keep = keep.max(1);
    if snaps.len() <= keep {
        return Ok(0);
    }
    let doomed = snaps.len() - keep;
    for (_, path) in &snaps[..doomed] {
        vfs.remove_file(path).map_err(|e| io_err(path, e))?;
    }
    Ok(doomed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use currency_core::{Catalog, Eid, RelationSchema, Tuple, Value};
    use std::fs;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("currency-store-snap-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_spec(tuples: i64) -> Specification {
        let mut cat = Catalog::new();
        let r = cat.add(RelationSchema::new("R", &["A"]));
        let mut spec = Specification::new(cat);
        for v in 0..tuples {
            spec.instance_mut(r)
                .push_tuple(Tuple::new(Eid(1), vec![Value::int(v)]))
                .unwrap();
        }
        spec
    }

    #[test]
    fn round_trip_preserves_seq_and_spec() {
        let dir = tmpdir("round-trip");
        let spec = sample_spec(3);
        let path = write_snapshot(&dir, 42, &spec, false).unwrap();
        let (seq, decoded) = read_snapshot(&path).unwrap();
        assert_eq!(seq, 42);
        assert_eq!(wire::encode_spec(&decoded), wire::encode_spec(&spec));
    }

    #[test]
    fn listing_sorts_by_covered_seq_and_ignores_strangers() {
        let dir = tmpdir("list");
        for seq in [7u64, 3, 100] {
            write_snapshot(&dir, seq, &sample_spec(1), false).unwrap();
        }
        fs::write(dir.join("wal.log"), b"not a snapshot").unwrap();
        fs::write(dir.join("snapshot-junk.cur"), b"unparsable name").unwrap();
        let seqs: Vec<u64> = list_snapshots(&dir)
            .unwrap()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert_eq!(seqs, vec![3, 7, 100]);
    }

    #[test]
    fn corruption_is_detected_at_every_byte() {
        let dir = tmpdir("corrupt");
        let path = write_snapshot(&dir, 1, &sample_spec(2), false).unwrap();
        let good = fs::read(&path).unwrap();
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x20;
            fs::write(&path, &bad).unwrap();
            assert!(
                read_snapshot(&path).is_err(),
                "undetected flip at byte {i} (the checksum covers seq, \
                 length and payload alike)"
            );
        }
        // Truncations error too.
        fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert!(read_snapshot(&path).is_err());
        fs::write(&path, &good[..10]).unwrap();
        assert!(read_snapshot(&path).is_err());
    }

    #[test]
    fn pruning_keeps_the_newest_generations() {
        let dir = tmpdir("prune");
        for seq in 1..=5u64 {
            write_snapshot(&dir, seq, &sample_spec(1), false).unwrap();
        }
        assert_eq!(prune_snapshots(&dir, 2).unwrap(), 3);
        let seqs: Vec<u64> = list_snapshots(&dir)
            .unwrap()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert_eq!(seqs, vec![4, 5]);
        assert_eq!(prune_snapshots(&dir, 2).unwrap(), 0, "idempotent");
        // keep is clamped to at least one generation.
        assert_eq!(prune_snapshots(&dir, 0).unwrap(), 1);
        assert_eq!(list_snapshots(&dir).unwrap().len(), 1);
    }
}
