//! Seed-driven differential suite for incremental compaction.
//!
//! Three independent referees check the bounded-pause compaction path:
//!
//! 1. **Stop-the-world `compact()`** — after an arbitrary interleaving of
//!    deltas and budgeted steps, a full drain must land on the exact
//!    wire-encoded bytes the monolithic reference pass produces, and the
//!    two engines' translation tables must agree on where every live
//!    tuple ended up.
//! 2. **A fresh engine** — verdicts (CPS, all-pairs COP, certain
//!    answers) of the long-lived incrementally-compacted engine must
//!    match an engine compiled from scratch over the same specification.
//! 3. **The enumeration oracle** — where the completion space is small
//!    enough, CPS and all-pairs COP are checked against brute-force
//!    enumeration of `Mod(S)` ([`for_each_consistent_completion`]).
//!
//! A fourth test aims [`ChaosVfs`] faults at every I/O operation inside a
//! durable compaction step: a crash at a step boundary must recover to
//! either the pre-step or the post-step state — never a half-remap.
//!
//! The suite is seed-driven: `SEEDS` random specifications in release
//! (the "10k-seed" differential), a smaller count under the debug
//! profile so tier-1 stays fast.  The chaos test honours the pinned
//! `CHAOS_SEED` environment variable (default `20260808`) so CI replays
//! one fixed fault schedule.

use std::collections::BTreeSet;
use std::sync::Arc;

use currency_core::{wire, AttrId, Eid, RelId, SpecDelta, Specification, Tuple, TupleId, Value};
use currency_datagen::random::{random_spec, RandomSpecConfig};
use currency_query::{Atom, Formula, Query, QueryBuilder, Term};
use currency_reason::enumerate::for_each_consistent_completion;
use currency_reason::{
    certain_answers, CompactBudget, CurrencyEngine, CurrencyOrderQuery, Options,
};
use currency_store::{ChaosPlan, ChaosVfs, DurableEngine, RealVfs, StoreOptions};

/// Seeds per differential test: the full 10k sweep in release, a fast
/// slice of the same space under the debug profile.
const SEEDS: u64 = if cfg!(debug_assertions) { 250 } else { 10_000 };

/// Candidate-space cap for the enumeration oracle; seeds whose
/// specification exceeds it skip referee 3 (referees 1–2 still run).
const ORACLE_LIMIT: usize = 4_096;

/// A tiny deterministic PRNG (xorshift64*), so the suite needs no
/// external randomness dependency and every failure reproduces from its
/// seed alone.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn small_cfg(seed: u64) -> RandomSpecConfig {
    RandomSpecConfig {
        entities: 2,
        tuples_per_entity: (1, 3),
        attrs: 2,
        value_pool: 4,
        order_density: 0.3,
        monotone_constraints: 1,
        correlated_constraints: seed.is_multiple_of(3) as usize,
        with_copy: seed.is_multiple_of(2),
        seed,
    }
}

/// All same-entity ordered pairs of `rel`, one entry per attribute.
fn entity_pairs(spec: &Specification, rel: RelId) -> Vec<(AttrId, TupleId, TupleId)> {
    let inst = spec.instance(rel);
    let mut pairs = Vec::new();
    for (_, group) in inst.entity_groups() {
        for &u in group {
            for &v in group {
                if u != v {
                    for a in 0..inst.arity() {
                        pairs.push((AttrId(a as u32), u, v));
                    }
                }
            }
        }
    }
    pairs
}

/// Select-everything query over `rel` (head = all attributes).
fn select_all(spec: &Specification, rel: RelId) -> Query {
    let arity = spec.instance(rel).arity();
    let mut b = QueryBuilder::new();
    let vars: Vec<_> = (0..arity).map(|_| b.var()).collect();
    let terms: Vec<Term> = vars.iter().map(|&v| Term::Var(v)).collect();
    b.build(vars.clone(), Formula::Atom(Atom::new(rel, terms)))
}

/// One seed's differential run: interleave random deltas with
/// random-budget incremental steps on one engine while a twin engine
/// only accumulates the same deltas, then reconcile everything.
fn run_seed(seed: u64) {
    let mut rng = Rng::new(seed);
    let spec = random_spec(&small_cfg(seed));
    let opts = Options::default();
    let mut inc = CurrencyEngine::new_owned(spec.clone(), &opts).expect("seed spec compiles");
    let mut mono = CurrencyEngine::new_owned(spec, &opts).expect("seed spec compiles");

    // Live tuples: (rel, id in the monolithic engine, id in the
    // incremental engine).  The monolithic engine never compacts until
    // the end, so its ids are the original ids; the incremental ids are
    // tracked through each step's translation table.
    let mut live: Vec<(RelId, TupleId, TupleId)> = Vec::new();
    for inst in inc.spec().instances() {
        let rel = inst.rel();
        for (_, group) in inst.entity_groups() {
            for &t in group {
                live.push((rel, t, t));
            }
        }
    }

    let rels: Vec<RelId> = inc.spec().instances().iter().map(|i| i.rel()).collect();
    let rounds = 4 + rng.below(5);
    for _ in 0..rounds {
        let retract = !live.is_empty() && rng.below(10) < 4;
        if retract {
            let k = rng.below(live.len() as u64) as usize;
            let (rel, mono_id, inc_id) = live.swap_remove(k);
            let mut d = SpecDelta::new();
            d.remove_tuple(rel, mono_id);
            mono.apply(&d).expect("retract applies (mono)");
            let mut d = SpecDelta::new();
            d.remove_tuple(rel, inc_id);
            inc.apply(&d).expect("retract applies (inc)");
        } else {
            let rel = rels[rng.below(rels.len() as u64) as usize];
            let arity = inc.spec().instance(rel).arity();
            let eid = Eid(rng.below(2));
            let values: Vec<Value> = (0..arity)
                .map(|_| Value::int(rng.below(4) as i64))
                .collect();
            let mut d = SpecDelta::new();
            d.insert_tuple(rel, Tuple::new(eid, values));
            let mr = mono.apply(&d).expect("insert applies (mono)");
            let ir = inc.apply(&d).expect("insert applies (inc)");
            live.push((rel, mr.inserted[0].1, ir.inserted[0].1));
        }
        // Interleave a random-budget step (sometimes two) on the
        // incremental engine only.
        for _ in 0..rng.below(3) {
            let step = inc
                .compact_step_slots(1 + rng.below(4) as usize)
                .expect("bounded step succeeds mid-churn");
            for entry in live.iter_mut() {
                entry.2 = step
                    .new_id(entry.0, entry.2)
                    .expect("live tuples survive compaction");
            }
        }
        assert_eq!(
            inc.cps().unwrap(),
            mono.cps().unwrap(),
            "seed {seed}: CPS diverged mid-churn"
        );
    }

    // Referee 1: full drain vs the stop-the-world reference.
    loop {
        let step = inc.compact_step_slots(1 + rng.below(8) as usize).unwrap();
        for entry in live.iter_mut() {
            entry.2 = step.new_id(entry.0, entry.2).expect("live tuple survives");
        }
        if step.done {
            break;
        }
    }
    let report = mono.compact().expect("reference compaction");
    assert_eq!(
        wire::encode_spec(inc.spec()),
        wire::encode_spec(mono.spec()),
        "seed {seed}: drained spec is not byte-identical to compact()"
    );
    for (rel, mono_id, inc_id) in &live {
        assert_eq!(
            report.new_id(*rel, *mono_id),
            Some(*inc_id),
            "seed {seed}: translation tables disagree on a live tuple"
        );
    }

    // Referee 2: a fresh engine over the drained specification.
    let fresh = CurrencyEngine::new(inc.spec(), &opts).expect("drained spec recompiles");
    let cps = inc.cps().unwrap();
    assert_eq!(cps, fresh.cps().unwrap(), "seed {seed}: CPS vs fresh");
    let mut cop_pairs: Vec<(RelId, AttrId, TupleId, TupleId)> = Vec::new();
    for &rel in &rels {
        for (a, u, v) in entity_pairs(inc.spec(), rel) {
            cop_pairs.push((rel, a, u, v));
        }
    }
    for &(rel, a, u, v) in &cop_pairs {
        let q = CurrencyOrderQuery::single(rel, a, u, v);
        assert_eq!(
            inc.cop(&q).unwrap(),
            fresh.cop(&q).unwrap(),
            "seed {seed}: COP vs fresh on {rel:?} {a:?} {u:?}≺{v:?}"
        );
    }
    let q = select_all(inc.spec(), rels[0]);
    let long_lived = inc.certain_answers(&q).unwrap();
    let scratch = certain_answers(inc.spec(), &q, &opts).unwrap();
    assert_eq!(
        long_lived.rows(),
        scratch.rows(),
        "seed {seed}: certain answers vs fresh dispatch"
    );

    // Referee 3: brute-force enumeration of Mod(S), where feasible.
    let mut certain = vec![true; cop_pairs.len()];
    match for_each_consistent_completion(inc.spec(), ORACLE_LIMIT, |c| {
        for (k, &(rel, a, u, v)) in cop_pairs.iter().enumerate() {
            if certain[k] && !c.rel(rel).precedes(a, u, v) {
                certain[k] = false;
            }
        }
        true
    }) {
        Ok(models) => {
            assert_eq!(cps, models > 0, "seed {seed}: CPS vs enumeration oracle");
            for (k, &(rel, a, u, v)) in cop_pairs.iter().enumerate() {
                let q = CurrencyOrderQuery::single(rel, a, u, v);
                // Paper convention: vacuously certain when Mod(S) = ∅.
                let oracle = models == 0 || certain[k];
                assert_eq!(
                    inc.cop(&q).unwrap(),
                    oracle,
                    "seed {seed}: COP vs oracle on {rel:?} {a:?} {u:?}≺{v:?}"
                );
            }
        }
        Err(_) => {
            // Candidate space above ORACLE_LIMIT: referees 1–2 covered
            // this seed.
        }
    }
}

#[test]
fn incremental_compaction_differential_over_seeds() {
    for seed in 0..SEEDS {
        run_seed(seed);
    }
}

/// Interleaved budgeted steps keep every translation composable: an id
/// held across a run of steps stays resolvable through the folded
/// composite, exactly like the durable layer's WAL replay requires.
/// (Translation only composes *forward*: the composite starts after the
/// last insert, since slices predating an id's allocation may map its
/// reused slot as dead.)
#[test]
fn step_reports_compose_across_interleavings() {
    for seed in 0..SEEDS / 5 {
        let spec = random_spec(&small_cfg(seed));
        let opts = Options::default();
        let mut rng = Rng::new(seed ^ 0xdead_beef);
        let mut engine = CurrencyEngine::new_owned(spec, &opts).unwrap();
        let rels: Vec<RelId> = engine.spec().instances().iter().map(|i| i.rel()).collect();
        // Phase 1: inserts only — establish the ids the composite must
        // keep resolvable.
        let mut tracked: Vec<(RelId, TupleId)> = Vec::new();
        for _ in 0..6 {
            let rel = rels[rng.below(rels.len() as u64) as usize];
            let arity = engine.spec().instance(rel).arity();
            let vals: Vec<Value> = (0..arity)
                .map(|_| Value::int(rng.below(4) as i64))
                .collect();
            let mut d = SpecDelta::new();
            d.insert_tuple(rel, Tuple::new(Eid(rng.below(2)), vals));
            tracked.push(engine.apply(&d).unwrap().inserted[0]);
        }
        // Phase 2: interleave retractions with bounded steps, folding
        // every step report into one composite.
        let mut composite = currency_core::CompactStepReport::default();
        let mut retracted: BTreeSet<usize> = BTreeSet::new();
        for round in 0..6 {
            if round % 2 == 1 {
                let k = rng.below(tracked.len() as u64) as usize;
                if retracted.insert(k) {
                    let (rel, id) = tracked[k];
                    // Still-live ids always resolve through the composite.
                    let cur = composite.new_id(rel, id).expect("live id resolves");
                    let mut d = SpecDelta::new();
                    d.remove_tuple(rel, cur);
                    engine.apply(&d).unwrap();
                }
            }
            let step = engine
                .compact_step_slots(1 + rng.below(3) as usize)
                .unwrap();
            composite.absorb(step);
        }
        // Every insert-time id of a still-live tuple resolves through
        // the composite table to a distinct in-range slot; retracted
        // ids may resolve to None once their slot is reclaimed.
        let mut seen = BTreeSet::new();
        for (k, &(rel, id)) in tracked.iter().enumerate() {
            if retracted.contains(&k) {
                // A retracted tuple's id resolves to its (dead) slot
                // until some slice scans it, then to None — either is
                // fine; only live tuples carry guarantees.
                continue;
            }
            let cur = composite
                .new_id(rel, id)
                .unwrap_or_else(|| panic!("seed {seed}: a live tuple's id vanished"));
            assert!(
                engine.spec().instance(rel).tuple_checked(cur).is_ok(),
                "seed {seed}: composed id out of range"
            );
            assert!(
                seen.insert((rel, cur)),
                "seed {seed}: two old ids composed onto one slot"
            );
        }
    }
}

/// Durable compaction steps under fault injection: every I/O operation
/// inside an explicit `compact_step` gets one fault aimed at it, and the
/// store must recover to the pre-step or post-step state — never a
/// half-remap.  `CHAOS_SEED` pins the schedule of the randomized pass.
#[test]
fn chaos_faults_at_step_boundaries_never_half_remap() {
    let chaos_seed: u64 = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_260_808);
    let base = std::env::temp_dir().join(format!(
        "compaction-chaos-{chaos_seed}-{}",
        std::process::id()
    ));

    // Explicit steps only: auto-compaction off so recovery never
    // backfills a policy step, keeping exactly two legal outcomes.
    let opts = Options {
        auto_compact_tombstones: 0,
        auto_compact_budget: Some(CompactBudget {
            max_slots_per_step: 2,
            ..CompactBudget::default()
        }),
        ..Options::default()
    };
    let store_opts = StoreOptions::default(); // sync_data ON: every fault class is reachable
    let budget = CompactBudget {
        max_slots_per_step: 2,
        ..CompactBudget::default()
    };
    let spec = random_spec(&small_cfg(chaos_seed % 97));
    let rels: Vec<RelId> = spec.instances().iter().map(|i| i.rel()).collect();

    // The workload up to the step under test: churn enough tombstones
    // that one bounded step leaves the sweep mid-flight.
    let churn =
        |durable: &mut DurableEngine, rng: &mut Rng| -> Result<(), currency_store::StoreError> {
            for _ in 0..4 {
                let rel = rels[rng.below(rels.len() as u64) as usize];
                let arity = durable.spec().instance(rel).arity();
                let vals: Vec<Value> = (0..arity)
                    .map(|_| Value::int(rng.below(4) as i64))
                    .collect();
                let mut d = SpecDelta::new();
                d.insert_tuple(rel, Tuple::new(Eid(rng.below(2)), vals));
                let rep = durable.apply(&d)?;
                let (r, id) = rep.inserted[0];
                let mut d = SpecDelta::new();
                d.remove_tuple(r, id);
                durable.apply(&d)?;
            }
            Ok(())
        };

    // Dry run against a fault-free chaos layer: learn the exact I/O
    // span of the compaction step and capture the two legal states.
    let dry_dir = base.join("dry");
    std::fs::create_dir_all(&dry_dir).unwrap();
    let probe = Arc::new(ChaosVfs::new(ChaosPlan::new()));
    let mut dry =
        DurableEngine::create_with_vfs(probe.clone(), &dry_dir, spec.clone(), &opts, store_opts)
            .unwrap();
    let mut rng = Rng::new(chaos_seed);
    churn(&mut dry, &mut rng).unwrap();
    let before_step = wire::encode_spec(dry.spec());
    let step_begin = probe.ops();
    let step = dry.compact_step(&budget).unwrap();
    let step_end = probe.ops();
    assert!(
        !step.slices.is_empty() && !step.done,
        "fixture must crash mid-sweep, not after a completed one"
    );
    let after_step = wire::encode_spec(dry.spec());
    assert_ne!(before_step, after_step, "the step must move the spec");
    drop(dry);

    use currency_store::Fault;
    let faults = [Fault::Io, Fault::ShortWrite, Fault::FsyncErr];
    let mut injected_total = 0;
    for (fi, &fault) in faults.iter().enumerate() {
        for op in step_begin..step_end {
            let dir = base.join(format!("f{fi}-op{op}"));
            std::fs::create_dir_all(&dir).unwrap();
            let chaos = Arc::new(ChaosVfs::new(ChaosPlan::new().fail_at(op, fault)));
            let mut durable = DurableEngine::create_with_vfs(
                chaos.clone(),
                &dir,
                spec.clone(),
                &opts,
                store_opts,
            )
            .unwrap();
            let mut rng = Rng::new(chaos_seed);
            churn(&mut durable, &mut rng).unwrap();
            let res = durable.compact_step(&budget);
            drop(durable);
            if chaos.injected() == 0 {
                continue; // operation count shifted below the fault: nothing hit
            }
            injected_total += 1;
            assert!(
                res.is_err(),
                "an injected step fault must surface, not be swallowed"
            );
            // Reopen fault-free: recovery must land on one of the two legal
            // states, byte for byte.
            let recovered =
                DurableEngine::open_with_vfs(Arc::new(RealVfs), &dir, &opts, store_opts)
                    .expect("reopen after a step-boundary crash");
            let bytes = wire::encode_spec(recovered.spec());
            assert!(
                bytes == before_step || bytes == after_step,
                "op {op} ({fault:?}): recovered spec is neither pre- nor post-step"
            );
            recovered
                .spec()
                .validate()
                .expect("recovered spec validates");
            let fresh = CurrencyEngine::new(recovered.spec(), &Options::default()).unwrap();
            assert_eq!(recovered.cps().unwrap(), fresh.cps().unwrap());
            // And the store is fully usable again: more churn, full drain.
            let mut recovered = recovered;
            let mut rng = Rng::new(chaos_seed ^ 0xff);
            churn(&mut recovered, &mut rng).unwrap();
            loop {
                if recovered.compact_step(&budget).unwrap().done {
                    break;
                }
            }
            assert_eq!(recovered.spec().total_tombstones(), 0);
        }
    }
    assert!(
        injected_total >= 3,
        "the step spans enough I/O to exercise every fault class (hit {injected_total})"
    );

    // Randomized pass, pinned by CHAOS_SEED: faults drawn over the whole
    // workload (deltas and steps interleaved), same recovery invariants.
    let horizon = step_end + step_end / 2;
    let roundtrips = if cfg!(debug_assertions) { 6 } else { 24 };
    for i in 0..roundtrips {
        let dir = base.join(format!("rand{i}"));
        std::fs::create_dir_all(&dir).unwrap();
        let chaos = Arc::new(ChaosVfs::new(ChaosPlan::from_seed(
            chaos_seed.wrapping_add(i),
            horizon,
            1,
        )));
        let created =
            DurableEngine::create_with_vfs(chaos.clone(), &dir, spec.clone(), &opts, store_opts);
        let crashed = (|| -> Result<(), currency_store::StoreError> {
            let mut durable = created?;
            let mut rng = Rng::new(chaos_seed);
            churn(&mut durable, &mut rng)?;
            durable.compact_step(&budget)?;
            churn(&mut durable, &mut rng)?;
            loop {
                if durable.compact_step(&budget)?.done {
                    return Ok(());
                }
            }
        })()
        .is_err();
        if !crashed && chaos.injected() == 0 {
            continue;
        }
        // Whether or not the fault was fatal, a fault-free reopen must
        // produce a valid, fully usable store.
        let recovered =
            match DurableEngine::open_with_vfs(Arc::new(RealVfs), &dir, &opts, store_opts) {
                Ok(r) => r,
                Err(e) => {
                    // A fault during `create` may leave no store at all —
                    // that is a legal outcome, not a half-remap.
                    assert!(crashed, "reopen failed without a crash: {e}");
                    continue;
                }
            };
        recovered
            .spec()
            .validate()
            .expect("recovered spec validates");
        let fresh = CurrencyEngine::new(recovered.spec(), &Options::default()).unwrap();
        assert_eq!(recovered.cps().unwrap(), fresh.cps().unwrap());
        let mut recovered = recovered;
        loop {
            if recovered.compact_step(&budget).unwrap().done {
                break;
            }
        }
        assert_eq!(recovered.spec().total_tombstones(), 0);
    }
    let _ = std::fs::remove_dir_all(&base);
}
