//! A-SAT: solver ablation — CDCL-backed exact CPS vs brute-force
//! completion enumeration.
//!
//! DESIGN.md §4 argues for the order-variable SAT encoding over naive
//! enumeration of completions.  This target quantifies the choice on the
//! same inputs: random constrained specifications with growing per-entity
//! group sizes.  Enumeration visits `∏ (group!)^attrs` candidates, so its
//! series explodes factorially while the CDCL engine stays flat at these
//! sizes.

use criterion::{BenchmarkId, Criterion};
use currency_bench::quick_criterion;
use currency_datagen::random::{random_spec, RandomSpecConfig};
use currency_reason::{cps_enumerate, cps_exact};

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_solvers");
    for tuples in [2usize, 3, 4] {
        let spec = random_spec(&RandomSpecConfig {
            entities: 2,
            tuples_per_entity: (tuples, tuples),
            attrs: 2,
            value_pool: 3,
            order_density: 0.2,
            monotone_constraints: 1,
            correlated_constraints: 1,
            with_copy: false,
            seed: 59,
        });
        group.bench_with_input(
            BenchmarkId::new("cps_cdcl/tuples_per_entity", tuples),
            &spec,
            |b, spec| b.iter(|| cps_exact(spec).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("cps_enumeration/tuples_per_entity", tuples),
            &spec,
            |b, spec| b.iter(|| cps_enumerate(spec, 100_000_000).unwrap()),
        );
    }
    group.finish();
}

fn main() {
    let mut c = quick_criterion();
    bench_ablation(&mut c);
    c.final_summary();
}
