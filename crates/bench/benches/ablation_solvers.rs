//! A-SAT: solver ablation — CDCL-backed exact CPS vs brute-force
//! completion enumeration, and lazy vs eager transitivity grounding.
//!
//! DESIGN.md §4 argues for the order-variable SAT encoding over naive
//! enumeration of completions.  This target quantifies the choice on the
//! same inputs: random constrained specifications with growing per-entity
//! group sizes.  Enumeration visits `∏ (group!)^attrs` candidates, so its
//! series explodes factorially while the CDCL engine stays flat at these
//! sizes.
//!
//! The `cps_lazy`/`cps_eager` series ablate the transitivity grounding
//! strategy on the same specs, and the run ends with a solver-counter
//! report (conflicts, propagations, learnt clauses kept/deleted, lazy
//! lemmas) for both modes on the largest shape — the observable footprint
//! of the clause-database reduction and the lazy refinement loop.

use criterion::{BenchmarkId, Criterion};
use currency_bench::quick_criterion;
use currency_datagen::random::{random_spec, RandomSpecConfig};
use currency_reason::{cps_enumerate, cps_exact, CurrencyEngine, Options, TransitivityMode};

fn spec_for(tuples: usize) -> currency_core::Specification {
    random_spec(&RandomSpecConfig {
        entities: 2,
        tuples_per_entity: (tuples, tuples),
        attrs: 2,
        value_pool: 3,
        order_density: 0.2,
        monotone_constraints: 1,
        correlated_constraints: 1,
        with_copy: false,
        seed: 59,
    })
}

fn engine_opts(transitivity: TransitivityMode) -> Options {
    Options {
        transitivity,
        threads: 1,
        ..Options::default()
    }
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_solvers");
    for tuples in [2usize, 3, 4] {
        let spec = spec_for(tuples);
        group.bench_with_input(
            BenchmarkId::new("cps_cdcl/tuples_per_entity", tuples),
            &spec,
            |b, spec| b.iter(|| cps_exact(spec).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("cps_lazy/tuples_per_entity", tuples),
            &spec,
            |b, spec| {
                b.iter(|| {
                    CurrencyEngine::with_value_rels(spec, &[], &engine_opts(TransitivityMode::Lazy))
                        .unwrap()
                        .cps()
                        .unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("cps_eager/tuples_per_entity", tuples),
            &spec,
            |b, spec| {
                b.iter(|| {
                    CurrencyEngine::with_value_rels(
                        spec,
                        &[],
                        &engine_opts(TransitivityMode::Eager),
                    )
                    .unwrap()
                    .cps()
                    .unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("cps_enumeration/tuples_per_entity", tuples),
            &spec,
            |b, spec| b.iter(|| cps_enumerate(spec, 100_000_000).unwrap()),
        );
    }
    group.finish();
    // Counter report: the ablation's qualitative story in numbers.
    let spec = spec_for(4);
    for mode in [TransitivityMode::Lazy, TransitivityMode::Eager] {
        let engine = CurrencyEngine::with_value_rels(&spec, &[], &engine_opts(mode)).unwrap();
        engine.cps().unwrap();
        let stats = engine.stats();
        println!(
            "ablation_solvers/stats/{mode:?}: vars={} clauses={} conflicts={} \
             propagations={} learnt_kept={} learnt_deleted={} lemmas_added={}",
            stats.vars,
            stats.clauses,
            stats.sat.conflicts,
            stats.sat.propagations,
            stats.sat.learnt_kept,
            stats.sat.learnt_deleted,
            stats.sat.lemmas_added
        );
    }
}

fn main() {
    let mut c = quick_criterion();
    bench_ablation(&mut c);
    c.final_summary();
}
