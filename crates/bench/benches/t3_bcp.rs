//! T3-BCP (Table III, column 4): the bounded copying problem.
//!
//! Series regenerated:
//! * `bcp_exact/k` — the Σᵖ₃-flavoured exact search (extensions of size
//!   ≤ k, each checked with a full CPP oracle) on the Example 4.1
//!   scenario, sweeping k.  Cost grows steeply with k: every candidate
//!   extension spawns a nested extension enumeration.
//! * `bcp_sp/no_constraints` — Theorem 6.4 (fixed k): the PTIME bounded
//!   search for SP queries, sweeping entity count at k = 1.
//!
//! Substitution note (DESIGN.md §6): the paper's Σᵖ₄/Σᵖ₃ BCP lower-bound
//! gadgets measure copy size in *bits* and use wide constants to forbid
//! copying; our BCP counts *mappings* (the natural measure in this
//! implementation), so the exact series uses the worked scenario and
//! random instances rather than those gadgets.

use criterion::{BenchmarkId, Criterion};
use currency_bench::quick_criterion;
use currency_core::RelId;
use currency_datagen::random::{random_spec, RandomSpecConfig};
use currency_datagen::scenarios::example_4_1;
use currency_query::SpQuery;
use currency_reason::{bcp, bcp_sp, Options, PreservationProblem};
use std::collections::BTreeSet;

fn bench_bcp(c: &mut Criterion) {
    let mut group = c.benchmark_group("t3_bcp");
    let opts = Options::default();
    let e = example_4_1();
    let q2 = e.q2().to_query(5);
    let sources: BTreeSet<RelId> = [e.mgr].into();
    for k in [0usize, 1, 2] {
        group.bench_with_input(
            BenchmarkId::new("bcp_exact/example41_k", k),
            &k,
            |bench, &k| {
                bench.iter(|| {
                    let problem = PreservationProblem {
                        spec: &e.spec,
                        sources: &sources,
                        query: &q2,
                    };
                    bcp(&problem, k, &opts).unwrap()
                })
            },
        );
    }
    for entities in [2usize, 4, 8, 16] {
        let spec = random_spec(&RandomSpecConfig {
            entities,
            tuples_per_entity: (1, 3),
            attrs: 1,
            value_pool: 3,
            order_density: 0.3,
            with_copy: true,
            seed: 37,
            ..RandomSpecConfig::default()
        });
        let srcs: BTreeSet<RelId> = [RelId(1)].into();
        let q = SpQuery::identity(RelId(0), 1);
        group.bench_with_input(
            BenchmarkId::new("bcp_sp/no_constraints_entities_k1", entities),
            &(&spec, &srcs, &q),
            |bench, (spec, srcs, q)| bench.iter(|| bcp_sp(spec, srcs, q, 1, &opts).unwrap()),
        );
    }
    group.finish();
}

fn main() {
    let mut c = quick_criterion();
    bench_bcp(&mut c);
    c.final_summary();
}
