//! G-VAL: gadget construction and encoding cost.
//!
//! The reduction gadgets (Figs. 2/4/5 analogues and the proof-only
//! constructions) are both validation artifacts and benchmark inputs.
//! This target measures the cost of *building* each gadget from its
//! propositional instance and of grounding + CNF-encoding it — i.e. the
//! reduction itself, which the paper requires to be polynomial.  Expected
//! shape: low-order polynomial in the formula size for every gadget.

use criterion::{BenchmarkId, Criterion};
use currency_bench::quick_criterion;
use currency_datagen::gadgets::{
    ccqa_3sat, cop_3sat, cpp_forall_exists_3cnf, cps_betweenness, cps_exists_forall_3dnf,
};
use currency_datagen::logic::{random_betweenness, random_formula};
use currency_reason::encode::Encoding;

fn bench_gadgets(c: &mut Criterion) {
    let mut group = c.benchmark_group("gadget_validation");
    for clauses in [2usize, 4, 8] {
        let f = random_formula(4, clauses, 41);
        group.bench_with_input(
            BenchmarkId::new("build/ccqa_3sat_clauses", clauses),
            &f,
            |b, f| b.iter(|| ccqa_3sat(f)),
        );
        group.bench_with_input(
            BenchmarkId::new("build_encode/cop_3sat_clauses", clauses),
            &f,
            |b, f| {
                b.iter(|| {
                    let g = cop_3sat(f);
                    Encoding::new(&g.spec, &[]).unwrap()
                })
            },
        );
    }
    for triples in [2usize, 4, 6] {
        let bw = random_betweenness(5, triples, 43);
        group.bench_with_input(
            BenchmarkId::new("build_encode/betweenness_triples", triples),
            &bw,
            |b, bw| {
                b.iter(|| {
                    let g = cps_betweenness(bw);
                    Encoding::new(&g.spec, &[]).unwrap()
                })
            },
        );
    }
    for size in [2usize, 3] {
        let f = random_formula(2 * size, size, 47);
        group.bench_with_input(
            BenchmarkId::new("build_encode/ef3dnf_blocksize", size),
            &f,
            |b, f| {
                b.iter(|| {
                    let g = cps_exists_forall_3dnf(f, size);
                    Encoding::new(&g.spec, &[]).unwrap()
                })
            },
        );
    }
    for num_x in [1usize, 2, 3] {
        let f = random_formula(num_x + 2, 3, 53);
        group.bench_with_input(
            BenchmarkId::new("build/cpp_fe3cnf_numx", num_x),
            &f,
            |b, f| b.iter(|| cpp_forall_exists_3cnf(f, num_x)),
        );
    }
    group.finish();
}

fn main() {
    let mut c = quick_criterion();
    bench_gadgets(&mut c);
    c.final_summary();
}
