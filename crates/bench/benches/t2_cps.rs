//! T2-CPS (Table II, column 1): the consistency problem.
//!
//! Series regenerated:
//! * `cps_exact/betweenness` — the NP-hard data-complexity regime: exact
//!   CPS on Betweenness→CPS gadgets, sweeping the number of triples.
//! * `cps_exact/ef3dnf` — the Σᵖ₂ combined-complexity regime: the
//!   ∃∀3DNF→CPS gadget, sweeping formula size (constraint and instance
//!   grow together).
//! * `cps_ptime/no_constraints` — Theorem 6.1: the `PO∞` fixpoint on
//!   constraint-free specifications with copy functions, sweeping entity
//!   count.  Expected shape: polynomial (near-linear here), orders of
//!   magnitude below the exact engines at comparable sizes.

use criterion::{BenchmarkId, Criterion};
use currency_bench::quick_criterion;
use currency_datagen::gadgets::{cps_betweenness, cps_exists_forall_3dnf};
use currency_datagen::logic::{random_betweenness, random_formula};
use currency_datagen::random::{random_spec, RandomSpecConfig};
use currency_reason::{cps_exact, cps_ptime};

fn bench_cps(c: &mut Criterion) {
    let mut group = c.benchmark_group("t2_cps");
    for triples in [1usize, 2, 3, 4] {
        let b = random_betweenness(4, triples, 42);
        let gadget = cps_betweenness(&b);
        group.bench_with_input(
            BenchmarkId::new("cps_exact/betweenness_triples", triples),
            &gadget.spec,
            |bench, spec| bench.iter(|| cps_exact(spec).unwrap()),
        );
    }
    for size in [2usize, 3] {
        let f = random_formula(2 * size, size, 7);
        let gadget = cps_exists_forall_3dnf(&f, size);
        group.bench_with_input(
            BenchmarkId::new("cps_exact/ef3dnf_blocksize", size),
            &gadget.spec,
            |bench, spec| bench.iter(|| cps_exact(spec).unwrap()),
        );
    }
    for entities in [16usize, 64, 256, 1024] {
        let spec = random_spec(&RandomSpecConfig {
            entities,
            tuples_per_entity: (2, 4),
            attrs: 3,
            value_pool: 5,
            order_density: 0.2,
            with_copy: true,
            seed: 9,
            ..RandomSpecConfig::default()
        });
        group.bench_with_input(
            BenchmarkId::new("cps_ptime/no_constraints_entities", entities),
            &spec,
            |bench, spec| bench.iter(|| cps_ptime(spec).unwrap()),
        );
    }
    group.finish();
}

fn main() {
    let mut c = quick_criterion();
    bench_cps(&mut c);
    c.final_summary();
}
