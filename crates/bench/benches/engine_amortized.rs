//! E-AMRT: the amortized repeated-query workload.
//!
//! The Improve3C-style cleaning workload (Ding et al., arXiv:1808.00024)
//! interleaves many currency queries over **one** specification.  The
//! pre-engine code re-encoded the whole specification on every call; the
//! [`CurrencyEngine`] compiles each entity component once and answers
//! queries with assumption-based incremental solves against only the
//! touched components.
//!
//! Series (sweeping entity count; one spec, `N = 32` COP queries plus one
//! CCQA certain-answer computation per iteration):
//!
//! * `engine/repeated_queries` — build the engine once per iteration,
//!   then run the full query batch against it (worst case for the
//!   engine: construction is *inside* the measured loop);
//! * `reencode/repeated_queries` — the monolithic path, re-encoding the
//!   specification for every query (`*_monolithic` functions);
//! * `engine_prebuilt/repeated_queries` — the steady-state regime: the
//!   engine already exists (built outside the loop), only the queries are
//!   measured.
//!
//! The shared scenario lives in [`currency_bench::scenarios`]; the
//! `bench_engine` binary records the same series to `BENCH_engine.json`.

use criterion::{BenchmarkId, Criterion};
use currency_bench::{quick_criterion, scenarios};
use currency_reason::{
    certain_answers_exact_monolithic, cop_exact_monolithic, CurrencyEngine, Options,
};

fn bench_amortized(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_amortized");
    for entities in [8usize, 32, 128] {
        let spec = scenarios::amortized_spec(entities);
        let queries = scenarios::amortized_cop_queries(&spec);
        let q = scenarios::amortized_ccqa_query(&spec);
        let opts = Options::default();

        group.bench_with_input(
            BenchmarkId::new("engine/repeated_queries", entities),
            &spec,
            |b, spec| {
                b.iter(|| {
                    let engine = CurrencyEngine::new(spec, &opts).unwrap();
                    let mut certain = 0usize;
                    for query in &queries {
                        if engine.cop(query).unwrap() {
                            certain += 1;
                        }
                    }
                    let answers = engine.certain_answers(&q).unwrap();
                    (certain, answers)
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("reencode/repeated_queries", entities),
            &spec,
            |b, spec| {
                b.iter(|| {
                    let mut certain = 0usize;
                    for query in &queries {
                        if cop_exact_monolithic(spec, query).unwrap() {
                            certain += 1;
                        }
                    }
                    let answers = certain_answers_exact_monolithic(spec, &q, &opts).unwrap();
                    (certain, answers)
                })
            },
        );

        let prebuilt = CurrencyEngine::new(&spec, &opts).unwrap();
        prebuilt.cps().unwrap(); // warm the per-component status cache
        group.bench_with_input(
            BenchmarkId::new("engine_prebuilt/repeated_queries", entities),
            &prebuilt,
            |b, engine| {
                b.iter(|| {
                    let mut certain = 0usize;
                    for query in &queries {
                        if engine.cop(query).unwrap() {
                            certain += 1;
                        }
                    }
                    let answers = engine.certain_answers(&q).unwrap();
                    (certain, answers)
                })
            },
        );
    }
    group.finish();
}

fn main() {
    let mut c = quick_criterion();
    bench_amortized(&mut c);
    c.final_summary();
}
