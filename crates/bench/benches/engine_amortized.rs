//! E-AMRT: the amortized repeated-query workload.
//!
//! The Improve3C-style cleaning workload (Ding et al., arXiv:1808.00024)
//! interleaves many currency queries over **one** specification.  The
//! pre-engine code re-encoded the whole specification on every call; the
//! [`CurrencyEngine`] compiles each entity component once and answers
//! queries with assumption-based incremental solves against only the
//! touched components.
//!
//! Series (sweeping entity count; one spec, `N = 32` COP queries plus one
//! CCQA certain-answer computation per iteration):
//!
//! * `engine/repeated_queries` — build the engine once per iteration,
//!   then run the full query batch against it (worst case for the
//!   engine: construction is *inside* the measured loop);
//! * `reencode/repeated_queries` — the monolithic path, re-encoding the
//!   specification for every query (`*_monolithic` functions);
//! * `engine_prebuilt/repeated_queries` — the steady-state regime: the
//!   engine already exists (built outside the loop), only the queries are
//!   measured.

use criterion::{BenchmarkId, Criterion};
use currency_bench::quick_criterion;
use currency_core::{AttrId, RelId, TupleId};
use currency_datagen::random::{random_spec, RandomSpecConfig};
use currency_reason::{
    certain_answers_exact_monolithic, cop_exact_monolithic, CurrencyEngine, CurrencyOrderQuery,
    Options,
};

const T: RelId = RelId(0);
const N_COP: usize = 32;

/// A **consistent** specification (asserted below): random initial orders
/// are off because they contradict the monotone constraints with
/// near-certainty at scale, which would silently turn the whole workload
/// into the vacuous-truth fast path.
fn spec_for(entities: usize) -> currency_core::Specification {
    let spec = random_spec(&RandomSpecConfig {
        entities,
        tuples_per_entity: (2, 3),
        attrs: 2,
        value_pool: 4,
        order_density: 0.0,
        monotone_constraints: 2,
        correlated_constraints: 1,
        with_copy: true,
        seed: 7,
    });
    assert!(
        currency_reason::cps(&spec).expect("valid spec"),
        "bench spec must be consistent — an inconsistent one measures \
         only the vacuous-truth path"
    );
    spec
}

fn cop_queries(spec: &currency_core::Specification) -> Vec<CurrencyOrderQuery> {
    let len = spec.instance(T).len() as u32;
    (0..N_COP as u32)
        .map(|i| {
            CurrencyOrderQuery::single(
                T,
                AttrId(i % 2),
                TupleId(i % len),
                TupleId((i * 7 + 1) % len),
            )
        })
        .collect()
}

fn ccqa_query(spec: &currency_core::Specification) -> currency_query::Query {
    currency_query::SpQuery::identity(T, spec.instance(T).arity())
        .to_query(spec.instance(T).arity())
}

fn bench_amortized(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_amortized");
    for entities in [8usize, 32, 128] {
        let spec = spec_for(entities);
        let queries = cop_queries(&spec);
        let q = ccqa_query(&spec);
        let opts = Options::default();

        group.bench_with_input(
            BenchmarkId::new("engine/repeated_queries", entities),
            &spec,
            |b, spec| {
                b.iter(|| {
                    let engine = CurrencyEngine::new(spec, &opts).unwrap();
                    let mut certain = 0usize;
                    for query in &queries {
                        if engine.cop(query).unwrap() {
                            certain += 1;
                        }
                    }
                    let answers = engine.certain_answers(&q).unwrap();
                    (certain, answers)
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("reencode/repeated_queries", entities),
            &spec,
            |b, spec| {
                b.iter(|| {
                    let mut certain = 0usize;
                    for query in &queries {
                        if cop_exact_monolithic(spec, query).unwrap() {
                            certain += 1;
                        }
                    }
                    let answers = certain_answers_exact_monolithic(spec, &q, &opts).unwrap();
                    (certain, answers)
                })
            },
        );

        let prebuilt = CurrencyEngine::new(&spec, &opts).unwrap();
        prebuilt.cps().unwrap(); // warm the per-component status cache
        group.bench_with_input(
            BenchmarkId::new("engine_prebuilt/repeated_queries", entities),
            &prebuilt,
            |b, engine| {
                b.iter(|| {
                    let mut certain = 0usize;
                    for query in &queries {
                        if engine.cop(query).unwrap() {
                            certain += 1;
                        }
                    }
                    let answers = engine.certain_answers(&q).unwrap();
                    (certain, answers)
                })
            },
        );
    }
    group.finish();
}

fn main() {
    let mut c = quick_criterion();
    bench_amortized(&mut c);
    c.final_summary();
}
