//! E-SCALE: lazy vs eager transitivity grounding on one large entity
//! group.
//!
//! The reduction's only cubic term is the eagerly-grounded transitivity
//! axiom — `n·(n-1)·(n-2)` triangle clauses per attribute for an entity
//! group of `n` tuples.  The cleaning-oriented workloads (Improve3C-style
//! whole-relation repair) live exactly in this large-group regime.  This
//! target sweeps the group size for both [`TransitivityMode`]s over
//! [`currency_bench::scenarios::big_group_spec`]: a consistent spec whose
//! monotone constraint pins every pair, so the measured work is encoding
//! plus a real (non-vacuous) CPS decision and one certain COP query.
//!
//! The machine-readable companion (`bench_engine` bin) writes the same
//! series to `BENCH_engine.json`; this target is for interactive
//! `cargo bench` sweeps.

use criterion::{BenchmarkId, Criterion};
use currency_bench::{quick_criterion, scenarios};
use currency_reason::TransitivityMode;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_scaling");
    for n in [8usize, 16, 32, 64] {
        let spec = scenarios::big_group_spec(n);
        group.bench_with_input(BenchmarkId::new("lazy/group_size", n), &spec, |b, spec| {
            b.iter(|| scenarios::big_group_workload(spec, TransitivityMode::Lazy).stats())
        });
        group.bench_with_input(BenchmarkId::new("eager/group_size", n), &spec, |b, spec| {
            b.iter(|| scenarios::big_group_workload(spec, TransitivityMode::Eager).stats())
        });
    }
    group.finish();
}

fn main() {
    let mut c = quick_criterion();
    bench_scaling(&mut c);
    c.final_summary();
}
