//! T2-COP (Table II, column 2): the certain ordering problem.
//!
//! Series regenerated:
//! * `cop_exact/3sat` — the coNP-hard data-complexity regime: exact COP
//!   (entailment checks against the SAT encoding) on 3SAT→COP gadgets,
//!   sweeping clause count.
//! * `cop_ptime/no_constraints` — Lemma 6.2: containment in the `PO∞`
//!   fixpoint, sweeping entity count.  Expected shape: polynomial.

use criterion::{BenchmarkId, Criterion};
use currency_bench::quick_criterion;
use currency_core::{AttrId, TupleId};
use currency_datagen::gadgets::cop_3sat;
use currency_datagen::logic::random_formula;
use currency_datagen::random::{random_spec, RandomSpecConfig};
use currency_reason::{cop_exact, cop_ptime, CurrencyOrderQuery};

fn bench_cop(c: &mut Criterion) {
    let mut group = c.benchmark_group("t2_cop");
    for clauses in [2usize, 4, 6, 8] {
        let f = random_formula(3, clauses, 11);
        let gadget = cop_3sat(&f);
        group.bench_with_input(
            BenchmarkId::new("cop_exact/3sat_clauses", clauses),
            &(&gadget.spec, &gadget.ot),
            |bench, (spec, ot)| bench.iter(|| cop_exact(spec, ot).unwrap()),
        );
    }
    for entities in [16usize, 64, 256, 1024] {
        let spec = random_spec(&RandomSpecConfig {
            entities,
            tuples_per_entity: (2, 3),
            attrs: 2,
            value_pool: 4,
            order_density: 0.4,
            with_copy: true,
            seed: 3,
            ..RandomSpecConfig::default()
        });
        // Ask about the first same-entity pair (certain via the recorded
        // orders or not — the work is the fixpoint either way).
        let ot =
            CurrencyOrderQuery::single(currency_core::RelId(0), AttrId(0), TupleId(0), TupleId(1));
        group.bench_with_input(
            BenchmarkId::new("cop_ptime/no_constraints_entities", entities),
            &(&spec, &ot),
            |bench, (spec, ot)| bench.iter(|| cop_ptime(spec, ot).unwrap()),
        );
    }
    group.finish();
}

fn main() {
    let mut c = quick_criterion();
    bench_cop(&mut c);
    c.final_summary();
}
