//! T3-ECP (Table III, column 3): the existence problem.
//!
//! The paper's Proposition 5.2 puts ECP in O(1): an extension to a
//! currency-preserving collection exists iff the specification is
//! consistent.  Series regenerated:
//! * `ecp_decision` — the decision itself, sweeping entity count; the
//!   cost is one consistency check (flat/polynomial, confirming the O(1)
//!   decision modulo the CPS oracle).
//! * `maximum_extension` — the *constructive* counterpart from the
//!   proposition's proof (greedy saturation), which the paper notes "may
//!   take much longer" than the O(1) decision — this series quantifies
//!   that gap.

use criterion::{BenchmarkId, Criterion};
use currency_bench::quick_criterion;
use currency_core::RelId;
use currency_datagen::random::{random_spec, RandomSpecConfig};
use currency_query::SpQuery;
use currency_reason::{ecp, maximum_extension, PreservationProblem};
use std::collections::BTreeSet;

fn bench_ecp(c: &mut Criterion) {
    let mut group = c.benchmark_group("t3_ecp");
    for entities in [2usize, 4, 8, 16] {
        let spec = random_spec(&RandomSpecConfig {
            entities,
            tuples_per_entity: (1, 3),
            attrs: 1,
            value_pool: 3,
            order_density: 0.3,
            with_copy: true,
            seed: 31,
            ..RandomSpecConfig::default()
        });
        let sources: BTreeSet<RelId> = [RelId(1)].into();
        let q = SpQuery::identity(RelId(0), 1).to_query(1);
        group.bench_with_input(
            BenchmarkId::new("ecp_decision/entities", entities),
            &(&spec, &sources, &q),
            |bench, (spec, sources, q)| {
                bench.iter(|| {
                    let problem = PreservationProblem {
                        spec,
                        sources,
                        query: q,
                    };
                    ecp(&problem).unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("maximum_extension/entities", entities),
            &(&spec, &sources),
            |bench, (spec, sources)| bench.iter(|| maximum_extension(spec, sources).unwrap()),
        );
    }
    group.finish();
}

fn main() {
    let mut c = quick_criterion();
    bench_ecp(&mut c);
    c.final_summary();
}
