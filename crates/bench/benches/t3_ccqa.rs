//! T3-CCQA (Table III, column 1): certain current query answering.
//!
//! Series regenerated:
//! * `ccqa_exact/3sat` — the coNP-hard data-complexity regime for CQ:
//!   exact CCQA on 3SAT→CCQA gadgets, sweeping the variable count.  The
//!   projected model space is `2^vars`; expect exponential growth — this
//!   is the observable footprint of Theorem 3.5's lower bound.
//! * `ccqa_sp/no_constraints` — Proposition 6.3: the `poss(S)` algorithm
//!   on constraint-free specifications, sweeping entity count.  Expected
//!   shape: polynomial, scaling to thousands of entities.

use criterion::{BenchmarkId, Criterion};
use currency_bench::quick_criterion;
use currency_core::{AttrId, RelId, Value};
use currency_datagen::gadgets::ccqa_3sat;
use currency_datagen::logic::random_formula;
use currency_datagen::random::{random_spec, RandomSpecConfig};
use currency_query::{SpCondition, SpQuery};
use currency_reason::{ccqa_exact, certain_answers_sp, Options};

fn bench_ccqa(c: &mut Criterion) {
    let mut group = c.benchmark_group("t3_ccqa");
    let opts = Options::default();
    for vars in [2usize, 4, 6, 8] {
        let f = random_formula(vars, vars * 2, 17);
        let gadget = ccqa_3sat(&f);
        group.bench_with_input(
            BenchmarkId::new("ccqa_exact/3sat_vars", vars),
            &gadget,
            |bench, g| bench.iter(|| ccqa_exact(&g.spec, &g.query, &g.tuple, &opts).unwrap()),
        );
    }
    for entities in [64usize, 256, 1024, 4096] {
        let spec = random_spec(&RandomSpecConfig {
            entities,
            tuples_per_entity: (2, 4),
            attrs: 3,
            value_pool: 5,
            order_density: 0.3,
            with_copy: false,
            seed: 19,
            ..RandomSpecConfig::default()
        });
        let q = SpQuery {
            rel: RelId(0),
            projection: vec![AttrId(1), AttrId(2)],
            conditions: vec![SpCondition::AttrConst(AttrId(0), Value::int(1))],
        };
        group.bench_with_input(
            BenchmarkId::new("ccqa_sp/no_constraints_entities", entities),
            &(&spec, &q),
            |bench, (spec, q)| bench.iter(|| certain_answers_sp(spec, q).unwrap()),
        );
    }
    group.finish();
}

fn main() {
    let mut c = quick_criterion();
    bench_ccqa(&mut c);
    c.final_summary();
}
