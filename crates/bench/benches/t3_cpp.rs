//! T3-CPP (Table III, column 2): the currency preservation problem.
//!
//! Series regenerated:
//! * `cpp_exact/fe3cnf` — the Πᵖ₂-hard data-complexity regime: exact CPP
//!   (extension enumeration with signature dedup) on ∀∃3CNF→CPP gadgets,
//!   sweeping the universal block size.  Expect steep growth.
//! * `cpp_sp/no_constraints` — Theorem 6.4: the PTIME SP algorithm on
//!   constraint-free import scenarios, sweeping entity count.

use criterion::{BenchmarkId, Criterion};
use currency_bench::quick_criterion;
use currency_core::RelId;
use currency_datagen::gadgets::cpp_forall_exists_3cnf;
use currency_datagen::logic::random_formula;
use currency_datagen::random::{random_spec, RandomSpecConfig};
use currency_query::SpQuery;
use currency_reason::{cpp, cpp_sp, Options, PreservationProblem};
use std::collections::BTreeSet;

fn bench_cpp(c: &mut Criterion) {
    let mut group = c.benchmark_group("t3_cpp");
    let opts = Options::default();
    for num_x in [1usize, 2] {
        let f = random_formula(num_x + 1, 2, 23);
        let gadget = cpp_forall_exists_3cnf(&f, num_x);
        group.bench_with_input(
            BenchmarkId::new("cpp_exact/fe3cnf_numx", num_x),
            &gadget,
            |bench, g| {
                bench.iter(|| {
                    let problem = PreservationProblem {
                        spec: &g.spec,
                        sources: &g.sources,
                        query: &g.query,
                    };
                    cpp(&problem, &opts).unwrap()
                })
            },
        );
    }
    for entities in [4usize, 8, 16, 24] {
        let spec = random_spec(&RandomSpecConfig {
            entities,
            tuples_per_entity: (1, 3),
            attrs: 1,
            value_pool: 3,
            order_density: 0.3,
            with_copy: true,
            seed: 29,
            ..RandomSpecConfig::default()
        });
        let sources: BTreeSet<RelId> = [RelId(1)].into();
        let q = SpQuery::identity(RelId(0), 1);
        group.bench_with_input(
            BenchmarkId::new("cpp_sp/no_constraints_entities", entities),
            &(&spec, &sources, &q),
            |bench, (spec, sources, q)| bench.iter(|| cpp_sp(spec, sources, q).unwrap()),
        );
    }
    group.finish();
}

fn main() {
    let mut c = quick_criterion();
    bench_cpp(&mut c);
    c.final_summary();
}
