//! T2-DCIP (Table II, column 3): the deterministic current instance
//! problem.
//!
//! Series regenerated:
//! * `dcip_exact/3sat` — coNP-hard data-complexity regime: projected
//!   All-SAT over value indicators on 3SAT→DCIP gadgets, sweeping clause
//!   count.
//! * `dcip_ptime/no_constraints` — Theorem 6.1 sink test, sweeping entity
//!   count.  Expected shape: polynomial.

use criterion::{BenchmarkId, Criterion};
use currency_bench::quick_criterion;
use currency_core::RelId;
use currency_datagen::gadgets::cop_3sat;
use currency_datagen::logic::random_formula;
use currency_datagen::random::{random_spec, RandomSpecConfig};
use currency_reason::{dcip_exact, dcip_ptime, Options};

fn bench_dcip(c: &mut Criterion) {
    let mut group = c.benchmark_group("t2_dcip");
    let opts = Options::default();
    for clauses in [2usize, 3, 4, 5] {
        let f = random_formula(3, clauses, 13);
        let gadget = cop_3sat(&f);
        group.bench_with_input(
            BenchmarkId::new("dcip_exact/3sat_clauses", clauses),
            &gadget.spec,
            |bench, spec| bench.iter(|| dcip_exact(spec, gadget.rel, &opts).unwrap()),
        );
    }
    for entities in [16usize, 64, 256, 1024] {
        let spec = random_spec(&RandomSpecConfig {
            entities,
            tuples_per_entity: (2, 4),
            attrs: 2,
            value_pool: 3,
            order_density: 0.5,
            with_copy: false,
            seed: 5,
            ..RandomSpecConfig::default()
        });
        group.bench_with_input(
            BenchmarkId::new("dcip_ptime/no_constraints_entities", entities),
            &spec,
            |bench, spec| bench.iter(|| dcip_ptime(spec, RelId(0)).unwrap()),
        );
    }
    group.finish();
}

fn main() {
    let mut c = quick_criterion();
    bench_dcip(&mut c);
    c.final_summary();
}
