//! F1-QS: the Fig. 1 running example as a latency benchmark.
//!
//! Measures end-to-end certain-current-answer latency for the paper's
//! four motivating queries Q1–Q4 (Example 1.1) over the company database,
//! plus the consistency check and the current-instance determinism check.
//! These are the "interactive" workloads of the system — each involves the
//! full pipeline (grounding, encoding, All-SAT over value indicators,
//! query evaluation, intersection).

use criterion::Criterion;
use currency_bench::quick_criterion;
use currency_datagen::scenarios::fig1;
use currency_reason::{certain_answers, cps_exact, dcip_exact, Options};

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_quickstart");
    let f = fig1();
    let opts = Options::default();
    group.bench_function("cps", |b| b.iter(|| cps_exact(&f.spec).unwrap()));
    let queries = [
        ("q1_salary", f.q1().to_query(5)),
        ("q2_last_name", f.q2().to_query(5)),
        ("q3_address", f.q3().to_query(5)),
        ("q4_budget", f.q4().to_query(4)),
    ];
    for (name, q) in &queries {
        group.bench_function(*name, |b| {
            b.iter(|| certain_answers(&f.spec, q, &opts).unwrap())
        });
    }
    group.bench_function("dcip_emp", |b| {
        b.iter(|| dcip_exact(&f.spec, f.emp, &opts).unwrap())
    });
    group.finish();
}

fn main() {
    let mut c = quick_criterion();
    bench_fig1(&mut c);
    c.final_summary();
}
