//! Shared benchmark scenarios, used by both the criterion-style bench
//! targets and the machine-readable `bench_engine` binary.

use currency_core::{
    AttrId, Catalog, CmpOp, CopyFunction, CopySignature, DenialConstraint, Eid, RelId,
    RelationSchema, SpecDelta, Specification, Term, Tuple, TupleId, Value,
};
use currency_datagen::random::{random_spec, RandomSpecConfig};
use currency_query::{Query, SpQuery};
use currency_reason::{CurrencyEngine, CurrencyOrderQuery, Options, TransitivityMode};
use currency_serve::ServeRequest;

/// The target relation of the generated workloads.
pub const T: RelId = RelId(0);
/// COP queries per amortized-workload iteration.
pub const N_COP: usize = 32;

/// A **consistent** multi-entity specification for the amortized
/// repeated-query workload (asserted: an inconsistent spec would measure
/// only the vacuous-truth path).
pub fn amortized_spec(entities: usize) -> Specification {
    let spec = random_spec(&RandomSpecConfig {
        entities,
        tuples_per_entity: (2, 3),
        attrs: 2,
        value_pool: 4,
        order_density: 0.0,
        monotone_constraints: 2,
        correlated_constraints: 1,
        with_copy: true,
        seed: 7,
    });
    assert!(
        currency_reason::cps(&spec).expect("valid spec"),
        "bench spec must be consistent — an inconsistent one measures \
         only the vacuous-truth path"
    );
    spec
}

/// The amortized workload's COP query batch.
pub fn amortized_cop_queries(spec: &Specification) -> Vec<CurrencyOrderQuery> {
    let len = spec.instance(T).len() as u32;
    (0..N_COP as u32)
        .map(|i| {
            CurrencyOrderQuery::single(
                T,
                AttrId(i % 2),
                TupleId(i % len),
                TupleId((i * 7 + 1) % len),
            )
        })
        .collect()
}

/// The amortized workload's CCQA identity query.
pub fn amortized_ccqa_query(spec: &Specification) -> Query {
    SpQuery::identity(T, spec.instance(T).arity()).to_query(spec.instance(T).arity())
}

/// The update workload's delta: one fresh reading for entity 0 of the
/// target relation.  Component-local by construction — entity 0's cell
/// (merged with its copy sources, if any) is the only thing it touches —
/// so a correct incremental engine rebuilds exactly one component.
pub fn update_insert_delta(spec: &Specification) -> SpecDelta {
    let arity = spec.instance(T).arity();
    let mut delta = SpecDelta::new();
    delta.insert_tuple(
        T,
        Tuple::new(Eid(0), (0..arity).map(|a| Value::int(a as i64)).collect()),
    );
    delta
}

/// The retraction paired with [`update_insert_delta`], keeping the
/// workload steady-state so measurement iterations don't grow the spec.
pub fn update_remove_delta(rel: RelId, id: TupleId) -> SpecDelta {
    let mut delta = SpecDelta::new();
    delta.remove_tuple(rel, id);
    delta
}

/// Tuples — and copy mappings — per entity of [`large_spec`].
pub const LARGE_TUPLES_PER_ENTITY: usize = 10;

/// The large-scale scenario: `entities` target entities with
/// [`LARGE_TUPLES_PER_ENTITY`] strictly-increasing readings each, every
/// reading copied from a mirrored source entity (one copy function with
/// `entities × 10` mappings, so each component spans one target cell +
/// one source cell and carries ~90 compatibility obligations), plus a
/// monotone constraint on the target.  Consistent by construction (the
/// value order is the single completion per component).
///
/// This is the regime where any per-apply O(spec) cost — full
/// cell→component index rebuilds, whole-mapping-set grouping, per-removal
/// mapping scans — dominates a delta; the "large" bench section drives a
/// single-entity delta against it at 1× and 4× scale and demands a flat
/// per-delta time.
pub fn large_spec(entities: usize) -> Specification {
    let mut cat = Catalog::new();
    let t = cat.add(RelationSchema::new("T", &["V"]));
    let s = cat.add(RelationSchema::new("S", &["V"]));
    let mut spec = Specification::new(cat);
    let sig = CopySignature::new(t, vec![AttrId(0)], s, vec![AttrId(0)]).expect("signature");
    let mut cf = CopyFunction::new(sig);
    for e in 0..entities as u64 {
        for v in 0..LARGE_TUPLES_PER_ENTITY {
            let tt = spec
                .instance_mut(t)
                .push_tuple(Tuple::new(Eid(e), vec![Value::int(v as i64)]))
                .expect("arity");
            let ts = spec
                .instance_mut(s)
                .push_tuple(Tuple::new(Eid(e), vec![Value::int(v as i64)]))
                .expect("arity");
            cf.set_mapping(tt, ts);
        }
    }
    let dc = DenialConstraint::builder(t, 2)
        .when_cmp(
            Term::attr(0, AttrId(0)),
            CmpOp::Gt,
            Term::attr(1, AttrId(0)),
        )
        .then_order(1, AttrId(0), 0)
        .build()
        .expect("valid constraint");
    spec.add_constraint(dc).expect("constraint applies");
    spec.add_copy(cf).expect("copying condition holds");
    spec
}

/// Tuples per target entity of [`sharded_spec`].
pub const SHARDED_TUPLES_PER_ENTITY: usize = 3;

/// The scale-out scenario: the same two-relation mirrored shape as
/// [`large_spec`] but lean per entity ([`SHARDED_TUPLES_PER_ENTITY`]
/// readings instead of 10), so the *entity count* — the quantity
/// sharding distributes — can reach the 100k+ regime while each
/// per-entity component stays small.  Consistent by construction for
/// the same reason as [`large_spec`], and [`large_insert_delta`]
/// applies unchanged (entity 0 exists in every size).
pub fn sharded_spec(entities: usize) -> Specification {
    let mut cat = Catalog::new();
    let t = cat.add(RelationSchema::new("T", &["V"]));
    let s = cat.add(RelationSchema::new("S", &["V"]));
    let mut spec = Specification::new(cat);
    let sig = CopySignature::new(t, vec![AttrId(0)], s, vec![AttrId(0)]).expect("signature");
    let mut cf = CopyFunction::new(sig);
    for e in 0..entities as u64 {
        for v in 0..SHARDED_TUPLES_PER_ENTITY {
            let tt = spec
                .instance_mut(t)
                .push_tuple(Tuple::new(Eid(e), vec![Value::int(v as i64)]))
                .expect("arity");
            let ts = spec
                .instance_mut(s)
                .push_tuple(Tuple::new(Eid(e), vec![Value::int(v as i64)]))
                .expect("arity");
            cf.set_mapping(tt, ts);
        }
    }
    let dc = DenialConstraint::builder(t, 2)
        .when_cmp(
            Term::attr(0, AttrId(0)),
            CmpOp::Gt,
            Term::attr(1, AttrId(0)),
        )
        .then_order(1, AttrId(0), 0)
        .build()
        .expect("valid constraint");
    spec.add_constraint(dc).expect("constraint applies");
    spec.add_copy(cf).expect("copying condition holds");
    spec
}

/// The large workload's delta: one fresh most-current reading for target
/// entity 0 — component-local (entity 0's target cell merged with its
/// mirrored source cell), unmapped, value above every existing reading.
pub fn large_insert_delta() -> SpecDelta {
    let mut delta = SpecDelta::new();
    delta.insert_tuple(T, Tuple::new(Eid(0), vec![Value::int(1_000_000)]));
    delta
}

/// The serve workload's request pool: the amortized COP batch as
/// canonicalized [`ServeRequest`]s.  Every reader thread cycles the
/// *same* pool, so after each epoch's first pass the answers come from
/// the shared epoch-keyed cache — which is exactly the read-mostly
/// serving regime the qps numbers are about.
pub fn serve_request_pool(spec: &Specification) -> Vec<ServeRequest> {
    amortized_cop_queries(spec)
        .into_iter()
        .map(ServeRequest::Cop)
        .collect()
}

/// One entity group of `n` tuples with strictly increasing values and a
/// monotone denial constraint — consistent (the value order is the one
/// completion), and every pair is constrained, so nothing short-circuits.
/// This is the large-entity-group regime where eager transitivity
/// grounding pays `n·(n-1)·(n-2)` clauses while the lazy closure walk
/// typically grounds none.
pub fn big_group_spec(n: usize) -> Specification {
    let mut cat = Catalog::new();
    let r = cat.add(RelationSchema::new("R", &["A"]));
    let mut spec = Specification::new(cat);
    for i in 0..n {
        spec.instance_mut(r)
            .push_tuple(Tuple::new(Eid(1), vec![Value::int(i as i64)]))
            .expect("arity");
    }
    let dc = DenialConstraint::builder(r, 2)
        .when_cmp(
            Term::attr(0, AttrId(0)),
            CmpOp::Gt,
            Term::attr(1, AttrId(0)),
        )
        .then_order(1, AttrId(0), 0)
        .build()
        .expect("valid constraint");
    spec.add_constraint(dc).expect("constraint applies");
    spec
}

/// The scaling workload: build an engine over [`big_group_spec`] with the
/// given transitivity mode, decide CPS, and answer one certain COP query.
/// Returns the engine so callers can read its stats.
pub fn big_group_workload(spec: &Specification, mode: TransitivityMode) -> CurrencyEngine<'_> {
    let opts = Options {
        transitivity: mode,
        threads: 1,
        ..Options::default()
    };
    let engine = CurrencyEngine::with_value_rels(spec, &[], &opts).expect("valid spec");
    assert!(engine.cps().expect("in budget"), "spec is consistent");
    let q = CurrencyOrderQuery::single(T, AttrId(0), TupleId(0), TupleId(1));
    assert!(engine.cop(&q).expect("in budget"), "0 ≺ 1 is forced");
    engine
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_group_spec_is_consistent_and_scaling_workload_runs() {
        let spec = big_group_spec(8);
        for mode in [TransitivityMode::Eager, TransitivityMode::Lazy] {
            let engine = big_group_workload(&spec, mode);
            assert_eq!(engine.partition().len(), 1, "one entity, one component");
        }
    }

    #[test]
    fn amortized_spec_shapes_hold() {
        let spec = amortized_spec(8);
        assert!(!amortized_cop_queries(&spec).is_empty());
        let _ = amortized_ccqa_query(&spec);
    }

    #[test]
    fn large_spec_shape_and_delta_locality() {
        let spec = large_spec(4);
        assert_eq!(spec.total_copy_size(), 4 * LARGE_TUPLES_PER_ENTITY);
        let mut engine = CurrencyEngine::with_value_rels_owned(spec, &[], &Options::default())
            .expect("valid spec");
        assert_eq!(engine.partition().len(), 4, "one component per entity");
        assert!(engine.cps().expect("in budget"), "consistent");
        let report = engine.apply(&large_insert_delta()).expect("valid delta");
        assert_eq!(report.components_rebuilt, 1, "delta is component-local");
        assert!(engine.cps().expect("in budget"));
        let (rel, id) = report.inserted[0];
        let report = engine
            .apply(&update_remove_delta(rel, id))
            .expect("valid delta");
        assert_eq!(report.components_rebuilt, 1);
        let reclaimed = engine.compact().expect("compactable").reclaimed;
        assert_eq!(reclaimed, 1, "the retraction's tombstone");
        assert!(engine.cps().expect("in budget"));
    }

    #[test]
    fn update_deltas_are_component_local_and_steady_state() {
        let spec = amortized_spec(8);
        let mut engine = CurrencyEngine::new(&spec, &Options::default()).expect("valid spec");
        assert!(engine.cps().expect("in budget"));
        let before = engine.stats();
        let report = engine
            .apply(&update_insert_delta(&spec))
            .expect("valid delta");
        assert_eq!(report.components_rebuilt, 1, "delta is component-local");
        let (rel, id) = report.inserted[0];
        assert!(engine.cps().expect("in budget"));
        let report = engine
            .apply(&update_remove_delta(rel, id))
            .expect("valid delta");
        assert_eq!(report.components_rebuilt, 1);
        let after = engine.stats();
        assert_eq!(before.cells, after.cells, "steady state");
        assert_eq!(before.components, after.components);
    }
}
