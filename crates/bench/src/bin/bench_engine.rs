//! Machine-readable engine benchmark: runs the amortized repeated-query
//! workload and the lazy-vs-eager transitivity scaling sweep, then writes
//! `BENCH_engine.json` so the performance trajectory is tracked across
//! PRs.
//!
//! ```text
//! bench_engine [--fast] [--check] [--out PATH]
//! ```
//!
//! * `--fast` — CI smoke shape: fewer samples, smaller sweeps, lazy-only
//!   at the largest group size, the multi-second large-scale `compact()`
//!   priced only at the 1× point, and the sharded sweep downscaled
//!   (seconds, not minutes);
//! * `--check` — exit non-zero if the 64-tuple-group lazy scenario
//!   regresses (wall time past the generous [`LAZY_64_THRESHOLD_NS`], or
//!   stored-clause count past the deterministic
//!   [`LAZY_64_CLAUSE_LIMIT`], which catches an accidental eager
//!   fallback without timing noise), **or** if the update workload's
//!   single-tuple delta recompiles more than
//!   [`UPDATE_REBUILT_LIMIT`] component (the deterministic
//!   incremental-maintenance guard: a delta local to one entity component
//!   must never trigger a wider rebuild);
//! * `--out PATH` — where to write the JSON (default
//!   `BENCH_engine.json`).

use currency_bench::measure::{measure, measure_once, measure_paired, Measurement};
use currency_bench::scenarios;
use currency_core::{wire, Eid, SpecDelta, Specification, Tuple, Value};
use currency_datagen::random::{random_spec, RandomSpecConfig};
use currency_obs::RingRecorder;
use currency_reason::{
    certain_answers_exact_monolithic, cop_exact_monolithic, CompactBudget, CurrencyEngine, Options,
    ReasonError, ShardedEngine, SnapshotEngine, SolveLimits, TransitivityMode,
};
use currency_serve::{CurrencyServe, ServeError, ServeOptions, ServeRequest, ServeStats};
use currency_store::{DurableEngine, ShardedStore, StoreOptions};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Wall-time regression guard for `--check`: lazy end-to-end (engine
/// build + CPS + one COP) on the 64-tuple single-group scenario.
/// Measured ≈ 0.85 ms on the reference container; the threshold is ~60×
/// generous so shared-runner noise cannot fail it.  The *deterministic*
/// eager-fallback guard is [`LAZY_64_CLAUSE_LIMIT`].
const LAZY_64_THRESHOLD_NS: f64 = 50_000_000.0; // 50 ms

/// Deterministic regression guard for `--check`: stored clauses in the
/// lazy engine on the 64-tuple-group scenario.  Lazy grounding stores no
/// transitivity clauses up front (this scenario stores 0 clauses — its
/// ground rules simplify to level-0 units — and refinement lemmas stay
/// in the hundreds at worst); an accidental eager fallback stores the
/// full 64·63·62 ≈ 250k triangles.  Timing-independent, so it cannot
/// flake on slow runners.
const LAZY_64_CLAUSE_LIMIT: usize = 10_000;

/// Deterministic regression guard for `--check`: components recompiled by
/// one single-tuple delta on the prebuilt update-workload engine.  The
/// delta touches one entity's cell, so a correct incremental partition
/// rebuilds exactly the component owning it — recompiling more means the
/// dirty-region computation leaks.  Timing-independent.
const UPDATE_REBUILT_LIMIT: usize = 1;

/// Entity count of the update workload (the acceptance scenario: a
/// 1-tuple delta against a prebuilt 128-entity engine).
const UPDATE_ENTITIES: usize = 128;

/// Flatness guard for `--check` on the large-scale workload: per-delta
/// apply+CPS at 4× the base entity count must stay within this factor of
/// the 1× baseline.  The delta path is O(dirty region) — stable component
/// slots, region-patched cell index, entity-keyed mapping lookups — so
/// the true ratio is ≈ 1; any reintroduced O(spec) term (index rebuild,
/// whole-mapping grouping, full cache sweep) pushes it toward 4× and
/// trips this with margin to spare for runner noise.
const LARGE_FLAT_FACTOR: f64 = 2.0;

/// Base entity count of the large workload in full mode.  The 4× point is
/// 10 000 entities × 10 tuples and copy mappings each — the ≥10k-entity /
/// ≥100k-mapping scale the acceptance criteria name.
const LARGE_BASE_ENTITIES: usize = 2_500;

/// Base entity count of the large workload under `--fast` (CI smoke keeps
/// the same 1×-vs-4× shape at a fraction of the build time).
const LARGE_BASE_ENTITIES_FAST: usize = 400;

/// Insert+retract churn pairs run against each large-scale engine before
/// the compaction section, growing a dead region big enough that the
/// budgeted drain takes several bounded steps (and the monolithic sweep
/// reclaims something worth pricing).
const LARGE_COMPACT_CHURN: usize = 20_000;

/// Compaction churn under `--fast` (one bounded step's worth: the fast
/// lane prices a single budgeted step rather than a multi-step drain).
const LARGE_COMPACT_CHURN_FAST: usize = 2_000;

/// Hard pause bound for `--check` on a single budgeted compaction step at
/// the large 4× scale (10k entities / 100k mappings in full mode).  A
/// step scans [`COMPACT_STEP_SLOTS`] slots plus the dirty-region rebuild
/// — sub-millisecond in practice; 250 ms is the serving-pause contract
/// the roadmap names.
const COMPACT_MAX_PAUSE_MS: u64 = 250;

/// Slot budget per step of the benchmarked incremental drain (a few
/// slice quanta: big enough to finish the drain in a handful of steps,
/// small enough that per-step pause stays far under the bound).
const COMPACT_STEP_SLOTS: usize = 4_096;

/// Flatness guard for `--check` on the drain's per-reclaimed-slot cost
/// across the two large scales.  A bounded step's cost is O(scan +
/// moved), independent of specification size, so the true ratio is ≈ 1;
/// an O(spec) term sneaking back into the step path (full index rebuild,
/// whole-partition refresh) pushes it toward the 4× spec-size ratio.
const COMPACT_FLAT_FACTOR: f64 = 3.0;

/// Logged history length of the durability workload (1k deltas — the
/// acceptance scenario; `--fast` scales it down but keeps the shape).
const DURABILITY_DELTAS: usize = 1_000;

/// Durability history length under `--fast`.
const DURABILITY_DELTAS_FAST: usize = 240;

/// Fraction of the durability history covered by the rotated snapshot;
/// the rest is the log suffix recovery must replay.  The replayed count
/// is deterministic (exactly `deltas - snapshot point`), and `--check`
/// asserts it.
const DURABILITY_SNAPSHOT_FRACTION: f64 = 0.8;

/// Overhead guard for `--check`: per-delta apply through the durable
/// log-then-apply path must stay within this factor of the in-memory
/// apply path on the same workload.  A CRC-framed append plus one
/// `write` syscall costs single-digit microseconds against an ~55 µs
/// apply+CPS round (delta validation is ~80 ns), so the true ratio is
/// ≈ 1.06 — measured as the median of *paired, order-alternated*
/// rounds, which cancels the environment drift that once inflated the
/// back-to-back ratio to 1.38×.  1.2× holds the machinery to its real
/// cost while still absorbing per-round jitter.
const DURABLE_OVERHEAD_FACTOR: f64 = 1.2;

/// Observability overhead guard for `--check`: per-delta apply with the
/// always-on metrics (histogram records are three relaxed atomic adds)
/// and the default no-op recorder must stay within this factor of the
/// same engine with observability disabled.  The real cost is a handful
/// of clock reads and atomics against a multi-microsecond apply+CPS
/// round, so the honest paired ratio is ≈ 1.00; 1.02 is the jitter
/// allowance.
const OBS_NOOP_FACTOR: f64 = 1.02;

/// Observability overhead guard with a live [`RingRecorder`] attached:
/// full instrumentation — metrics plus span records into the sharded
/// trace rings — must stay within this factor of the uninstrumented
/// engine.  Tracing adds a mutexed ring push per span boundary (four
/// spans per apply), so 1.10× bounds it while leaving the paired
/// measurement room to breathe.
const OBS_TRACED_FACTOR: f64 = 1.10;

/// Recovery guard for `--check`: opening the store (newest snapshot +
/// log-suffix replay) must beat re-applying the *full* delta history
/// from scratch by at least this factor.  With 80% of the history behind
/// the snapshot the replay does a fifth of the apply work, so the true
/// speedup is well past 2; 1.5 is the noise-safe floor for "measurably
/// faster".
const RECOVERY_SPEEDUP_MIN: f64 = 1.5;

/// Absolute wall-time ceiling on recovery for `--check` (generous: the
/// measured open is tens of milliseconds).
const RECOVERY_WALL_NS: f64 = 10_000_000_000.0; // 10 s

/// Shard count of the sharded scale-out workload (the widest point the
/// differential test suite exercises).
const SHARDED_SHARDS: usize = 8;

/// Baseline entity count of the sharded flatness sweep in full mode; the
/// scaled point is [`SHARDED_SCALE`]× this — the 100k-entity regime the
/// acceptance criteria name ([`scenarios::sharded_spec`] keeps entities
/// lean so the *entity count*, the quantity sharding distributes, is
/// what scales).
const SHARDED_BASE_ENTITIES: usize = 10_000;

/// Sharded-sweep baseline under `--fast` (same 1×-vs-10× shape, a
/// fraction of the build time).
const SHARDED_BASE_ENTITIES_FAST: usize = 1_000;

/// The sharded sweep's scaled point is this multiple of the baseline.
const SHARDED_SCALE: usize = 10;

/// Flatness guard for `--check` on the sharded workload: per-delta
/// apply + scatter-CPS at 10× the base entity count must stay within
/// this factor of the baseline.  Routing is a hash + O(log n) placement
/// lookup and the apply is O(dirty region) inside one shard, so the
/// true ratio is ≈ 1 with only cache-pressure drift; an O(shard) or
/// O(spec) term in the routed path pushes it well past 2×.
const SHARDED_FLAT_FACTOR: f64 = 2.0;

/// Entity count of the sharded recovery race in full mode (8 shards,
/// each rebuilding its engine and replaying its log slice).
const SHARDED_RECOVERY_ENTITIES: usize = 4_000;

/// Sharded recovery entity count under `--fast`.
const SHARDED_RECOVERY_ENTITIES_FAST: usize = 800;

/// Logged single-shard deltas of the sharded recovery race in full mode
/// (all of them replay on open — rotation is disabled).
const SHARDED_RECOVERY_DELTAS: usize = 1_600;

/// Sharded recovery history length under `--fast`.
const SHARDED_RECOVERY_DELTAS_FAST: usize = 320;

/// Recovery-parallelism guard for `--check`: opening all shards
/// concurrently must beat the sequential open by this factor.  Shards
/// recover with zero shared state, so on real multi-core hardware the
/// speedup tracks the core count; 1.5 is the noise-safe floor for
/// "measurably parallel".
const SHARDED_RECOVERY_SPEEDUP_MIN: f64 = 1.5;

/// The parallel-recovery bar is enforced only on machines that can
/// physically show it; below this core count the per-shard threads
/// time-slice one another and the honest speedup is ≈ 1.
const SHARDED_RECOVERY_MIN_CORES: usize = 4;

/// Everywhere-enforced sanity floor: even time-sliced on one core,
/// parallel recovery must not *collapse* below this fraction of the
/// sequential open — a cross-shard lock (or one shard recovering the
/// others' work) would sink it.
const SHARDED_RECOVERY_COLLAPSE_FLOOR: f64 = 0.35;

/// Floor for `--check` on the trusted-replay speedup: skipping replay
/// validation is strictly less work than the validated sequential open,
/// so the *paired* per-round ratio must never drop below parity.  The
/// ratio is measured order-alternated ([`measure_paired`]) precisely so
/// environment drift cannot push a less-work path below 1×.
const SHARDED_TRUSTED_SPEEDUP_MIN: f64 = 1.0;

/// Seeds of the sharded-vs-unsharded CPS differential sweep in full
/// mode — the full 10k-seed space the property suites draw from.  The
/// guard is deterministic: zero disagreements.
const SHARDED_DIFF_SEEDS: u64 = 10_000;

/// Differential-sweep seeds under `--fast`.
const SHARDED_DIFF_SEEDS_FAST: u64 = 1_000;

/// Shard count of the differential sweep (entity routing at N = 4
/// splits the 3-entity specs nontrivially without degenerating to
/// one-entity shards everywhere).
const SHARDED_DIFF_SHARDS: usize = 4;

/// Reader-thread sweep of the serve workload: sustained qps with a
/// concurrent writer churning the delta stream.
const SERVE_READER_SWEEP: &[usize] = &[1, 8, 64];

/// Scaling guard for `--check`: 8 reader threads must sustain at least
/// this multiple of the single-reader qps.  Readers share nothing but
/// immutable snapshot `Arc`s and the sharded answer cache, so on real
/// multi-core hardware the scaling is near-linear; 3× leaves room for
/// the shared writer churn and cache-shard contention.
const SERVE_SCALING_MIN: f64 = 3.0;

/// The scaling guard is enforced only when the machine can physically
/// exhibit it: below this core count the 8 readers time-slice one
/// another and the honest ratio is ≈ 1, so the run records the ratio
/// (and the relaxed [`SERVE_COLLAPSE_FLOOR`] still applies) without
/// failing `--check`.
const SERVE_SCALING_MIN_CORES: usize = 8;

/// Everywhere-enforced sanity floor: even time-sliced on one core, 8
/// readers must not *collapse* below this fraction of the single-reader
/// qps — a shared lock on the read path (the bug this layer exists to
/// avoid) would serialize and sink it.
const SERVE_COLLAPSE_FLOOR: f64 = 0.2;

/// Cache guard for `--check`: hit rate of the deterministic
/// repeated-query workload (one snapshot, [`SERVE_CACHE_ROUNDS`] passes
/// over the request pool — only the first pass can miss, so the true
/// rate is `(rounds-1)/rounds` = 98%).  Timing-independent.
const SERVE_CACHE_HIT_MIN: f64 = 0.90;

/// Passes over the request pool in the deterministic cache workload.
const SERVE_CACHE_ROUNDS: usize = 50;

/// Bounded-work guard for `--check`: a COP solve on the 128-entity spec
/// under a starvation budget (1 conflict, 1 propagation) must return
/// [`ReasonError::Interrupted`] within this wall time (best of
/// [`INTERRUPTED_COP_TRIES`] calls).  The measured cost is single-digit
/// microseconds — the budget stops the solver at its very first step —
/// so 1 ms is ~100× headroom while still catching any unbounded work
/// (or an un-budgeted solve path) ahead of the interrupt check.
const INTERRUPTED_COP_WALL_NS: f64 = 1_000_000.0; // 1 ms

/// Attempts for the interrupted-COP wall-time guard (min is taken, so a
/// scheduler hiccup on one call cannot flake the check).
const INTERRUPTED_COP_TRIES: usize = 64;

/// Threads in the overload burst: all released by one barrier against a
/// 2-slot in-flight cap with the cache disabled.
const BURST_THREADS: usize = 64;

/// In-flight cap for the overload burst.
const BURST_INFLIGHT_CAP: usize = 2;

/// Queries each burst thread issues (more than one so slow schedulers
/// still overlap arrivals; every query either answers or sheds cleanly).
const BURST_QUERIES_PER_THREAD: usize = 4;

struct Args {
    fast: bool,
    check: bool,
    out: String,
}

/// One large-scale point of the compaction section: the budgeted drain
/// against the core-layer reference sweep on the same dirty spec.
struct CompactScale {
    entities: usize,
    churn: usize,
    steps: usize,
    reclaimed: usize,
    max_step_ns: f64,
    drain_ns: f64,
    reference_ns: f64,
    byte_identical: bool,
    parity: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        fast: false,
        check: false,
        out: "BENCH_engine.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fast" => args.fast = true,
            "--check" => args.check = true,
            "--out" => args.out = it.next().expect("--out needs a path"),
            other => panic!("unknown argument {other:?} (expected --fast/--check/--out)"),
        }
    }
    args
}

/// One serve run: `threads` readers cycling the request pool through
/// their own handles while a writer thread churns insert+retract deltas
/// (each publishing a new epoch and invalidating the cache), for a fixed
/// wall window.  Returns the sustained reader qps, the run's serving
/// stats, and the number of epochs the writer got through.
fn serve_sustained_qps(
    spec: &Specification,
    pool: &[ServeRequest],
    threads: usize,
    window: Duration,
) -> (f64, ServeStats) {
    let serve = Arc::new(
        CurrencyServe::new(spec.clone(), &Options::default(), &ServeOptions::default())
            .expect("valid spec"),
    );
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let serve = serve.clone();
        let stop = stop.clone();
        let insert = scenarios::update_insert_delta(spec);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let report = serve.apply(&insert).expect("admissible");
                let (rel, id) = report.inserted[0];
                serve
                    .apply(&scenarios::update_remove_delta(rel, id))
                    .expect("admissible");
                std::thread::yield_now();
            }
        })
    };
    let start = Instant::now();
    let readers: Vec<_> = (0..threads)
        .map(|_| {
            let serve = serve.clone();
            let stop = stop.clone();
            let pool = pool.to_vec();
            std::thread::spawn(move || {
                let mut handle = serve.handle();
                let mut answered = 0u64;
                'run: loop {
                    for req in &pool {
                        if stop.load(Ordering::Relaxed) {
                            break 'run;
                        }
                        std::hint::black_box(handle.query(req).expect("in budget"));
                        answered += 1;
                    }
                    std::thread::yield_now();
                }
                answered
            })
        })
        .collect();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let total: u64 = readers
        .into_iter()
        .map(|r| r.join().expect("reader thread survives"))
        .sum();
    let elapsed = start.elapsed();
    writer.join().expect("writer thread survives");
    (total as f64 / elapsed.as_secs_f64(), serve.stats())
}

fn push_measurement(json: &mut String, m: &Measurement) {
    let _ = write!(
        json,
        "{{\"median_ns\": {:.0}, \"min_ns\": {:.0}, \"mean_ns\": {:.0}, \
         \"samples\": {}, \"iters\": {}}}",
        m.median_ns, m.min_ns, m.mean_ns, m.samples, m.iters
    );
}

fn main() {
    let args = parse_args();
    let (samples, warmup, window) = if args.fast {
        (3, Duration::from_millis(50), Duration::from_millis(120))
    } else {
        (9, Duration::from_millis(200), Duration::from_millis(450))
    };
    let mut json = String::new();
    json.push_str("{\n  \"schema\": 1,\n  \"bench\": \"engine\",\n");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if args.fast { "fast" } else { "full" }
    );

    // ------------------------------------------------------------------
    // Amortized repeated-query workload (engine vs prebuilt vs re-encode).
    // ------------------------------------------------------------------
    let entity_sweep: &[usize] = if args.fast { &[8, 32] } else { &[8, 32, 128] };
    json.push_str("  \"amortized\": [\n");
    for (ix, &entities) in entity_sweep.iter().enumerate() {
        eprintln!("amortized: entities = {entities}");
        let spec = scenarios::amortized_spec(entities);
        let queries = scenarios::amortized_cop_queries(&spec);
        let q = scenarios::amortized_ccqa_query(&spec);
        let opts = Options::default();
        let engine = measure(samples, warmup, window, || {
            let engine = CurrencyEngine::new(&spec, &opts).unwrap();
            for query in &queries {
                std::hint::black_box(engine.cop(query).unwrap());
            }
            std::hint::black_box(engine.certain_answers(&q).unwrap());
        });
        let prebuilt_engine = CurrencyEngine::new(&spec, &opts).unwrap();
        prebuilt_engine.cps().unwrap();
        let prebuilt = measure(samples, warmup, window, || {
            for query in &queries {
                std::hint::black_box(prebuilt_engine.cop(query).unwrap());
            }
            std::hint::black_box(prebuilt_engine.certain_answers(&q).unwrap());
        });
        let reencode = measure(samples, warmup, window, || {
            for query in &queries {
                std::hint::black_box(cop_exact_monolithic(&spec, query).unwrap());
            }
            std::hint::black_box(certain_answers_exact_monolithic(&spec, &q, &opts).unwrap());
        });
        let _ = write!(json, "    {{\"entities\": {entities}, \"engine\": ");
        push_measurement(&mut json, &engine);
        json.push_str(", \"prebuilt\": ");
        push_measurement(&mut json, &prebuilt);
        json.push_str(", \"reencode\": ");
        push_measurement(&mut json, &reencode);
        json.push('}');
        if ix + 1 < entity_sweep.len() {
            json.push(',');
        }
        json.push('\n');
    }
    json.push_str("  ],\n");

    // ------------------------------------------------------------------
    // Update workload: a 1-tuple delta against a prebuilt engine vs a
    // full rebuild of the same specification.  Each insert is paired
    // with its retraction, so the *live* instance is steady-state (group
    // sizes, components and solver work never grow); retraction
    // tombstones do accumulate one id slot per iteration, which both the
    // incremental path and the rebuild baseline (built from the same
    // spec) carry equally.
    // ------------------------------------------------------------------
    eprintln!("update: entities = {UPDATE_ENTITIES}");
    let update_spec = scenarios::amortized_spec(UPDATE_ENTITIES);
    let opts = Options::default();
    let mut engine = CurrencyEngine::new(&update_spec, &opts).unwrap();
    engine.cps().unwrap();
    let components = engine.stats().components;
    let insert = scenarios::update_insert_delta(&update_spec);
    // Worst observed rebuild width across all measured deltas — the
    // deterministic guard for --check.
    let mut rebuilt_per_delta: usize = 0;
    let apply = measure(samples, warmup, window, || {
        let report = engine.apply(&insert).unwrap();
        rebuilt_per_delta = rebuilt_per_delta.max(report.components_rebuilt);
        std::hint::black_box(engine.cps().unwrap());
        let (rel, id) = report.inserted[0];
        let report = engine
            .apply(&scenarios::update_remove_delta(rel, id))
            .unwrap();
        rebuilt_per_delta = rebuilt_per_delta.max(report.components_rebuilt);
        std::hint::black_box(engine.cps().unwrap());
    });
    // The full-rebuild baseline answers the same question (post-delta
    // CPS) by recompiling every component from the updated spec.
    let rebuild = measure(samples, warmup, window, || {
        let fresh = CurrencyEngine::new(engine.spec(), &opts).unwrap();
        std::hint::black_box(fresh.cps().unwrap());
    });
    // `apply` measured two delta+query rounds per iteration; halve it so
    // the ratio compares one delta against one rebuild.
    let per_delta_ns = apply.median_ns / 2.0;
    let rebuild_over_apply = rebuild.median_ns / per_delta_ns;
    let _ = write!(
        json,
        "  \"update\": {{\"entities\": {UPDATE_ENTITIES}, \"components\": {components}, \
         \"per_delta_ns\": {per_delta_ns:.0}, \"apply_pair\": "
    );
    push_measurement(&mut json, &apply);
    json.push_str(", \"rebuild\": ");
    push_measurement(&mut json, &rebuild);
    let _ = writeln!(
        json,
        ", \"rebuild_over_apply\": {rebuild_over_apply:.1}, \
         \"rebuilt_per_delta\": {rebuilt_per_delta}}},"
    );

    // ------------------------------------------------------------------
    // Large-scale update workload: the same insert+retract delta pair
    // against prebuilt engines at 1× and 4× spec size (entities, copy
    // mappings, components all scale together).  The delta path is
    // O(dirty region), so per-delta time must stay flat; afterwards one
    // compact() reclaims the measurement loop's retraction tombstones.
    // ------------------------------------------------------------------
    let large_base = if args.fast {
        LARGE_BASE_ENTITIES_FAST
    } else {
        LARGE_BASE_ENTITIES
    };
    let mut large_per_delta: Vec<f64> = Vec::new();
    let mut large_rebuilt_per_delta: usize = 0;
    let mut compact_scales: Vec<CompactScale> = Vec::new();
    json.push_str("  \"large\": [\n");
    for (ix, &scale) in [1usize, 4].iter().enumerate() {
        let entities = large_base * scale;
        eprintln!("large: entities = {entities}");
        let spec = scenarios::large_spec(entities);
        let mappings = spec.total_copy_size();
        let opts = Options::default();
        let mut engine =
            CurrencyEngine::with_value_rels_owned(spec, &[], &opts).expect("valid spec");
        engine.cps().unwrap();
        let components = engine.stats().components;
        let insert = scenarios::large_insert_delta();
        let apply = measure(samples, warmup, window, || {
            let report = engine.apply(&insert).unwrap();
            large_rebuilt_per_delta = large_rebuilt_per_delta.max(report.components_rebuilt);
            std::hint::black_box(engine.cps().unwrap());
            let (rel, id) = report.inserted[0];
            let report = engine
                .apply(&scenarios::update_remove_delta(rel, id))
                .unwrap();
            large_rebuilt_per_delta = large_rebuilt_per_delta.max(report.components_rebuilt);
            std::hint::black_box(engine.cps().unwrap());
        });
        let per_delta_ns = apply.median_ns / 2.0;
        large_per_delta.push(per_delta_ns);
        // Grow a dead region worth draining: the measurement loop left
        // one tombstone per iteration; the churn loop adds a contiguous
        // block of them (each insert is retracted immediately).
        let churn = if args.fast {
            LARGE_COMPACT_CHURN_FAST
        } else {
            LARGE_COMPACT_CHURN
        };
        for _ in 0..churn {
            let report = engine.apply(&insert).unwrap();
            let (rel, id) = report.inserted[0];
            engine
                .apply(&scenarios::update_remove_delta(rel, id))
                .unwrap();
        }
        // Three sweeps over the same dirty specification: the core-layer
        // reference (`Specification::compact`, the monolithic oracle),
        // the budgeted incremental drain on a twin engine, and the
        // engine-level `compact()` that serving actually calls.  The
        // drain must stay under the per-step pause bound, reclaim
        // exactly what the reference does, and leave the specification
        // wire-byte-identical to it.
        let dirty = engine.spec().clone();
        let mut ref_spec = dirty.clone();
        let t = Instant::now();
        let ref_report = ref_spec.compact();
        let reference_ns = t.elapsed().as_nanos() as f64;
        let mut inc =
            CurrencyEngine::with_value_rels_owned(dirty, &[], &opts).expect("valid dirty spec");
        let budget = CompactBudget {
            max_pause: Duration::from_millis(COMPACT_MAX_PAUSE_MS),
            max_slots_per_step: COMPACT_STEP_SLOTS,
        };
        let mut steps = 0usize;
        let mut max_step_ns = 0f64;
        let mut drain_ns = 0f64;
        let mut drain_reclaimed = 0usize;
        loop {
            let t = Instant::now();
            let step = inc.compact_step(&budget).unwrap();
            let dt = t.elapsed().as_nanos() as f64;
            steps += 1;
            max_step_ns = max_step_ns.max(dt);
            drain_ns += dt;
            drain_reclaimed += step.reclaimed;
            if step.done {
                break;
            }
        }
        let byte_identical = wire::encode_spec(inc.spec()) == wire::encode_spec(&ref_spec);
        let parity = drain_reclaimed == ref_report.reclaimed;
        drop(inc);
        compact_scales.push(CompactScale {
            entities,
            churn,
            steps,
            reclaimed: drain_reclaimed,
            max_step_ns,
            drain_ns,
            reference_ns,
            byte_identical,
            parity,
        });
        // The engine-level sweep drains the same slice machinery, so it
        // is cheap at every scale and in every mode — price it always.
        let compact = Some(measure_once(|| {
            std::hint::black_box(engine.compact().unwrap().reclaimed);
        }));
        let reclaimed = engine.stats().slots_reclaimed;
        if compact.is_some() {
            assert!(engine.cps().unwrap(), "consistent after compaction");
        }
        let _ = write!(
            json,
            "    {{\"entities\": {entities}, \"mappings\": {mappings}, \
             \"components\": {components}, \"per_delta_ns\": {per_delta_ns:.0}, \
             \"apply_pair\": "
        );
        push_measurement(&mut json, &apply);
        match &compact {
            Some(c) => {
                let per_reclaimed = c.median_ns / reclaimed.max(1) as f64;
                let _ = write!(
                    json,
                    ", \"compact_reclaimed\": {reclaimed}, \"compact_ns\": {:.0}, \
                     \"compact_ns_per_reclaimed\": {per_reclaimed:.0}}}",
                    c.median_ns
                );
            }
            None => {
                json.push_str(
                    ", \"compact_reclaimed\": null, \"compact_ns\": null, \
                     \"compact_ns_per_reclaimed\": null}",
                );
            }
        }
        if ix == 0 {
            json.push(',');
        }
        json.push('\n');
    }
    json.push_str("  ],\n");
    let large_ratio = large_per_delta[1] / large_per_delta[0];

    // ------------------------------------------------------------------
    // Compaction section: the budgeted incremental drain vs the
    // monolithic reference at both large scales.  Guarded by --check:
    // every step under the pause bound, reclaimed parity, byte-identical
    // final specification, and per-reclaimed drain cost flat across the
    // 4× spec-size jump.
    // ------------------------------------------------------------------
    json.push_str("  \"compaction\": {\"scales\": [\n");
    for (ix, cs) in compact_scales.iter().enumerate() {
        let per_reclaimed = cs.drain_ns / cs.reclaimed.max(1) as f64;
        let _ = write!(
            json,
            "    {{\"entities\": {}, \"churn\": {}, \"steps\": {}, \"reclaimed\": {}, \
             \"max_step_ns\": {:.0}, \"drain_ns\": {:.0}, \
             \"drain_ns_per_reclaimed\": {per_reclaimed:.0}, \"reference_ns\": {:.0}, \
             \"byte_identical\": {}, \"reclaimed_parity\": {}}}",
            cs.entities,
            cs.churn,
            cs.steps,
            cs.reclaimed,
            cs.max_step_ns,
            cs.drain_ns,
            cs.reference_ns,
            cs.byte_identical,
            cs.parity
        );
        json.push_str(if ix == 0 { ",\n" } else { "\n" });
    }
    let compact_max_step_ns = compact_scales
        .iter()
        .map(|c| c.max_step_ns)
        .fold(0f64, f64::max);
    let compact_step_flat_ratio = {
        let per = |c: &CompactScale| c.drain_ns / c.reclaimed.max(1) as f64;
        per(&compact_scales[1]) / per(&compact_scales[0])
    };
    let compact_identical = compact_scales.iter().all(|c| c.byte_identical);
    let compact_parity = compact_scales.iter().all(|c| c.parity);
    let _ = writeln!(
        json,
        "  ], \"budget_slots\": {COMPACT_STEP_SLOTS}, \
         \"budget_pause_ms\": {COMPACT_MAX_PAUSE_MS}, \
         \"max_step_ns\": {compact_max_step_ns:.0}, \
         \"step_flat_ratio\": {compact_step_flat_ratio:.2}}},"
    );

    // ------------------------------------------------------------------
    // Durability workload (currency-store): log-append overhead per
    // delta vs the in-memory apply path, then recovery of a logged
    // history (snapshot + suffix replay) vs re-applying every delta from
    // scratch.  fsync is off so the section measures the durability
    // *machinery* (framing, checksumming, buffered writes), not the
    // runner's disk.
    // ------------------------------------------------------------------
    let durability_deltas = if args.fast {
        DURABILITY_DELTAS_FAST
    } else {
        DURABILITY_DELTAS
    };
    eprintln!("durability: entities = {UPDATE_ENTITIES}, history = {durability_deltas} deltas");
    let bench_dir =
        std::env::temp_dir().join(format!("currency-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&bench_dir);
    let store_opts = StoreOptions {
        sync_data: false,
        snapshot_rotate_bytes: u64::MAX, // rotation is driven explicitly below
        ..StoreOptions::default()
    };
    let durable_spec = scenarios::amortized_spec(UPDATE_ENTITIES);
    let opts = Options::default();
    // (a) Per-delta overhead: the same insert+retract+CPS pair loop as
    // the update section, through a DurableEngine and through a plain
    // CurrencyEngine on identical specs.
    // The two paths race in paired, order-alternating rounds (one
    // insert+CPS+retract+CPS pair each per round): measuring them as two
    // back-to-back series let environment drift land entirely on one
    // side, inflating the reported overhead to 1.38× of a ~1.06× path.
    // The per-round ratio cancels the shared drift; its median is the
    // overhead.  (Bisect note: the once-suspected per-append culprits
    // are innocent — delta validation is ~80 ns and the Vfs-seam append
    // is one buffered `write` — the creep was the measurement.)
    let mut durable = DurableEngine::create(
        &bench_dir.join("overhead"),
        durable_spec.clone(),
        &opts,
        store_opts,
    )
    .expect("fresh store");
    durable.cps().unwrap();
    let mut memory = CurrencyEngine::new_owned(durable_spec.clone(), &opts).unwrap();
    memory.cps().unwrap();
    let insert = scenarios::update_insert_delta(&durable_spec);
    let pair_rounds = (samples * 8).max(64);
    let (durable_apply, memory_apply, durable_over_apply) = measure_paired(
        pair_rounds,
        8,
        || {
            let report = durable.apply(&insert).unwrap();
            std::hint::black_box(durable.cps().unwrap());
            let (rel, id) = report.inserted[0];
            let report = durable
                .apply(&scenarios::update_remove_delta(rel, id))
                .unwrap();
            std::hint::black_box(durable.cps().unwrap());
            std::hint::black_box(report.cells_touched);
        },
        || {
            let report = memory.apply(&insert).unwrap();
            std::hint::black_box(memory.cps().unwrap());
            let (rel, id) = report.inserted[0];
            let report = memory
                .apply(&scenarios::update_remove_delta(rel, id))
                .unwrap();
            std::hint::black_box(memory.cps().unwrap());
            std::hint::black_box(report.cells_touched);
        },
    );
    drop(durable);
    drop(memory);
    let durable_per_delta = durable_apply.median_ns / 2.0;
    let memory_per_delta = memory_apply.median_ns / 2.0;
    // (b) Recovery: build a recorded history, snapshot at 80%, and race
    // `open` (snapshot + suffix replay) against a from-scratch re-apply
    // of all recorded deltas.
    let history_dir = bench_dir.join("history");
    let mut durable = DurableEngine::create(&history_dir, durable_spec.clone(), &opts, store_opts)
        .expect("fresh store");
    let mut history: Vec<SpecDelta> = Vec::with_capacity(durability_deltas);
    let snapshot_point = (durability_deltas as f64 * DURABILITY_SNAPSHOT_FRACTION) as usize;
    while history.len() < durability_deltas {
        let report = durable.apply(&insert).unwrap();
        history.push(insert.clone());
        if history.len() == snapshot_point {
            durable.snapshot_now().unwrap();
        }
        if history.len() == durability_deltas {
            break;
        }
        let (rel, id) = report.inserted[0];
        let retract = scenarios::update_remove_delta(rel, id);
        durable.apply(&retract).unwrap();
        history.push(retract);
        if history.len() == snapshot_point {
            durable.snapshot_now().unwrap();
        }
    }
    durable.flush().unwrap();
    let expected_suffix = durability_deltas - snapshot_point;
    drop(durable);
    let mut replayed: usize = 0;
    let open = measure(samples, warmup, window, || {
        let recovered = DurableEngine::open(&history_dir, &opts, store_opts).expect("clean store");
        replayed = recovered.recovery().deltas_replayed;
        std::hint::black_box(recovered.cps().unwrap());
    });
    let full_reapply = measure_once(|| {
        let mut fresh = CurrencyEngine::new_owned(durable_spec.clone(), &opts).unwrap();
        for delta in &history {
            fresh.apply(delta).unwrap();
        }
        std::hint::black_box(fresh.cps().unwrap());
    });
    let recovery_speedup = full_reapply.median_ns / open.median_ns;
    let replay_deltas_per_s = replayed as f64 / (open.median_ns / 1e9);
    let _ = std::fs::remove_dir_all(&bench_dir);
    let _ = write!(
        json,
        "  \"durability\": {{\"entities\": {UPDATE_ENTITIES}, \"deltas\": {durability_deltas}, \
         \"durable_per_delta_ns\": {durable_per_delta:.0}, \
         \"memory_per_delta_ns\": {memory_per_delta:.0}, \
         \"durable_over_apply\": {durable_over_apply:.2}, \"durable_pair\": "
    );
    push_measurement(&mut json, &durable_apply);
    json.push_str(", \"memory_pair\": ");
    push_measurement(&mut json, &memory_apply);
    json.push_str(", \"open\": ");
    push_measurement(&mut json, &open);
    let _ = writeln!(
        json,
        ", \"replayed\": {replayed}, \"expected_suffix\": {expected_suffix}, \
         \"replay_deltas_per_s\": {replay_deltas_per_s:.0}, \
         \"full_reapply_ns\": {:.0}, \"recovery_speedup\": {recovery_speedup:.1}}},",
        full_reapply.median_ns
    );

    // ------------------------------------------------------------------
    // Sharded scale-out workload (ShardedEngine / ShardedStore): (a)
    // per-delta apply + scatter-CPS flatness from the 10k-entity
    // baseline to the 100k-entity point on an 8-way engine; (b) parallel
    // vs sequential vs trusted-replay recovery of an 8-shard durable
    // store; (c) the 10k-seed CPS differential sweep against the
    // unsharded engine (deterministic: zero disagreements).
    // ------------------------------------------------------------------
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let sharded_base = if args.fast {
        SHARDED_BASE_ENTITIES_FAST
    } else {
        SHARDED_BASE_ENTITIES
    };
    let mut sharded_per_delta: Vec<f64> = Vec::new();
    let _ = writeln!(
        json,
        "  \"sharded\": {{\"shards\": {SHARDED_SHARDS}, \"apply\": ["
    );
    for (ix, &scale) in [1usize, SHARDED_SCALE].iter().enumerate() {
        let entities = sharded_base * scale;
        eprintln!("sharded: entities = {entities} ({SHARDED_SHARDS}-way build)");
        let spec = scenarios::sharded_spec(entities);
        let opts = Options::default();
        let mut sharded = ShardedEngine::new(&spec, SHARDED_SHARDS, &opts).expect("clean split");
        assert!(
            sharded.cps().expect("in budget"),
            "consistent by construction"
        );
        let insert = scenarios::large_insert_delta();
        // Entity 0's readings live in exactly one shard; the routed
        // apply must land there and nowhere else.
        let owner = sharded.plan().shard_of(Eid(0));
        let report = sharded.apply(&insert).expect("admissible");
        assert_eq!(
            report.shard,
            Some(owner),
            "entity delta routed to its owner"
        );
        let (rel, id) = report.inserted[0];
        sharded
            .apply(&scenarios::update_remove_delta(rel, id))
            .expect("admissible");
        let apply = measure(samples, warmup, window, || {
            let report = sharded.apply(&insert).unwrap();
            std::hint::black_box(sharded.cps().unwrap());
            let (rel, id) = report.inserted[0];
            sharded
                .apply(&scenarios::update_remove_delta(rel, id))
                .unwrap();
            std::hint::black_box(sharded.cps().unwrap());
        });
        let per_delta_ns = apply.median_ns / 2.0;
        sharded_per_delta.push(per_delta_ns);
        // Warm scatter-gather CPS: every shard verdict is cached, so
        // this prices the all-shards conjunction itself.
        let scatter = measure(samples, warmup, window, || {
            std::hint::black_box(sharded.cps().unwrap());
        });
        let components = sharded.stats().total.components;
        let _ = write!(
            json,
            "    {{\"entities\": {entities}, \"components\": {components}, \
             \"per_delta_ns\": {per_delta_ns:.0}, \"apply_pair\": "
        );
        push_measurement(&mut json, &apply);
        json.push_str(", \"scatter_cps\": ");
        push_measurement(&mut json, &scatter);
        json.push('}');
        if ix == 0 {
            json.push(',');
        }
        json.push('\n');
    }
    let sharded_ratio = sharded_per_delta[1] / sharded_per_delta[0];
    let _ = write!(json, "  ], \"flat_ratio\": {sharded_ratio:.2},\n  ");
    // (b) Recovery race: a logged history of single-shard inserts spread
    // round-robin over the entities, then the three open paths.  fsync
    // and rotation are off, so every logged delta replays and the race
    // measures per-shard engine rebuild + replay, not the disk.
    let sharded_rec_entities = if args.fast {
        SHARDED_RECOVERY_ENTITIES_FAST
    } else {
        SHARDED_RECOVERY_ENTITIES
    };
    let sharded_rec_deltas = if args.fast {
        SHARDED_RECOVERY_DELTAS_FAST
    } else {
        SHARDED_RECOVERY_DELTAS
    };
    eprintln!(
        "sharded: recovery, entities = {sharded_rec_entities}, \
         history = {sharded_rec_deltas} deltas"
    );
    let sharded_dir =
        std::env::temp_dir().join(format!("currency-bench-sharded-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&sharded_dir);
    let sharded_rec_spec = scenarios::sharded_spec(sharded_rec_entities);
    let opts = Options::default();
    let sharded_store_opts = StoreOptions {
        sync_data: false,
        snapshot_rotate_bytes: u64::MAX,
        ..StoreOptions::default()
    };
    let mut sharded_store = ShardedStore::create(
        &sharded_dir,
        &sharded_rec_spec,
        SHARDED_SHARDS,
        &opts,
        sharded_store_opts,
    )
    .expect("fresh store");
    for i in 0..sharded_rec_deltas {
        let mut delta = SpecDelta::new();
        delta.insert_tuple(
            scenarios::T,
            Tuple::new(
                Eid((i % sharded_rec_entities) as u64),
                vec![Value::int(1_000_000 + i as i64)],
            ),
        );
        sharded_store.apply(&delta).expect("admissible");
    }
    sharded_store.flush().expect("clean log");
    drop(sharded_store); // crash
    let mut sharded_replayed: usize = 0;
    let sharded_par_open = measure(samples, warmup, window, || {
        let s = ShardedStore::open(&sharded_dir, &opts, sharded_store_opts).expect("clean store");
        sharded_replayed = s.recoveries().iter().map(|r| r.deltas_replayed).sum();
        std::hint::black_box(s.shards());
    });
    // Validated-sequential vs trusted-replay opens race in paired,
    // order-alternating rounds: measuring them as two back-to-back
    // series let environment drift (allocator/page-cache state warming
    // across the section) land entirely on whichever open ran last,
    // once even pushing the reported trusted "speedup" below 1× for a
    // strictly-less-work code path.  The per-round ratio cancels the
    // shared drift; its median is the speedup.
    let (sharded_seq_open, sharded_trusted_open, sharded_trusted_speedup) = measure_paired(
        samples,
        1,
        || {
            let s = ShardedStore::open_sequential(&sharded_dir, &opts, sharded_store_opts)
                .expect("clean store");
            std::hint::black_box(s.shards());
        },
        || {
            let s = ShardedStore::open_sequential(
                &sharded_dir,
                &opts,
                StoreOptions {
                    trusted_replay: true,
                    ..sharded_store_opts
                },
            )
            .expect("clean store");
            std::hint::black_box(s.shards());
        },
    );
    let _ = std::fs::remove_dir_all(&sharded_dir);
    let sharded_recovery_speedup = sharded_seq_open.median_ns / sharded_par_open.median_ns;
    let _ = write!(
        json,
        "\"recovery\": {{\"entities\": {sharded_rec_entities}, \
         \"deltas\": {sharded_rec_deltas}, \"replayed\": {sharded_replayed}, \
         \"parallel_open\": "
    );
    push_measurement(&mut json, &sharded_par_open);
    json.push_str(", \"sequential_open\": ");
    push_measurement(&mut json, &sharded_seq_open);
    json.push_str(", \"trusted_open\": ");
    push_measurement(&mut json, &sharded_trusted_open);
    let _ = write!(
        json,
        ", \"parallel_speedup\": {sharded_recovery_speedup:.2}, \
         \"trusted_speedup\": {sharded_trusted_speedup:.2}}},\n  "
    );
    // (c) Differential sweep: scatter-gather CPS must agree with the
    // unsharded engine on every seed of the property suites' space.
    let sharded_diff_seeds = if args.fast {
        SHARDED_DIFF_SEEDS_FAST
    } else {
        SHARDED_DIFF_SEEDS
    };
    eprintln!("sharded: differential sweep, {sharded_diff_seeds} seeds");
    let mut sharded_diff_disagreements: u64 = 0;
    let mut sharded_diff_cps_true: u64 = 0;
    for seed in 0..sharded_diff_seeds {
        let spec = random_spec(&RandomSpecConfig {
            entities: 3,
            tuples_per_entity: (1, 2),
            attrs: 1,
            value_pool: 2,
            order_density: 0.25,
            monotone_constraints: (seed % 2) as usize,
            correlated_constraints: 0,
            with_copy: true,
            seed,
        });
        let unsharded = CurrencyEngine::new(&spec, &opts)
            .expect("valid spec")
            .cps()
            .expect("in budget");
        let sharded = ShardedEngine::new(&spec, SHARDED_DIFF_SHARDS, &opts)
            .expect("clean split")
            .cps()
            .expect("in budget");
        if unsharded != sharded {
            sharded_diff_disagreements += 1;
        }
        if unsharded {
            sharded_diff_cps_true += 1;
        }
    }
    let _ = writeln!(
        json,
        "\"differential\": {{\"seeds\": {sharded_diff_seeds}, \
         \"shards\": {SHARDED_DIFF_SHARDS}, \
         \"disagreements\": {sharded_diff_disagreements}, \
         \"cps_true\": {sharded_diff_cps_true}}}}},"
    );

    // ------------------------------------------------------------------
    // Serve workload (currency-serve): sustained multi-reader qps over a
    // concurrent delta stream, then the deterministic repeated-query
    // cache workload.  The qps sweep shares one spec and one request
    // pool across thread counts so the ratios are apples-to-apples; the
    // cache run has no writer, so its hit rate is exact arithmetic.
    // ------------------------------------------------------------------
    let serve_window = if args.fast {
        Duration::from_millis(150)
    } else {
        Duration::from_millis(600)
    };
    let serve_spec = scenarios::amortized_spec(UPDATE_ENTITIES);
    let serve_pool = scenarios::serve_request_pool(&serve_spec);
    let mut serve_qps: Vec<(usize, f64)> = Vec::new();
    let _ = writeln!(
        json,
        "  \"serve\": {{\"entities\": {UPDATE_ENTITIES}, \"cores\": {cores}, \
         \"pool\": {}, \"window_ms\": {}, \"readers\": [",
        serve_pool.len(),
        serve_window.as_millis()
    );
    for (ix, &threads) in SERVE_READER_SWEEP.iter().enumerate() {
        eprintln!("serve: readers = {threads}");
        let (qps, stats) = serve_sustained_qps(&serve_spec, &serve_pool, threads, serve_window);
        serve_qps.push((threads, qps));
        let _ = write!(
            json,
            "    {{\"threads\": {threads}, \"qps\": {qps:.0}, \"queries\": {}, \
             \"hit_rate\": {:.3}, \"epochs\": {}, \"mean_latency_ns\": {}, \
             \"max_latency_ns\": {}}}",
            stats.queries,
            stats.hit_rate(),
            stats.epoch,
            stats.mean_latency_ns(),
            stats.latency_ns_max
        );
        if ix + 1 < SERVE_READER_SWEEP.len() {
            json.push(',');
        }
        json.push('\n');
    }
    let qps_at = |threads: usize| {
        serve_qps
            .iter()
            .find(|(t, _)| *t == threads)
            .expect("sweep includes it")
            .1
    };
    let serve_scaling = qps_at(8) / qps_at(1);
    // Deterministic cache workload: one published epoch, one handle,
    // SERVE_CACHE_ROUNDS passes over the pool — only the first pass can
    // miss.
    let cache_serve = CurrencyServe::new(
        serve_spec.clone(),
        &Options::default(),
        &ServeOptions::default(),
    )
    .expect("valid spec");
    let mut cache_handle = cache_serve.handle();
    for _ in 0..SERVE_CACHE_ROUNDS {
        for req in &serve_pool {
            std::hint::black_box(cache_handle.query(req).expect("in budget"));
        }
    }
    let cache_stats = cache_serve.stats();
    let serve_cache_hit_rate = cache_stats.hit_rate();
    let _ = writeln!(
        json,
        "  ], \"scaling_8v1\": {serve_scaling:.2}, \
         \"cache\": {{\"rounds\": {SERVE_CACHE_ROUNDS}, \"queries\": {}, \
         \"hits\": {}, \"misses\": {}, \"hit_rate\": {serve_cache_hit_rate:.3}}}}},",
        cache_stats.queries, cache_stats.cache_hits, cache_stats.cache_misses
    );

    // ------------------------------------------------------------------
    // Robustness workload: bounded-work serving.  (a) A COP solve under
    // a starvation budget (1 conflict, 1 propagation) on the 128-entity
    // spec must come back Interrupted in far under a millisecond — the
    // deterministic proof that budgets reach the solver and that
    // interruption costs the caller nothing.  (b) A barrier-released
    // burst of 64 threads against a 2-slot in-flight cap (cache off, so
    // every admitted query really solves) must shed at least one query
    // with a clean `Overloaded` — and no thread may panic.
    // ------------------------------------------------------------------
    eprintln!("robustness: interrupted COP + overload burst");
    let robust_spec = scenarios::amortized_spec(UPDATE_ENTITIES);
    let robust_queries = scenarios::amortized_cop_queries(&robust_spec);
    let snap = SnapshotEngine::new(robust_spec.clone(), &Options::default()).expect("valid spec");
    let mut bounded = snap.reader();
    bounded.set_solve_limits(Some(SolveLimits {
        max_conflicts: Some(1),
        max_props: Some(1),
    }));
    let mut interrupted_min_ns = f64::INFINITY;
    let mut interrupted_all = true;
    for _ in 0..INTERRUPTED_COP_TRIES {
        let t = Instant::now();
        let verdict = bounded.cop(&robust_queries[0]);
        let ns = t.elapsed().as_nanos() as f64;
        interrupted_min_ns = interrupted_min_ns.min(ns);
        interrupted_all &= matches!(verdict, Err(ReasonError::Interrupted { .. }));
    }
    let interrupted_ok = interrupted_all && interrupted_min_ns <= INTERRUPTED_COP_WALL_NS;

    let burst_serve = Arc::new(
        CurrencyServe::new(
            robust_spec.clone(),
            &Options::default(),
            &ServeOptions {
                cache_capacity: 0,
                max_inflight: BURST_INFLIGHT_CAP,
                ..ServeOptions::default()
            },
        )
        .expect("valid spec"),
    );
    let barrier = Arc::new(Barrier::new(BURST_THREADS));
    let burst: Vec<(u64, u64, u64)> = (0..BURST_THREADS)
        .map(|i| {
            let serve = burst_serve.clone();
            let barrier = barrier.clone();
            let pool = serve_pool.clone();
            std::thread::spawn(move || {
                let mut handle = serve.handle();
                let (mut answered, mut shed, mut unexpected) = (0u64, 0u64, 0u64);
                barrier.wait();
                for k in 0..BURST_QUERIES_PER_THREAD {
                    match handle.query(&pool[(i + k) % pool.len()]) {
                        Ok(_) => answered += 1,
                        Err(ServeError::Overloaded) => shed += 1,
                        Err(_) => unexpected += 1,
                    }
                }
                (answered, shed, unexpected)
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.join().expect("burst thread must not panic"))
        .collect();
    let burst_answered: u64 = burst.iter().map(|r| r.0).sum();
    let burst_shed: u64 = burst.iter().map(|r| r.1).sum();
    let burst_unexpected: u64 = burst.iter().map(|r| r.2).sum();
    let burst_stats = burst_serve.stats();
    // Overload needs genuine overlap: on one core the 64 threads
    // time-slice and each short query can finish before two others are
    // in flight, so zero shed is the honest outcome there.  The no-panic
    // and no-unexpected-error bars hold everywhere.
    let shed_enforced = cores >= 2;
    let shed_ok =
        burst_unexpected == 0 && burst_answered >= 1 && (burst_shed >= 1 || !shed_enforced);
    let _ = writeln!(
        json,
        "  \"robustness\": {{\"interrupted_cop_min_ns\": {interrupted_min_ns:.0}, \
         \"interrupted_all\": {interrupted_all}, \
         \"burst_threads\": {BURST_THREADS}, \"burst_inflight_cap\": {BURST_INFLIGHT_CAP}, \
         \"burst_answered\": {burst_answered}, \"burst_shed\": {burst_shed}, \
         \"burst_unexpected\": {burst_unexpected}, \"stats_shed\": {}}},",
        burst_stats.shed
    );

    // ------------------------------------------------------------------
    // Observability overhead (currency-obs): the same per-delta
    // apply+CPS loop on identical engines, raced pairwise with the
    // instrumentation toggled.  Two ratios: the always-on metrics with
    // the default no-op recorder vs observability disabled (the price
    // every user pays), and metrics plus a live RingRecorder draining
    // span records vs disabled (the price of tracing).  Paired,
    // order-alternated rounds for the same reason as the durable
    // section: the honest ratios sit within a few percent of 1.0, where
    // back-to-back series drift would swamp the signal.
    // ------------------------------------------------------------------
    // The guards here are the tightest in the file (1.02×), so this
    // section buys extra rounds: the loop is ~100 µs, and a 4× longer
    // paired series keeps the median ratio stable against scheduler
    // noise that a 72-round series still lets through.
    let obs_rounds = (samples * 32).max(256);
    eprintln!("obs: entities = {UPDATE_ENTITIES}, paired rounds = {obs_rounds}");
    let obs_spec = scenarios::amortized_spec(UPDATE_ENTITIES);
    let obs_insert = scenarios::update_insert_delta(&obs_spec);
    let obs_loop = |engine: &mut CurrencyEngine| {
        let report = engine.apply(&obs_insert).unwrap();
        std::hint::black_box(engine.cps().unwrap());
        let (rel, id) = report.inserted[0];
        let report = engine
            .apply(&scenarios::update_remove_delta(rel, id))
            .unwrap();
        std::hint::black_box(engine.cps().unwrap());
        std::hint::black_box(report.cells_touched);
    };
    let obs_opts = Options::default();
    let obs_engine = |enabled: bool, traced: bool| {
        let mut engine = CurrencyEngine::new_owned(obs_spec.clone(), &obs_opts).unwrap();
        engine.obs_mut().set_enabled(enabled);
        if traced {
            engine.obs_mut().set_recorder(RingRecorder::new(65_536));
        }
        engine.cps().unwrap();
        engine
    };
    let mut noop_engine = obs_engine(true, false);
    let mut disabled_a = obs_engine(false, false);
    let (obs_noop_m, obs_disabled_m, obs_noop_over) = measure_paired(
        obs_rounds,
        8,
        || obs_loop(&mut noop_engine),
        || obs_loop(&mut disabled_a),
    );
    let mut traced_engine = obs_engine(true, true);
    let mut disabled_b = obs_engine(false, false);
    let (obs_traced_m, _, obs_traced_over) = measure_paired(
        obs_rounds,
        8,
        || obs_loop(&mut traced_engine),
        || obs_loop(&mut disabled_b),
    );
    eprintln!(
        "obs: metrics+noop {obs_noop_over:.3}x disabled, \
         metrics+ring-traced {obs_traced_over:.3}x disabled"
    );
    let _ = write!(
        json,
        "  \"obs\": {{\"noop_over_disabled\": {obs_noop_over:.3}, \
         \"traced_over_disabled\": {obs_traced_over:.3}, \"noop\": "
    );
    push_measurement(&mut json, &obs_noop_m);
    json.push_str(", \"disabled\": ");
    push_measurement(&mut json, &obs_disabled_m);
    json.push_str(", \"traced\": ");
    push_measurement(&mut json, &obs_traced_m);
    json.push_str("},\n");

    // ------------------------------------------------------------------
    // Lazy vs eager transitivity scaling on one large entity group.
    // ------------------------------------------------------------------
    let group_sweep: &[usize] = if args.fast {
        &[16, 64]
    } else {
        &[16, 32, 64, 128]
    };
    let mut lazy_64_median: Option<f64> = None;
    let mut lazy_64_clauses: Option<usize> = None;
    json.push_str("  \"scaling\": [\n");
    for (ix, &n) in group_sweep.iter().enumerate() {
        eprintln!("scaling: group size = {n}");
        let spec = scenarios::big_group_spec(n);
        // Capture the per-run solver counters from the measured workload
        // itself (every iteration builds an identical engine, so the last
        // iteration's stats are the stats).
        let mut lazy_stats = currency_reason::EngineStats::default();
        let lazy = measure(samples, warmup, window, || {
            lazy_stats = scenarios::big_group_workload(&spec, TransitivityMode::Lazy).stats();
            std::hint::black_box(&lazy_stats);
        });
        if n == 64 {
            lazy_64_median = Some(lazy.median_ns);
            lazy_64_clauses = Some(lazy_stats.clauses);
        }
        // Eager grounding is cubic; at n = 128 (≈ 2M clauses) measure one
        // shot rather than filling a sampling window, and skip it entirely
        // in fast mode.
        let eager = if args.fast {
            None
        } else if n > 64 {
            Some(measure_once(|| {
                std::hint::black_box(
                    scenarios::big_group_workload(&spec, TransitivityMode::Eager).stats(),
                );
            }))
        } else {
            Some(measure(samples, warmup, window, || {
                std::hint::black_box(
                    scenarios::big_group_workload(&spec, TransitivityMode::Eager).stats(),
                );
            }))
        };
        let _ = write!(json, "    {{\"group_size\": {n}, \"lazy\": ");
        push_measurement(&mut json, &lazy);
        let _ = write!(
            json,
            ", \"lazy_vars\": {}, \"lazy_clauses\": {}, \"lazy_lemmas\": {}",
            lazy_stats.vars, lazy_stats.clauses, lazy_stats.sat.lemmas_added
        );
        match &eager {
            Some(e) => {
                json.push_str(", \"eager\": ");
                push_measurement(&mut json, e);
                let _ = write!(
                    json,
                    ", \"eager_over_lazy\": {:.1}",
                    e.median_ns / lazy.median_ns
                );
            }
            None => json.push_str(", \"eager\": null"),
        }
        json.push('}');
        if ix + 1 < group_sweep.len() {
            json.push(',');
        }
        json.push('\n');
    }
    json.push_str("  ],\n");

    // ------------------------------------------------------------------
    // Threshold verdicts (informational unless --check).
    // ------------------------------------------------------------------
    let lazy_64 = lazy_64_median.expect("sweep includes n = 64");
    let clauses_64 = lazy_64_clauses.expect("sweep includes n = 64");
    let time_ok = lazy_64 <= LAZY_64_THRESHOLD_NS;
    let clauses_ok = clauses_64 <= LAZY_64_CLAUSE_LIMIT;
    let update_ok = rebuilt_per_delta <= UPDATE_REBUILT_LIMIT;
    let large_flat_ok = large_ratio <= LARGE_FLAT_FACTOR;
    let large_rebuilt_ok = large_rebuilt_per_delta <= UPDATE_REBUILT_LIMIT;
    let compact_pause_ok = compact_max_step_ns <= (COMPACT_MAX_PAUSE_MS * 1_000_000) as f64;
    let compact_flat_ok = compact_step_flat_ratio <= COMPACT_FLAT_FACTOR;
    let compact_exact_ok = compact_identical && compact_parity;
    let durable_overhead_ok = durable_over_apply <= DURABLE_OVERHEAD_FACTOR;
    let obs_noop_ok = obs_noop_over <= OBS_NOOP_FACTOR;
    let obs_traced_ok = obs_traced_over <= OBS_TRACED_FACTOR;
    let replay_count_ok = replayed == expected_suffix;
    let recovery_ok =
        recovery_speedup >= RECOVERY_SPEEDUP_MIN && open.median_ns <= RECOVERY_WALL_NS;
    // The full scaling bar applies only where the hardware can show it;
    // the collapse floor applies everywhere.
    let serve_scaling_enforced = cores >= SERVE_SCALING_MIN_CORES;
    let serve_scaling_ok = if serve_scaling_enforced {
        serve_scaling >= SERVE_SCALING_MIN
    } else {
        serve_scaling >= SERVE_COLLAPSE_FLOOR
    };
    let serve_cache_ok = serve_cache_hit_rate >= SERVE_CACHE_HIT_MIN;
    let sharded_flat_ok = sharded_ratio <= SHARDED_FLAT_FACTOR;
    // Like the serve scaling bar: the parallelism floor applies only
    // where the hardware can show it, the collapse floor everywhere.
    let sharded_recovery_enforced = cores >= SHARDED_RECOVERY_MIN_CORES;
    let sharded_recovery_ok = if sharded_recovery_enforced {
        sharded_recovery_speedup >= SHARDED_RECOVERY_SPEEDUP_MIN
    } else {
        sharded_recovery_speedup >= SHARDED_RECOVERY_COLLAPSE_FLOOR
    };
    let sharded_replay_ok = sharded_replayed == sharded_rec_deltas;
    let sharded_trusted_ok = sharded_trusted_speedup >= SHARDED_TRUSTED_SPEEDUP_MIN;
    let sharded_diff_ok = sharded_diff_disagreements == 0;
    let pass = time_ok
        && clauses_ok
        && update_ok
        && large_flat_ok
        && large_rebuilt_ok
        && compact_pause_ok
        && compact_flat_ok
        && compact_exact_ok
        && durable_overhead_ok
        && obs_noop_ok
        && obs_traced_ok
        && replay_count_ok
        && recovery_ok
        && serve_scaling_ok
        && serve_cache_ok
        && interrupted_ok
        && shed_ok
        && sharded_flat_ok
        && sharded_recovery_ok
        && sharded_replay_ok
        && sharded_trusted_ok
        && sharded_diff_ok;
    let _ = write!(
        json,
        "  \"check\": {{\"lazy_64_median_ns\": {lazy_64:.0}, \
         \"lazy_64_threshold_ns\": {LAZY_64_THRESHOLD_NS:.0}, \
         \"lazy_64_clauses\": {clauses_64}, \
         \"lazy_64_clause_limit\": {LAZY_64_CLAUSE_LIMIT}, \
         \"update_rebuilt_per_delta\": {rebuilt_per_delta}, \
         \"update_rebuilt_limit\": {UPDATE_REBUILT_LIMIT}, \
         \"large_ratio_4x_over_1x\": {large_ratio:.2}, \
         \"large_flat_factor\": {LARGE_FLAT_FACTOR:.1}, \
         \"large_rebuilt_per_delta\": {large_rebuilt_per_delta}, \
         \"compact_max_step_ns\": {compact_max_step_ns:.0}, \
         \"compact_max_pause_ms\": {COMPACT_MAX_PAUSE_MS}, \
         \"compact_step_flat_ratio\": {compact_step_flat_ratio:.2}, \
         \"compact_flat_factor\": {COMPACT_FLAT_FACTOR:.1}, \
         \"compact_byte_identical\": {compact_identical}, \
         \"compact_reclaimed_parity\": {compact_parity}, \
         \"durable_over_apply\": {durable_over_apply:.2}, \
         \"durable_overhead_factor\": {DURABLE_OVERHEAD_FACTOR:.1}, \
         \"obs_noop_over_disabled\": {obs_noop_over:.3}, \
         \"obs_noop_factor\": {OBS_NOOP_FACTOR:.2}, \
         \"obs_traced_over_disabled\": {obs_traced_over:.3}, \
         \"obs_traced_factor\": {OBS_TRACED_FACTOR:.2}, \
         \"recovery_replayed\": {replayed}, \
         \"recovery_expected_suffix\": {expected_suffix}, \
         \"recovery_speedup\": {recovery_speedup:.1}, \
         \"recovery_speedup_min\": {RECOVERY_SPEEDUP_MIN:.1}, \
         \"serve_scaling_8v1\": {serve_scaling:.2}, \
         \"serve_scaling_min\": {SERVE_SCALING_MIN:.1}, \
         \"serve_scaling_enforced\": {serve_scaling_enforced}, \
         \"serve_collapse_floor\": {SERVE_COLLAPSE_FLOOR:.1}, \
         \"serve_cache_hit_rate\": {serve_cache_hit_rate:.3}, \
         \"serve_cache_hit_min\": {SERVE_CACHE_HIT_MIN:.2}, \
         \"interrupted_cop_min_ns\": {interrupted_min_ns:.0}, \
         \"interrupted_cop_wall_ns\": {INTERRUPTED_COP_WALL_NS:.0}, \
         \"interrupted_ok\": {interrupted_ok}, \
         \"burst_shed\": {burst_shed}, \"shed_enforced\": {shed_enforced}, \
         \"shed_ok\": {shed_ok}, \
         \"sharded_flat_ratio\": {sharded_ratio:.2}, \
         \"sharded_flat_factor\": {SHARDED_FLAT_FACTOR:.1}, \
         \"sharded_recovery_speedup\": {sharded_recovery_speedup:.2}, \
         \"sharded_recovery_speedup_min\": {SHARDED_RECOVERY_SPEEDUP_MIN:.1}, \
         \"sharded_recovery_enforced\": {sharded_recovery_enforced}, \
         \"sharded_recovery_collapse_floor\": {SHARDED_RECOVERY_COLLAPSE_FLOOR:.2}, \
         \"sharded_trusted_speedup\": {sharded_trusted_speedup:.2}, \
         \"sharded_trusted_speedup_min\": {SHARDED_TRUSTED_SPEEDUP_MIN:.1}, \
         \"sharded_replayed\": {sharded_replayed}, \
         \"sharded_replay_expected\": {sharded_rec_deltas}, \
         \"sharded_diff_seeds\": {sharded_diff_seeds}, \
         \"sharded_diff_disagreements\": {sharded_diff_disagreements}, \
         \"pass\": {pass}}}\n}}\n"
    );

    std::fs::write(&args.out, &json).expect("write bench JSON");
    eprintln!("wrote {}", args.out);
    if args.check && !pass {
        if !clauses_ok {
            eprintln!(
                "REGRESSION: lazy 64-tuple-group engine stores {clauses_64} clauses \
                 (limit {LAZY_64_CLAUSE_LIMIT}) — accidental eager fallback?"
            );
        }
        if !time_ok {
            eprintln!(
                "REGRESSION: lazy 64-tuple-group median {:.2} ms exceeds threshold {:.0} ms",
                lazy_64 / 1e6,
                LAZY_64_THRESHOLD_NS / 1e6
            );
        }
        if !update_ok {
            eprintln!(
                "REGRESSION: a single-tuple delta recompiled {rebuilt_per_delta} components \
                 (limit {UPDATE_REBUILT_LIMIT}) — incremental partition maintenance leaks"
            );
        }
        if !large_flat_ok {
            eprintln!(
                "REGRESSION: large-spec per-delta apply grew {large_ratio:.2}× from 1× to 4× \
                 spec size (limit {LARGE_FLAT_FACTOR}×) — an O(spec) term crept back into \
                 the delta path"
            );
        }
        if !large_rebuilt_ok {
            eprintln!(
                "REGRESSION: a single-tuple delta on the large spec recompiled \
                 {large_rebuilt_per_delta} components (limit {UPDATE_REBUILT_LIMIT})"
            );
        }
        if !compact_pause_ok {
            eprintln!(
                "REGRESSION: a budgeted compaction step paused {:.1} ms at the large \
                 scale (bound {COMPACT_MAX_PAUSE_MS} ms) — the step is doing O(spec) \
                 work instead of O(scan + moved)",
                compact_max_step_ns / 1e6
            );
        }
        if !compact_flat_ok {
            eprintln!(
                "REGRESSION: the drain's per-reclaimed-slot cost grew \
                 {compact_step_flat_ratio:.2}× from 1× to 4× spec size (limit \
                 {COMPACT_FLAT_FACTOR}×) — an O(spec) term crept into the slice path"
            );
        }
        if !compact_exact_ok {
            eprintln!(
                "REGRESSION: the incremental drain diverged from the monolithic \
                 reference (byte_identical: {compact_identical}, reclaimed parity: \
                 {compact_parity}) — slice semantics drifted from \
                 Specification::compact"
            );
        }
        if !durable_overhead_ok {
            eprintln!(
                "REGRESSION: durable apply costs {durable_over_apply:.2}× the in-memory \
                 path (limit {DURABLE_OVERHEAD_FACTOR}×) — a per-delta fsync or snapshot \
                 write crept into the log-append path?"
            );
        }
        if !obs_noop_ok {
            eprintln!(
                "REGRESSION: always-on metrics cost {obs_noop_over:.3}× the uninstrumented \
                 apply path (limit {OBS_NOOP_FACTOR}×) — an allocation, lock, or extra clock \
                 read crept into a hot-path instrument?"
            );
        }
        if !obs_traced_ok {
            eprintln!(
                "REGRESSION: metrics plus a live RingRecorder cost {obs_traced_over:.3}× the \
                 uninstrumented apply path (limit {OBS_TRACED_FACTOR}×) — span recording is \
                 doing more than a ring push per boundary?"
            );
        }
        if !replay_count_ok {
            eprintln!(
                "REGRESSION: recovery replayed {replayed} deltas, the snapshot placement \
                 implies exactly {expected_suffix} — rotation or seq filtering is off"
            );
        }
        if !recovery_ok {
            eprintln!(
                "REGRESSION: recovery (snapshot + {replayed}-delta suffix) is only \
                 {recovery_speedup:.2}× faster than re-applying all {durability_deltas} \
                 deltas (floor {RECOVERY_SPEEDUP_MIN}×, wall cap {:.1} s)",
                RECOVERY_WALL_NS / 1e9
            );
        }
        if !serve_scaling_ok {
            if serve_scaling_enforced {
                eprintln!(
                    "REGRESSION: 8 reader threads sustain only {serve_scaling:.2}× the \
                     single-reader qps on {cores} cores (floor {SERVE_SCALING_MIN}×) — \
                     a shared lock crept into the snapshot read path?"
                );
            } else {
                eprintln!(
                    "REGRESSION: 8 reader threads collapsed to {serve_scaling:.2}× the \
                     single-reader qps (floor {SERVE_COLLAPSE_FLOOR}× even on {cores} \
                     core(s)) — readers are serializing on shared state"
                );
            }
        }
        if !serve_cache_ok {
            eprintln!(
                "REGRESSION: repeated-query cache hit rate {serve_cache_hit_rate:.3} is \
                 below {SERVE_CACHE_HIT_MIN} on a fixed snapshot — epoch keying or \
                 canonicalized request hashing is broken"
            );
        }
        if !interrupted_ok {
            eprintln!(
                "REGRESSION: starvation-budget COP on the {UPDATE_ENTITIES}-entity spec \
                 {} (best of {INTERRUPTED_COP_TRIES}: {:.1} µs, ceiling {:.1} µs) — \
                 budgets are not reaching the solver, or interruption is doing \
                 unbounded work first",
                if interrupted_all {
                    "was interrupted too slowly"
                } else {
                    "returned a verdict instead of Interrupted"
                },
                interrupted_min_ns / 1e3,
                INTERRUPTED_COP_WALL_NS / 1e3
            );
        }
        if !shed_ok {
            eprintln!(
                "REGRESSION: {BURST_THREADS}-thread burst against a \
                 {BURST_INFLIGHT_CAP}-slot in-flight cap answered {burst_answered}, \
                 shed {burst_shed}, errored {burst_unexpected} on {cores} core(s) — \
                 the cap must shed overflow with Overloaded and nothing else"
            );
        }
        if !sharded_flat_ok {
            eprintln!(
                "REGRESSION: sharded per-delta apply grew {sharded_ratio:.2}× from the \
                 {sharded_base}-entity baseline to {SHARDED_SCALE}× scale (limit \
                 {SHARDED_FLAT_FACTOR}×) — an O(spec) or O(shard) term crept into the \
                 routed apply or scatter-CPS path"
            );
        }
        if !sharded_recovery_ok {
            if sharded_recovery_enforced {
                eprintln!(
                    "REGRESSION: parallel {SHARDED_SHARDS}-shard recovery is only \
                     {sharded_recovery_speedup:.2}× the sequential open on {cores} cores \
                     (floor {SHARDED_RECOVERY_SPEEDUP_MIN}×) — shard recovery is \
                     serializing on shared state"
                );
            } else {
                eprintln!(
                    "REGRESSION: parallel {SHARDED_SHARDS}-shard recovery collapsed to \
                     {sharded_recovery_speedup:.2}× the sequential open (floor \
                     {SHARDED_RECOVERY_COLLAPSE_FLOOR}× even on {cores} core(s)) — a \
                     cross-shard lock or repeated work sank it"
                );
            }
        }
        if !sharded_replay_ok {
            eprintln!(
                "REGRESSION: sharded recovery replayed {sharded_replayed} deltas across \
                 shards, the log holds exactly {sharded_rec_deltas} — per-shard seq \
                 filtering or routing drifted"
            );
        }
        if !sharded_trusted_ok {
            eprintln!(
                "REGRESSION: trusted replay opened only {sharded_trusted_speedup:.2}× \
                 as fast as the validated sequential open in paired rounds (floor \
                 {SHARDED_TRUSTED_SPEEDUP_MIN}×) — validation skipping stopped \
                 skipping work"
            );
        }
        if !sharded_diff_ok {
            eprintln!(
                "REGRESSION: scatter-gather CPS disagreed with the unsharded engine on \
                 {sharded_diff_disagreements} of {sharded_diff_seeds} seeds — sharded \
                 semantics must be observationally identical"
            );
        }
        std::process::exit(1);
    }
}
