//! # currency-bench
//!
//! The benchmark harness regenerating the *shape* of the paper's
//! evaluation — Tables II and III (see `EXPERIMENTS.md` at the workspace
//! root for the experiment index and recorded results).
//!
//! The paper proves completeness results; their observable footprint is
//! scaling behaviour.  Each bench target sweeps an instance-size parameter
//! for one problem and engine pairing:
//!
//! | Bench target | Experiment | Series |
//! |---|---|---|
//! | `t2_cps` | T2-CPS | exact CPS on Betweenness gadgets (hard) vs `PO∞` fixpoint on constraint-free specs (PTIME) |
//! | `t2_cop` | T2-COP | exact COP on 3SAT gadgets vs `PO∞` containment |
//! | `t2_dcip` | T2-DCIP | exact DCIP on 3SAT gadgets vs sink test |
//! | `t3_ccqa` | T3-CCQA | exact CCQA on 3SAT gadgets (CQ) vs `poss(S)` SP algorithm |
//! | `t3_cpp` | T3-CPP | exact CPP on ∀∃3CNF gadgets vs PTIME SP check |
//! | `t3_ecp` | T3-ECP | O(1) decision + maximum-extension construction cost |
//! | `t3_bcp` | T3-BCP | exact bounded copying vs PTIME SP bounded copying |
//! | `fig1_quickstart` | F1-QS | Q1–Q4 certain-answer latency on the Fig. 1 database |
//! | `gadget_validation` | G-VAL | gadget construction + grounding + encoding cost |
//! | `ablation_solvers` | A-SAT | CDCL-backed exact CPS vs brute-force completion enumeration |

use criterion::Criterion;
use std::time::Duration;

pub mod measure;
pub mod scenarios;

/// Criterion configured for the sweep-style benches of this harness:
/// small sample counts (the solvers are deterministic; variance comes
/// from the allocator, not the algorithm) and bounded measurement time so
/// the full `cargo bench` run finishes in minutes.
pub fn quick_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
        .configure_from_args()
}
