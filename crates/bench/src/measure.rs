//! Programmatic wall-clock measurement for the machine-readable bench
//! binary (`bench_engine`).
//!
//! The criterion shim prints human-readable lines; this module returns
//! the numbers, so `bench_engine` can write `BENCH_engine.json` and the
//! CI smoke step can enforce thresholds.  The methodology matches the
//! shim: warm up, pick an iteration count that fills the per-sample
//! window, take `samples` samples, report the median.

use std::time::{Duration, Instant};

/// One measured series.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Median nanoseconds per iteration across samples.
    pub median_ns: f64,
    /// Fastest sample (ns per iteration).
    pub min_ns: f64,
    /// Mean nanoseconds per iteration across samples.
    pub mean_ns: f64,
    /// Number of samples taken.
    pub samples: usize,
    /// Iterations per sample.
    pub iters: u64,
}

/// Measure `routine`, amortizing cheap routines over enough iterations to
/// fill `per_sample` per sample.  Slow routines (≥ `per_sample`) run once
/// per sample.
pub fn measure(
    samples: usize,
    warmup: Duration,
    per_sample: Duration,
    mut routine: impl FnMut(),
) -> Measurement {
    let samples = samples.max(1);
    // Warm-up doubles as the per-iteration cost estimate.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    loop {
        routine();
        warm_iters += 1;
        if warm_start.elapsed() >= warmup {
            break;
        }
    }
    let per_iter = warm_start.elapsed() / warm_iters as u32;
    let iters = (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 30) as u64;
    let mut samples_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            routine();
        }
        samples_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    Measurement {
        median_ns: samples_ns[samples_ns.len() / 2],
        min_ns: samples_ns[0],
        mean_ns: samples_ns.iter().sum::<f64>() / samples_ns.len() as f64,
        samples,
        iters,
    }
}

/// Measure two routines in paired, order-alternating rounds: each round
/// times `a` and `b` adjacently and swaps which goes first on every
/// round, so slow environmental drift — allocator state, page cache,
/// a noisy co-tenant — lands on both sides equally instead of on
/// whichever routine a measure-then-measure sequence happens to run
/// last.  Returns the two series plus the **median of the per-round
/// `a`/`b` time ratios**: the pointwise ratio cancels each round's
/// shared noise before the median is taken, which is the robust way to
/// compare two variants of the same operation.
pub fn measure_paired(
    samples: usize,
    warmup_rounds: usize,
    mut a: impl FnMut(),
    mut b: impl FnMut(),
) -> (Measurement, Measurement, f64) {
    let samples = samples.max(1);
    let mut a_ns: Vec<f64> = Vec::with_capacity(samples);
    let mut b_ns: Vec<f64> = Vec::with_capacity(samples);
    let mut ratios: Vec<f64> = Vec::with_capacity(samples);
    let time = |f: &mut dyn FnMut()| {
        let t = Instant::now();
        f();
        t.elapsed().as_nanos() as f64
    };
    for round in 0..warmup_rounds + samples {
        let (ra, rb) = if round % 2 == 0 {
            let ra = time(&mut a);
            let rb = time(&mut b);
            (ra, rb)
        } else {
            let rb = time(&mut b);
            let ra = time(&mut a);
            (ra, rb)
        };
        if round >= warmup_rounds {
            a_ns.push(ra);
            b_ns.push(rb);
            ratios.push(ra / rb);
        }
    }
    let summarize = |mut v: Vec<f64>| -> Measurement {
        v.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
        Measurement {
            median_ns: v[v.len() / 2],
            min_ns: v[0],
            mean_ns: v.iter().sum::<f64>() / v.len() as f64,
            samples: v.len(),
            iters: 1,
        }
    };
    ratios.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
    let ratio = ratios[ratios.len() / 2];
    (summarize(a_ns), summarize(b_ns), ratio)
}

/// Time a single execution (for expensive one-shot series like eager
/// grounding at large group sizes).
pub fn measure_once(mut routine: impl FnMut()) -> Measurement {
    let start = Instant::now();
    routine();
    let ns = start.elapsed().as_nanos() as f64;
    Measurement {
        median_ns: ns,
        min_ns: ns,
        mean_ns: ns,
        samples: 1,
        iters: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_sane_numbers() {
        let mut calls = 0u64;
        let m = measure(
            3,
            Duration::from_millis(2),
            Duration::from_millis(4),
            || {
                calls += 1;
                std::hint::black_box(calls);
            },
        );
        assert!(calls > 0);
        assert!(m.median_ns > 0.0);
        assert!(m.min_ns <= m.median_ns);
        assert_eq!(m.samples, 3);
    }

    #[test]
    fn measure_once_is_single_shot() {
        let mut calls = 0u64;
        let m = measure_once(|| calls += 1);
        assert_eq!(calls, 1);
        assert_eq!(m.iters, 1);
        assert!(m.median_ns > 0.0);
    }
}
