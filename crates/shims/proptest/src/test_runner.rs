//! Test-runner plumbing: configuration, RNG, and case-failure errors.

use std::fmt;

/// Per-test configuration (subset of `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for struct-update compatibility; shrinking is not
    /// implemented, so the value is ignored.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Failure of a single generated case (subset of
/// `proptest::test_runner::TestCaseError`).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Reject the current case with a message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic per-case RNG (SplitMix64 keyed on test name + case index).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one named test case.  The same `(name, case)` pair always
    /// yields the same stream, so failures replay exactly.
    pub fn for_case(name: &str, case: u64) -> TestRng {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}
