//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crate registry, so this workspace-local
//! crate implements the API subset the workspace's property tests use:
//! the [`proptest!`] macro (with `#![proptest_config(..)]` headers and
//! `pat in strategy` parameters), [`prop_assert!`] / [`prop_assert_eq!`],
//! [`prop_oneof!`], [`strategy::Just`], `prop_map`, integer-range
//! strategies, tuple strategies, [`collection::vec`], and
//! [`sample::subsequence`].
//!
//! Semantics: each test runs `cases` deterministic random cases (seeded
//! from the test name and case index).  There is **no shrinking** — a
//! failing case reports its inputs via the panic message instead.  For
//! this workspace's differential tests, which are seeded and small,
//! deterministic replay is what matters.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies (subset of `proptest::collection`).

    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy producing `Vec`s whose elements come from `element` and
    /// whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    //! Sampling strategies (subset of `proptest::sample`).

    use crate::strategy::{SizeRange, Strategy};
    use crate::test_runner::TestRng;

    /// A strategy producing order-preserving subsequences of `values` with
    /// length drawn from `size`.
    pub fn subsequence<T: Clone + std::fmt::Debug>(
        values: Vec<T>,
        size: impl Into<SizeRange>,
    ) -> Subsequence<T> {
        Subsequence {
            values,
            size: size.into(),
        }
    }

    /// See [`subsequence`].
    #[derive(Clone, Debug)]
    pub struct Subsequence<T> {
        values: Vec<T>,
        size: SizeRange,
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Subsequence<T> {
        type Value = Vec<T>;

        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let max = self.values.len();
            let count = self.size.clamped_sample(rng, max);
            // Floyd-style distinct index selection, then restore order.
            let mut picked: Vec<usize> = Vec::with_capacity(count);
            let mut remaining: Vec<usize> = (0..max).collect();
            for _ in 0..count {
                let ix = (rng.next_u64() % remaining.len() as u64) as usize;
                picked.push(remaining.swap_remove(ix));
            }
            picked.sort_unstable();
            picked.into_iter().map(|i| self.values[i].clone()).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Define property tests.  Supports an optional
/// `#![proptest_config(ProptestConfig { .. })]` header followed by any
/// number of `#[test] fn name(pat in strategy, ..) { body }` items whose
/// bodies may use `prop_assert*` and `return Ok(())`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $(
        #[test]
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        #[allow(unreachable_code)]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    stringify!($name),
                    case as u64,
                );
                $(
                    let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("proptest case {}/{} failed: {}", case, config.cases, e);
                }
            }
        }
    )*};
}

/// Assert a condition inside a `proptest!` body, failing the case (not the
/// process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Choose uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$(::std::boxed::Box::new($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Pick {
        A,
        B(i64),
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(n in 2usize..6, m in 0i64..3) {
            prop_assert!((2..6).contains(&n));
            prop_assert!((0..3).contains(&m));
        }

        #[test]
        fn early_return_ok_is_supported(n in 0u64..10) {
            if n > 100 {
                return Ok(());
            }
            prop_assert_eq!(n, n, "reflexive {}", n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

        #[test]
        fn oneof_and_map_and_collections(
            v in crate::collection::vec((0u64..3, 0i64..3), 0..6),
            p in prop_oneof![Just(Pick::A), (0i64..3).prop_map(Pick::B)],
            s in crate::sample::subsequence(vec![1u32, 2, 3, 4], 0..=4),
        ) {
            prop_assert!(v.len() < 6);
            match p {
                Pick::A => {}
                Pick::B(x) => prop_assert!((0..3).contains(&x)),
            }
            let mut sorted = s.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&sorted, &s, "subsequence preserves order");
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..100, 3..7);
        let mut r1 = crate::test_runner::TestRng::for_case("x", 4);
        let mut r2 = crate::test_runner::TestRng::for_case("x", 4);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
