//! Strategies: deterministic random value generators.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A generator of random values (subset of `proptest::strategy::Strategy`).
///
/// No shrinking machinery: `generate` produces one value from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $ix:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$ix.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Length bounds for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub min: usize,
    /// Maximum length (inclusive).
    pub max: usize,
}

impl SizeRange {
    /// Sample a length, additionally clamped to `cap` (e.g. the number of
    /// available elements for subsequence sampling).
    pub(crate) fn clamped_sample(&self, rng: &mut TestRng, cap: usize) -> usize {
        let lo = self.min.min(cap);
        let hi = self.max.min(cap);
        lo + (rng.next_u64() % (hi - lo + 1) as u64) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// See [`crate::collection::vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.clamped_sample(rng, usize::MAX);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Uniform choice among boxed strategies (the [`crate::prop_oneof!`]
/// backend).
pub struct Union<T: Debug> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T: Debug> Union<T> {
    /// Build a union; panics on an empty arm list.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let ix = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[ix].generate(rng)
    }
}
