//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crate registry, so this
//! workspace-local crate provides the (small) API subset the workspace
//! actually uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and
//! the [`Rng`] methods `gen_range` / `gen_bool` / `gen`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction real `rand` uses for `SmallRng` on 64-bit targets — so
//! streams are high quality and deterministic in the seed, which is all
//! the seeded test-data generators require.  Distributions are *not*
//! guaranteed to be bit-identical to the real crate.

use std::ops::{Range, RangeInclusive};

/// Seedable random generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Create a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be uniformly sampled from a range.
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[low, high)` given a raw 64-bit source.
    fn sample_half_open(low: Self, high: Self, source: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(low: $t, high: $t, source: &mut dyn FnMut() -> u64) -> $t {
                assert!(low < high, "gen_range: empty range");
                let span = (high - low) as u64;
                low + (source() % span) as $t
            }
        }
    )*};
}
impl_sample_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(low: $t, high: $t, source: &mut dyn FnMut() -> u64) -> $t {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u64;
                (low as i128 + (source() % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

/// Range arguments accepted by [`Rng::gen_range`] (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Sample a value uniformly from the range.
    fn sample_single(self, source: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single(self, source: &mut dyn FnMut() -> u64) -> T {
        T::sample_half_open(self.start, self.end, source)
    }
}

impl SampleRange<usize> for RangeInclusive<usize> {
    fn sample_single(self, source: &mut dyn FnMut() -> u64) -> usize {
        let (low, high) = (*self.start(), *self.end());
        assert!(low <= high, "gen_range: empty inclusive range");
        let span = (high - low) as u64 + 1;
        low + (source() % span) as usize
    }
}

impl SampleRange<u64> for RangeInclusive<u64> {
    fn sample_single(self, source: &mut dyn FnMut() -> u64) -> u64 {
        let (low, high) = (*self.start(), *self.end());
        assert!(low <= high, "gen_range: empty inclusive range");
        if low == 0 && high == u64::MAX {
            return source();
        }
        let span = high - low + 1;
        low + source() % span
    }
}

impl SampleRange<i64> for RangeInclusive<i64> {
    fn sample_single(self, source: &mut dyn FnMut() -> u64) -> i64 {
        let (low, high) = (*self.start(), *self.end());
        assert!(low <= high, "gen_range: empty inclusive range");
        let span = (high as i128 - low as i128) as u64 + 1;
        (low as i128 + (source() % span) as i128) as i64
    }
}

/// Random-value generation (subset of `rand::Rng`).
pub trait Rng {
    /// The raw 64-bit source.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        let mut source = || self.next_u64();
        range.sample_single(&mut source)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// A uniformly random `bool`.
    fn gen(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

pub mod rngs {
    //! Concrete generators (subset of `rand::rngs`).

    use super::{Rng, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++ seeded via
    /// SplitMix64 (matching real `rand`'s 64-bit `SmallRng` construction).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
            let z: usize = rng.gen_range(2..=4);
            assert!((2..=4).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
