//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crate registry, so this workspace-local
//! crate implements the API subset the bench targets use —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`] — on top of a deliberately simple wall-clock harness:
//!
//! 1. warm up for the configured warm-up time;
//! 2. pick an iteration count that fills the measurement window;
//! 3. take `sample_size` samples and report min / median / mean.
//!
//! Results are printed to stdout in a stable `name  time: [..]` format.
//! There is no statistical regression analysis, HTML report, or saved
//! baseline — for this workspace's deterministic solver sweeps the median
//! is the number of interest.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for one benchmark within a group: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run the routine `self.iters` times, recording total elapsed time.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
            filter: None,
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before measurement.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Target duration of the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Apply command-line arguments.  Only a positional substring filter is
    /// supported (matching `cargo bench -- <filter>`); harness flags the
    /// real criterion accepts (e.g. `--bench`) are ignored.
    pub fn configure_from_args(mut self) -> Criterion {
        for arg in std::env::args().skip(1) {
            if !arg.starts_with('-') {
                self.filter = Some(arg);
                break;
            }
        }
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Print the closing summary line.
    pub fn final_summary(&mut self) {
        println!("benchmarks complete");
    }

    fn run_one(&self, full_name: &str, mut routine: impl FnMut(&mut Bencher)) {
        if let Some(f) = &self.filter {
            if !full_name.contains(f.as_str()) {
                return;
            }
        }
        // Warm-up: also estimates the per-iteration cost.
        let mut one = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warm_up_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut warm_elapsed = Duration::ZERO;
        while warm_up_start.elapsed() < self.warm_up_time {
            routine(&mut one);
            warm_elapsed += one.elapsed;
            warm_iters += 1;
        }
        let per_iter = if warm_iters > 0 && !warm_elapsed.is_zero() {
            warm_elapsed / warm_iters as u32
        } else {
            Duration::from_nanos(1)
        };
        // Fill the measurement window across `sample_size` samples.
        let per_sample = self.measurement_time / self.sample_size as u32;
        let iters = (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 30) as u64;
        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let min = samples_ns[0];
        let median = samples_ns[samples_ns.len() / 2];
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        println!(
            "{full_name:<60} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named group of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmark a routine identified by `id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        self.criterion.run_one(&full, |b| f(b));
        self
    }

    /// Benchmark a routine over a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15));
        let mut group = c.benchmark_group("g");
        let mut calls = 0u64;
        group.bench_function("trivial", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        c.final_summary();
        assert!(calls > 0);
    }

    #[test]
    fn id_formatting() {
        let id = BenchmarkId::new("f", 32);
        assert_eq!(id.id, "f/32");
    }

    #[test]
    fn ns_formatting_scales() {
        assert!(fmt_ns(10.0).ends_with("ns"));
        assert!(fmt_ns(10_000.0).ends_with("µs"));
        assert!(fmt_ns(10_000_000.0).ends_with("ms"));
        assert!(fmt_ns(10_000_000_000.0).ends_with("s"));
    }
}
