//! A lock-free token bucket for admission control.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Micro-tokens per token: admission charges a whole token, refill
/// accrues fractions so low rates still make steady progress.
const UNIT: u64 = 1_000_000;

/// Rate-limit policy: up to `burst` queries instantly, refilled at
/// `per_sec` tokens per second.
///
/// `per_sec == 0` never refills — exactly `burst` queries are admitted,
/// ever.  That degenerate mode is what the deterministic tests use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RateLimit {
    /// Bucket capacity: the largest burst admitted at once (≥ 1 to admit
    /// anything).
    pub burst: u32,
    /// Steady-state refill rate in queries per second.
    pub per_sec: u32,
}

/// Token bucket on two atomics; `try_acquire` never blocks and never
/// takes a lock, so the rate limiter cannot become the serialization
/// point it is supposed to prevent.
pub(crate) struct TokenBucket {
    origin: Instant,
    capacity: u64,
    per_sec: u64,
    /// Timestamp (ns since `origin`) up to which refill has been credited.
    last_refill_ns: AtomicU64,
    /// Available micro-tokens.
    tokens: AtomicU64,
}

impl TokenBucket {
    pub(crate) fn new(limit: RateLimit) -> TokenBucket {
        let capacity = u64::from(limit.burst) * UNIT;
        TokenBucket {
            origin: Instant::now(),
            capacity,
            per_sec: u64::from(limit.per_sec),
            last_refill_ns: AtomicU64::new(0),
            tokens: AtomicU64::new(capacity),
        }
    }

    /// Take one token if available.
    pub(crate) fn try_acquire(&self) -> bool {
        self.refill();
        self.tokens
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |t| {
                t.checked_sub(UNIT)
            })
            .is_ok()
    }

    /// Credit elapsed time since the last refill.  One thread wins the
    /// `compare_exchange` per elapsed window and deposits the entire
    /// window's tokens; losers simply proceed to acquisition (their
    /// window is credited by the winner or a later caller).
    fn refill(&self) {
        if self.per_sec == 0 {
            return;
        }
        let now_ns = u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let last = self.last_refill_ns.load(Ordering::Relaxed);
        if now_ns <= last {
            return;
        }
        if self
            .last_refill_ns
            .compare_exchange(last, now_ns, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        // elapsed ns × per_sec / 1e9 tokens = × per_sec / 1000 micro-tokens.
        let add = u64::try_from(u128::from(now_ns - last) * u128::from(self.per_sec) / 1_000)
            .unwrap_or(u64::MAX);
        let cap = self.capacity;
        let _ = self
            .tokens
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |t| {
                Some(t.saturating_add(add).min(cap))
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_admits_exactly_the_burst() {
        let bucket = TokenBucket::new(RateLimit {
            burst: 3,
            per_sec: 0,
        });
        assert!(bucket.try_acquire());
        assert!(bucket.try_acquire());
        assert!(bucket.try_acquire());
        assert!(!bucket.try_acquire());
        assert!(!bucket.try_acquire(), "never refills at rate 0");
    }

    #[test]
    fn refill_restores_tokens() {
        let bucket = TokenBucket::new(RateLimit {
            burst: 1,
            per_sec: 1_000_000,
        });
        assert!(bucket.try_acquire());
        // At 1M tokens/sec a token is back within a millisecond; spin
        // briefly rather than sleeping a fixed amount.
        let deadline = Instant::now() + std::time::Duration::from_secs(2);
        while !bucket.try_acquire() {
            assert!(Instant::now() < deadline, "token never came back");
            std::hint::spin_loop();
        }
    }

    #[test]
    fn refill_never_exceeds_capacity() {
        // The bucket starts full; at 1 token/sec the sleep credits ~0.01
        // tokens, so the burst must still be exactly 2 — a cap bug that
        // banked the refill uncapped would admit a third query, while a
        // third token honestly refilling would take ~1000 s to arrive.
        let bucket = TokenBucket::new(RateLimit {
            burst: 2,
            per_sec: 1,
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(bucket.try_acquire());
        assert!(bucket.try_acquire());
        assert!(!bucket.try_acquire());
    }
}
