//! The sharded serving front door: one [`CurrencyServe`] per entity
//! shard, scatter-gather queries over all of them.
//!
//! Each shard keeps the full single-shard serving stack — epoch-published
//! snapshots, the epoch-keyed answer cache, rate limiting, load shedding,
//! and the per-shape circuit breaker — so a hot or degraded shard sheds
//! and degrades *by itself* while the others keep answering fresh.
//! Aggregate queries compose the per-shard verdicts exactly as
//! [`currency_reason::shard`] does for raw engines:
//!
//! * **CPS** — all-shards AND with early exit on the first unsat shard;
//! * **COP** — vacuously true when globally inconsistent; otherwise each
//!   pair routes to the shard owning both tuples (a pair spanning shards
//!   relates different entities — never certainly ordered);
//! * **DCIP** — vacuously true when globally inconsistent, else AND;
//! * **certain answers / CCQA** — union across shards (see the shard
//!   module docs for the exactness class).
//!
//! The per-shard caches make scatter-gather cheap in the steady state: a
//! repeated aggregate query costs one cache hit per shard and no solver
//! touches.  Note the convenience methods look *through*
//! [`crate::ServeAnswer::Stale`] per shard — a degraded shard contributes its
//! newest stale answer rather than failing the whole scatter.
//!
//! Writes route through [`ShardedServe::apply`] under one writer lock:
//! an entity-anchored delta publishes a new epoch on exactly one shard
//! (the other shards' epochs — and cached answers — are untouched), a
//! structure-only delta broadcasts to every shard.

use crate::{CurrencyServe, ServeError, ServeHandle, ServeOptions, ServeStats};
use currency_core::{RelId, SpecDelta, Specification, Value};
use currency_query::Query;
use currency_reason::shard::{
    localize, locate, split_spec, RoutedDelta, ShardError, ShardPlan, ShardedCompactReport,
    ShardedCompactStepReport, SpecImport,
};
use currency_reason::snapshot::PublishReport;
use currency_reason::{CertainAnswers, CompactBudget, CurrencyOrderQuery, Options, ReasonError};
use std::fmt;
use std::sync::{Arc, Mutex, PoisonError};

/// A failure of the sharded serving layer's write path.
#[derive(Debug)]
pub enum ShardedServeError {
    /// The delta violated the routing policy (cross-shard, mixed).
    Routing(ShardError),
    /// One shard's writer failed.
    Shard {
        /// The failing shard.
        shard: usize,
        /// The underlying engine error.
        source: ReasonError,
    },
    /// A broadcast publish failed after some shards had already
    /// published it; the shards' structure may disagree, so the write
    /// path is fail-stop (queries still answer).
    Poisoned,
}

impl fmt::Display for ShardedServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardedServeError::Routing(e) => write!(f, "routing: {e}"),
            ShardedServeError::Shard { shard, source } => write!(f, "shard {shard}: {source}"),
            ShardedServeError::Poisoned => write!(
                f,
                "a broadcast publish failed part-way; the sharded write path \
                 refuses further deltas"
            ),
        }
    }
}

impl std::error::Error for ShardedServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardedServeError::Routing(e) => Some(e),
            ShardedServeError::Shard { source, .. } => Some(source),
            ShardedServeError::Poisoned => None,
        }
    }
}

impl From<ShardError> for ShardedServeError {
    fn from(e: ShardError) -> ShardedServeError {
        ShardedServeError::Routing(e)
    }
}

/// What one [`ShardedServe::apply`] published.
#[derive(Clone, Debug, Default)]
pub struct ShardedPublish {
    /// The shard an entity-routed delta landed in (`None` for broadcast
    /// or empty deltas).
    pub shard: Option<usize>,
    /// `true` when the delta was structure-only and reached every shard.
    pub broadcast: bool,
    /// Each touched shard's publication, in shard order.
    pub per_shard: Vec<(usize, PublishReport)>,
}

/// Per-shard plus aggregate serving statistics, scraped lock-free (one
/// [`CurrencyServe::stats`] scrape per shard).
#[derive(Clone, Debug, Default)]
pub struct ShardedServeStats {
    /// Each shard's counters, in shard order.
    pub per_shard: Vec<ServeStats>,
    /// Field-wise sum across shards (`epoch` sums to total publications
    /// across all shards; `latency_ns_max` is the max, not the sum).
    pub total: ServeStats,
}

/// Writer-side state guarded by one lock: the routing plan and the
/// poison flag must change atomically with respect to the applies that
/// consult them.
struct WriterState {
    plan: ShardPlan,
    poisoned: bool,
}

/// N [`CurrencyServe`] shards behind one scatter-gather front door (see
/// module docs).
pub struct ShardedServe {
    serves: Vec<CurrencyServe>,
    writer: Mutex<WriterState>,
    import: SpecImport,
}

impl ShardedServe {
    /// Decompose `spec` into `shards` sub-specifications (copy closures
    /// co-located, ids reassigned — translate through
    /// [`ShardedServe::import`]) and stand up one full serving stack per
    /// shard.
    pub fn new(
        spec: &Specification,
        shards: usize,
        engine_opts: &Options,
        serve_opts: &ServeOptions,
    ) -> Result<ShardedServe, ShardedServeError> {
        let plan = ShardPlan::from_spec(shards, spec);
        let (specs, import) = split_spec(spec, &plan);
        let serves = specs
            .into_iter()
            .enumerate()
            .map(|(shard, sub)| {
                CurrencyServe::new(sub, engine_opts, serve_opts)
                    .map_err(|source| ShardedServeError::Shard { shard, source })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedServe {
            serves,
            writer: Mutex::new(WriterState {
                plan,
                poisoned: false,
            }),
            import,
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.serves.len()
    }

    /// Shard `k`'s serving stack (shard-local ids!).
    pub fn serve(&self, shard: usize) -> &CurrencyServe {
        &self.serves[shard]
    }

    /// The original → global tuple id translation of the construction.
    pub fn import(&self) -> &SpecImport {
        &self.import
    }

    /// A scatter-gather reader handle (one [`ServeHandle`] per shard);
    /// clone or call again for each reader thread.
    pub fn handle(&self) -> ShardedServeHandle {
        ShardedServeHandle {
            handles: self.serves.iter().map(|s| s.handle()).collect(),
        }
    }

    /// Route one delta (global ids) and publish it: an entity-anchored
    /// delta bumps exactly one shard's epoch, a structure-only delta is
    /// validated on every shard and then broadcast.  Applies are
    /// serialized by the writer lock; readers are never blocked.
    pub fn apply(&self, delta: &SpecDelta) -> Result<ShardedPublish, ShardedServeError> {
        let mut writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        if writer.poisoned {
            return Err(ShardedServeError::Poisoned);
        }
        // The newest published snapshot *is* the writer's live state —
        // `CurrencyServe::apply` publishes synchronously and this lock
        // serializes all sharded writes.
        let snaps: Vec<Arc<currency_reason::EngineSnapshot>> =
            self.serves.iter().map(|s| s.snapshot()).collect();
        let specs: Vec<&Specification> = snaps.iter().map(|s| s.spec()).collect();
        let localized = localize(delta, &writer.plan, &specs)?;
        drop(specs);
        drop(snaps);
        let mut publish = ShardedPublish::default();
        match localized.routed {
            RoutedDelta::Empty => {}
            RoutedDelta::Single { shard, delta } => {
                let report = self.serves[shard]
                    .apply(&delta)
                    .map_err(|source| ShardedServeError::Shard { shard, source })?;
                publish.shard = Some(shard);
                publish.per_shard.push((shard, report));
            }
            RoutedDelta::Broadcast { deltas } => {
                for (shard, d) in deltas.iter().enumerate() {
                    d.validate(self.serves[shard].snapshot().spec())
                        .map_err(|e| ShardedServeError::Routing(ShardError::Invalid(e)))?;
                }
                publish.broadcast = true;
                for (shard, d) in deltas.iter().enumerate() {
                    match self.serves[shard].apply(d) {
                        Ok(report) => publish.per_shard.push((shard, report)),
                        Err(source) => {
                            // Some shards published the structure, some
                            // did not: fail-stop the write path.
                            writer.poisoned = shard > 0;
                            return Err(ShardedServeError::Shard { shard, source });
                        }
                    }
                }
            }
        }
        for (eid, shard) in localized.placements {
            writer.plan.place(eid, shard);
        }
        Ok(publish)
    }

    /// Compact every shard's writer, one at a time — each pause is
    /// shard-local, and each shard's readers keep serving their pinned
    /// snapshots throughout.
    pub fn compact(&self) -> Result<ShardedCompactReport, ShardedServeError> {
        let writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        if writer.poisoned {
            return Err(ShardedServeError::Poisoned);
        }
        let mut per_shard = Vec::with_capacity(self.serves.len());
        for (shard, serve) in self.serves.iter().enumerate() {
            per_shard.push(
                serve
                    .compact()
                    .map_err(|source| ShardedServeError::Shard { shard, source })?,
            );
        }
        Ok(ShardedCompactReport {
            shards: self.serves.len(),
            per_shard,
        })
    }

    /// Run one bounded compaction step on every shard's writer, one at
    /// a time — each pause is shard-local and budget-bounded, each
    /// completed shard step publishes its own epoch, and every shard's
    /// readers keep serving their pinned snapshots throughout.
    pub fn compact_step(
        &self,
        budget: &CompactBudget,
    ) -> Result<ShardedCompactStepReport, ShardedServeError> {
        let writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        if writer.poisoned {
            return Err(ShardedServeError::Poisoned);
        }
        let mut per_shard = Vec::with_capacity(self.serves.len());
        for (shard, serve) in self.serves.iter().enumerate() {
            per_shard.push(
                serve
                    .compact_step(budget)
                    .map_err(|source| ShardedServeError::Shard { shard, source })?,
            );
        }
        Ok(ShardedCompactStepReport {
            shards: self.serves.len(),
            per_shard,
        })
    }

    /// Every shard's published epoch, in shard order (entity-routed
    /// deltas advance exactly one of them).
    pub fn epochs(&self) -> Vec<u64> {
        self.serves.iter().map(|s| s.epoch()).collect()
    }

    /// Per-shard + aggregate serving counters, lock-free.  Sums
    /// saturate: `latency_ns_total` in particular accumulates
    /// nanoseconds across every shard and every answered query, and a
    /// long-lived deployment overflowing `u64` must pin at the ceiling
    /// rather than wrap to a tiny number mid-scrape.  (The
    /// `currency_serve_latency_ns` histogram in
    /// [`ShardedServe::metrics_text`] is the overflow-proof replacement
    /// for the deprecated total/max fields.)
    pub fn stats(&self) -> ShardedServeStats {
        let per_shard: Vec<ServeStats> = self.serves.iter().map(|s| s.stats()).collect();
        let mut total = ServeStats::default();
        for s in &per_shard {
            total.epoch = total.epoch.saturating_add(s.epoch);
            total.queries = total.queries.saturating_add(s.queries);
            total.cache_hits = total.cache_hits.saturating_add(s.cache_hits);
            total.cache_misses = total.cache_misses.saturating_add(s.cache_misses);
            total.rate_limited = total.rate_limited.saturating_add(s.rate_limited);
            total.inflight = total.inflight.saturating_add(s.inflight);
            total.shed = total.shed.saturating_add(s.shed);
            total.timeouts = total.timeouts.saturating_add(s.timeouts);
            total.stale_served = total.stale_served.saturating_add(s.stale_served);
            total.breaker_trips = total.breaker_trips.saturating_add(s.breaker_trips);
            total.breaker_rejects = total.breaker_rejects.saturating_add(s.breaker_rejects);
            total.breakers_open = total.breakers_open.saturating_add(s.breakers_open);
            total.degraded_events = total.degraded_events.saturating_add(s.degraded_events);
            total.cached_entries = total.cached_entries.saturating_add(s.cached_entries);
            total.latency_ns_total = total.latency_ns_total.saturating_add(s.latency_ns_total);
            total.latency_ns_max = total.latency_ns_max.max(s.latency_ns_max);
        }
        ShardedServeStats { per_shard, total }
    }

    /// Every shard's metrics, merged into one snapshot with each series
    /// labeled `shard="<k>"` — counters sum (saturating), gauges take
    /// the max, histograms merge bucket-wise, so per-shard cache hit
    /// rates and the aggregate latency distribution are both one scrape
    /// away.
    pub fn metrics_snapshot(&self) -> currency_obs::MetricsSnapshot {
        currency_obs::MetricsSnapshot::merged(
            self.serves
                .iter()
                .enumerate()
                .map(|(k, s)| s.metrics().snapshot().with_label("shard", &k.to_string())),
        )
    }

    /// The merged metrics in Prometheus text exposition format.
    pub fn metrics_text(&self) -> String {
        self.metrics_snapshot().render_prometheus()
    }
}

/// A per-thread scatter-gather reader: one [`ServeHandle`] per shard,
/// each with its own pinned snapshot, solver scratch, and shared
/// per-shard cache.  Clone one per reader thread.
pub struct ShardedServeHandle {
    handles: Vec<ServeHandle>,
}

impl Clone for ShardedServeHandle {
    fn clone(&self) -> ShardedServeHandle {
        ShardedServeHandle {
            handles: self.handles.clone(),
        }
    }
}

impl ShardedServeHandle {
    /// **CPS** across shards: AND with early exit on the first unsat
    /// shard.  Each per-shard answer goes through that shard's cache,
    /// breaker, and deadline.
    pub fn cps(&mut self) -> Result<bool, ServeError> {
        for h in &mut self.handles {
            if !h.cps()? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// **COP** across shards, over global tuple ids: vacuously true when
    /// globally inconsistent; pairs spanning shards are never certain.
    pub fn cop(&mut self, ot: &CurrencyOrderQuery) -> Result<bool, ServeError> {
        let n = self.handles.len();
        if !self.cps()? {
            return Ok(true);
        }
        let mut per: Vec<Vec<_>> = vec![Vec::new(); n];
        for &(attr, lesser, greater) in &ot.pairs {
            let (ls, ll) = locate(n, lesser);
            let (gs, gl) = locate(n, greater);
            if ls != gs {
                return Ok(false);
            }
            per[ls].push((attr, ll, gl));
        }
        for (shard, pairs) in per.into_iter().enumerate() {
            if pairs.is_empty() {
                continue;
            }
            let local = CurrencyOrderQuery { rel: ot.rel, pairs };
            if !self.handles[shard].cop(&local)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// **DCIP** across shards: vacuously true when globally
    /// inconsistent, else all shards individually deterministic.
    pub fn dcip(&mut self, rel: RelId) -> Result<bool, ServeError> {
        if !self.cps()? {
            return Ok(true);
        }
        for h in &mut self.handles {
            if !h.dcip(rel)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Certain current answers across shards: the union of per-shard
    /// answers ([`CertainAnswers::Inconsistent`] when any shard is
    /// unsat).
    pub fn certain_answers(&mut self, query: &Query) -> Result<CertainAnswers, ServeError> {
        if !self.cps()? {
            return Ok(CertainAnswers::Inconsistent);
        }
        let mut rows = std::collections::BTreeSet::<Vec<Value>>::new();
        for h in &mut self.handles {
            match h.certain_answers(query)? {
                CertainAnswers::Inconsistent => return Ok(CertainAnswers::Inconsistent),
                CertainAnswers::Answers(r) => rows.extend(r),
            }
        }
        Ok(CertainAnswers::Answers(rows.into_iter().collect()))
    }

    /// **CCQA** across shards: membership in the certain answers.
    pub fn ccqa(&mut self, query: &Query, tuple: &[Value]) -> Result<bool, ServeError> {
        Ok(self.certain_answers(query)?.contains(tuple))
    }

    /// Shard `k`'s underlying handle, for shard-local (single-entity)
    /// queries in the shard's own id space.
    pub fn shard_mut(&mut self, shard: usize) -> &mut ServeHandle {
        &mut self.handles[shard]
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.handles.len()
    }
}
