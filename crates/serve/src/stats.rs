//! Lock-free serving counters and their scraped snapshot.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters, every one an atomic: they are bumped on the query hot
/// path and scraped by monitoring **while queries are in flight**, so no
/// counter may sit behind a lock a reader could be holding.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub(crate) queries: AtomicU64,
    pub(crate) cache_hits: AtomicU64,
    pub(crate) cache_misses: AtomicU64,
    pub(crate) rate_limited: AtomicU64,
    pub(crate) inflight: AtomicU64,
    pub(crate) shed: AtomicU64,
    pub(crate) timeouts: AtomicU64,
    pub(crate) stale_served: AtomicU64,
    pub(crate) breaker_trips: AtomicU64,
    pub(crate) breaker_rejects: AtomicU64,
    pub(crate) latency_ns_total: AtomicU64,
    pub(crate) latency_ns_max: AtomicU64,
}

impl Counters {
    pub(crate) fn record_latency(&self, ns: u64) {
        self.latency_ns_total.fetch_add(ns, Ordering::Relaxed);
        self.latency_ns_max.fetch_max(ns, Ordering::Relaxed);
    }
}

/// A point-in-time scrape of a service's counters.
///
/// Taken without acquiring any lock: the counters are atomics and the
/// engine-side numbers come from the immutable published snapshot, so a
/// scrape is safe (and non-blocking) while readers query and the writer
/// publishes.  The counters are read individually, so a scrape taken
/// mid-query may be off by the queries completing around it — fine for
/// monitoring, which is what this is for.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeStats {
    /// Epoch of the currently published snapshot.
    pub epoch: u64,
    /// Queries answered (hits + misses + stale serves; excludes
    /// rejections).
    pub queries: u64,
    /// Queries answered from the epoch-keyed cache at the live epoch.
    pub cache_hits: u64,
    /// Queries that went to a solver (and then populated the cache).
    pub cache_misses: u64,
    /// Queries rejected by the rate limiter.
    pub rate_limited: u64,
    /// Queries currently being evaluated.
    pub inflight: u64,
    /// Queries shed by the in-flight cap before any solving started.
    pub shed: u64,
    /// Queries whose solve was interrupted by the per-request deadline
    /// or work budget.
    pub timeouts: u64,
    /// Timed-out or breaker-rejected queries answered from an older
    /// epoch's cached answer (tagged [`crate::ServeAnswer::Stale`]).
    pub stale_served: u64,
    /// Circuit-breaker open transitions (including re-opens after a
    /// failed half-open probe).
    pub breaker_trips: u64,
    /// Queries rejected because their request shape's breaker was open.
    pub breaker_rejects: u64,
    /// Request shapes whose breaker is currently open.
    pub breakers_open: usize,
    /// Lock-poisoning recoveries absorbed by the serving stack (snapshot
    /// cell + answer-cache shards): each is a crashed reader somewhere
    /// that degraded service without taking it down.
    pub degraded_events: u64,
    /// Entries currently resident in the answer cache (any epoch).
    pub cached_entries: usize,
    /// Total evaluation wall time across answered queries, nanoseconds.
    ///
    /// **Deprecated** in favor of the `currency_serve_latency_ns`
    /// histogram (per-query-kind buckets, percentiles, overflow-proof
    /// shard merging — see [`crate::CurrencyServe::metrics`]); still
    /// populated for compatibility.  Sums across shards saturate.
    pub latency_ns_total: u64,
    /// Worst single answered-query wall time, nanoseconds.
    ///
    /// **Deprecated** in favor of the `currency_serve_latency_ns`
    /// histogram's exact max; still populated for compatibility.
    pub latency_ns_max: u64,
}

impl ServeStats {
    /// Fraction of answered queries served from the cache (0 when no
    /// queries have been answered).
    pub fn hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.queries as f64
        }
    }

    /// Mean evaluation wall time per answered query, nanoseconds.
    pub fn mean_latency_ns(&self) -> u64 {
        self.latency_ns_total.checked_div(self.queries).unwrap_or(0)
    }
}

/// RAII in-flight marker: increments on construction, decrements on drop
/// — including the unwind path, so a panicking solve cannot leave the
/// gauge stuck high.
pub(crate) struct InflightGuard<'a>(&'a AtomicU64);

impl<'a> InflightGuard<'a> {
    pub(crate) fn enter(gauge: &'a AtomicU64) -> InflightGuard<'a> {
        gauge.fetch_add(1, Ordering::Relaxed);
        InflightGuard(gauge)
    }

    /// Enter only if fewer than `cap` queries are in flight (`cap == 0`
    /// means unlimited).  The compare-exchange loop makes the check and
    /// the increment one atomic step, so a burst of arrivals can never
    /// overshoot the cap.
    pub(crate) fn try_enter(gauge: &'a AtomicU64, cap: usize) -> Option<InflightGuard<'a>> {
        if cap == 0 {
            return Some(InflightGuard::enter(gauge));
        }
        let mut current = gauge.load(Ordering::Relaxed);
        loop {
            if current >= cap as u64 {
                return None;
            }
            match gauge.compare_exchange_weak(
                current,
                current + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(InflightGuard(gauge)),
                Err(seen) => current = seen,
            }
        }
    }
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_and_mean_handle_zero() {
        let s = ServeStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.mean_latency_ns(), 0);
    }

    #[test]
    fn inflight_guard_decrements_on_unwind() {
        let gauge = AtomicU64::new(0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = InflightGuard::enter(&gauge);
            assert_eq!(gauge.load(Ordering::Relaxed), 1);
            panic!("mid-query crash");
        }));
        assert!(caught.is_err());
        assert_eq!(gauge.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn try_enter_enforces_the_cap() {
        let gauge = AtomicU64::new(0);
        let a = InflightGuard::try_enter(&gauge, 2).expect("slot 1");
        let b = InflightGuard::try_enter(&gauge, 2).expect("slot 2");
        assert!(InflightGuard::try_enter(&gauge, 2).is_none(), "cap hit");
        drop(a);
        let c = InflightGuard::try_enter(&gauge, 2).expect("slot freed");
        drop(b);
        drop(c);
        assert_eq!(gauge.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn zero_cap_is_unlimited() {
        let gauge = AtomicU64::new(0);
        let guards: Vec<_> = (0..64)
            .map(|_| InflightGuard::try_enter(&gauge, 0).expect("unlimited"))
            .collect();
        assert_eq!(gauge.load(Ordering::Relaxed), 64);
        drop(guards);
        assert_eq!(gauge.load(Ordering::Relaxed), 0);
    }
}
