//! Per-request-shape circuit breaker.
//!
//! A request shape that keeps timing out is pathological for *that*
//! shape — the snapshot, the cache, and every other shape are healthy.
//! So the breaker is keyed on the canonicalized [`ServeRequest`] itself:
//! after `threshold` **consecutive** timeouts on one shape the breaker
//! opens and queries for that shape fast-fail (or degrade to a stale
//! cached answer) without burning a solver budget.  Once the backoff
//! elapses a single half-open **probe** is admitted; success closes the
//! breaker, another timeout re-opens it with the backoff doubled (capped
//! at `max_backoff`).

use crate::ServeRequest;
use std::collections::HashMap;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Admission verdict for one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Admit {
    /// Go ahead (closed breaker).
    Allow,
    /// Go ahead as the shape's single half-open probe: the backoff
    /// elapsed and this request decides whether the breaker closes.
    Probe,
    /// The shape's breaker is open: do not solve.
    Reject,
}

#[derive(Debug, Default)]
struct BreakerState {
    /// Consecutive timeouts since the last success (closed state only).
    consecutive: u32,
    /// While `Some(t)` and `now < t`, the breaker is open.
    open_until: Option<Instant>,
    /// Backoff applied at the last open; doubles on failed probes.
    backoff: Duration,
    /// A half-open probe is in flight; admit no second one.
    probing: bool,
}

/// Breaker table shared by every handle.  The map is touched only on
/// cache misses and holds one small entry per *distressed* shape
/// (successes remove their entry), so the single mutex is uncontended in
/// healthy operation.
#[derive(Debug)]
pub(crate) struct Breaker {
    threshold: u32,
    base_backoff: Duration,
    max_backoff: Duration,
    states: Mutex<HashMap<ServeRequest, BreakerState>>,
}

impl Breaker {
    /// `threshold == 0` disables the breaker entirely.
    pub(crate) fn new(threshold: u32, base_backoff: Duration, max_backoff: Duration) -> Breaker {
        Breaker {
            threshold,
            base_backoff,
            max_backoff: max_backoff.max(base_backoff),
            states: Mutex::new(HashMap::new()),
        }
    }

    /// May a query for `req` proceed to a solver right now?
    pub(crate) fn admit(&self, req: &ServeRequest) -> Admit {
        if self.threshold == 0 {
            return Admit::Allow;
        }
        let mut states = self.lock();
        let Some(st) = states.get_mut(req) else {
            return Admit::Allow;
        };
        match st.open_until {
            None => Admit::Allow,
            Some(t) if Instant::now() < t => Admit::Reject,
            Some(_) => {
                // Backoff elapsed: half-open.  Exactly one probe goes
                // through; concurrent arrivals keep fast-failing until
                // the probe reports back.
                if st.probing {
                    Admit::Reject
                } else {
                    st.probing = true;
                    Admit::Probe
                }
            }
        }
    }

    /// Record a timed-out solve for `req`.  Returns `true` when this
    /// timeout opened (or re-opened) the breaker.
    pub(crate) fn record_timeout(&self, req: &ServeRequest) -> bool {
        if self.threshold == 0 {
            return false;
        }
        let now = Instant::now();
        let mut states = self.lock();
        let st = states.entry(req.clone()).or_default();
        if st.probing {
            // Failed probe: re-open with doubled backoff.
            st.probing = false;
            st.backoff = (st.backoff * 2).min(self.max_backoff);
            st.open_until = Some(now + st.backoff);
            true
        } else {
            st.consecutive += 1;
            if st.open_until.is_none() && st.consecutive >= self.threshold {
                st.backoff = self.base_backoff;
                st.open_until = Some(now + st.backoff);
                true
            } else {
                false
            }
        }
    }

    /// Record a completed solve for `req`: the shape is healthy again
    /// and its entry (open or counting) is dropped.  Returns `true` when
    /// this success **closed** an open (or half-open) breaker, as
    /// opposed to merely resetting a consecutive-timeout count.
    pub(crate) fn record_success(&self, req: &ServeRequest) -> bool {
        if self.threshold == 0 {
            return false;
        }
        self.lock()
            .remove(req)
            .is_some_and(|st| st.open_until.is_some() || st.probing)
    }

    /// Number of shapes whose breaker is open right now (a half-open
    /// shape still counts until its probe succeeds).
    pub(crate) fn open_count(&self) -> usize {
        if self.threshold == 0 {
            return 0;
        }
        self.lock()
            .values()
            .filter(|st| st.open_until.is_some())
            .count()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<ServeRequest, BreakerState>> {
        // Entries are updated by value under the lock; a panicking
        // holder cannot leave one half-written.
        self.states.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use currency_core::RelId;

    fn req(rel: u32) -> ServeRequest {
        ServeRequest::Dcip(RelId(rel))
    }

    fn breaker(threshold: u32, backoff_ms: u64) -> Breaker {
        Breaker::new(
            threshold,
            Duration::from_millis(backoff_ms),
            Duration::from_millis(backoff_ms * 8),
        )
    }

    #[test]
    fn opens_after_consecutive_timeouts_only() {
        let b = breaker(3, 60_000);
        assert!(!b.record_timeout(&req(0)));
        assert!(!b.record_timeout(&req(0)));
        // A success in between resets the run.
        b.record_success(&req(0));
        assert!(!b.record_timeout(&req(0)));
        assert!(!b.record_timeout(&req(0)));
        assert!(b.record_timeout(&req(0)), "third consecutive trips");
        assert_eq!(b.admit(&req(0)), Admit::Reject);
        assert_eq!(b.open_count(), 1);
        // Other shapes are unaffected.
        assert_eq!(b.admit(&req(1)), Admit::Allow);
    }

    #[test]
    fn half_open_admits_one_probe_and_success_closes() {
        let b = breaker(1, 1);
        assert!(b.record_timeout(&req(0)));
        std::thread::sleep(Duration::from_millis(3));
        assert_eq!(b.admit(&req(0)), Admit::Probe, "the probe");
        assert_eq!(b.admit(&req(0)), Admit::Reject, "only one probe");
        assert!(b.record_success(&req(0)), "probe success closes");
        assert_eq!(b.admit(&req(0)), Admit::Allow, "closed again");
        assert_eq!(b.open_count(), 0);
    }

    #[test]
    fn failed_probe_reopens_with_doubled_backoff() {
        let b = breaker(1, 1);
        assert!(b.record_timeout(&req(0)));
        std::thread::sleep(Duration::from_millis(3));
        assert_eq!(b.admit(&req(0)), Admit::Probe);
        assert!(b.record_timeout(&req(0)), "failed probe re-trips");
        assert_eq!(b.admit(&req(0)), Admit::Reject);
        // The backoff doubles but stays capped.
        for _ in 0..10 {
            std::thread::sleep(Duration::from_millis(10));
            while b.admit(&req(0)) == Admit::Reject {
                std::thread::sleep(Duration::from_millis(1));
            }
            assert!(b.record_timeout(&req(0)));
        }
        let st = b.lock();
        assert_eq!(st[&req(0)].backoff, Duration::from_millis(8), "capped");
    }

    #[test]
    fn zero_threshold_disables() {
        let b = breaker(0, 1);
        for _ in 0..100 {
            assert!(!b.record_timeout(&req(0)));
        }
        assert_eq!(b.admit(&req(0)), Admit::Allow);
        assert_eq!(b.open_count(), 0);
        assert!(b.lock().is_empty(), "disabled breaker tracks nothing");
    }
}
