//! The epoch-keyed answer cache.
//!
//! Entries are stored under the request itself and stamped with the
//! epoch they were computed at.  An entry is a *fresh* hit only when its
//! stamp equals the current epoch, so publishing a new snapshot
//! invalidates the whole cache for free — no flush, no generation sweep,
//! no writer involvement.  Stale entries are **retained**: they are the
//! graceful-degradation reserve ([`AnswerCache::get_any`]) served when a
//! query times out or its breaker is open, and they are pruned only when
//! a full shard needs room (stale-epoch entries are evicted first).

use crate::{ServeAnswer, ServeRequest};
use std::collections::HashMap;
use std::hash::{BuildHasher, RandomState};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

type Shard = HashMap<ServeRequest, (u64, ServeAnswer)>;

/// Sharded `Mutex<HashMap>` cache.  Sharding keeps the critical
/// sections short and disjoint; the expensive work (solving) happens
/// strictly outside any shard lock, so a panicking solve can poison
/// nothing — and lookups recover from poisoning anyway, since a cache
/// entry is inserted atomically-by-value and cannot be half-written.
pub(crate) struct AnswerCache {
    shards: Vec<Mutex<Shard>>,
    /// Eviction threshold per shard (total capacity / shard count).
    capacity_per_shard: usize,
    hasher: RandomState,
    /// Poisoned-shard recoveries: each is a reader that crashed under a
    /// shard lock and was absorbed without losing the cache.
    degraded: AtomicU64,
}

impl AnswerCache {
    /// `capacity == 0` disables caching entirely (every lookup misses,
    /// inserts are dropped).
    pub(crate) fn new(capacity: usize, shards: usize) -> AnswerCache {
        let shards = shards.max(1);
        AnswerCache {
            shards: if capacity == 0 {
                Vec::new()
            } else {
                (0..shards).map(|_| Mutex::new(Shard::new())).collect()
            },
            capacity_per_shard: capacity.div_ceil(shards).max(1),
            hasher: RandomState::new(),
            degraded: AtomicU64::new(0),
        }
    }

    /// The cached answer for `req` computed at exactly `epoch`, if any.
    /// An entry from an older epoch is left in place for [`get_any`].
    ///
    /// [`get_any`]: AnswerCache::get_any
    pub(crate) fn get(&self, req: &ServeRequest, epoch: u64) -> Option<ServeAnswer> {
        let shard = self.shard(req)?;
        match shard.get(req) {
            Some((e, ans)) if *e == epoch => Some(ans.clone()),
            _ => None,
        }
    }

    /// The cached answer for `req` at **any** epoch, with the epoch it
    /// was computed at — the stale-serve fallback for timed-out queries.
    pub(crate) fn get_any(&self, req: &ServeRequest) -> Option<(u64, ServeAnswer)> {
        let shard = self.shard(req)?;
        shard.get(req).map(|(e, ans)| (*e, ans.clone()))
    }

    /// Record `ans` for `req` at `epoch`, evicting if the shard is full:
    /// stale-epoch entries go first, then an arbitrary current one.
    pub(crate) fn insert(&self, req: &ServeRequest, epoch: u64, ans: ServeAnswer) {
        let Some(mut shard) = self.shard(req) else {
            return;
        };
        if shard.len() >= self.capacity_per_shard && !shard.contains_key(req) {
            shard.retain(|_, (e, _)| *e == epoch);
            if shard.len() >= self.capacity_per_shard {
                if let Some(victim) = shard.keys().next().cloned() {
                    shard.remove(&victim);
                }
            }
        }
        shard.insert(req.clone(), (epoch, ans));
    }

    /// Total resident entries (any epoch), for stats.
    pub(crate) fn len(&self) -> usize {
        (0..self.shards.len())
            .map(|ix| self.lock_shard(ix).len())
            .sum()
    }

    /// Poisoned-shard recoveries absorbed so far.
    pub(crate) fn degraded_events(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Test hook: the raw shard locks, for poisoning them on purpose.
    #[cfg(test)]
    pub(crate) fn shards(&self) -> &[Mutex<Shard>] {
        &self.shards
    }

    fn shard(&self, req: &ServeRequest) -> Option<std::sync::MutexGuard<'_, Shard>> {
        if self.shards.is_empty() {
            return None;
        }
        let ix = (self.hasher.hash_one(req) as usize) % self.shards.len();
        Some(self.lock_shard(ix))
    }

    fn lock_shard(&self, ix: usize) -> std::sync::MutexGuard<'_, Shard> {
        self.shards[ix].lock().unwrap_or_else(|poisoned| {
            // One crashed reader, one degraded event: clear the poison so
            // healthy operation resumes without re-counting.
            self.shards[ix].clear_poison();
            self.degraded.fetch_add(1, Ordering::Relaxed);
            poisoned.into_inner()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use currency_core::RelId;

    fn req(rel: u32) -> ServeRequest {
        ServeRequest::Dcip(RelId(rel))
    }

    #[test]
    fn epoch_mismatch_misses_but_retains_for_stale_serve() {
        let cache = AnswerCache::new(16, 2);
        cache.insert(&req(0), 1, ServeAnswer::Bool(true));
        assert_eq!(cache.get(&req(0), 1), Some(ServeAnswer::Bool(true)));
        assert_eq!(cache.get(&req(0), 2), None, "new epoch invalidates");
        assert_eq!(cache.len(), 1, "stale entry kept as degradation reserve");
        assert_eq!(
            cache.get_any(&req(0)),
            Some((1, ServeAnswer::Bool(true))),
            "stale entry reachable with its epoch"
        );
        assert_eq!(cache.get_any(&req(7)), None);
    }

    #[test]
    fn full_shard_evicts_stale_entries_first() {
        let cache = AnswerCache::new(4, 1);
        for r in 0..4 {
            cache.insert(&req(r), 1, ServeAnswer::Bool(true));
        }
        assert_eq!(cache.len(), 4);
        // Insert at a newer epoch: the four stale entries make room.
        cache.insert(&req(9), 2, ServeAnswer::Bool(false));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&req(9), 2), Some(ServeAnswer::Bool(false)));
    }

    #[test]
    fn full_shard_of_current_entries_evicts_one() {
        let cache = AnswerCache::new(2, 1);
        cache.insert(&req(0), 1, ServeAnswer::Bool(true));
        cache.insert(&req(1), 1, ServeAnswer::Bool(true));
        cache.insert(&req(2), 1, ServeAnswer::Bool(true));
        assert_eq!(cache.len(), 2, "capacity holds");
        assert_eq!(cache.get(&req(2), 1), Some(ServeAnswer::Bool(true)));
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = AnswerCache::new(0, 4);
        cache.insert(&req(0), 1, ServeAnswer::Bool(true));
        assert_eq!(cache.get(&req(0), 1), None);
        assert_eq!(cache.get_any(&req(0)), None);
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn poisoned_shard_keeps_serving_and_counts_one_degraded_event() {
        let cache = AnswerCache::new(8, 1);
        cache.insert(&req(0), 1, ServeAnswer::Bool(true));
        // A thread dies while holding the (only) shard lock...
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = cache.shards[0].lock().unwrap();
            panic!("simulated crash under the shard lock");
        }));
        assert!(caught.is_err());
        assert!(cache.shards[0].is_poisoned());
        assert_eq!(cache.degraded_events(), 0, "counted on recovery, not crash");
        // ...and the cache shrugs: entries are inserted by value, so the
        // map cannot be half-written and the first lookup recovers the
        // lock, clears the poison, and counts one degraded event.
        assert_eq!(cache.get(&req(0), 1), Some(ServeAnswer::Bool(true)));
        assert_eq!(cache.degraded_events(), 1);
        cache.insert(&req(1), 1, ServeAnswer::Bool(false));
        assert_eq!(cache.get(&req(1), 1), Some(ServeAnswer::Bool(false)));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.degraded_events(), 1, "one crash, one event");
    }

    #[test]
    fn overwrite_same_request_updates_epoch() {
        let cache = AnswerCache::new(8, 1);
        cache.insert(&req(0), 1, ServeAnswer::Bool(true));
        cache.insert(&req(0), 2, ServeAnswer::Bool(false));
        assert_eq!(cache.get(&req(0), 2), Some(ServeAnswer::Bool(false)));
        assert_eq!(cache.len(), 1);
    }
}
